//! The V knob: how fast BASRPT trades FCT against queue stability.
//!
//! Theorem 1 promises the FCT penalty shrinks as `B'/V` while the stable
//! queue level grows as `O(V)`. This example sweeps V on both of the
//! repository's substrates:
//!
//! 1. the slotted input-queued switch (where the theorem's quantities —
//!    time-average penalty and backlog — are measured directly), and
//! 2. the flow-level fabric (where the effect shows up as query FCT
//!    falling and the queue level rising with V).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example v_tradeoff
//! ```

use basrpt::metrics::TextTable;
use basrpt::prelude::*;
use basrpt::switch::arrivals::BernoulliFlowArrivals;
use basrpt::switch::run as run_switch;
use std::error::Error;

fn switch_sweep() {
    println!("== Slotted switch (8 ports, 85 % load): penalty vs backlog ==\n");
    let mut table = TextTable::new(vec![
        "V".into(),
        "avg penalty (pkts)".into(),
        "avg total backlog (pkts)".into(),
    ]);
    for v in [0.0, 1.0, 4.0, 16.0, 64.0, 256.0] {
        let mut arrivals = BernoulliFlowArrivals::uniform(8, 0.85, 5, 99).unwrap();
        let mut sched = FastBasrpt::new(v, 8);
        let run = run_switch(8, &mut sched, &mut arrivals, RunConfig::new(60_000));
        table.add_row(vec![
            format!("{v}"),
            format!("{:.2}", run.avg_penalty),
            format!("{:.1}", run.avg_total_backlog),
        ]);
    }
    println!("{table}");
}

fn fabric_sweep() -> Result<(), Box<dyn Error>> {
    println!("== Flow-level fabric (16 hosts, 92 % load): FCT vs queue ==\n");
    let topo = FatTree::scaled(4, 4, 1)?;
    let spec = TrafficSpec::scaled(4, 4, 0.92)?;
    let n = topo.num_hosts() as usize;
    let mut table = TextTable::new(vec![
        "V".into(),
        "query avg FCT".into(),
        "query p99 FCT".into(),
        "bg avg FCT".into(),
        "port queue (MB)".into(),
        "thpt (Gbps)".into(),
    ]);
    for v in [500.0, 1000.0, 2500.0, 5000.0, 10000.0] {
        let mut sched = FastBasrpt::new(v, n);
        let run = simulate(
            &topo,
            &mut sched,
            spec.generator(7)?,
            SimConfig::builder()
                .horizon(SimTime::from_secs(3.0))
                .build(),
        )?;
        let q = run.fct.summary(FlowClass::Query).expect("queries finish");
        let b = run
            .fct
            .summary(FlowClass::Background)
            .expect("background finishes");
        table.add_row(vec![
            format!("{v}"),
            format!("{:.3} ms", q.mean_ms()),
            format!("{:.3} ms", q.p99_ms()),
            format!("{:.2} ms", b.mean_ms()),
            format!(
                "{:.0}",
                run.monitored_port_backlog.last_value().unwrap_or(0.0) / 1e6
            ),
            format!("{:.1}", run.average_throughput().gbps()),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    switch_sweep();
    fabric_sweep()
}
