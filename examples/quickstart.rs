//! Quickstart: simulate a small fabric under SRPT and fast BASRPT and
//! compare completion times, throughput and queue growth.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use basrpt::metrics::TextTable;
use basrpt::prelude::*;
use std::error::Error;

fn run_one(
    topo: &FatTree,
    spec: &TrafficSpec,
    scheduler: &mut dyn Scheduler,
    seed: u64,
) -> Result<FabricRun, Box<dyn Error>> {
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(2.0))
        .build();
    Ok(simulate(topo, scheduler, spec.generator(seed)?, config)?)
}

fn main() -> Result<(), Box<dyn Error>> {
    // A 32-host fabric (4 racks x 8 hosts, 2 cores) at 90 % load.
    let topo = FatTree::scaled(4, 8, 2)?;
    let spec = TrafficSpec::scaled(4, 8, 0.90)?;
    let n = topo.num_hosts() as usize;
    println!(
        "fabric: {} hosts, {} racks, full bisection: {}\n",
        topo.num_hosts(),
        topo.num_racks(),
        topo.is_full_bisection()
    );

    let schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(Srpt::new()), Box::new(FastBasrpt::new(2500.0, n))];

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "query avg FCT".into(),
        "query p99 FCT".into(),
        "bg avg FCT".into(),
        "throughput".into(),
        "port queue".into(),
    ]);
    for mut sched in schedulers {
        let run = run_one(&topo, &spec, sched.as_mut(), 42)?;
        let query = run
            .fct
            .summary(FlowClass::Query)
            .expect("queries completed");
        let bg = run
            .fct
            .summary(FlowClass::Background)
            .expect("background flows completed");
        let stability = run.monitored_port_stability(TrendConfig::default());
        table.add_row(vec![
            sched.name().to_string(),
            format!("{:.3} ms", query.mean_ms()),
            format!("{:.3} ms", query.p99_ms()),
            format!("{:.2} ms", bg.mean_ms()),
            format!("{:.1} Gbps", run.average_throughput().gbps()),
            format!(
                "{} ({:.0} MB)",
                stability.verdict,
                stability.last_value / 1e6
            ),
        ]);
    }
    println!("{table}");
    println!("note: 2-second horizon — use the bench harness for full-length runs");
    Ok(())
}
