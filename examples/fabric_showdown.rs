//! A six-way scheduler shoot-out on the flow-level fabric: SRPT, fast
//! BASRPT, threshold backlog-aware SRPT, MaxWeight, FIFO and round-robin
//! compete on the same high-load workload (same seed, same arrivals).
//!
//! This is the kind of comparison a practitioner would run before picking a
//! discipline: it shows the paper's delay/stability triangle — SRPT wins
//! short-flow FCT but its queues grow; MaxWeight keeps queues short but
//! ruins query latency; fast BASRPT sits in between with V steering the
//! balance.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example fabric_showdown
//! ```

use basrpt::metrics::TextTable;
use basrpt::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let topo = FatTree::scaled(4, 4, 1)?;
    let spec = TrafficSpec::scaled(4, 4, 0.92)?;
    let n = topo.num_hosts() as usize;
    let horizon = SimTime::from_secs(4.0);
    println!(
        "fabric: {} hosts at {:.0}% load, horizon {horizon}\n",
        topo.num_hosts(),
        spec.load() * 100.0
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Srpt::new()),
        Box::new(FastBasrpt::new(2500.0, n)),
        Box::new(ThresholdBacklogSrpt::new(50_000_000)),
        Box::new(MaxWeight::new()),
        Box::new(Fifo::new()),
        Box::new(RoundRobin::new()),
    ];

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "query avg".into(),
        "query p99".into(),
        "bg avg".into(),
        "bg p99".into(),
        "thpt (Gbps)".into(),
        "queue trend".into(),
    ]);

    for mut sched in schedulers {
        let run = simulate(
            &topo,
            sched.as_mut(),
            spec.generator(1234)?,
            SimConfig::builder().horizon(horizon).build(),
        )?;
        let q = run.fct.summary(FlowClass::Query);
        let b = run.fct.summary(FlowClass::Background);
        let st = run.monitored_port_stability(TrendConfig::default());
        let ms = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.3} ms"));
        table.add_row(vec![
            sched.name().to_string(),
            ms(q.map(|s| s.mean_ms())),
            ms(q.map(|s| s.p99_ms())),
            ms(b.map(|s| s.mean_ms())),
            ms(b.map(|s| s.p99_ms())),
            format!("{:.1}", run.average_throughput().gbps()),
            format!("{} ({:+.0} MB/s)", st.verdict, st.slope_per_sec / 1e6),
        ]);
    }
    println!("{table}");
    Ok(())
}
