//! Streaming scheduler daemon: arrivals in, JSONL completions out.
//!
//! Reads whitespace-separated flow arrivals from a file (or stdin with
//! `-`), feeds them one at a time into the step-able [`OnlineFabric`]
//! engine — honoring its backpressure — and streams every completion to
//! stdout as one JSON line in the `dcn-probe` trace schema:
//!
//! ```text
//! {"event":"completion","t":0.0012,"flow":3,"src":0,"dst":1,"size":80000,"fct":0.0012}
//! ```
//!
//! Input format (one arrival per line, `#` comments and blank lines
//! ignored; times in seconds, strictly non-decreasing; class optional):
//!
//! ```text
//! # time  src  dst  size_bytes  [query|background]
//! 0.000   0    1    1250000
//! 0.0001  2    1    80000       query
//! ```
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example daemon -- flows.txt [--validate]
//! cat flows.txt | cargo run --release --example daemon -- -
//! ```
//!
//! `--validate` re-parses every emitted line with the probe crate's own
//! `parse_line` before writing it and exits non-zero on any schema
//! violation — `make daemon-smoke` uses this as the streaming-schema gate.
//!
//! Environment knobs:
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `BASRPT_WATERMARK` | 65536 | in-flight arrival high-watermark |
//! | `BASRPT_HORIZON_MS` | 1000 | simulated horizon in milliseconds |
//! | `BASRPT_SCHED` | `fast-basrpt` | discipline: `srpt` or `fast-basrpt` |
//!
//! The run summary goes to stderr so stdout stays a clean JSONL stream.

use basrpt::fabric::OfferError;
use basrpt::prelude::*;
use basrpt::probe::jsonl::parse_line;
use std::error::Error;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses one input line into an arrival, or `None` for blanks/comments.
fn parse_arrival(line: &str, id: u64, num: usize) -> Result<Option<FlowArrival>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let mut next = |what: &str| {
        fields
            .next()
            .ok_or_else(|| format!("line {num}: missing {what}"))
    };
    let time: f64 = next("time")?
        .parse()
        .map_err(|e| format!("line {num}: bad time: {e}"))?;
    let src: u32 = next("src")?
        .parse()
        .map_err(|e| format!("line {num}: bad src: {e}"))?;
    let dst: u32 = next("dst")?
        .parse()
        .map_err(|e| format!("line {num}: bad dst: {e}"))?;
    let size: u64 = next("size")?
        .parse()
        .map_err(|e| format!("line {num}: bad size: {e}"))?;
    let class = match fields.next() {
        None | Some("background") => FlowClass::Background,
        Some("query") => FlowClass::Query,
        Some(other) => return Err(format!("line {num}: unknown class {other:?}")),
    };
    if let Some(extra) = fields.next() {
        return Err(format!("line {num}: trailing field {extra:?}"));
    }
    Ok(Some(FlowArrival {
        id: FlowId::new(id),
        time: SimTime::from_secs(time),
        voq: Voq::new(HostId::new(src), HostId::new(dst)),
        size: Bytes::new(size),
        class,
    }))
}

/// Formats one completion in the `dcn-probe` JSONL completion schema.
fn completion_line(buf: &mut String, c: &basrpt::fabric::CompletionRecord) {
    buf.clear();
    let _ = write!(
        buf,
        "{{\"event\":\"completion\",\"t\":{:?},\"flow\":{},\"src\":{},\"dst\":{},\"size\":{},\"fct\":{:?}}}",
        c.time.as_secs(),
        c.flow.raw(),
        c.voq.src().index(),
        c.voq.dst().index(),
        c.size.as_u64(),
        c.fct.as_secs(),
    );
}

fn emit_completions(
    online: &mut OnlineFabric<'_, '_, FatTree, dyn Scheduler>,
    out: &mut impl Write,
    buf: &mut String,
    validate: bool,
    emitted: &mut u64,
) -> Result<(), Box<dyn Error>> {
    for completion in online.drain_completions() {
        completion_line(buf, &completion);
        if validate {
            parse_line(buf).map_err(|e| format!("emitted line failed validation: {e}"))?;
        }
        out.write_all(buf.as_bytes())?;
        out.write_all(b"\n")?;
        *emitted += 1;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut path = None;
    let mut validate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--validate" => validate = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}").into()),
        }
    }
    let path = path.ok_or("usage: daemon <flows-file|-> [--validate]")?;
    let input: Box<dyn BufRead> = if path == "-" {
        Box::new(BufReader::new(io::stdin()))
    } else {
        Box::new(BufReader::new(File::open(&path)?))
    };

    let horizon = SimTime::from_millis(env_f64("BASRPT_HORIZON_MS", 1000.0));
    let watermark = env_usize("BASRPT_WATERMARK", 65_536);
    let topo = FatTree::paper_topology(); // 144 hosts, 12 racks, 10 Gbps edge
    let sched_name = std::env::var("BASRPT_SCHED").unwrap_or_else(|_| "fast-basrpt".into());
    let mut sched: Box<dyn Scheduler> = match sched_name.as_str() {
        "srpt" => Box::new(Srpt::new()),
        "fast-basrpt" => Box::new(FastBasrpt::new(
            2500.0 * 8.0 / topo.num_hosts() as f64,
            topo.num_hosts() as usize,
        )),
        other => return Err(format!("unknown BASRPT_SCHED {other:?}").into()),
    };
    let config = SimConfig::builder().horizon(horizon).build();
    let mut online = OnlineFabric::new(&topo, sched.as_mut(), config).high_watermark(watermark);

    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut buf = String::with_capacity(128);
    let mut emitted = 0u64;
    let mut offered = 0u64;
    let mut ignored = 0u64;
    let mut next_id = 0u64;

    for (num, line) in input.lines().enumerate() {
        let line = line?;
        let Some(arrival) = parse_arrival(&line, next_id, num + 1)? else {
            continue;
        };
        next_id += 1;
        loop {
            online.step_before(arrival.time)?;
            emit_completions(&mut online, &mut out, &mut buf, validate, &mut emitted)?;
            if online.is_finished() {
                break;
            }
            match online.offer(arrival) {
                Ok(basrpt::fabric::Accepted::Queued { .. }) => {
                    offered += 1;
                    break;
                }
                Ok(basrpt::fabric::Accepted::IgnoredAfterHorizon) => {
                    ignored += 1;
                    break;
                }
                Err(OfferError::Backpressure { .. }) => {
                    // The buffer is full of same-instant arrivals; drain
                    // them through the admission path and retry.
                    online.step_until(arrival.time)?;
                    emit_completions(&mut online, &mut out, &mut buf, validate, &mut emitted)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        if online.is_finished() {
            break;
        }
    }

    // Input exhausted: run out the clock and flush the completion tail.
    online.step_until(horizon)?;
    emit_completions(&mut online, &mut out, &mut buf, validate, &mut emitted)?;
    out.flush()?;
    let run = online.finish()?;

    eprintln!(
        "daemon: {} offered, {} ignored (past horizon), {} completions streamed, \
         {} flows left in fabric at t = {} s ({} decisions, scheduler {})",
        offered,
        ignored,
        emitted,
        run.leftover_flows,
        run.horizon.as_secs(),
        run.reschedules,
        sched_name,
    );
    if emitted != run.completions as u64 {
        return Err(format!(
            "streamed {} completions but the run recorded {}",
            emitted, run.completions
        )
        .into());
    }
    Ok(())
}
