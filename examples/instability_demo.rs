//! The paper's §II-B motivation, end to end:
//!
//! 1. the Fig.-1 walk-through — three flows over two bottleneck links where
//!    SRPT strands a packet that a backlog-aware scheduler delivers;
//! 2. a Fig.-2-style fabric run showing SRPT's per-port queue growing
//!    without bound at a load inside capacity, while the simple threshold
//!    backlog-aware strategy stabilizes it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example instability_demo
//! ```

use basrpt::prelude::*;
use basrpt::switch::fig1;
use std::error::Error;

fn part1_fig1() {
    println!("== Part 1: the Fig. 1 example (5+1+1 packets, 2 bottlenecks) ==\n");
    for (label, mut sched) in [
        ("SRPT", Box::new(Srpt::new()) as Box<dyn Scheduler>),
        (
            "BASRPT (exact, V = 0.8)",
            Box::new(ExactBasrpt::new(0.8)) as Box<dyn Scheduler>,
        ),
    ] {
        let run = fig1::run_fig1(sched.as_mut());
        println!(
            "{label:24} delivered {}/{} packets in {} slots; {} stranded",
            run.delivered_packets,
            fig1::TOTAL_PACKETS,
            fig1::HORIZON_SLOTS,
            run.leftover_packets
        );
        for c in &run.completions {
            println!(
                "    {} ({} pkts, {}) finished with FCT {} slots",
                c.id,
                c.size,
                c.voq,
                c.fct_slots()
            );
        }
    }
    println!();
}

fn part2_fig2() -> Result<(), Box<dyn Error>> {
    println!("== Part 2: queue growth at a port, ~95 % load (Fig. 2 style) ==\n");
    let topo = FatTree::scaled(4, 4, 1)?;
    let spec = TrafficSpec::scaled(4, 4, 0.95)?;
    let horizon = SimTime::from_secs(8.0);
    for (label, mut sched) in [
        ("SRPT", Box::new(Srpt::new()) as Box<dyn Scheduler>),
        (
            "threshold backlog-aware (50 MB)",
            Box::new(ThresholdBacklogSrpt::new(50_000_000)) as Box<dyn Scheduler>,
        ),
    ] {
        let run = simulate(
            &topo,
            sched.as_mut(),
            spec.generator(7)?,
            SimConfig::builder().horizon(horizon).build(),
        )?;
        // An 8-second demo is too short for the benches' conservative
        // stable/growing verdict; the whole-trace slope tells the story.
        let report = run.monitored_port_stability(TrendConfig::default());
        let slope = run.monitored_port_backlog.slope().unwrap_or(0.0);
        println!(
            "{label:32} port queue: {:9.1} MB, whole-run trend {:+8.1} MB/s",
            report.last_value / 1e6,
            slope / 1e6,
        );
        // A coarse sparkline of the monitored port's backlog.
        let series = run.monitored_port_backlog.downsample(24);
        let max = series.max_value().unwrap_or(1.0).max(1.0);
        let bars: String = series
            .values()
            .iter()
            .map(|v| {
                const GLYPHS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
                GLYPHS[((v / max * 7.0).round() as usize).min(7)]
            })
            .collect();
        println!("{:32} [{bars}]", "");
    }
    println!(
        "\nSRPT's queue climbs for the whole window; the backlog-aware port \
         drains back toward a bounded level.\n(8-second demo horizon — \
         `cargo bench --bench fig2` runs the full-length version with \
         stable/growing verdicts.)"
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    part1_fig1();
    part2_fig2()
}
