//! Export a simulation run's artifacts as CSV for external analysis
//! (pandas, gnuplot, a spreadsheet).
//!
//! Runs SRPT and fast BASRPT side by side at high load and writes, for
//! each scheme:
//!
//! * `<scheme>_port_backlog.csv` — the monitored port's queue trace;
//! * `<scheme>_fct.csv` — per-class and per-size-bucket FCT summaries.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example export_run [output_dir]
//! ```

use basrpt::metrics::csv;
use basrpt::prelude::*;
use std::error::Error;
use std::fs::{self, File};
use std::io::BufWriter;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/run-export".into())
        .into();
    fs::create_dir_all(&out_dir)?;

    let topo = FatTree::scaled(4, 4, 1)?;
    let spec = TrafficSpec::scaled(4, 4, 0.95)?;
    let n = topo.num_hosts() as usize;
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(2.0))
        .build();

    let schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("srpt", Box::new(Srpt::new())),
        ("fast_basrpt", Box::new(FastBasrpt::new(2500.0 / 9.0, n))),
    ];

    for (tag, mut sched) in schedulers {
        let run = simulate(&topo, sched.as_mut(), spec.generator(42)?, config)?;

        let backlog_path = out_dir.join(format!("{tag}_port_backlog.csv"));
        let mut w = BufWriter::new(File::create(&backlog_path)?);
        csv::write_time_series(&mut w, "port_backlog_bytes", &run.monitored_port_backlog)?;

        let fct_path = out_dir.join(format!("{tag}_fct.csv"));
        let mut w = BufWriter::new(File::create(&fct_path)?);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in FlowClass::ALL {
            if let Some(s) = run.fct.summary(class) {
                labels.push(class.label().to_string());
                rows.push(s);
            }
        }
        for (bucket, summary) in run.fct_by_size.summaries() {
            if let Some(s) = summary {
                labels.push(bucket.to_string());
                rows.push(s);
            }
        }
        let labeled: Vec<(&str, basrpt::metrics::FctSummary)> = labels
            .iter()
            .map(String::as_str)
            .zip(rows.iter().copied())
            .collect();
        csv::write_fct_summaries(&mut w, &labeled)?;

        println!(
            "{tag}: wrote {} and {} ({} completions, {} delivered)",
            backlog_path.display(),
            fct_path.display(),
            run.completions,
            run.throughput.delivered()
        );
    }
    Ok(())
}
