//! Stream a short fabric run's event trace to JSONL and read it back.
//!
//! Attaches a [`JsonlProbe`] to a 16-host simulation, writes one JSON
//! object per event to `trace.jsonl`, then re-parses every emitted line
//! with the probe crate's own `parse_line` and prints a per-event-kind
//! tally. Exits non-zero if any line fails to parse — `make trace-smoke`
//! uses this as the trace-schema gate.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_run [output_dir]
//! ```

use basrpt::prelude::*;
use basrpt::probe::jsonl::{parse_line, JsonValue};
use std::collections::BTreeMap;
use std::error::Error;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace-run".into())
        .into();
    fs::create_dir_all(&out_dir)?;
    let trace_path = out_dir.join("trace.jsonl");

    // A short, fully traced run: 16 hosts at 80 % load for 50 ms.
    let topo = FatTree::scaled(4, 4, 1)?;
    let spec = TrafficSpec::scaled(4, 4, 0.80)?;
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.05))
        .build();
    let mut sched = Srpt::new();
    let mut probe = JsonlProbe::new(BufWriter::new(File::create(&trace_path)?));
    let run = FabricSim::new(&topo)
        .config(config)
        .scheduler(&mut sched)
        .workload(spec.generator(42)?)
        .probe(&mut probe)
        .run()?;
    let lines_written = probe.lines_written();
    probe.finish()?; // flush and surface any latched I/O error

    println!(
        "simulated 50 ms: {} arrivals, {} completions, {} reschedules",
        run.arrivals, run.completions, run.reschedules
    );
    println!(
        "wrote {} trace lines to {}",
        lines_written,
        trace_path.display()
    );

    // Read the trace back and validate that every line parses and names
    // its event kind — the same check `tests/trace_golden.rs` pins with a
    // golden file.
    let mut tally: BTreeMap<String, usize> = BTreeMap::new();
    let mut parsed = 0u64;
    for (lineno, line) in BufReader::new(File::open(&trace_path)?).lines().enumerate() {
        let line = line?;
        let fields =
            parse_line(&line).map_err(|e| format!("line {}: {e} in {line:?}", lineno + 1))?;
        let kind = fields
            .iter()
            .find(|(k, _)| k == "event")
            .and_then(|(_, v)| match v {
                JsonValue::String(s) => Some(s.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("line {}: no \"event\" field", lineno + 1))?;
        *tally.entry(kind).or_default() += 1;
        parsed += 1;
    }
    assert_eq!(parsed, lines_written, "every written line must read back");

    println!("\nevent tally ({parsed} lines, all parsed):");
    for (kind, count) in &tally {
        println!("  {kind:12} {count}");
    }
    Ok(())
}
