//! Slot-level arrival processes (`A_ij(t)` of Eq. 1).

use dcn_types::{HostId, Slot, Voq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of flow arrivals for the slotted switch.
///
/// At the end of each slot the switch polls the process; every returned
/// `(voq, packets)` pair becomes a new flow of that many packets in that
/// VOQ. Per the model's assumptions (§III-B), at most one flow arrives at a
/// given VOQ in a given slot and flow sizes are bounded (so `E[A²] ≤ B`).
pub trait SlotArrivals {
    /// The flows arriving at the end of `slot`.
    fn poll(&mut self, slot: Slot) -> Vec<(Voq, u64)>;

    /// What the process can promise about its arrivals at or after `from`
    /// without advancing its own state.
    ///
    /// Fast-forward drivers (see `dcn_switch::fastforward`) use the
    /// promise to skip polls they know return nothing; the default is
    /// [`ArrivalLookahead::Unknown`], which forces a poll every slot and
    /// is always correct. Implementations may assume `from` is at least
    /// every previously polled slot (drivers advance monotonically).
    fn lookahead(&self, from: Slot) -> ArrivalLookahead {
        let _ = from;
        ArrivalLookahead::Unknown
    }
}

/// What a [`SlotArrivals`] process can promise about its future — the
/// return value of [`SlotArrivals::lookahead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalLookahead {
    /// The process cannot predict its next arrival (e.g. it draws random
    /// bits per slot); the driver must poll every slot.
    Unknown,
    /// The next arrival lands at the end of exactly this slot; polls for
    /// earlier not-yet-polled slots return no flows and may be skipped.
    NextAt(Slot),
    /// No further arrival will ever occur; every remaining poll returns
    /// no flows and may be skipped.
    Exhausted,
}

/// A deterministic, pre-scripted arrival sequence; drives the paper's
/// Fig. 1 walk-through and unit tests.
///
/// # Example
///
/// ```
/// use dcn_switch::arrivals::{ScriptedArrivals, SlotArrivals};
/// use dcn_types::{HostId, Slot, Voq};
///
/// let voq = Voq::new(HostId::new(0), HostId::new(1));
/// let mut s = ScriptedArrivals::new(vec![(1, voq, 5)]);
/// assert!(s.poll(Slot::new(0)).is_empty());
/// assert_eq!(s.poll(Slot::new(1)), vec![(voq, 5)]);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedArrivals {
    /// `(slot, voq, packets)` sorted by slot.
    script: Vec<(u64, Voq, u64)>,
    cursor: usize,
}

impl ScriptedArrivals {
    /// Creates the process from `(slot_index, voq, packets)` entries; the
    /// entries are sorted by slot internally.
    pub fn new(mut script: Vec<(u64, Voq, u64)>) -> Self {
        script.sort_by_key(|&(slot, voq, _)| (slot, voq));
        ScriptedArrivals { script, cursor: 0 }
    }

    /// Whether every scripted arrival has been delivered.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.script.len()
    }
}

impl SlotArrivals for ScriptedArrivals {
    fn poll(&mut self, slot: Slot) -> Vec<(Voq, u64)> {
        let mut out = Vec::new();
        while let Some(&(s, voq, pkts)) = self.script.get(self.cursor) {
            if s != slot.index() {
                break;
            }
            out.push((voq, pkts));
            self.cursor += 1;
        }
        out
    }

    fn lookahead(&self, from: Slot) -> ArrivalLookahead {
        match self.script.get(self.cursor) {
            // Clamp to `from` so the promise stays well-formed even for a
            // caller that never polled the earlier scripted slots.
            Some(&(s, _, _)) => ArrivalLookahead::NextAt(Slot::new(s.max(from.index()))),
            None => ArrivalLookahead::Exhausted,
        }
    }
}

/// Independent Bernoulli flow arrivals: each slot, each VOQ `(i, j)` with
/// `i ≠ j` receives a new flow with probability `p_ij`, whose size is
/// uniform on `[1, 2·mean − 1]` packets (bounded, so the second-moment
/// bound `B` of §III-B exists and is computable).
///
/// The per-VOQ packet rate is `λ_ij = p_ij · mean`, so admissibility
/// (Eq. 2) holds iff every row and column of `(p_ij · mean)` sums below 1.
///
/// # Example
///
/// ```
/// use dcn_switch::arrivals::BernoulliFlowArrivals;
///
/// // 4 ports, 80 % uniform load, mean flow 5 packets.
/// let arr = BernoulliFlowArrivals::uniform(4, 0.8, 5, 42).unwrap();
/// assert!((arr.port_load() - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliFlowArrivals {
    num_ports: u32,
    /// Arrival probability per off-diagonal VOQ per slot.
    prob: f64,
    mean_size: u64,
    rng: StdRng,
}

impl BernoulliFlowArrivals {
    /// Uniform traffic at per-port packet load `rho` across `num_ports`
    /// ports with the given mean flow size: each of the `num_ports − 1`
    /// off-diagonal VOQs of a row receives `rho / (num_ports − 1)` packets
    /// per slot in expectation.
    ///
    /// # Errors
    ///
    /// Returns an error string if `num_ports < 2`, `mean_size == 0`, `rho`
    /// is not in `(0, 1]`, or the implied per-VOQ flow probability exceeds
    /// 1 (load too high for the chosen mean size).
    pub fn uniform(num_ports: u32, rho: f64, mean_size: u64, seed: u64) -> Result<Self, String> {
        if num_ports < 2 {
            return Err("need at least two ports".into());
        }
        if mean_size == 0 {
            return Err("mean size must be positive".into());
        }
        if !rho.is_finite() || rho <= 0.0 || rho > 1.0 {
            return Err(format!("rho must be in (0, 1], got {rho}"));
        }
        let lambda_per_voq = rho / (num_ports - 1) as f64;
        let prob = lambda_per_voq / mean_size as f64;
        if prob > 1.0 {
            return Err(format!(
                "per-VOQ flow probability {prob} > 1; lower rho or raise mean size"
            ));
        }
        Ok(BernoulliFlowArrivals {
            num_ports,
            prob,
            mean_size,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The expected packet arrivals per port per slot (`Σ_j λ_ij`).
    pub fn port_load(&self) -> f64 {
        self.prob * self.mean_size as f64 * (self.num_ports - 1) as f64
    }

    /// The per-VOQ capacity slack `ε` of Theorem 1 for this uniform
    /// process: the largest `ε'` with `λ_ij + ε' ≤ R̄_ij` for a stationary
    /// reference algorithm. The best uniform doubly stochastic cover of
    /// zero-diagonal uniform traffic is `M_ij = 1/(N−1)` off the diagonal
    /// (a convex combination of derangements by Birkhoff's theorem), so
    /// `ε = (1 − ρ)/(N − 1)`.
    pub fn capacity_slack(&self) -> f64 {
        (1.0 - self.port_load()) / (self.num_ports - 1) as f64
    }

    /// The second-moment bound `B ≥ E[A_ij²]` of §III-B for this process.
    ///
    /// With probability `p` the arrival is uniform on `[1, 2m−1]`, so
    /// `E[A²] = p · E[S²]` with
    /// `E[S²] = m² + ((2m−1)² − 1)/12 · ... ` computed exactly below.
    pub fn second_moment_bound(&self) -> f64 {
        let m = self.mean_size as f64;
        let k = 2.0 * m - 1.0; // sizes uniform on 1..=k
                               // E[S²] for discrete uniform on [1, k]: (k+1)(2k+1)/6.
        let e_s2 = (k + 1.0) * (2.0 * k + 1.0) / 6.0;
        self.prob * e_s2
    }

    fn sample_size(&mut self) -> u64 {
        self.rng.gen_range(1..=2 * self.mean_size - 1)
    }
}

impl SlotArrivals for BernoulliFlowArrivals {
    fn poll(&mut self, _slot: Slot) -> Vec<(Voq, u64)> {
        let mut out = Vec::new();
        for i in 0..self.num_ports {
            for j in 0..self.num_ports {
                if i == j {
                    continue;
                }
                if self.rng.gen_bool(self.prob) {
                    let size = self.sample_size();
                    out.push((Voq::new(HostId::new(i), HostId::new(j)), size));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_delivers_in_slot_order() {
        let q1 = Voq::new(HostId::new(0), HostId::new(1));
        let q2 = Voq::new(HostId::new(1), HostId::new(0));
        let mut s = ScriptedArrivals::new(vec![(2, q2, 3), (0, q1, 5), (2, q1, 1)]);
        assert_eq!(s.poll(Slot::new(0)), vec![(q1, 5)]);
        assert!(s.poll(Slot::new(1)).is_empty());
        assert_eq!(s.poll(Slot::new(2)), vec![(q1, 1), (q2, 3)]);
        assert!(s.is_exhausted());
    }

    #[test]
    fn scripted_lookahead_tracks_the_cursor() {
        let q = Voq::new(HostId::new(0), HostId::new(1));
        let mut s = ScriptedArrivals::new(vec![(3, q, 5), (7, q, 1)]);
        assert_eq!(
            s.lookahead(Slot::new(0)),
            ArrivalLookahead::NextAt(Slot::new(3))
        );
        // A lookahead from beyond the entry clamps to `from`.
        assert_eq!(
            s.lookahead(Slot::new(5)),
            ArrivalLookahead::NextAt(Slot::new(5))
        );
        assert!(s.poll(Slot::new(3)).len() == 1);
        assert_eq!(
            s.lookahead(Slot::new(4)),
            ArrivalLookahead::NextAt(Slot::new(7))
        );
        assert!(s.poll(Slot::new(7)).len() == 1);
        assert_eq!(s.lookahead(Slot::new(8)), ArrivalLookahead::Exhausted);
    }

    #[test]
    fn bernoulli_lookahead_is_unknown() {
        let arr = BernoulliFlowArrivals::uniform(4, 0.6, 5, 7).unwrap();
        assert_eq!(arr.lookahead(Slot::new(0)), ArrivalLookahead::Unknown);
    }

    #[test]
    fn bernoulli_rate_matches_target() {
        let mut arr = BernoulliFlowArrivals::uniform(4, 0.6, 5, 7).unwrap();
        let slots = 20_000u64;
        let mut packets = [0u64; 4];
        for t in 0..slots {
            for (voq, pkts) in arr.poll(Slot::new(t)) {
                packets[voq.src().as_usize()] += pkts;
                assert!((1..=9).contains(&pkts));
                assert_ne!(voq.src(), voq.dst());
            }
        }
        for (port, &count) in packets.iter().enumerate() {
            let rate = count as f64 / slots as f64;
            assert!(
                (rate - 0.6).abs() < 0.05,
                "port {port} rate {rate} should be ~0.6"
            );
        }
    }

    #[test]
    fn bernoulli_rejects_bad_config() {
        assert!(BernoulliFlowArrivals::uniform(1, 0.5, 5, 0).is_err());
        assert!(BernoulliFlowArrivals::uniform(4, 0.0, 5, 0).is_err());
        assert!(BernoulliFlowArrivals::uniform(4, 1.5, 5, 0).is_err());
        assert!(BernoulliFlowArrivals::uniform(4, 0.5, 0, 0).is_err());
    }

    #[test]
    fn capacity_slack_formula() {
        let arr = BernoulliFlowArrivals::uniform(8, 0.8, 5, 0).unwrap();
        // (1 - 0.8) / 7.
        assert!((arr.capacity_slack() - 0.2 / 7.0).abs() < 1e-12);
        // Slack shrinks as load grows.
        let busier = BernoulliFlowArrivals::uniform(8, 0.95, 5, 0).unwrap();
        assert!(busier.capacity_slack() < arr.capacity_slack());
        assert!(busier.capacity_slack() > 0.0);
    }

    #[test]
    fn second_moment_bound_is_positive_and_consistent() {
        let arr = BernoulliFlowArrivals::uniform(4, 0.9, 5, 0).unwrap();
        let b = arr.second_moment_bound();
        assert!(b > 0.0);
        // E[A²] >= (E[A])² / P(A>0) is not needed; just sanity: B >= p*m².
        let p = 0.9 / 3.0 / 5.0;
        assert!(b >= p * 25.0);
    }
}
