//! Macro-slot fast-forward for the slotted switch.
//!
//! Between two state-changing events — an arrival or a flow completion —
//! the greedy matching computed by any of the disciplines is constant for
//! a provable number of slots (see [`basrpt_core::validity`]). The
//! slot-by-slot driver in [`run_probed`] nevertheless
//! re-invokes the scheduler every slot. This module adds a second engine
//! that reuses the cached schedule across a whole *window* of `k` slots
//! and advances queue state, service counters, and the backlog/penalty
//! accumulators analytically in one step, while producing **bit-identical
//! results** to the reference loop: the same completions, the same
//! sampled time series, the same `avg_penalty` and `avg_total_backlog`
//! down to the last mantissa bit, and (for probes that ask for slot
//! fidelity) the same per-slot event stream.
//!
//! # Window expiry conditions
//!
//! A cached schedule is replayed until the first of:
//!
//! * its discipline-specific validity bound
//!   ([`Scheduler::schedule_validity`]) is exhausted — conservative per
//!   discipline, `1` for stateful schedulers like `RoundRobin`;
//! * a scheduled flow would complete (windows never cross a completion:
//!   `k` is capped by the minimum remaining size of the matched flows, so
//!   a completion can only land in the last slot of a window);
//! * an arrival lands ([`SlotArrivals::lookahead`] bounds the window for
//!   scripted workloads; `Unknown` sources such as Bernoulli arrivals
//!   force `k = 1` so every slot is polled, exactly like the reference);
//! * the next sampling instant (`config.sample_every`) is reached, so no
//!   [`SampleEvent`] is ever skipped or displaced;
//! * the table changed behind the engine's back, detected through a
//!   [`TableCursor`] over the [`FlowTable`](basrpt_core::FlowTable)
//!   change log. After a quiescent window (only the schedule's own
//!   drains) the cursor is resynced; any arrival or completion leaves it
//!   stale and forces a recompute at the next window.
//!
//! # Bit identity
//!
//! The accumulators are reproduced exactly, not approximately: the
//! reference sums backlog in `u128` (one integer add per slot), so the
//! closed form `k·x₀ − m·k(k−1)/2` lands on the identical integer; the
//! penalty `ȳ(t)` is accumulated with one f64 addition per slot in both
//! engines (each slot's scheduled-remaining total `r₀ − i·m` is an exact
//! integer), so the float rounding sequence is identical. Probes that
//! return `true` from [`Probe::wants_slot_fidelity`] receive the full
//! per-slot expansion — replayed [`DecisionEvent`]s carry `latency: None`
//! — in exactly the reference order; probes that opt out get one
//! `DecisionEvent` per *actual* scheduler invocation and one batched
//! [`DrainEvent`] per flow per window.

use crate::arrivals::{ArrivalLookahead, SlotArrivals};
use crate::switch::{run_probed, RunConfig, SlottedSwitch, SwitchRun, SwitchSampler};
use basrpt_core::{Schedule, Scheduler, TableCursor};
use dcn_probe::{
    ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Fanout, NoProbe, Probe, SampleEvent,
};
use dcn_types::Slot;
use std::time::Instant;

/// Which simulation driver executes a slotted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reference loop: one scheduler invocation per slot.
    #[default]
    SlotBySlot,
    /// The macro-slot engine: schedules are cached and replayed for as
    /// long as they provably stay valid. Bit-identical to the reference.
    FastForward,
}

impl Engine {
    /// Selects the engine from the `BASRPT_ENGINE` environment variable:
    /// `fastforward` (or `ff`, case-insensitive) picks
    /// [`Engine::FastForward`], anything else — including an unset
    /// variable — the reference [`Engine::SlotBySlot`].
    pub fn from_env() -> Self {
        match std::env::var("BASRPT_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("fastforward") || v.eq_ignore_ascii_case("ff") => {
                Engine::FastForward
            }
            _ => Engine::SlotBySlot,
        }
    }
}

/// [`run`](crate::run) with an explicit [`Engine`] choice.
pub fn run_with_engine<S: Scheduler + ?Sized, A: SlotArrivals + ?Sized>(
    engine: Engine,
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
) -> SwitchRun {
    run_probed_with_engine(engine, num_ports, scheduler, arrivals, config, NoProbe)
}

/// [`run_probed`] with an explicit [`Engine`] choice.
pub fn run_probed_with_engine<S, A, P>(
    engine: Engine,
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
    probe: P,
) -> SwitchRun
where
    S: Scheduler + ?Sized,
    A: SlotArrivals + ?Sized,
    P: Probe,
{
    match engine {
        Engine::SlotBySlot => run_probed(num_ports, scheduler, arrivals, config, probe),
        Engine::FastForward => {
            run_fastforward_probed(num_ports, scheduler, arrivals, config, probe)
        }
    }
}

/// [`run_fastforward_probed`] with no observer attached.
pub fn run_fastforward<S: Scheduler + ?Sized, A: SlotArrivals + ?Sized>(
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
) -> SwitchRun {
    run_fastforward_probed(num_ports, scheduler, arrivals, config, NoProbe)
}

/// Runs a slotted simulation with the macro-slot fast-forward engine.
///
/// Produces a [`SwitchRun`] bit-identical to
/// [`run_probed`] on the same inputs, invoking the
/// scheduler only when the cached schedule can no longer be proven valid.
/// The only observable difference is the `latency` field of replayed
/// [`DecisionEvent`]s, which is `None` because no decision was actually
/// computed in those slots.
pub fn run_fastforward_probed<S, A, P>(
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
    probe: P,
) -> SwitchRun
where
    S: Scheduler + ?Sized,
    A: SlotArrivals + ?Sized,
    P: Probe,
{
    let mut switch = SlottedSwitch::new(num_ports);
    let mut sampler = SwitchSampler::new(num_ports);
    let mut fan = Fanout::new(&mut sampler, probe);
    let fidelity = fan.wants_slot_fidelity();
    let mut completions = Vec::new();
    let mut delivered = 0u64;
    let mut penalty_sum = 0.0;
    let mut penalty_slots = 0u64;
    let mut backlog_sum: u128 = 0;

    let mut cached: Option<Schedule> = None;
    let mut validity_left = 0u64;
    let mut cursor = TableCursor::new(switch.table());
    // Register with the change log so compaction preserves exactly the
    // suffix this cursor has not absorbed yet; long quiescent windows
    // would otherwise outgrow the log's soft cap and force the scheduler
    // (and any incremental index it keeps) to rebuild from scratch.
    let cursor_reg = switch.table().register_cursor();

    let mut t = 0u64;
    while t < config.slots {
        let now = t as f64;
        if t.is_multiple_of(config.sample_every) {
            fan.on_sample(&SampleEvent {
                time: now,
                table: switch.table(),
                delivered: delivered as f64,
            });
        }

        // Recompute when the cache is empty, its validity bound ran out,
        // or the table mutated in a way the bound did not account for
        // (arrivals, completions — anything but resynced own drains).
        let stale = cached.is_none() || validity_left == 0 || cursor.has_changed(switch.table());
        if stale {
            let started = fan.wants_decision_timing().then(Instant::now);
            let schedule = scheduler.schedule(switch.table());
            let latency = started.map(|s| s.elapsed());
            fan.on_decision(&DecisionEvent {
                time: now,
                schedule: &schedule,
                latency,
            });
            validity_left = scheduler
                .schedule_validity(switch.table(), &schedule)
                .max(1);
            cursor.resync(switch.table());
            switch
                .table()
                .ack_changes(cursor_reg, switch.table().change_log_end());
            cached = Some(schedule);
        }
        let schedule = cached
            .as_ref()
            .expect("a schedule is cached past this point");

        // Scheduled-flow aggregates for the window caps and the penalty.
        let mut min_remaining = u64::MAX;
        let mut r0 = 0u64;
        for id in schedule.flow_ids() {
            let rem = switch
                .table()
                .get(id)
                .expect("scheduled flows are active")
                .remaining();
            min_remaining = min_remaining.min(rem);
            r0 += rem;
        }

        // Window length: bounded by the end of the run, the validity of
        // the cached schedule, the earliest completion it could cause,
        // the next sampling instant, and the next arrival.
        let mut k = (config.slots - t).min(validity_left);
        if !schedule.is_empty() {
            k = k.min(min_remaining);
        }
        k = k.min(config.sample_every - t % config.sample_every);
        match arrivals.lookahead(Slot::new(t)) {
            ArrivalLookahead::Unknown => k = k.min(1),
            ArrivalLookahead::NextAt(a) => k = k.min(a.index().max(t) - t + 1),
            ArrivalLookahead::Exhausted => {}
        }
        debug_assert!(k >= 1, "every window spans at least one slot");

        // Closed-form backlog sum: slot t + i starts with x0 - i*m packets
        // queued (only the schedule's own drains mutate the table inside
        // the window), and the reference accumulates in integers.
        {
            let x0 = switch.table().total_backlog() as u128;
            let m = schedule.len() as u128;
            let kk = k as u128;
            backlog_sum += kk * x0 - m * (kk * (kk - 1) / 2);
        }
        // Penalty ȳ(t): each slot's scheduled-remaining total r0 - i*m is
        // an exact integer, so one f64 add per slot reproduces the
        // reference rounding sequence bit for bit.
        if !schedule.is_empty() {
            let m = schedule.len() as u64;
            for i in 0..k {
                penalty_sum += (r0 - i * m) as f64 / m as f64;
            }
            penalty_slots += k;
        }

        if fidelity {
            // Full per-slot expansion in reference order: decision, then
            // drains, for every slot of the window. The freshly computed
            // decision (if any) was already emitted above for slot t.
            for i in 0..k {
                if i > 0 || !stale {
                    fan.on_decision(&DecisionEvent {
                        time: (t + i) as f64,
                        schedule,
                        latency: None,
                    });
                }
                for (id, voq) in schedule.iter() {
                    fan.on_drain(&DrainEvent {
                        time: (t + i) as f64,
                        flow: id,
                        voq,
                        amount: 1,
                    });
                }
            }
        } else {
            for (id, voq) in schedule.iter() {
                fan.on_drain(&DrainEvent {
                    time: now,
                    flow: id,
                    voq,
                    amount: k,
                });
            }
        }

        let end = t + k - 1;
        let polled = arrivals.poll(Slot::new(end));
        let outcome = switch.advance_window(schedule, k, polled);

        for done in &outcome.completions {
            fan.on_completion(&CompletionEvent {
                time: end as f64,
                flow: done.id,
                voq: done.voq,
                size: done.size,
                fct: done.fct_slots() as f64,
            });
        }
        for &(id, voq, packets) in &outcome.admitted {
            fan.on_arrival(&ArrivalEvent {
                time: (end + 1) as f64,
                flow: id,
                voq,
                size: packets,
            });
        }

        let quiescent = outcome.completions.is_empty() && outcome.admitted.is_empty();
        delivered += outcome.transmitted;
        completions.extend(outcome.completions);
        validity_left -= k;
        if quiescent {
            // Only the schedule's own drains hit the change log: absorb
            // them, the validity bound already accounts for their effect.
            cursor.resync(switch.table());
            switch
                .table()
                .ack_changes(cursor_reg, switch.table().change_log_end());
        }
        t += k;
    }
    drop(fan);

    SwitchRun {
        completions,
        delivered_packets: delivered,
        total_backlog: sampler.total_backlog,
        max_port_backlog: sampler.max_port_backlog,
        lyapunov: sampler.lyapunov,
        leftover_packets: switch.table().total_backlog(),
        leftover_flows: switch.table().len(),
        avg_penalty: if penalty_slots > 0 {
            penalty_sum / penalty_slots as f64
        } else {
            0.0
        },
        avg_total_backlog: backlog_sum as f64 / config.slots.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ScriptedArrivals;
    use crate::run;
    use basrpt_core::{CountingScheduler, Srpt, ThresholdBacklogSrpt};
    use dcn_types::{HostId, Voq};

    fn voq(src: u32, dst: u32) -> Voq {
        Voq::new(HostId::new(src), HostId::new(dst))
    }

    fn assert_identical(a: &SwitchRun, b: &SwitchRun) {
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.total_backlog, b.total_backlog);
        assert_eq!(a.max_port_backlog, b.max_port_backlog);
        assert_eq!(a.lyapunov, b.lyapunov);
        assert_eq!(a.leftover_packets, b.leftover_packets);
        assert_eq!(a.leftover_flows, b.leftover_flows);
        assert_eq!(a.avg_penalty.to_bits(), b.avg_penalty.to_bits());
        assert_eq!(a.avg_total_backlog.to_bits(), b.avg_total_backlog.to_bits());
    }

    #[test]
    fn engine_from_env_parses_known_values() {
        std::env::remove_var("BASRPT_ENGINE");
        assert_eq!(Engine::from_env(), Engine::SlotBySlot);
        std::env::set_var("BASRPT_ENGINE", "FastForward");
        assert_eq!(Engine::from_env(), Engine::FastForward);
        std::env::set_var("BASRPT_ENGINE", "ff");
        assert_eq!(Engine::from_env(), Engine::FastForward);
        std::env::set_var("BASRPT_ENGINE", "slot");
        assert_eq!(Engine::from_env(), Engine::SlotBySlot);
        std::env::remove_var("BASRPT_ENGINE");
    }

    #[test]
    fn fast_forward_matches_reference_on_scripted_srpt() {
        let script = vec![
            (0u64, voq(0, 1), 40u64),
            (0, voq(1, 0), 25),
            (12, voq(0, 1), 3),
            (90, voq(1, 2), 7),
        ];
        let reference = run(
            3,
            &mut Srpt::new(),
            &mut ScriptedArrivals::new(script.clone()),
            RunConfig::new(200),
        );
        let fast = run_fastforward(
            3,
            &mut Srpt::new(),
            &mut ScriptedArrivals::new(script),
            RunConfig::new(200),
        );
        assert_identical(&reference, &fast);
    }

    #[test]
    fn fast_forward_matches_reference_on_threshold_discipline() {
        let script = vec![
            (0u64, voq(0, 1), 30u64),
            (0, voq(1, 0), 12),
            (7, voq(2, 1), 9),
        ];
        let reference = run(
            3,
            &mut ThresholdBacklogSrpt::new(10),
            &mut ScriptedArrivals::new(script.clone()),
            RunConfig::new(120),
        );
        let fast = run_fastforward(
            3,
            &mut ThresholdBacklogSrpt::new(10),
            &mut ScriptedArrivals::new(script),
            RunConfig::new(120),
        );
        assert_identical(&reference, &fast);
    }

    #[test]
    fn fast_forward_invokes_the_scheduler_less() {
        let script = vec![(0u64, voq(0, 1), 500u64), (0, voq(1, 0), 700)];
        let mut slow = CountingScheduler::new(Srpt::new());
        let reference = run(
            2,
            &mut slow,
            &mut ScriptedArrivals::new(script.clone()),
            RunConfig::new(1_000),
        );
        let mut fast = CountingScheduler::new(Srpt::new());
        let ff = run_fastforward(
            2,
            &mut fast,
            &mut ScriptedArrivals::new(script),
            RunConfig::new(1_000),
        );
        assert_identical(&reference, &ff);
        assert_eq!(slow.calls(), 1_000);
        assert!(
            fast.calls() * 5 <= slow.calls(),
            "fast-forward made {} calls vs {}",
            fast.calls(),
            slow.calls()
        );
    }
}
