//! Slotted input-queued switch model — the paper's network model (§III).
//!
//! The data-center fabric is abstracted as one non-blocking `N × N`
//! input-queued switch: each port is a server, flows wait in `N²` virtual
//! output queues, time advances in packet-transmission slots, and during
//! each slot a crossbar matching moves at most one packet per ingress and
//! per egress port. Queue lengths evolve exactly per Eq. (1):
//!
//! ```text
//! X_ij(t+1) = X_ij(t) + A_ij(t) − R_ij(t) + L_ij(t)
//! ```
//!
//! with arrivals `A_ij(t)` applied at the end of each slot. This model is
//! where the paper's theory lives, so the crate also provides
//! [`lyapunov`] instrumentation (the quadratic Lyapunov function, one-slot
//! drift samples, and the Theorem-1 bounds) and the exact Fig.-1
//! three-flow instability scenario ([`fig1`]).
//!
//! # Example
//!
//! ```
//! use basrpt_core::Srpt;
//! use dcn_switch::{arrivals::ScriptedArrivals, RunConfig, SlottedSwitch};
//! use dcn_types::{HostId, Voq};
//!
//! // One 2-packet flow from port 0 to port 1, injected at slot 0.
//! let mut arrivals = ScriptedArrivals::new(vec![(0, Voq::new(HostId::new(0), HostId::new(1)), 2)]);
//! let run = dcn_switch::run(2, &mut Srpt::new(), &mut arrivals, RunConfig::new(10));
//! assert_eq!(run.completions.len(), 1);
//! assert_eq!(run.delivered_packets, 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrivals;
pub mod fastforward;
pub mod fig1;
pub mod lyapunov;
mod switch;

pub use arrivals::{ArrivalLookahead, ScriptedArrivals};
pub use fastforward::{
    run_fastforward, run_fastforward_probed, run_probed_with_engine, run_with_engine, Engine,
};
pub use switch::{
    run, run_probed, CompletedFlow, RunConfig, SlotOutcome, SlottedSwitch, SwitchRun,
};
