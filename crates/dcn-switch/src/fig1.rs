//! The paper's Fig.-1 motivating scenario: three flows, two bottlenecks.
//!
//! * `f1`: 5 packets, host A → host B, ready at slot 0;
//! * `f2`: 1 packet, host A → host C (shares its *source* with `f1`),
//!   ready at slot 0;
//! * `f3`: 1 packet, host D → host B (shares its *destination* with `f1`),
//!   arrives one slot later.
//!
//! Under SRPT the two one-packet flows preempt `f1` in consecutive slots
//! even though they never overlap, so after 6 slots one `f1` packet is
//! stranded (Fig. 1b). A backlog-aware scheduler gives slot 0 to `f1`,
//! lets `f2`/`f3` share one slot (they don't conflict), and finishes all
//! three flows in the same 6 slots (Fig. 1c).

use crate::arrivals::ScriptedArrivals;
use crate::fastforward::{run_with_engine, Engine};
use crate::{RunConfig, SwitchRun};
use basrpt_core::Scheduler;
use dcn_types::{HostId, Voq};

/// Port indices of the scenario (4-port switch: A, B, C, D).
pub const HOST_A: HostId = HostId::new(0);
/// Destination shared by `f1` and `f3`.
pub const HOST_B: HostId = HostId::new(1);
/// Destination of `f2`.
pub const HOST_C: HostId = HostId::new(2);
/// Source of `f3`.
pub const HOST_D: HostId = HostId::new(3);

/// Number of slots in the walk-through (the paper's 6 slots).
pub const HORIZON_SLOTS: u64 = 6;

/// Total packets offered (5 + 1 + 1).
pub const TOTAL_PACKETS: u64 = 7;

/// The scripted arrival process of the scenario.
///
/// `f1` and `f2` are ready at the very beginning, which the slotted model
/// expresses as arrivals at the end of a virtual pre-slot; [`run_fig1`]
/// therefore scripts them at slot 0 of a one-slot warm-up prefix. To keep
/// the public behaviour simple this function scripts all three flows as
/// end-of-slot arrivals: `f1`, `f2` at the end of slot 0 (eligible from
/// slot 1) and `f3` at the end of slot 1 (eligible from slot 2), and
/// [`run_fig1`] runs `HORIZON_SLOTS + 1` slots so that exactly 6 usable
/// slots follow `f1`/`f2`'s arrival.
pub fn arrivals() -> ScriptedArrivals {
    ScriptedArrivals::new(vec![
        (0, Voq::new(HOST_A, HOST_B), 5), // f1
        (0, Voq::new(HOST_A, HOST_C), 1), // f2
        (1, Voq::new(HOST_D, HOST_B), 1), // f3
    ])
}

/// Runs the Fig.-1 scenario under the given scheduler and returns the run
/// (6 usable slots after `f1`/`f2` become eligible).
///
/// Honours `BASRPT_ENGINE=fastforward` like the bench harness does; both
/// engines produce the identical run.
pub fn run_fig1<S: Scheduler + ?Sized>(scheduler: &mut S) -> SwitchRun {
    let mut arr = arrivals();
    let config = RunConfig {
        slots: HORIZON_SLOTS + 1,
        sample_every: 1,
    };
    run_with_engine(Engine::from_env(), 4, scheduler, &mut arr, config)
}

/// Packets left stranded by the scheduler after the 6-slot horizon.
pub fn leftover_packets(run: &SwitchRun) -> u64 {
    run.leftover_packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use basrpt_core::{ExactBasrpt, FastBasrpt, Srpt, ThresholdBacklogSrpt};

    /// The headline claim of §II-B: SRPT strands one packet of `f1`.
    #[test]
    fn srpt_strands_one_packet() {
        let run = run_fig1(&mut Srpt::new());
        assert_eq!(run.leftover_packets, 1, "SRPT must leave 1 packet");
        assert_eq!(run.leftover_flows, 1);
        assert_eq!(run.delivered_packets, TOTAL_PACKETS - 1);
        // f2 and f3 complete with FCT 1 slot each.
        let small_fcts: Vec<u64> = run
            .completions
            .iter()
            .filter(|c| c.size == 1)
            .map(|c| c.fct_slots())
            .collect();
        assert_eq!(small_fcts, vec![1, 1]);
    }

    /// Exact BASRPT with V in (2/3, 1) reproduces Fig. 1(c) exactly:
    /// slot 1 to f1, slot 2 shared by f2 and f3, all flows done in 6 slots.
    #[test]
    fn exact_basrpt_completes_everything() {
        let run = run_fig1(&mut ExactBasrpt::new(0.8));
        assert_eq!(run.leftover_packets, 0);
        assert_eq!(run.delivered_packets, TOTAL_PACKETS);
        assert_eq!(run.completions.len(), 3);
        // f1 finishes by the end of the horizon with FCT 6.
        let f1 = run
            .completions
            .iter()
            .find(|c| c.size == 5)
            .expect("f1 completes");
        assert_eq!(f1.fct_slots(), 6);
        // One short flow pays the single slot of extra delay the paper
        // accepts: f2 waits for f1's first packet and finishes in slot 2
        // (FCT 2), while f3 is served in its first eligible slot (FCT 1).
        let f2 = run
            .completions
            .iter()
            .find(|c| c.voq.dst() == HOST_C)
            .expect("f2 completes");
        assert_eq!(f2.fct_slots(), 2);
        let f3 = run
            .completions
            .iter()
            .find(|c| c.voq.src() == HOST_D)
            .expect("f3 completes");
        assert_eq!(f3.fct_slots(), 1);
    }

    /// Fast BASRPT (V < N) also clears all packets within the horizon,
    /// though in a different order than the exact scheduler.
    #[test]
    fn fast_basrpt_completes_everything() {
        let run = run_fig1(&mut FastBasrpt::new(0.8, 4));
        assert_eq!(run.leftover_packets, 0);
        assert_eq!(run.delivered_packets, TOTAL_PACKETS);
    }

    /// The threshold strategy of Fig. 2 stabilizes the example too.
    #[test]
    fn threshold_strategy_completes_everything() {
        let run = run_fig1(&mut ThresholdBacklogSrpt::new(2));
        assert_eq!(run.leftover_packets, 0);
    }

    /// The backlog-aware gain claimed in §II-B: throughput improves by
    /// 1/6 pkt/slot relative to SRPT over the 6 usable slots.
    #[test]
    fn backlog_aware_throughput_gain_is_one_sixth() {
        let srpt = run_fig1(&mut Srpt::new());
        let basrpt = run_fig1(&mut ExactBasrpt::new(0.8));
        let gain =
            (basrpt.delivered_packets - srpt.delivered_packets) as f64 / HORIZON_SLOTS as f64;
        assert!((gain - 1.0 / 6.0).abs() < 1e-12);
    }
}
