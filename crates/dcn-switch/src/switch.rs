//! The slotted switch and its simulation driver.

use crate::arrivals::SlotArrivals;
use basrpt_core::{FlowState, FlowTable, Scheduler};
use dcn_metrics::TimeSeries;
use dcn_probe::{
    ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Fanout, NoProbe, Probe, SampleEvent,
};
use dcn_types::{FlowId, HostId, Slot, Voq};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// A flow that finished transferring in the slotted model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedFlow {
    /// The flow's identifier.
    pub id: FlowId,
    /// Its VOQ.
    pub voq: Voq,
    /// Original size in packets.
    pub size: u64,
    /// First slot in which the flow was eligible to transmit (arrivals land
    /// at the end of a slot, so an arrival during slot `t` has
    /// `arrival = t + 1`; flows injected before the run have `arrival = 0`).
    pub arrival: Slot,
    /// Slot during which the final packet was transmitted.
    pub completion: Slot,
}

impl CompletedFlow {
    /// Flow completion time in slots: the flow occupies the system from the
    /// start of `arrival` through the end of `completion`, inclusive.
    pub fn fct_slots(&self) -> u64 {
        self.completion.index() - self.arrival.index() + 1
    }
}

/// What happened during a single slot.
#[derive(Debug, Clone, Default)]
pub struct SlotOutcome {
    /// Packets transmitted this slot (= matched non-empty VOQs).
    pub transmitted: u64,
    /// Flows that completed this slot.
    pub completions: Vec<CompletedFlow>,
    /// Flows admitted at the end of this slot as `(id, voq, packets)`,
    /// with the switch-assigned identifiers (eligible from the next slot).
    pub admitted: Vec<(FlowId, Voq, u64)>,
}

/// The `N × N` input-queued switch with slotted time (§III-B).
///
/// Call [`SlottedSwitch::step`] once per slot: it asks the scheduler for a
/// matching over the current queues, transmits one packet per matched flow,
/// and applies end-of-slot arrivals — implementing Eq. (1) exactly
/// (the `L_ij` rectification never fires because schedulers only match
/// non-empty VOQs, which is the work-conserving special case).
///
/// # Example
///
/// ```
/// use basrpt_core::Srpt;
/// use dcn_switch::SlottedSwitch;
/// use dcn_types::{HostId, Voq};
///
/// let mut sw = SlottedSwitch::new(2);
/// sw.inject(Voq::new(HostId::new(0), HostId::new(1)), 3);
/// let mut srpt = Srpt::new();
/// let outcome = sw.step(&mut srpt, Vec::new());
/// assert_eq!(outcome.transmitted, 1);
/// assert_eq!(sw.table().total_backlog(), 2);
/// ```
#[derive(Debug)]
pub struct SlottedSwitch {
    num_ports: u32,
    table: FlowTable,
    now: Slot,
    next_id: u64,
    arrival_slots: HashMap<FlowId, Slot>,
}

impl SlottedSwitch {
    /// Creates an empty switch with `num_ports` ingress/egress ports.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    pub fn new(num_ports: u32) -> Self {
        assert!(num_ports > 0, "switch needs at least one port");
        SlottedSwitch {
            num_ports,
            table: FlowTable::new(),
            now: Slot::ZERO,
            next_id: 0,
            arrival_slots: HashMap::new(),
        }
    }

    /// Number of ports `N`.
    pub fn num_ports(&self) -> u32 {
        self.num_ports
    }

    /// The current slot (the one about to be executed by [`Self::step`]).
    pub fn now(&self) -> Slot {
        self.now
    }

    /// The active flows.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Injects a flow of `packets` packets that is eligible to transmit in
    /// the current slot (flows injected before the first step count their
    /// FCT from slot 0, matching the paper's "ready at the beginning of
    /// slot 1" convention in Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if the VOQ's ports are outside the switch, the VOQ is a
    /// self-loop, or `packets` is zero.
    pub fn inject(&mut self, voq: Voq, packets: u64) -> FlowId {
        assert!(
            voq.src().index() < self.num_ports && voq.dst().index() < self.num_ports,
            "{voq} outside a {0}-port switch",
            self.num_ports
        );
        assert!(!voq.is_self_loop(), "self-loop {voq} not allowed");
        let id = FlowId::new(self.next_id);
        self.next_id += 1;
        self.table
            .insert(FlowState::new(id, voq, packets))
            .expect("ids are unique by construction");
        self.arrival_slots.insert(id, self.now);
        id
    }

    /// Executes one slot: schedule → transmit one packet per matched flow →
    /// apply `arrivals` at the end of the slot → advance the clock.
    pub fn step<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        arrivals: Vec<(Voq, u64)>,
    ) -> SlotOutcome {
        let schedule = scheduler.schedule(&self.table);
        self.step_with_schedule(&schedule, arrivals)
    }

    /// Executes one slot with an externally computed schedule (used by the
    /// driver to observe the decision, e.g. for the penalty `ȳ(t)`, without
    /// invoking a stateful scheduler twice).
    ///
    /// # Panics
    ///
    /// Panics if the schedule references flows that are not active.
    pub fn step_with_schedule(
        &mut self,
        schedule: &basrpt_core::Schedule,
        arrivals: Vec<(Voq, u64)>,
    ) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        for (id, voq) in schedule.iter() {
            let drained = self.table.drain(id, 1).expect("scheduled flows are active");
            debug_assert_eq!(drained.drained, 1, "matched VOQs are non-empty");
            outcome.transmitted += 1;
            if let Some(done) = drained.completed {
                let arrival = self
                    .arrival_slots
                    .remove(&id)
                    .expect("every active flow has an arrival slot");
                outcome.completions.push(CompletedFlow {
                    id,
                    voq,
                    size: done.size(),
                    arrival,
                    completion: self.now,
                });
            }
        }
        // End-of-slot arrivals become eligible in the next slot.
        self.now = self.now.next();
        for (voq, packets) in arrivals {
            let id = FlowId::new(self.next_id);
            self.next_id += 1;
            self.table
                .insert(FlowState::new(id, voq, packets))
                .expect("ids are unique by construction");
            self.arrival_slots.insert(id, self.now);
            outcome.admitted.push((id, voq, packets));
        }
        outcome
    }

    /// Executes `k` consecutive slots under one fixed schedule in a single
    /// table operation per flow (one `drain(id, k)` — hence one change-log
    /// entry — instead of `k`). Used by the fast-forward engine, which
    /// guarantees that `k` never exceeds the remaining size of any
    /// scheduled flow, so a completion can only happen in the *last* slot
    /// of the window; the recorded completion slot reflects that.
    /// `arrivals` land at the end of the window's last slot, exactly as if
    /// polled in that slot by [`Self::step_with_schedule`].
    pub(crate) fn advance_window(
        &mut self,
        schedule: &basrpt_core::Schedule,
        k: u64,
        arrivals: Vec<(Voq, u64)>,
    ) -> SlotOutcome {
        debug_assert!(k >= 1, "a window spans at least one slot");
        let last = Slot::new(self.now.index() + k - 1);
        let mut outcome = SlotOutcome::default();
        for (id, voq) in schedule.iter() {
            let drained = self.table.drain(id, k).expect("scheduled flows are active");
            debug_assert_eq!(drained.drained, k, "window never overshoots a flow");
            outcome.transmitted += k;
            if let Some(done) = drained.completed {
                let arrival = self
                    .arrival_slots
                    .remove(&id)
                    .expect("every active flow has an arrival slot");
                outcome.completions.push(CompletedFlow {
                    id,
                    voq,
                    size: done.size(),
                    arrival,
                    completion: last,
                });
            }
        }
        self.now = last.next();
        for (voq, packets) in arrivals {
            let id = FlowId::new(self.next_id);
            self.next_id += 1;
            self.table
                .insert(FlowState::new(id, voq, packets))
                .expect("ids are unique by construction");
            self.arrival_slots.insert(id, self.now);
            outcome.admitted.push((id, voq, packets));
        }
        outcome
    }
}

/// Configuration of a slotted simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of slots to execute.
    pub slots: u64,
    /// Sampling period (in slots) for the recorded time series.
    pub sample_every: u64,
}

impl RunConfig {
    /// A run of `slots` slots sampling roughly 1000 points.
    pub fn new(slots: u64) -> Self {
        RunConfig {
            slots,
            sample_every: (slots / 1000).max(1),
        }
    }
}

/// The measurements collected by [`run`].
#[derive(Debug, Clone)]
pub struct SwitchRun {
    /// All completed flows, in completion order.
    pub completions: Vec<CompletedFlow>,
    /// Total packets delivered.
    pub delivered_packets: u64,
    /// Total backlog (packets) sampled over time (seconds = slots here; the
    /// time axis is the slot index).
    pub total_backlog: TimeSeries,
    /// Backlog of the most loaded ingress port at each sample instant.
    pub max_port_backlog: TimeSeries,
    /// Quadratic Lyapunov function `L(X) = ½ Σ X_ij²` sampled over time.
    pub lyapunov: TimeSeries,
    /// Packets left in queues when the run ended.
    pub leftover_packets: u64,
    /// Flows left uncompleted when the run ended.
    pub leftover_flows: usize,
    /// Time-average of the penalty `ȳ(t)` (mean remaining size of the
    /// scheduled flows), over slots with a non-empty schedule.
    pub avg_penalty: f64,
    /// Time-average total backlog `Σ_ij X_ij` over all slots.
    pub avg_total_backlog: f64,
}

/// The internal probe filling [`SwitchRun`]'s time series, mirroring the
/// sampling the slotted loop has always done: total backlog, the most
/// loaded ingress port (scanned over all `num_ports` ports), and the
/// quadratic Lyapunov function, all on the slot-index time axis.
#[derive(Debug)]
pub(crate) struct SwitchSampler {
    num_ports: u32,
    pub(crate) total_backlog: TimeSeries,
    pub(crate) max_port_backlog: TimeSeries,
    pub(crate) lyapunov: TimeSeries,
}

impl SwitchSampler {
    pub(crate) fn new(num_ports: u32) -> Self {
        SwitchSampler {
            num_ports,
            total_backlog: TimeSeries::new(),
            max_port_backlog: TimeSeries::new(),
            lyapunov: TimeSeries::new(),
        }
    }
}

impl Probe for SwitchSampler {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn wants_slot_fidelity(&self) -> bool {
        // Only listens to samples, which fast-forward windows never skip.
        false
    }

    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        let secs = event.time;
        self.total_backlog
            .push(secs, event.table.total_backlog() as f64);
        let max_port = (0..self.num_ports)
            .map(|p| event.table.ingress_backlog(HostId::new(p)))
            .max()
            .unwrap_or(0);
        self.max_port_backlog.push(secs, max_port as f64);
        self.lyapunov
            .push(secs, crate::lyapunov::lyapunov_value(event.table));
    }
}

/// Runs a slotted simulation of `num_ports` ports for `config.slots` slots,
/// feeding arrivals from `arrivals` and scheduling with `scheduler`.
///
/// A thin wrapper over [`run_probed`] with no observer attached.
pub fn run<S: Scheduler + ?Sized, A: SlotArrivals + ?Sized>(
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
) -> SwitchRun {
    run_probed(num_ports, scheduler, arrivals, config, NoProbe)
}

/// Like [`run`], but additionally streams every event of the run to
/// `probe` — arrivals and per-packet drains, completions with their slot
/// FCTs, scheduling decisions (with wall latency if the probe asks for
/// it), and the pre-step samples that also fill [`SwitchRun`]'s series.
///
/// Timestamps are slot indices; sizes are packets. Pass `&mut probe` to
/// keep ownership and read the observations afterwards.
///
/// # Example
///
/// ```
/// use basrpt_core::Srpt;
/// use dcn_probe::EventCounterProbe;
/// use dcn_switch::{run_probed, RunConfig, ScriptedArrivals};
/// use dcn_types::{HostId, Voq};
///
/// let mut arrivals =
///     ScriptedArrivals::new(vec![(0, Voq::new(HostId::new(0), HostId::new(1)), 3)]);
/// let mut counter = EventCounterProbe::new();
/// let run = run_probed(2, &mut Srpt::new(), &mut arrivals, RunConfig::new(10), &mut counter);
/// assert_eq!(counter.drained_units(), run.delivered_packets);
/// assert_eq!(counter.completions() as usize, run.completions.len());
/// ```
pub fn run_probed<S: Scheduler + ?Sized, A: SlotArrivals + ?Sized, P: Probe>(
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
    probe: P,
) -> SwitchRun {
    let mut switch = SlottedSwitch::new(num_ports);
    let mut sampler = SwitchSampler::new(num_ports);
    let mut fan = Fanout::new(&mut sampler, probe);
    let mut completions = Vec::new();
    let mut delivered = 0u64;
    let mut penalty_sum = 0.0;
    let mut penalty_slots = 0u64;
    // Summed in integers (u128 so even u64::MAX-sized backlogs over any
    // horizon cannot overflow) and converted to f64 once at the end, so
    // the fast-forward engine's closed-form window sums reproduce it bit
    // for bit.
    let mut backlog_sum: u128 = 0;

    for t in 0..config.slots {
        let slot = Slot::new(t);
        let now = t as f64;
        // Sample the pre-step state.
        if t % config.sample_every == 0 {
            fan.on_sample(&SampleEvent {
                time: now,
                table: switch.table(),
                delivered: delivered as f64,
            });
        }
        backlog_sum += switch.table().total_backlog() as u128;

        let started = fan.wants_decision_timing().then(Instant::now);
        let schedule = scheduler.schedule(switch.table());
        let latency = started.map(|s| s.elapsed());
        fan.on_decision(&DecisionEvent {
            time: now,
            schedule: &schedule,
            latency,
        });

        // Penalty ȳ(t) is the mean remaining size of the scheduled flows,
        // observed before the transmit.
        if !schedule.is_empty() {
            let total: u64 = schedule
                .flow_ids()
                .map(|id| switch.table().get(id).expect("scheduled flow").remaining())
                .sum();
            penalty_sum += total as f64 / schedule.len() as f64;
            penalty_slots += 1;
        }

        let outcome = switch.step_with_schedule(&schedule, arrivals.poll(slot));
        for (id, voq) in schedule.iter() {
            fan.on_drain(&DrainEvent {
                time: now,
                flow: id,
                voq,
                amount: 1,
            });
        }
        for done in &outcome.completions {
            fan.on_completion(&CompletionEvent {
                time: now,
                flow: done.id,
                voq: done.voq,
                size: done.size,
                fct: done.fct_slots() as f64,
            });
        }
        for &(id, voq, packets) in &outcome.admitted {
            // Admitted at the end of slot `t`, eligible from `t + 1`.
            fan.on_arrival(&ArrivalEvent {
                time: now + 1.0,
                flow: id,
                voq,
                size: packets,
            });
        }
        delivered += outcome.transmitted;
        completions.extend(outcome.completions);
    }
    drop(fan);

    SwitchRun {
        completions,
        delivered_packets: delivered,
        total_backlog: sampler.total_backlog,
        max_port_backlog: sampler.max_port_backlog,
        lyapunov: sampler.lyapunov,
        leftover_packets: switch.table().total_backlog(),
        leftover_flows: switch.table().len(),
        avg_penalty: if penalty_slots > 0 {
            penalty_sum / penalty_slots as f64
        } else {
            0.0
        },
        avg_total_backlog: backlog_sum as f64 / config.slots.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ScriptedArrivals;
    use basrpt_core::Srpt;
    use dcn_types::HostId;

    fn voq(src: u32, dst: u32) -> Voq {
        Voq::new(HostId::new(src), HostId::new(dst))
    }

    #[test]
    fn single_flow_drains_one_packet_per_slot() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(0, 1), 3);
        let mut srpt = Srpt::new();
        for expected in [2, 1, 0] {
            let out = sw.step(&mut srpt, Vec::new());
            assert_eq!(out.transmitted, 1);
            assert_eq!(sw.table().total_backlog(), expected);
        }
        let out = sw.step(&mut srpt, Vec::new());
        assert_eq!(out.transmitted, 0);
    }

    #[test]
    fn completion_records_fct() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(0, 1), 2);
        let mut srpt = Srpt::new();
        let _ = sw.step(&mut srpt, Vec::new());
        let out = sw.step(&mut srpt, Vec::new());
        assert_eq!(out.completions.len(), 1);
        let done = out.completions[0];
        assert_eq!(done.size, 2);
        // Eligible from slot 0, finished during slot 1: FCT = 2 slots.
        assert_eq!(done.arrival, Slot::new(0));
        assert_eq!(done.completion, Slot::new(1));
        assert_eq!(done.fct_slots(), 2);
    }

    #[test]
    fn arrivals_join_at_end_of_slot() {
        let mut sw = SlottedSwitch::new(2);
        let mut srpt = Srpt::new();
        // Arrival during slot 0 cannot transmit until slot 1.
        let out = sw.step(&mut srpt, vec![(voq(0, 1), 1)]);
        assert_eq!(out.transmitted, 0);
        assert_eq!(sw.table().total_backlog(), 1);
        let out = sw.step(&mut srpt, Vec::new());
        assert_eq!(out.transmitted, 1);
        assert_eq!(out.completions[0].fct_slots(), 1);
    }

    #[test]
    fn crossbar_limits_one_packet_per_port() {
        let mut sw = SlottedSwitch::new(3);
        sw.inject(voq(0, 1), 5);
        sw.inject(voq(0, 2), 5); // same ingress
        sw.inject(voq(2, 1), 5); // same egress as the first
        let mut srpt = Srpt::new();
        let out = sw.step(&mut srpt, Vec::new());
        // Only one of (0,1)/(0,2) and one of (0,1)/(2,1) can go; max 2 total.
        assert!(out.transmitted <= 2);
        assert!(out.transmitted >= 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn inject_rejects_out_of_range_port() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(0, 5), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn inject_rejects_self_loop() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(1, 1), 1);
    }

    #[test]
    fn run_delivers_everything_for_light_scripted_load() {
        let mut arrivals = ScriptedArrivals::new(vec![
            (0, voq(0, 1), 3),
            (0, voq(1, 0), 2),
            (5, voq(0, 1), 1),
        ]);
        let run = run(2, &mut Srpt::new(), &mut arrivals, RunConfig::new(20));
        assert_eq!(run.delivered_packets, 6);
        assert_eq!(run.completions.len(), 3);
        assert_eq!(run.leftover_packets, 0);
        assert_eq!(run.leftover_flows, 0);
        assert!(run.avg_penalty > 0.0);
        assert!(!run.total_backlog.is_empty());
    }

    #[test]
    fn run_probed_observes_every_event_without_perturbing() {
        use dcn_probe::EventCounterProbe;
        let script = vec![
            (0u64, voq(0, 1), 3u64),
            (0, voq(1, 0), 2),
            (5, voq(0, 1), 1),
        ];
        let bare = run(
            2,
            &mut Srpt::new(),
            &mut ScriptedArrivals::new(script.clone()),
            RunConfig::new(20),
        );
        let mut counter = EventCounterProbe::new();
        let observed = run_probed(
            2,
            &mut Srpt::new(),
            &mut ScriptedArrivals::new(script),
            RunConfig::new(20),
            &mut counter,
        );
        // The observer sees everything...
        assert_eq!(counter.arrivals(), 3);
        assert_eq!(counter.arrived_units(), 6);
        assert_eq!(counter.drained_units(), observed.delivered_packets);
        assert_eq!(counter.completions() as usize, observed.completions.len());
        assert_eq!(counter.decisions(), 20);
        assert_eq!(
            counter.samples() as usize,
            observed.total_backlog.len(),
            "one sample event per recorded point"
        );
        assert_eq!(counter.decision_latency().count(), 20);
        // ...and changes nothing.
        assert_eq!(bare.delivered_packets, observed.delivered_packets);
        assert_eq!(bare.completions, observed.completions);
        assert_eq!(bare.total_backlog, observed.total_backlog);
        assert_eq!(bare.lyapunov, observed.lyapunov);
        assert_eq!(bare.avg_penalty, observed.avg_penalty);
    }

    #[test]
    fn slot_outcome_reports_admitted_flow_ids() {
        let mut sw = SlottedSwitch::new(2);
        let mut srpt = Srpt::new();
        let out = sw.step(&mut srpt, vec![(voq(0, 1), 4)]);
        assert_eq!(out.admitted.len(), 1);
        let (id, q, packets) = out.admitted[0];
        assert_eq!(q, voq(0, 1));
        assert_eq!(packets, 4);
        assert!(sw.table().get(id).is_some());
    }

    #[test]
    fn run_counts_leftovers() {
        // More packets than 3 slots can carry.
        let mut arrivals = ScriptedArrivals::new(vec![(0, voq(0, 1), 10)]);
        let run = run(2, &mut Srpt::new(), &mut arrivals, RunConfig::new(3));
        assert_eq!(run.delivered_packets, 2); // slots 1 and 2 (arrival at end of 0)
        assert_eq!(run.leftover_packets, 8);
        assert_eq!(run.leftover_flows, 1);
    }
}
