//! The slotted switch and its simulation driver.

use crate::arrivals::SlotArrivals;
use basrpt_core::{FlowState, FlowTable, Scheduler};
use dcn_metrics::TimeSeries;
use dcn_types::{FlowId, Slot, Voq};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A flow that finished transferring in the slotted model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedFlow {
    /// The flow's identifier.
    pub id: FlowId,
    /// Its VOQ.
    pub voq: Voq,
    /// Original size in packets.
    pub size: u64,
    /// First slot in which the flow was eligible to transmit (arrivals land
    /// at the end of a slot, so an arrival during slot `t` has
    /// `arrival = t + 1`; flows injected before the run have `arrival = 0`).
    pub arrival: Slot,
    /// Slot during which the final packet was transmitted.
    pub completion: Slot,
}

impl CompletedFlow {
    /// Flow completion time in slots: the flow occupies the system from the
    /// start of `arrival` through the end of `completion`, inclusive.
    pub fn fct_slots(&self) -> u64 {
        self.completion.index() - self.arrival.index() + 1
    }
}

/// What happened during a single slot.
#[derive(Debug, Clone, Default)]
pub struct SlotOutcome {
    /// Packets transmitted this slot (= matched non-empty VOQs).
    pub transmitted: u64,
    /// Flows that completed this slot.
    pub completions: Vec<CompletedFlow>,
}

/// The `N × N` input-queued switch with slotted time (§III-B).
///
/// Call [`SlottedSwitch::step`] once per slot: it asks the scheduler for a
/// matching over the current queues, transmits one packet per matched flow,
/// and applies end-of-slot arrivals — implementing Eq. (1) exactly
/// (the `L_ij` rectification never fires because schedulers only match
/// non-empty VOQs, which is the work-conserving special case).
///
/// # Example
///
/// ```
/// use basrpt_core::Srpt;
/// use dcn_switch::SlottedSwitch;
/// use dcn_types::{HostId, Voq};
///
/// let mut sw = SlottedSwitch::new(2);
/// sw.inject(Voq::new(HostId::new(0), HostId::new(1)), 3);
/// let mut srpt = Srpt::new();
/// let outcome = sw.step(&mut srpt, Vec::new());
/// assert_eq!(outcome.transmitted, 1);
/// assert_eq!(sw.table().total_backlog(), 2);
/// ```
#[derive(Debug)]
pub struct SlottedSwitch {
    num_ports: u32,
    table: FlowTable,
    now: Slot,
    next_id: u64,
    arrival_slots: HashMap<FlowId, Slot>,
}

impl SlottedSwitch {
    /// Creates an empty switch with `num_ports` ingress/egress ports.
    ///
    /// # Panics
    ///
    /// Panics if `num_ports` is zero.
    pub fn new(num_ports: u32) -> Self {
        assert!(num_ports > 0, "switch needs at least one port");
        SlottedSwitch {
            num_ports,
            table: FlowTable::new(),
            now: Slot::ZERO,
            next_id: 0,
            arrival_slots: HashMap::new(),
        }
    }

    /// Number of ports `N`.
    pub fn num_ports(&self) -> u32 {
        self.num_ports
    }

    /// The current slot (the one about to be executed by [`Self::step`]).
    pub fn now(&self) -> Slot {
        self.now
    }

    /// The active flows.
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Injects a flow of `packets` packets that is eligible to transmit in
    /// the current slot (flows injected before the first step count their
    /// FCT from slot 0, matching the paper's "ready at the beginning of
    /// slot 1" convention in Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if the VOQ's ports are outside the switch, the VOQ is a
    /// self-loop, or `packets` is zero.
    pub fn inject(&mut self, voq: Voq, packets: u64) -> FlowId {
        assert!(
            voq.src().index() < self.num_ports && voq.dst().index() < self.num_ports,
            "{voq} outside a {0}-port switch",
            self.num_ports
        );
        assert!(!voq.is_self_loop(), "self-loop {voq} not allowed");
        let id = FlowId::new(self.next_id);
        self.next_id += 1;
        self.table
            .insert(FlowState::new(id, voq, packets))
            .expect("ids are unique by construction");
        self.arrival_slots.insert(id, self.now);
        id
    }

    /// Executes one slot: schedule → transmit one packet per matched flow →
    /// apply `arrivals` at the end of the slot → advance the clock.
    pub fn step<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &mut S,
        arrivals: Vec<(Voq, u64)>,
    ) -> SlotOutcome {
        let schedule = scheduler.schedule(&self.table);
        self.step_with_schedule(&schedule, arrivals)
    }

    /// Executes one slot with an externally computed schedule (used by the
    /// driver to observe the decision, e.g. for the penalty `ȳ(t)`, without
    /// invoking a stateful scheduler twice).
    ///
    /// # Panics
    ///
    /// Panics if the schedule references flows that are not active.
    pub fn step_with_schedule(
        &mut self,
        schedule: &basrpt_core::Schedule,
        arrivals: Vec<(Voq, u64)>,
    ) -> SlotOutcome {
        let mut outcome = SlotOutcome::default();
        for (id, voq) in schedule.iter() {
            let drained = self.table.drain(id, 1).expect("scheduled flows are active");
            debug_assert_eq!(drained.drained, 1, "matched VOQs are non-empty");
            outcome.transmitted += 1;
            if let Some(done) = drained.completed {
                let arrival = self
                    .arrival_slots
                    .remove(&id)
                    .expect("every active flow has an arrival slot");
                outcome.completions.push(CompletedFlow {
                    id,
                    voq,
                    size: done.size(),
                    arrival,
                    completion: self.now,
                });
            }
        }
        // End-of-slot arrivals become eligible in the next slot.
        self.now = self.now.next();
        for (voq, packets) in arrivals {
            let id = FlowId::new(self.next_id);
            self.next_id += 1;
            self.table
                .insert(FlowState::new(id, voq, packets))
                .expect("ids are unique by construction");
            self.arrival_slots.insert(id, self.now);
        }
        outcome
    }
}

/// Configuration of a slotted simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of slots to execute.
    pub slots: u64,
    /// Sampling period (in slots) for the recorded time series.
    pub sample_every: u64,
}

impl RunConfig {
    /// A run of `slots` slots sampling roughly 1000 points.
    pub fn new(slots: u64) -> Self {
        RunConfig {
            slots,
            sample_every: (slots / 1000).max(1),
        }
    }
}

/// The measurements collected by [`run`].
#[derive(Debug, Clone)]
pub struct SwitchRun {
    /// All completed flows, in completion order.
    pub completions: Vec<CompletedFlow>,
    /// Total packets delivered.
    pub delivered_packets: u64,
    /// Total backlog (packets) sampled over time (seconds = slots here; the
    /// time axis is the slot index).
    pub total_backlog: TimeSeries,
    /// Backlog of the most loaded ingress port at each sample instant.
    pub max_port_backlog: TimeSeries,
    /// Quadratic Lyapunov function `L(X) = ½ Σ X_ij²` sampled over time.
    pub lyapunov: TimeSeries,
    /// Packets left in queues when the run ended.
    pub leftover_packets: u64,
    /// Flows left uncompleted when the run ended.
    pub leftover_flows: usize,
    /// Time-average of the penalty `ȳ(t)` (mean remaining size of the
    /// scheduled flows), over slots with a non-empty schedule.
    pub avg_penalty: f64,
    /// Time-average total backlog `Σ_ij X_ij` over all slots.
    pub avg_total_backlog: f64,
}

/// Runs a slotted simulation of `num_ports` ports for `config.slots` slots,
/// feeding arrivals from `arrivals` and scheduling with `scheduler`.
pub fn run<S: Scheduler + ?Sized, A: SlotArrivals + ?Sized>(
    num_ports: u32,
    scheduler: &mut S,
    arrivals: &mut A,
    config: RunConfig,
) -> SwitchRun {
    let mut switch = SlottedSwitch::new(num_ports);
    let mut completions = Vec::new();
    let mut delivered = 0u64;
    let mut total_backlog = TimeSeries::new();
    let mut max_port_backlog = TimeSeries::new();
    let mut lyapunov = TimeSeries::new();
    let mut penalty_sum = 0.0;
    let mut penalty_slots = 0u64;
    let mut backlog_sum = 0.0;

    for t in 0..config.slots {
        let slot = Slot::new(t);
        // Sample the pre-step state.
        if t % config.sample_every == 0 {
            let secs = t as f64;
            total_backlog.push(secs, switch.table().total_backlog() as f64);
            let max_port = (0..num_ports)
                .map(|p| switch.table().ingress_backlog(dcn_types::HostId::new(p)))
                .max()
                .unwrap_or(0);
            max_port_backlog.push(secs, max_port as f64);
            lyapunov.push(secs, crate::lyapunov::lyapunov_value(switch.table()));
        }
        backlog_sum += switch.table().total_backlog() as f64;

        // Penalty ȳ(t) is the mean remaining size of the scheduled flows,
        // observed before the transmit.
        let schedule = scheduler.schedule(switch.table());
        if !schedule.is_empty() {
            let total: u64 = schedule
                .flow_ids()
                .map(|id| switch.table().get(id).expect("scheduled flow").remaining())
                .sum();
            penalty_sum += total as f64 / schedule.len() as f64;
            penalty_slots += 1;
        }

        let outcome = switch.step_with_schedule(&schedule, arrivals.poll(slot));
        delivered += outcome.transmitted;
        completions.extend(outcome.completions);
    }

    SwitchRun {
        completions,
        delivered_packets: delivered,
        total_backlog,
        max_port_backlog,
        lyapunov,
        leftover_packets: switch.table().total_backlog(),
        leftover_flows: switch.table().len(),
        avg_penalty: if penalty_slots > 0 {
            penalty_sum / penalty_slots as f64
        } else {
            0.0
        },
        avg_total_backlog: backlog_sum / config.slots.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ScriptedArrivals;
    use basrpt_core::Srpt;
    use dcn_types::HostId;

    fn voq(src: u32, dst: u32) -> Voq {
        Voq::new(HostId::new(src), HostId::new(dst))
    }

    #[test]
    fn single_flow_drains_one_packet_per_slot() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(0, 1), 3);
        let mut srpt = Srpt::new();
        for expected in [2, 1, 0] {
            let out = sw.step(&mut srpt, Vec::new());
            assert_eq!(out.transmitted, 1);
            assert_eq!(sw.table().total_backlog(), expected);
        }
        let out = sw.step(&mut srpt, Vec::new());
        assert_eq!(out.transmitted, 0);
    }

    #[test]
    fn completion_records_fct() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(0, 1), 2);
        let mut srpt = Srpt::new();
        let _ = sw.step(&mut srpt, Vec::new());
        let out = sw.step(&mut srpt, Vec::new());
        assert_eq!(out.completions.len(), 1);
        let done = out.completions[0];
        assert_eq!(done.size, 2);
        // Eligible from slot 0, finished during slot 1: FCT = 2 slots.
        assert_eq!(done.arrival, Slot::new(0));
        assert_eq!(done.completion, Slot::new(1));
        assert_eq!(done.fct_slots(), 2);
    }

    #[test]
    fn arrivals_join_at_end_of_slot() {
        let mut sw = SlottedSwitch::new(2);
        let mut srpt = Srpt::new();
        // Arrival during slot 0 cannot transmit until slot 1.
        let out = sw.step(&mut srpt, vec![(voq(0, 1), 1)]);
        assert_eq!(out.transmitted, 0);
        assert_eq!(sw.table().total_backlog(), 1);
        let out = sw.step(&mut srpt, Vec::new());
        assert_eq!(out.transmitted, 1);
        assert_eq!(out.completions[0].fct_slots(), 1);
    }

    #[test]
    fn crossbar_limits_one_packet_per_port() {
        let mut sw = SlottedSwitch::new(3);
        sw.inject(voq(0, 1), 5);
        sw.inject(voq(0, 2), 5); // same ingress
        sw.inject(voq(2, 1), 5); // same egress as the first
        let mut srpt = Srpt::new();
        let out = sw.step(&mut srpt, Vec::new());
        // Only one of (0,1)/(0,2) and one of (0,1)/(2,1) can go; max 2 total.
        assert!(out.transmitted <= 2);
        assert!(out.transmitted >= 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn inject_rejects_out_of_range_port() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(0, 5), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn inject_rejects_self_loop() {
        let mut sw = SlottedSwitch::new(2);
        sw.inject(voq(1, 1), 1);
    }

    #[test]
    fn run_delivers_everything_for_light_scripted_load() {
        let mut arrivals = ScriptedArrivals::new(vec![
            (0, voq(0, 1), 3),
            (0, voq(1, 0), 2),
            (5, voq(0, 1), 1),
        ]);
        let run = run(2, &mut Srpt::new(), &mut arrivals, RunConfig::new(20));
        assert_eq!(run.delivered_packets, 6);
        assert_eq!(run.completions.len(), 3);
        assert_eq!(run.leftover_packets, 0);
        assert_eq!(run.leftover_flows, 0);
        assert!(run.avg_penalty > 0.0);
        assert!(!run.total_backlog.is_empty());
    }

    #[test]
    fn run_counts_leftovers() {
        // More packets than 3 slots can carry.
        let mut arrivals = ScriptedArrivals::new(vec![(0, voq(0, 1), 10)]);
        let run = run(2, &mut Srpt::new(), &mut arrivals, RunConfig::new(3));
        assert_eq!(run.delivered_packets, 2); // slots 1 and 2 (arrival at end of 0)
        assert_eq!(run.leftover_packets, 8);
        assert_eq!(run.leftover_flows, 1);
    }
}
