//! Lyapunov instrumentation: the quadratic Lyapunov function, drift
//! sampling, and the Theorem-1 bounds (§IV-B, Eqs. 3–7).

use basrpt_core::FlowTable;
use serde::{Deserialize, Serialize};

/// The quadratic Lyapunov function `L(X) = ½ Σ_ij X_ij²` (Eq. 3), over the
/// VOQ backlogs of `table`.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable};
/// use dcn_switch::lyapunov::lyapunov_value;
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut t = FlowTable::new();
/// t.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)), 3))?;
/// t.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(1), HostId::new(0)), 4))?;
/// assert_eq!(lyapunov_value(&t), 0.5 * (9.0 + 16.0));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
pub fn lyapunov_value(table: &FlowTable) -> f64 {
    // The computation now lives in `dcn-probe` (shared with the fabric's
    // `DriftProbe`); this re-export keeps the historical call sites.
    dcn_probe::quadratic_lyapunov(table)
}

/// The drift-plus-penalty constant `B' = N(1 + N·B)/2` of Theorem 1, where
/// `N` is the port count and `B ≥ E[A_ij²]` bounds the arrival second
/// moment.
///
/// # Panics
///
/// Panics if `b` is negative or not finite.
pub fn b_prime(num_ports: u32, b: f64) -> f64 {
    assert!(b.is_finite() && b >= 0.0, "B must be finite and >= 0");
    let n = num_ports as f64;
    n * (1.0 + n * b) / 2.0
}

/// The Theorem-1 performance bounds for a given configuration.
///
/// * `penalty_gap(v)` — the guaranteed bound `B'/V` on how far BASRPT's
///   time-average penalty `ȳ` may exceed the delay-optimal `ȳ*`;
/// * `queue_bound(v)` — the guaranteed bound
///   `(B' + V(ȳ* − y_min))/ε` on the time-average total backlog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoremBounds {
    /// The drift constant `B'`.
    pub b_prime: f64,
    /// Slack `ε` of the arrival-rate matrix inside the capacity region.
    pub epsilon: f64,
    /// The delay-optimal algorithm's time-average penalty `E[ȳ*]`.
    pub y_star: f64,
    /// A lower bound on the attainable penalty (`y_min`, e.g. the minimum
    /// flow size).
    pub y_min: f64,
}

impl TheoremBounds {
    /// Builds the bounds for a switch of `num_ports` ports with arrival
    /// second moment at most `b`, capacity slack `epsilon`, optimal penalty
    /// `y_star` and penalty floor `y_min`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`, or `y_min > y_star`, or any
    /// argument is non-finite.
    pub fn new(num_ports: u32, b: f64, epsilon: f64, y_star: f64, y_min: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1]"
        );
        assert!(y_star.is_finite() && y_min.is_finite() && y_min <= y_star);
        TheoremBounds {
            b_prime: b_prime(num_ports, b),
            epsilon,
            y_star,
            y_min,
        }
    }

    /// `B'/V`: the bound on `lim avg E[ȳ] − E[ȳ*]` (first display of
    /// Theorem 1). Decreasing in `V` — FCT approaches optimal as `O(1/V)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not strictly positive.
    pub fn penalty_gap(&self, v: f64) -> f64 {
        assert!(v.is_finite() && v > 0.0, "V must be positive");
        self.b_prime / v
    }

    /// `(B' + V(ȳ* − y_min))/ε`: the bound on the time-average total queue
    /// backlog (second display of Theorem 1). Increasing in `V` — the
    /// stable queue level grows as `O(V)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite.
    pub fn queue_bound(&self, v: f64) -> f64 {
        assert!(v.is_finite() && v >= 0.0, "V must be >= 0");
        (self.b_prime + v * (self.y_star - self.y_min)) / self.epsilon
    }
}

/// Accumulates one-slot Lyapunov drift samples
/// `L(X(t+1)) − L(X(t))`, giving an empirical estimate of the expected
/// drift `Δ(X(t))` (Eq. 4) along the simulated trajectory.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DriftEstimator {
    last_value: Option<f64>,
    sum: f64,
    count: u64,
}

impl DriftEstimator {
    /// Creates an estimator with no observations.
    pub fn new() -> Self {
        DriftEstimator::default()
    }

    /// Observes the Lyapunov value at the next slot boundary.
    pub fn observe(&mut self, lyapunov: f64) {
        if let Some(prev) = self.last_value {
            self.sum += lyapunov - prev;
            self.count += 1;
        }
        self.last_value = Some(lyapunov);
    }

    /// Number of drift samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean one-slot drift; `None` before two observations.
    pub fn mean_drift(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basrpt_core::FlowState;
    use dcn_types::{FlowId, HostId, Voq};

    #[test]
    fn lyapunov_of_empty_table_is_zero() {
        assert_eq!(lyapunov_value(&FlowTable::new()), 0.0);
    }

    #[test]
    fn lyapunov_sums_squared_backlogs() {
        let mut t = FlowTable::new();
        let q = Voq::new(HostId::new(0), HostId::new(1));
        t.insert(FlowState::new(FlowId::new(1), q, 3)).unwrap();
        t.insert(FlowState::new(FlowId::new(2), q, 2)).unwrap();
        // One VOQ with backlog 5.
        assert_eq!(lyapunov_value(&t), 12.5);
    }

    #[test]
    fn b_prime_formula() {
        // N = 2, B = 3: 2 * (1 + 6) / 2 = 7.
        assert_eq!(b_prime(2, 3.0), 7.0);
        assert_eq!(b_prime(1, 0.0), 0.5);
    }

    #[test]
    fn bounds_move_correctly_with_v() {
        let bounds = TheoremBounds::new(4, 10.0, 0.1, 8.0, 1.0);
        assert!(bounds.penalty_gap(1000.0) < bounds.penalty_gap(100.0));
        assert!(bounds.queue_bound(1000.0) > bounds.queue_bound(100.0));
        // Exact values.
        let bp = b_prime(4, 10.0);
        assert_eq!(bounds.penalty_gap(50.0), bp / 50.0);
        assert_eq!(bounds.queue_bound(50.0), (bp + 50.0 * 7.0) / 0.1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        let _ = TheoremBounds::new(4, 10.0, 0.0, 8.0, 1.0);
    }

    #[test]
    fn drift_estimator_means_differences() {
        let mut d = DriftEstimator::new();
        assert!(d.mean_drift().is_none());
        d.observe(10.0);
        assert!(d.mean_drift().is_none());
        d.observe(14.0);
        d.observe(12.0);
        // Drifts: +4, -2 -> mean +1.
        assert_eq!(d.mean_drift(), Some(1.0));
        assert_eq!(d.count(), 2);
    }
}
