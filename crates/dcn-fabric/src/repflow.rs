//! ECMP plane assignment and RepFlow-style short-flow replication.
//!
//! The multi-path [`Topology`] exposes `core_planes` independent core
//! planes (a k-ary fat-tree has `k/2`). This module models them:
//!
//! * [`simulate_ecmp`] — single-path routing: every inter-rack flow is
//!   hashed onto one plane ([`plane_of`], FNV-1a over the flow id — the
//!   deterministic stand-in for ECMP's five-tuple hash) and the matching
//!   engine's core filter is enforced **per plane** (each plane carries
//!   `uplink / planes` of a rack's budget). Hash collisions can reject a
//!   flow even when another plane is idle — exactly the ECMP pathology
//!   RepFlow exploits.
//! * [`simulate_repflow`] — the RepFlow discipline (Xu & Li): flows
//!   shorter than the [`RepFlow`] threshold additionally place one
//!   replica on an alternate plane whenever their primary plane is
//!   saturated, and the **first copy to finish wins**. Replication is
//!   opportunistic and subordinate: a replica transmits only in intervals
//!   where its flow was crossbar-matched but plane-rejected (the NICs are
//!   provably idle then), and replicas consume only budget left over
//!   after every single-path admission — so the base trajectory of a
//!   RepFlow run is **bit-identical** to the [`simulate_ecmp`] run of the
//!   same workload. That gives the dominance property
//!   `tests/repflow_props.rs` pins: every flow's RepFlow FCT is ≤ its
//!   single-path FCT, with equality on one-plane topologies.
//!
//! Byte accounting for the race is exact ([`RepFlowStats`]): every copy's
//! transmitted bytes ride the same epoch-anchored arithmetic as the base
//! engine, the winning copy accounts the flow's full size, and the
//! cancelled copies' bytes (including everything the primary transmits
//! after losing — the engine cancels lazily, a conservative model of
//! RepFlow's transport-level cutoff) are tallied to the last byte.

use crate::engine::{
    validate_arrival, CalendarLookup, CompletionLookup, FabricError, FabricRun, FlowMeta,
    ScheduledEntry, SimConfig,
};
use crate::topology::Topology;
use basrpt_core::{FlowState, FlowTable, RepFlow, Scheduler};
use dcn_metrics::{FctRecorder, SizeBucketRecorder, ThroughputMeter};
use dcn_probe::{
    ArrivalEvent, BacklogSampler, CompletionEvent, DecisionEvent, DrainEvent, Fanout, NoProbe,
    Probe, SampleEvent,
};
use dcn_types::{Bytes, FlowId, PlaneId, Rate, SimTime, Voq};
use dcn_workload::FlowArrival;
use std::collections::HashMap;
use std::time::Instant;

/// The plane an inter-rack flow is hashed onto: FNV-1a over the flow id,
/// modulo the plane count — the deterministic stand-in for ECMP's
/// five-tuple hash (a flow's packets all ride one path).
///
/// # Panics
///
/// Panics if `planes` is zero.
///
/// # Example
///
/// ```
/// use dcn_fabric::plane_of;
/// use dcn_types::FlowId;
///
/// let p = plane_of(FlowId::new(7), 4);
/// assert!(p.index() < 4);
/// assert_eq!(p, plane_of(FlowId::new(7), 4), "deterministic");
/// ```
pub fn plane_of(flow: FlowId, planes: u32) -> PlaneId {
    assert!(planes > 0, "a fabric has at least one core plane");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in flow.raw().to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    PlaneId::new((h % u64::from(planes)) as u32)
}

/// Per-(rack, plane) uplink/downlink budgets for one scheduling decision.
struct PlaneBudgets {
    edge: f64,
    /// Budget of one plane: `rack_uplink_capacity / planes`.
    plane_cap: f64,
    planes: usize,
    up_used: Vec<f64>,
    down_used: Vec<f64>,
}

impl PlaneBudgets {
    fn new<T: Topology + ?Sized>(topo: &T) -> Self {
        let planes = topo.core_planes().max(1) as usize;
        let racks = topo.num_racks() as usize;
        PlaneBudgets {
            edge: topo.edge_rate().bytes_per_sec(),
            plane_cap: topo.rack_uplink_capacity().bytes_per_sec() / planes as f64,
            planes,
            up_used: vec![0.0; racks * planes],
            down_used: vec![0.0; racks * planes],
        }
    }

    fn reset(&mut self) {
        self.up_used.fill(0.0);
        self.down_used.fill(0.0);
    }

    /// Admits one flow onto `plane` if both its rack budgets have room
    /// (same tolerance as the aggregate core filter); charges them on
    /// success.
    fn admit(&mut self, src_rack: usize, dst_rack: usize, plane: PlaneId) -> bool {
        let up = src_rack * self.planes + plane.as_usize();
        let down = dst_rack * self.planes + plane.as_usize();
        // Tolerance absorbs f64 accumulation when the budget divides evenly.
        if self.up_used[up] + self.edge <= self.plane_cap * (1.0 + 1e-9)
            && self.down_used[down] + self.edge <= self.plane_cap * (1.0 + 1e-9)
        {
            self.up_used[up] += self.edge;
            self.down_used[down] += self.edge;
            true
        } else {
            false
        }
    }
}

/// One copy of a replicated flow on an alternate plane, with the same
/// epoch-anchored drain arithmetic as a `ScheduledEntry`.
#[derive(Debug, Clone, Copy)]
struct ReplicaCopy {
    plane: PlaneId,
    /// Bytes this copy has transmitted (settled across all its epochs).
    sent: u64,
    active: bool,
    epoch: SimTime,
    epoch_start_sent: u64,
    completes_at: SimTime,
}

impl ReplicaCopy {
    fn idle(plane: PlaneId) -> Self {
        ReplicaCopy {
            plane,
            sent: 0,
            active: false,
            epoch: SimTime::ZERO,
            epoch_start_sent: 0,
            completes_at: SimTime::INFINITY,
        }
    }

    /// (Re)opens a transmission epoch at `now`; keeps the current epoch if
    /// the copy is already transmitting (its completion instant must not
    /// drift across reschedules that keep it selected).
    fn select(&mut self, now: SimTime, size: u64, rate: Rate) {
        if self.active {
            return;
        }
        self.active = true;
        self.epoch = now;
        self.epoch_start_sent = self.sent;
        self.completes_at = now + rate.transfer_time(Bytes::new(size - self.sent));
    }

    /// Settles the copy's account at instant `t` and closes its epoch.
    fn deselect(&mut self, t: SimTime, size: u64, rate: Rate) {
        if !self.active {
            return;
        }
        self.sent = self.epoch_start_sent + self.target_at(t, size, rate);
        self.active = false;
        self.completes_at = SimTime::INFINITY;
    }

    /// Bytes owed since the epoch by instant `t` — the `ScheduledEntry`
    /// arithmetic: one conversion of the elapsed time, forced exact at the
    /// analytic completion instant.
    fn target_at(&self, t: SimTime, size: u64, rate: Rate) -> u64 {
        let epoch_remaining = size - self.epoch_start_sent;
        if t >= self.completes_at {
            epoch_remaining
        } else {
            rate.bytes_in(t - self.epoch).as_u64().min(epoch_remaining)
        }
    }
}

/// The replication race of one short inter-rack flow.
#[derive(Debug)]
struct RaceState {
    size: u64,
    primary_plane: PlaneId,
    copies: Vec<ReplicaCopy>,
    /// `Some((plane, instant))` once a replica finished first.
    replica_won: Option<(PlaneId, SimTime)>,
    /// The race is over: a replica won, or the primary completed.
    closed: bool,
}

/// One completed flow of a RepFlow (or ECMP) run, with both race
/// outcomes: the recorded first-copy FCT and the single-path FCT the
/// primary alone would have scored. `fct ≤ base_fct` always;
/// `fct == base_fct` exactly unless a replica won.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepFlowCompletion {
    /// The completed flow.
    pub flow: FlowId,
    /// The VOQ the flow occupied.
    pub voq: Voq,
    /// The flow's size.
    pub size: Bytes,
    /// Whether the flow was eligible for replication (short, inter-rack,
    /// 2+ planes) and raced replicas.
    pub replicated: bool,
    /// The recorded FCT: first copy to finish (includes any configured
    /// base latency).
    pub fct: SimTime,
    /// The single-path FCT of the primary copy — bit-identical to what
    /// [`simulate_ecmp`] records for this flow.
    pub base_fct: SimTime,
    /// The plane of the winning replica, or `None` when the primary won.
    pub winner: Option<PlaneId>,
}

/// Exact byte accounting of the replication races of one run.
///
/// Every field is an exact `u64` tally; the identity
/// `replica_bytes == winning_replica_bytes + losing_replica_bytes +
/// racing_replica_bytes` holds to the byte (pinned by
/// `tests/conservation.rs`), and the base run's own conservation
/// (`arrived == delivered + leftover`) is untouched by replication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepFlowStats {
    /// Flows that raced replicas (short, inter-rack, 2+ planes).
    pub replicated_flows: usize,
    /// Races a replica won.
    pub replica_wins: usize,
    /// Total bytes transmitted by replica copies.
    pub replica_bytes: Bytes,
    /// Bytes of winning replica copies (the full size of each
    /// replica-won flow).
    pub winning_replica_bytes: Bytes,
    /// Bytes transmitted by replica copies that lost their race —
    /// cancelled work on the alternate plane.
    pub losing_replica_bytes: Bytes,
    /// Bytes of replica copies whose race was still open at the horizon.
    pub racing_replica_bytes: Bytes,
    /// Bytes the primary transmitted *after* a replica had already won —
    /// the cancelled-copy cost of lazy cancellation on the primary path.
    pub cancelled_primary_bytes: Bytes,
}

/// The measurements of one RepFlow run: the merged [`FabricRun`] (FCTs
/// are first-copy-completes), the per-flow completion log with both race
/// outcomes, and the exact replica byte accounting.
#[derive(Debug, Clone)]
pub struct RepFlowRun {
    /// The run measurements. `fct`/`fct_by_size` record the
    /// first-copy-completes FCT of every flow whose primary finished
    /// within the horizon; counts, byte totals and series keep the base
    /// (primary-path) semantics, so conservation identities are unchanged.
    pub run: FabricRun,
    /// Every completed flow, in completion order.
    pub completions: Vec<RepFlowCompletion>,
    /// The replication-race byte accounting.
    pub stats: RepFlowStats,
}

/// Runs one single-path (ECMP-hashed) simulation: like [`crate::simulate`]
/// but the core filter is enforced **per plane** — each inter-rack flow
/// rides only its [`plane_of`] plane, which carries `1/planes` of the
/// rack uplink budget. On a one-plane topology this is bit-identical to
/// [`crate::simulate`] with the aggregate filter.
///
/// This is the single-path baseline RepFlow is measured against; the
/// plane filter only matters when core capacity is enforced
/// (oversubscribed topologies or [`SimConfig::enforce_core_capacity`]).
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_ecmp<T: Topology + ?Sized, S: Scheduler + ?Sized>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    simulate_ecmp_probed(topo, scheduler, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_ecmp`], for differential
/// tests that compare full event streams.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_ecmp_probed<T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    run_repflow_loop(topo, scheduler, None, generator, config, probe).map(|r| r.run)
}

/// Runs one RepFlow simulation: single-path ECMP routing plus replication
/// of short flows (shorter than the [`RepFlow`] discipline's threshold)
/// onto alternate core planes with first-copy-completes semantics — see
/// the module docs for the model and its dominance guarantee.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
///
/// # Example
///
/// ```
/// use basrpt_core::RepFlow;
/// use dcn_fabric::{simulate_repflow, KAryFatTree, SimConfig};
/// use dcn_types::SimTime;
/// use dcn_workload::TrafficSpec;
///
/// // Two core planes, oversubscribed so the plane filter binds.
/// let topo = KAryFatTree::builder(4).oversubscription(2.0).build()?;
/// let spec = TrafficSpec::scaled(8, 2, 0.5)?;
/// let out = simulate_repflow(
///     &topo,
///     &mut RepFlow::default(),
///     spec.generator(7)?.take(100),
///     SimConfig::builder().horizon(SimTime::from_secs(0.05)).build(),
/// )?;
/// for c in &out.completions {
///     assert!(c.fct <= c.base_fct, "first copy can only help");
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_repflow<T: Topology + ?Sized>(
    topo: &T,
    discipline: &mut RepFlow,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<RepFlowRun, FabricError> {
    simulate_repflow_probed(topo, discipline, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_repflow`]. Probe events
/// describe the base (primary-path) trajectory; replica transmissions are
/// reported only through [`RepFlowStats`].
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_repflow_probed<T: Topology + ?Sized, P: Probe>(
    topo: &T,
    discipline: &mut RepFlow,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<RepFlowRun, FabricError> {
    let threshold = discipline.threshold();
    run_repflow_loop(topo, discipline, Some(threshold), generator, config, probe)
}

/// The plane-aware event loop behind [`simulate_ecmp`] and
/// [`simulate_repflow`]: the matching engine's loop (same event ordering,
/// same epoch accounting) with the per-plane core filter, plus — when
/// `replicate` carries a threshold — the replica layer described in the
/// module docs. Replicas never influence base admissions, so the
/// `replicate: None` and `replicate: Some(_)` base trajectories are
/// bit-identical.
#[allow(clippy::too_many_lines)]
fn run_repflow_loop<T, S, P>(
    topo: &T,
    scheduler: &mut S,
    replicate: Option<u64>,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<RepFlowRun, FabricError>
where
    T: Topology + ?Sized,
    S: Scheduler + ?Sized,
    P: Probe,
{
    let mut generator = generator.into_iter();
    let edge_rate = topo.edge_rate();
    let enforce_core = config.enforce_core_capacity || !topo.is_full_bisection();
    let planes = topo.core_planes().max(1);
    let mut budgets = PlaneBudgets::new(topo);
    let mut lookup = CalendarLookup::default();

    let mut table = FlowTable::new();
    let mut meta: HashMap<FlowId, FlowMeta> = HashMap::new();
    let mut entries: Vec<ScheduledEntry> = Vec::new();
    let mut carry: HashMap<FlowId, ScheduledEntry> = HashMap::new();

    // Replication races, keyed by flow. Empty for ECMP runs.
    let mut races: HashMap<FlowId, RaceState> = HashMap::new();
    let mut stats = RepFlowStats::default();
    let mut completions_log: Vec<RepFlowCompletion> = Vec::new();

    let mut fct = FctRecorder::new();
    let mut fct_by_size = SizeBucketRecorder::pfabric_buckets();
    let mut throughput = ThroughputMeter::new();
    let mut sampler = BacklogSampler::new(config.monitored_port);
    let mut fan = Fanout::new(&mut sampler, probe);
    let mut arrivals_count = 0usize;
    let mut completions_count = 0usize;
    let mut arrived_bytes = Bytes::ZERO;
    let mut reschedules = 0u64;

    let mut clock = SimTime::ZERO;
    let mut next_sample = SimTime::ZERO;
    let mut next_arrival = generator.next();
    let mut last_arrival_time = SimTime::ZERO;

    loop {
        let t_arrival = next_arrival.as_ref().map_or(SimTime::INFINITY, |a| a.time);
        let t_completion = lookup.next_completion(&entries);
        let t = t_arrival
            .min(t_completion)
            .min(next_sample)
            .min(config.horizon);

        // --- resolve replica wins up to t (their completion instants are
        //     analytic, so they are processed lazily at the next event;
        //     the win cannot change the base trajectory) ---
        let mut wins: Vec<(SimTime, FlowId)> = Vec::new();
        for (&id, race) in races.iter() {
            if race.closed {
                continue;
            }
            if let Some(w) = race
                .copies
                .iter()
                .filter(|c| c.active)
                .map(|c| c.completes_at)
                .min()
            {
                if w <= t {
                    wins.push((w, id));
                }
            }
        }
        wins.sort_unstable_by(|a, b| a.0.as_secs().total_cmp(&b.0.as_secs()).then(a.1.cmp(&b.1)));
        for (w, id) in wins {
            let race = races.get_mut(&id).expect("race exists");
            let size = race.size;
            // Lowest plane wins ties (copies are in ascending plane order).
            let winner = race
                .copies
                .iter()
                .filter(|c| c.active && c.completes_at <= w)
                .map(|c| c.plane)
                .next()
                .expect("a copy completed");
            for copy in &mut race.copies {
                // Freeze the race at the win instant: siblings keep only
                // the bytes they moved before w.
                copy.deselect(w, size, edge_rate);
            }
            race.replica_won = Some((winner, w));
            race.closed = true;
            stats.replica_wins += 1;
        }

        // --- advance: settle every scheduled flow's account at t ---
        let elapsed = t - clock;
        let mut completed_any = false;
        if elapsed > SimTime::ZERO {
            let mut i = 0;
            while i < entries.len() {
                let entry = &mut entries[i];
                let target = entry.target_at(t, edge_rate);
                let amount = target - entry.settled;
                if amount == 0 {
                    i += 1;
                    continue;
                }
                entry.settled = target;
                let (id, voq) = (entry.flow, entry.voq);
                let outcome = table.drain(id, amount).expect("scheduled flow is active");
                debug_assert_eq!(outcome.drained, amount, "exact drain cannot be short");
                throughput.deliver(Bytes::new(outcome.drained));
                // Everything the primary moves after losing its race is
                // cancelled work (the primary is never scheduled while a
                // replica transmits, so these drains all postdate the win).
                if races.get(&id).is_some_and(|r| r.replica_won.is_some()) {
                    stats.cancelled_primary_bytes += Bytes::new(outcome.drained);
                }
                fan.on_drain(&DrainEvent {
                    time: t.as_secs(),
                    flow: id,
                    voq,
                    amount: outcome.drained,
                });
                if outcome.completed.is_some() {
                    let info = meta.remove(&id).expect("active flow has metadata");
                    let base_fct = t - info.arrival + config.base_latency;
                    // First copy to finish sets the recorded FCT.
                    let (flow_fct, replicated, winner) = match races.remove(&id) {
                        Some(mut race) => {
                            let outcome = if let Some((plane, w)) = race.replica_won {
                                (w - info.arrival + config.base_latency, true, Some(plane))
                            } else {
                                // The primary finished first: the race is
                                // over and the copies' bytes are cancelled.
                                for copy in &mut race.copies {
                                    copy.deselect(t, race.size, edge_rate);
                                }
                                race.closed = true;
                                (base_fct, true, None)
                            };
                            retire_race(&race, &mut stats);
                            outcome
                        }
                        None => (base_fct, false, None),
                    };
                    fct.record(info.class, info.size, flow_fct);
                    fct_by_size.record(info.size, flow_fct);
                    completions_log.push(RepFlowCompletion {
                        flow: id,
                        voq,
                        size: info.size,
                        replicated,
                        fct: flow_fct,
                        base_fct,
                        winner,
                    });
                    fan.on_completion(&CompletionEvent {
                        time: t.as_secs(),
                        flow: id,
                        voq,
                        size: info.size.as_u64(),
                        fct: flow_fct.as_secs(),
                    });
                    completions_count += 1;
                    completed_any = true;
                    entries.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        clock = t;

        if clock >= config.horizon {
            break;
        }

        // --- arrivals landing at (or before) the current instant ---
        let mut arrived_any = false;
        while let Some(arrival) = next_arrival.as_ref() {
            if arrival.time > clock {
                break;
            }
            let arrival = *next_arrival.as_ref().expect("checked above");
            validate_arrival(topo, &arrival, last_arrival_time)?;
            last_arrival_time = arrival.time;
            table
                .insert(FlowState::new(
                    arrival.id,
                    arrival.voq,
                    arrival.size.as_u64(),
                ))
                .map_err(|e| FabricError::BadArrival(e.to_string()))?;
            meta.insert(
                arrival.id,
                FlowMeta {
                    class: arrival.class,
                    size: arrival.size,
                    arrival: arrival.time,
                },
            );
            // Open a replication race for short inter-rack flows when the
            // fabric has alternate planes and an enforced core.
            if let Some(threshold) = replicate {
                if enforce_core
                    && planes >= 2
                    && arrival.size.as_u64() < threshold
                    && !topo.is_intra_rack(arrival.voq)
                {
                    let primary = plane_of(arrival.id, planes);
                    let copies = (0..planes)
                        .map(PlaneId::new)
                        .filter(|&p| p != primary)
                        .map(ReplicaCopy::idle)
                        .collect();
                    races.insert(
                        arrival.id,
                        RaceState {
                            size: arrival.size.as_u64(),
                            primary_plane: primary,
                            copies,
                            replica_won: None,
                            closed: false,
                        },
                    );
                    stats.replicated_flows += 1;
                }
            }
            arrivals_count += 1;
            arrived_bytes += arrival.size;
            arrived_any = true;
            fan.on_arrival(&ArrivalEvent {
                time: arrival.time.as_secs(),
                flow: arrival.id,
                voq: arrival.voq,
                size: arrival.size.as_u64(),
            });
            next_arrival = generator.next();
        }

        // --- sampling (after same-instant arrivals) ---
        if next_sample <= clock {
            fan.on_sample(&SampleEvent {
                time: clock.as_secs(),
                table: &table,
                delivered: throughput.delivered().as_f64(),
            });
            next_sample += config.sample_every;
        }

        // --- reschedule on arrival or completion ---
        if arrived_any || completed_any {
            let started = fan.wants_decision_timing().then(Instant::now);
            let schedule = scheduler.schedule(&table);
            let latency = started.map(|s| s.elapsed());
            fan.on_decision(&DecisionEvent {
                time: clock.as_secs(),
                schedule: &schedule,
                latency,
            });
            carry.clear();
            carry.extend(entries.drain(..).map(|e| (e.flow, e)));
            let admit = |id: FlowId,
                         voq: Voq,
                         entries: &mut Vec<ScheduledEntry>,
                         table: &FlowTable,
                         carry: &mut HashMap<FlowId, ScheduledEntry>| {
                entries.push(carry.remove(&id).unwrap_or_else(|| {
                    let remaining = table.get(id).expect("scheduled flow is active").remaining();
                    ScheduledEntry::new(id, voq, clock, remaining, edge_rate)
                }));
            };
            // Pass 1 — base admissions on each flow's own plane, in
            // schedule priority order (identical for ECMP and RepFlow).
            let mut rejected: Vec<(FlowId, Voq)> = Vec::new();
            if enforce_core {
                budgets.reset();
                for (id, voq) in schedule.iter() {
                    if topo.is_intra_rack(voq) {
                        admit(id, voq, &mut entries, &table, &mut carry);
                        continue;
                    }
                    let src_rack = topo.rack_of(voq.src()).as_usize();
                    let dst_rack = topo.rack_of(voq.dst()).as_usize();
                    if budgets.admit(src_rack, dst_rack, plane_of(id, planes)) {
                        admit(id, voq, &mut entries, &table, &mut carry);
                    } else {
                        rejected.push((id, voq));
                    }
                }
            } else {
                for (id, voq) in schedule.iter() {
                    admit(id, voq, &mut entries, &table, &mut carry);
                }
            }
            // Pass 2 — replicas: a matched-but-rejected short flow may
            // ride the residual budget of an alternate plane (its NICs
            // are idle — the matching reserved them and the plane filter
            // declined). Priority order again, so replica-replica
            // contention is deterministic.
            let mut selected: HashMap<FlowId, PlaneId> = HashMap::new();
            for &(id, voq) in &rejected {
                let Some(race) = races.get(&id) else { continue };
                if race.closed {
                    continue;
                }
                let src_rack = topo.rack_of(voq.src()).as_usize();
                let dst_rack = topo.rack_of(voq.dst()).as_usize();
                for copy in &race.copies {
                    if budgets.admit(src_rack, dst_rack, copy.plane) {
                        selected.insert(id, copy.plane);
                        break;
                    }
                }
            }
            // Apply the replica selection: open epochs for the selected
            // copies, settle-and-close everyone else's.
            for (&id, race) in races.iter_mut() {
                if race.closed {
                    continue;
                }
                let want = selected.get(&id).copied();
                let size = race.size;
                for copy in &mut race.copies {
                    if want == Some(copy.plane) {
                        copy.select(clock, size, edge_rate);
                    } else {
                        copy.deselect(clock, size, edge_rate);
                    }
                }
            }
            reschedules += 1;
            lookup.on_reschedule(&entries);
        }
    }
    drop(fan);
    let series = sampler.into_series();

    // Races still on the books at the horizon: settle every copy and
    // tally its bytes as racing (open races) or won/lost (a replica won
    // but the primary never finished draining).
    for (_, mut race) in races.drain() {
        let size = race.size;
        for copy in &mut race.copies {
            copy.deselect(config.horizon, size, edge_rate);
        }
        retire_race(&race, &mut stats);
    }

    let run = FabricRun {
        fct,
        fct_by_size,
        throughput,
        total_backlog: series.total_backlog,
        monitored_port_backlog: series.monitored_port_backlog,
        max_port_backlog: series.max_port_backlog,
        cumulative_delivered: series.cumulative_delivered,
        arrivals: arrivals_count,
        completions: completions_count,
        arrived_bytes,
        leftover_bytes: Bytes::new(table.total_backlog()),
        leftover_flows: table.len(),
        reschedules,
        horizon: config.horizon,
    };
    Ok(RepFlowRun {
        run,
        completions: completions_log,
        stats,
    })
}

/// Tallies the exact byte account of one finished (or horizon-cut) race.
fn retire_race(race: &RaceState, stats: &mut RepFlowStats) {
    for copy in &race.copies {
        stats.replica_bytes += Bytes::new(copy.sent);
        match race.replica_won {
            Some((plane, _)) if plane == copy.plane => {
                debug_assert_eq!(copy.sent, race.size, "the winner moved the whole flow");
                stats.winning_replica_bytes += Bytes::new(copy.sent);
            }
            _ if race.closed => stats.losing_replica_bytes += Bytes::new(copy.sent),
            _ => stats.racing_replica_bytes += Bytes::new(copy.sent),
        }
    }
    // The primary plane is part of the race but its bytes live in the
    // base run's throughput; only its post-win drains are tallied (see
    // `cancelled_primary_bytes`), so nothing to do here for it.
    let _ = race.primary_plane;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, FatTree, KAryFatTree};
    use basrpt_core::Srpt;
    use dcn_types::{FlowClass, HostId};

    fn arrival(id: u64, t: f64, src: u32, dst: u32, size: u64) -> FlowArrival {
        FlowArrival {
            id: FlowId::new(id),
            time: SimTime::from_secs(t),
            voq: Voq::new(HostId::new(src), HostId::new(dst)),
            size: Bytes::new(size),
            class: FlowClass::Background,
        }
    }

    fn config(horizon_secs: f64) -> SimConfig {
        SimConfig::builder()
            .horizon(SimTime::from_secs(horizon_secs))
            .enforce_core_capacity(true)
            .build()
    }

    #[test]
    fn plane_hash_is_deterministic_and_in_range() {
        for id in 0..1000u64 {
            let p = plane_of(FlowId::new(id), 3);
            assert!(p.index() < 3);
            assert_eq!(p, plane_of(FlowId::new(id), 3));
        }
        // And not degenerate: all three planes are hit.
        let mut seen = [false; 3];
        for id in 0..1000u64 {
            seen[plane_of(FlowId::new(id), 3).as_usize()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn one_plane_ecmp_matches_aggregate_filter_bitwise() {
        // FatTree::scaled(2, 8, 1): one core plane, oversubscribed — the
        // per-plane filter degenerates to the aggregate one.
        let topo = FatTree::scaled(2, 8, 1).unwrap();
        assert_eq!(topo.core_planes(), 1);
        let flows: Vec<FlowArrival> = (0..8)
            .map(|i| arrival(i, 0.0001 * i as f64, i as u32, 8 + i as u32, 500_000))
            .collect();
        let cfg = config(0.05);
        let a = simulate(&topo, &mut Srpt::new(), flows.clone(), cfg).unwrap();
        let b = simulate_ecmp(&topo, &mut Srpt::new(), flows, cfg).unwrap();
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.throughput.delivered(), b.throughput.delivered());
        assert_eq!(a.total_backlog, b.total_backlog);
        let (sa, sb) = (
            a.fct.summary(FlowClass::Background).unwrap(),
            b.fct.summary(FlowClass::Background).unwrap(),
        );
        assert_eq!(sa.mean_secs.to_bits(), sb.mean_secs.to_bits());
        assert_eq!(sa.max_secs.to_bits(), sb.max_secs.to_bits());
    }

    #[test]
    fn repflow_base_trajectory_matches_ecmp_bitwise() {
        // 2:1 oversubscribed, two planes of one edge-rate flow each — the
        // plane filter binds (hash collisions reject) without starving.
        let topo = KAryFatTree::builder(4)
            .hosts_per_edge(4)
            .oversubscription(2.0)
            .build()
            .unwrap();
        assert!(topo.core_planes() >= 2);
        let flows: Vec<FlowArrival> = (0..24)
            .map(|i| {
                arrival(
                    i,
                    0.00002 * i as f64,
                    (i % 8) as u32,
                    (8 + (i * 3) % 24) as u32,
                    30_000 + 10_000 * (i % 5),
                )
            })
            .collect();
        let cfg = config(0.02);
        let ecmp = simulate_ecmp(&topo, &mut Srpt::new(), flows.clone(), cfg).unwrap();
        let rep = simulate_repflow(&topo, &mut RepFlow::new(100_000), flows, cfg).unwrap();
        // Base observables are bit-identical: replicas never affect the
        // primary path.
        assert_eq!(rep.run.completions, ecmp.completions);
        assert_eq!(rep.run.arrived_bytes, ecmp.arrived_bytes);
        assert_eq!(rep.run.leftover_bytes, ecmp.leftover_bytes);
        assert_eq!(rep.run.throughput.delivered(), ecmp.throughput.delivered());
        assert_eq!(rep.run.total_backlog, ecmp.total_backlog);
        assert_eq!(rep.run.cumulative_delivered, ecmp.cumulative_delivered);
        assert!(rep.run.completions > 0, "non-vacuous: flows must finish");
        // And every per-flow FCT dominates.
        for c in &rep.completions {
            assert!(
                c.fct <= c.base_fct,
                "{}: {} > {}",
                c.flow,
                c.fct.as_secs(),
                c.base_fct.as_secs()
            );
            if !c.replicated {
                assert_eq!(c.fct.as_secs().to_bits(), c.base_fct.as_secs().to_bits());
            }
        }
    }

    #[test]
    fn replica_wins_when_primary_plane_is_jammed() {
        // Two planes, 10 Gbps budget each (uplink 20 Gbps): one flow per
        // plane per direction. SRPT protects the shortest flow, so the
        // only way a replicable flow gets plane-rejected is a stream of
        // even-shorter flows hogging its hashed plane: three 30 KB flows
        // (one VOQ, back to back, 24 µs each) hold plane 0 for 72 µs
        // while the 50 KB victim's replica rides plane 1 and finishes in
        // 40 µs — before the primary plane ever frees up.
        let topo = KAryFatTree::builder(4).hosts_per_edge(2).build().unwrap();
        assert_eq!(topo.core_planes(), 2);
        // Four flow ids all hashed onto plane 0.
        let ids: Vec<u64> = (0u64..)
            .filter(|&i| plane_of(FlowId::new(i), 2) == PlaneId::new(0))
            .take(4)
            .collect();
        let victim = ids[3];
        let flows = vec![
            arrival(ids[0], 0.0, 0, 2, 30_000),
            arrival(ids[1], 0.0, 0, 2, 30_000),
            arrival(ids[2], 0.0, 0, 2, 30_000),
            arrival(victim, 0.0, 1, 4, 50_000),
        ];
        let cfg = SimConfig::builder()
            .horizon(SimTime::from_secs(0.05))
            .enforce_core_capacity(true)
            .build();
        let rep = simulate_repflow(&topo, &mut RepFlow::new(60_000), flows, cfg).unwrap();
        assert_eq!(rep.stats.replicated_flows, 4, "all four are short");
        assert_eq!(rep.stats.replica_wins, 1, "the victim's replica wins");
        let short = rep
            .completions
            .iter()
            .find(|c| c.flow == FlowId::new(victim))
            .expect("victim completes");
        assert_eq!(short.winner, Some(PlaneId::new(1)));
        // Replica: 50 KB at 10 Gbps from t=0 → 40 µs. Primary: plane 0
        // frees at 72 µs → base FCT 112 µs.
        assert_eq!(short.fct, SimTime::from_micros(40.0));
        assert!((short.base_fct.as_secs() - 112e-6).abs() < 1e-12);
        // The winning replica moved the whole flow; the primary's
        // post-win bytes are tallied as cancelled.
        assert_eq!(rep.stats.winning_replica_bytes, Bytes::new(50_000));
        assert_eq!(rep.stats.cancelled_primary_bytes, Bytes::new(50_000));
        // Exact replica accounting identity; the jammers' replicas never
        // transmitted (their primaries were always admitted).
        assert_eq!(rep.stats.losing_replica_bytes, Bytes::ZERO);
        assert_eq!(rep.stats.racing_replica_bytes, Bytes::ZERO);
        assert_eq!(
            rep.stats.replica_bytes,
            rep.stats.winning_replica_bytes
                + rep.stats.losing_replica_bytes
                + rep.stats.racing_replica_bytes
        );
    }

    #[test]
    fn full_bisection_disables_replication() {
        let topo = KAryFatTree::builder(4).build().unwrap();
        let flows = vec![arrival(0, 0.0, 0, 8, 50_000)];
        let cfg = SimConfig::builder()
            .horizon(SimTime::from_secs(0.01))
            .build();
        let rep = simulate_repflow(&topo, &mut RepFlow::default(), flows, cfg).unwrap();
        assert_eq!(rep.stats.replicated_flows, 0);
        assert_eq!(rep.stats.replica_bytes, Bytes::ZERO);
    }
}
