//! Lazy exact settlement: shared drain arithmetic and mode selection.
//!
//! Every transmitting flow in the fabric engines is accounted by an
//! *epoch*: the instant its current rate was assigned (`epoch`), the
//! bytes it still owed then (`epoch_remaining`), and the analytic
//! completion instant `epoch + epoch_remaining / rate`. Cumulative
//! progress inside an epoch is always derived the same way — one
//! [`Rate::bytes_in`] conversion of `t - epoch`, capped at the epoch's
//! remaining bytes — so however many times an entry is observed, the
//! bytes it reports sum to exactly the bytes the epoch owed. That single
//! conversion is what makes settlement *exact*: `arrived == delivered +
//! leftover` holds bit-for-bit at every observation point, eager or lazy.
//!
//! The two helpers here, [`completion_instant`] and [`drain_target`],
//! are that arithmetic, shared by the matching engine's scheduled
//! entries (`dcn-fabric`'s delta allocator) and the fair-share engine's
//! rate entries, so the two accounting paths cannot drift apart.
//!
//! [`SettleMode`] is the policy layer: *when* the engine converts
//! scheduled time into table bytes. Eager settlement converts on every
//! event (the historical behaviour, and what per-flow observers need);
//! lazy settlement converts only at observation points — a flow's own
//! rate change, completion, or eviction, a sample instant, the horizon,
//! or a snapshot — leaving untouched flows untouched, which is what
//! makes the event loop O(Δ) per event.

use dcn_types::{Bytes, Rate, SimTime};
use std::sync::OnceLock;

/// When the fabric engines convert scheduled transmission time into
/// settled table bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleMode {
    /// Settle every scheduled flow on every event. This is the reference
    /// behaviour: per-flow drain observers see every byte as it moves,
    /// at O(n) table work per event.
    Eager,
    /// Settle a flow only when it is observed (its own completion, rate
    /// change or eviction, a sample instant, the horizon, a snapshot).
    /// Aggregate observables are bit-identical to [`SettleMode::Eager`];
    /// per-event cost drops to O(Δ log n).
    Lazy,
}

impl SettleMode {
    /// Picks the settlement mode for a run: lazy exactly when nothing
    /// observes per-flow progress between samples — the attached probe
    /// does not request flow fidelity, the scheduler can decide from
    /// settlement-adjusted VOQ views, and the `BASRPT_SETTLE=eager`
    /// escape hatch is unset.
    ///
    /// ```
    /// use dcn_fabric::SettleMode;
    ///
    /// // A fidelity probe (per-flow drain stream) forces eager.
    /// assert_eq!(SettleMode::choose(true, true), SettleMode::Eager);
    /// // A scheduler that must read ground-truth tables forces eager.
    /// assert_eq!(SettleMode::choose(false, false), SettleMode::Eager);
    /// // Otherwise the engine runs lazy (unless BASRPT_SETTLE=eager).
    /// let m = SettleMode::choose(false, true);
    /// assert!(m == SettleMode::Lazy || dcn_fabric::settle_forced_eager());
    /// ```
    pub fn choose(wants_flow_fidelity: bool, supports_lazy_views: bool) -> SettleMode {
        if wants_flow_fidelity || !supports_lazy_views || forced_eager() {
            SettleMode::Eager
        } else {
            SettleMode::Lazy
        }
    }

    /// Whether this is [`SettleMode::Lazy`].
    pub fn is_lazy(self) -> bool {
        matches!(self, SettleMode::Lazy)
    }
}

/// Whether `BASRPT_SETTLE=eager` is set in the environment, read once
/// per process. The knob exists for debugging: it pins every engine to
/// the reference eager path so a suspect lazy run can be re-executed
/// with full per-event settlement and compared bit for bit.
pub fn forced_eager() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("BASRPT_SETTLE")
            .map(|v| v.eq_ignore_ascii_case("eager"))
            .unwrap_or(false)
    })
}

/// The analytic completion instant of `remaining` bytes draining at
/// `rate` from `now`: `now + remaining / rate` (infinite for a zero
/// rate, `now` itself for zero bytes).
///
/// ```
/// use dcn_fabric::settle_completion_instant;
/// use dcn_types::{Rate, SimTime};
///
/// let at = settle_completion_instant(SimTime::ZERO, 1_250_000, Rate::from_gbps(10.0));
/// assert_eq!(at, SimTime::from_millis(1.0)); // 1.25 MB at 1.25 GB/s
/// ```
pub fn completion_instant(now: SimTime, remaining: u64, rate: Rate) -> SimTime {
    now + rate.transfer_time(Bytes::new(remaining))
}

/// Cumulative bytes an epoch anchored at `epoch` with `epoch_remaining`
/// bytes owed, draining at `rate` until `completes_at`, should have
/// settled by `t`. This is the single conversion every settlement path
/// uses: monotone in `t`, capped at `epoch_remaining`, and exactly
/// `epoch_remaining` at (or after) the completion instant, so partial
/// settlements always sum to the epoch's total.
///
/// ```
/// use dcn_fabric::{settle_completion_instant, settle_drain_target};
/// use dcn_types::{Rate, SimTime};
///
/// let rate = Rate::from_gbps(10.0);
/// let done = settle_completion_instant(SimTime::ZERO, 1_250_000, rate);
/// let halfway = settle_drain_target(SimTime::ZERO, done, 1_250_000, rate, SimTime::from_millis(0.5));
/// assert_eq!(halfway, 625_000);
/// assert_eq!(settle_drain_target(SimTime::ZERO, done, 1_250_000, rate, done), 1_250_000);
/// ```
pub fn drain_target(
    epoch: SimTime,
    completes_at: SimTime,
    epoch_remaining: u64,
    rate: Rate,
    t: SimTime,
) -> u64 {
    if t >= completes_at {
        epoch_remaining
    } else {
        rate.bytes_in(t - epoch).as_u64().min(epoch_remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_prefers_lazy_only_when_nothing_needs_eager() {
        assert_eq!(SettleMode::choose(true, true), SettleMode::Eager);
        assert_eq!(SettleMode::choose(true, false), SettleMode::Eager);
        assert_eq!(SettleMode::choose(false, false), SettleMode::Eager);
        if !forced_eager() {
            assert_eq!(SettleMode::choose(false, true), SettleMode::Lazy);
            assert!(SettleMode::choose(false, true).is_lazy());
        }
        assert!(!SettleMode::Eager.is_lazy());
    }

    #[test]
    fn drain_target_is_monotone_and_exact_at_completion() {
        let rate = Rate::from_gbps(10.0);
        let remaining = 999_983u64; // odd size: exercises the floor
        let done = completion_instant(SimTime::ZERO, remaining, rate);
        let mut last = 0;
        for i in 0..=100 {
            let t = SimTime::from_secs(done.as_secs() * (i as f64) / 100.0);
            let target = drain_target(SimTime::ZERO, done, remaining, rate, t);
            assert!(target >= last, "cumulative target must be monotone");
            assert!(target <= remaining);
            last = target;
        }
        assert_eq!(
            drain_target(SimTime::ZERO, done, remaining, rate, done),
            remaining,
            "the completion instant settles the epoch exactly"
        );
    }

    #[test]
    fn zero_rate_never_completes_and_never_drains() {
        let rate = Rate::from_bytes_per_sec(0.0);
        let done = completion_instant(SimTime::ZERO, 10, rate);
        assert_eq!(done, SimTime::INFINITY);
        assert_eq!(
            drain_target(SimTime::ZERO, done, 10, rate, SimTime::from_secs(1e9)),
            0
        );
    }
}
