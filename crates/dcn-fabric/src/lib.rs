//! Event-driven flow-level data-center fabric simulator.
//!
//! This crate stands in for the flow-level simulator the paper's authors
//! wrote in Java (§V-A): a multi-rooted fat-tree fabric
//! ([`FatTree::paper_topology`]: 144 hosts, 12 ToRs, 3 cores, 10 Gbps edge
//! and 40 Gbps core links) driven by the `dcn-workload` traffic pattern and
//! scheduled centrally by any `basrpt_core::Scheduler`.
//!
//! The simulation is *flow-level* and *event-driven*: between events the
//! scheduled flow set is fixed and each selected flow drains at its
//! allocated (line) rate, so the next completion instant is analytic. The
//! scheduling decision is recomputed on every flow arrival and completion,
//! exactly the update rule of the paper's centralized schedulers. With the
//! paper's full-bisection topology the binding constraints are the host
//! NICs, so a decision is a crossbar matching over (source, destination)
//! hosts — the "one big switch" abstraction — while the optional
//! oversubscribed mode additionally enforces per-rack uplink capacity.
//!
//! # Example
//!
//! ```
//! use basrpt_core::Srpt;
//! use dcn_fabric::{simulate, FatTree, SimConfig};
//! use dcn_types::SimTime;
//! use dcn_workload::TrafficSpec;
//!
//! let topo = FatTree::scaled(2, 4, 1)?; // 8 hosts, 1 core
//! let spec = TrafficSpec::scaled(2, 4, 0.5)?;
//! let run = simulate(
//!     &topo,
//!     &mut Srpt::new(),
//!     spec.generator(7)?,
//!     SimConfig::builder().horizon(SimTime::from_secs(0.2)).build(),
//! )?;
//! assert!(run.completions > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod builder;
mod calendar;
mod delta;
mod engine;
mod fairshare;
mod online;
pub mod reference;
mod repflow;
mod settle;
mod shard;
mod topology;

pub use builder::{FabricSim, FabricSimReady, FabricSimSched, FairShareSim, FairShareSimReady};
pub use calendar::CompletionCalendar;
pub use delta::{DeltaAllocator, DeltaOutcome, DeltaStats, LiveViews, SettledDrain};
pub use engine::{simulate, FabricError, FabricRun, SimConfig, SimConfigBuilder};
pub use fairshare::{
    simulate_fair_share, simulate_fair_share_probed, ConstraintSpec, FairShareAllocator,
};
pub use online::{Accepted, FabricSnapshot, OfferError, OnlineFabric, DEFAULT_HIGH_WATERMARK};
pub use repflow::{
    plane_of, simulate_ecmp, simulate_ecmp_probed, simulate_repflow, simulate_repflow_probed,
    RepFlowCompletion, RepFlowRun, RepFlowStats,
};
pub use settle::{
    completion_instant as settle_completion_instant, drain_target as settle_drain_target,
    forced_eager as settle_forced_eager, SettleMode,
};
pub use shard::{
    shards_from_env, simulate_fair_share_sharded, simulate_sharded, CompletionRecord, ShardPlan,
    ShardedRun,
};
pub use topology::{FatTree, KAryFatTree, KAryFatTreeBuilder, Topology, TopologyError};
