//! The streaming, step-able simulation engine: a fabric run as a
//! resumable process.
//!
//! [`simulate`](crate::simulate) consumes a whole arrival stream and
//! returns once the horizon is reached. This module exposes the same
//! engine as an **online state machine**, [`OnlineFabric`]: callers
//! [`offer`](OnlineFabric::offer) arrivals one at a time (with
//! backpressure once the in-flight buffer fills),
//! [`step_until`](OnlineFabric::step_until) the simulated clock forward,
//! [`drain_completions`](OnlineFabric::drain_completions) as flows finish,
//! and [`finish`](OnlineFabric::finish) to obtain the exact
//! [`FabricRun`] the batch driver would have produced. The batch driver is
//! itself a thin wrapper over this type, so the two cannot drift — and
//! `tests/online_differential.rs` pins them bit-identical anyway.
//!
//! A run can also be **suspended and resumed**: [`snapshot`] captures the
//! full engine state — active flows, drain accounts of the scheduled set,
//! metric recorders, clocks, and the in-flight arrival buffer — into a
//! plain-data [`FabricSnapshot`], and [`restore`] rebuilds an engine that
//! continues bit-for-bit as if never interrupted (given the same topology
//! and a scheduler in an equivalent state; the shipped disciplines are
//! stateless across decisions, so a freshly constructed one qualifies).
//!
//! [`snapshot`]: OnlineFabric::snapshot
//! [`restore`]: OnlineFabric::restore
//!
//! # Event semantics
//!
//! The online engine processes events at exactly the instants and in
//! exactly the order of the monolithic loop it was extracted from: at each
//! event instant, completions settle first, then arrivals at (or before)
//! the instant are admitted, then a due sample is taken, and a scheduling
//! decision runs if any flow arrived or completed. Arrivals offered at or
//! past the horizon are ignored, mirroring the batch loop that stopped
//! before admitting them.
//!
//! # Example
//!
//! ```
//! use basrpt_core::Srpt;
//! use dcn_fabric::{FatTree, OnlineFabric, SimConfig};
//! use dcn_types::{Bytes, FlowClass, FlowId, HostId, SimTime, Voq};
//! use dcn_workload::FlowArrival;
//!
//! let topo = FatTree::scaled(2, 4, 1)?;
//! let mut sched = Srpt::new();
//! let config = SimConfig::builder()
//!     .horizon(SimTime::from_secs(0.01))
//!     .build();
//! let mut online = OnlineFabric::new(&topo, &mut sched, config);
//!
//! // 1.25 MB at the 10 Gbps edge rate completes after exactly 1 ms.
//! online.offer(FlowArrival {
//!     id: FlowId::new(0),
//!     time: SimTime::ZERO,
//!     voq: Voq::new(HostId::new(0), HostId::new(1)),
//!     size: Bytes::new(1_250_000),
//!     class: FlowClass::Background,
//! })?;
//! online.step_until(SimTime::from_millis(2.0))?;
//! let done = online.drain_completions();
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].fct, SimTime::from_millis(1.0));
//!
//! let run = online.finish()?;
//! assert_eq!(run.completions, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::delta::{CoreBudgets, DeltaAllocator, DeltaStats, SettledDrain};
use crate::engine::{
    validate_arrival, FabricError, FabricRun, FlowMeta, ScheduledEntry, SimConfig,
};
use crate::settle::SettleMode;
use crate::shard::CompletionRecord;
use crate::topology::Topology;
use basrpt_core::{FlowState, FlowTable, Scheduler};
use dcn_metrics::{FctRecorder, SizeBucketRecorder, ThroughputMeter};
use dcn_probe::{
    ArrivalEvent, BacklogSampler, CompletionEvent, DecisionEvent, DrainEvent, NoProbe, Probe,
    SampleEvent,
};
use dcn_types::{Bytes, SimTime};
use dcn_workload::FlowArrival;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Default bound on the in-flight arrival buffer: past this many offered
/// but not-yet-admitted arrivals, [`OnlineFabric::offer`] reports
/// [`OfferError::Backpressure`] until the caller steps the clock forward.
pub const DEFAULT_HIGH_WATERMARK: usize = 65_536;

/// Outcome of a successful [`OnlineFabric::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accepted {
    /// The arrival joined the in-flight buffer; `in_flight` counts the
    /// buffered arrivals including this one.
    Queued {
        /// Arrivals currently buffered (offered but not yet admitted).
        in_flight: usize,
    },
    /// The arrival lands at or past the horizon and was dropped without
    /// validation — exactly as the batch loop, which stops at the horizon
    /// before admitting it.
    IgnoredAfterHorizon,
}

/// Why [`OnlineFabric::offer`] declined an arrival.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OfferError {
    /// The in-flight buffer is at its high-watermark; step the engine
    /// (draining the buffer into the flow table) and retry.
    Backpressure {
        /// Arrivals currently buffered.
        in_flight: usize,
        /// The configured bound ([`OnlineFabric::high_watermark`]).
        high_watermark: usize,
    },
    /// The arrival is invalid (unknown hosts, self-loop, zero size, or
    /// time running backwards) — the same conditions batch
    /// [`simulate`](crate::simulate) rejects.
    Rejected(FabricError),
    /// The engine already reached its horizon ([`OnlineFabric::finish`]
    /// is the only remaining useful call).
    Finished,
}

impl fmt::Display for OfferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfferError::Backpressure {
                in_flight,
                high_watermark,
            } => write!(
                f,
                "backpressure: {in_flight} arrivals in flight (high-watermark {high_watermark})"
            ),
            OfferError::Rejected(e) => write!(f, "{e}"),
            OfferError::Finished => write!(f, "the engine already reached its horizon"),
        }
    }
}

impl Error for OfferError {}

/// Metadata of one active flow, keyed explicitly for snapshots.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct MetaRecord {
    flow: dcn_types::FlowId,
    class: dcn_types::FlowClass,
    size: Bytes,
    arrival: SimTime,
}

/// A suspended [`OnlineFabric`]: every piece of engine state needed to
/// continue a run bit-for-bit, as plain data.
///
/// Produced by [`OnlineFabric::snapshot`], consumed by
/// [`OnlineFabric::restore`] / [`restore_with_probe`]. The snapshot
/// carries the active flows (with exact remaining bytes), the scheduled
/// set's drain accounts (epoch-anchored, so restored completions land on
/// the same analytic instants), the in-flight arrival buffer, all metric
/// recorders and sampled series, and the engine clocks and counters. It
/// does **not** carry the topology or the scheduler: restore onto the
/// same topology (checked structurally as far as host membership allows)
/// and a scheduler in an equivalent state — the shipped disciplines keep
/// no state across decisions, so a freshly built one is equivalent.
///
/// The type derives the workspace's (vendored) `serde` traits.
///
/// [`restore_with_probe`]: OnlineFabric::restore_with_probe
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricSnapshot {
    config: SimConfig,
    /// Active flows, sorted by id; `metas` is index-aligned.
    flows: Vec<FlowState>,
    metas: Vec<MetaRecord>,
    /// Live scheduled entries in schedule-priority order.
    entries: Vec<ScheduledEntry>,
    alloc_stats: DeltaStats,
    pending: Vec<FlowArrival>,
    fct: FctRecorder,
    fct_by_size: SizeBucketRecorder,
    throughput: ThroughputMeter,
    sampler: BacklogSampler,
    clock: SimTime,
    next_sample: SimTime,
    last_arrival_time: SimTime,
    arrivals: usize,
    completions: usize,
    arrived_bytes: Bytes,
    reschedules: u64,
    finished: bool,
    high_watermark: usize,
    collect_completions: bool,
    completed: Vec<CompletionRecord>,
}

impl FabricSnapshot {
    /// The simulated instant at which the engine was snapshotted.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of active (not yet completed) flows captured.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of offered-but-not-admitted arrivals captured.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

/// The step-able online fabric engine — one simulation run as a resumable
/// state machine (see the module docs in `online.rs` for the protocol and an
/// example).
///
/// Obtained from [`OnlineFabric::new`] / [`with_probe`], from the
/// [`FabricSim`](crate::FabricSim) builder via
/// [`online`](crate::FabricSimSched::online), or from a
/// [`FabricSnapshot`] via [`restore`](OnlineFabric::restore).
///
/// [`with_probe`]: OnlineFabric::with_probe
#[derive(Debug)]
pub struct OnlineFabric<'t, 's, T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe = NoProbe> {
    topo: &'t T,
    scheduler: &'s mut S,
    probe: P,
    config: SimConfig,
    enforce_core: bool,
    /// When scheduled accounts convert into table drains. Chosen once at
    /// construction ([`SettleMode::choose`]) and not serialized — restore
    /// re-derives it from the restored probe and scheduler, which is
    /// unobservable because the flow table always mirrors the settled
    /// accounts exactly, in either mode.
    mode: SettleMode,
    table: FlowTable,
    meta: HashMap<dcn_types::FlowId, FlowMeta>,
    alloc: DeltaAllocator,
    budgets: CoreBudgets,
    /// Reusable scratch for settled drains, so the hot per-event path
    /// never allocates (the allocator cannot call back into `self` while
    /// it is mutably borrowed, so drains are staged here first).
    drain_buf: Vec<SettledDrain>,
    fct: FctRecorder,
    fct_by_size: SizeBucketRecorder,
    throughput: ThroughputMeter,
    sampler: BacklogSampler,
    arrivals: usize,
    completions: usize,
    arrived_bytes: Bytes,
    reschedules: u64,
    clock: SimTime,
    next_sample: SimTime,
    last_arrival_time: SimTime,
    /// Offered arrivals not yet admitted into the flow table, in offer
    /// order (offers are time-ordered, so this is also time order).
    pending: VecDeque<FlowArrival>,
    high_watermark: usize,
    collect_completions: bool,
    completed: Vec<CompletionRecord>,
    finished: bool,
}

impl<'t, 's, T: Topology + ?Sized, S: Scheduler + ?Sized> OnlineFabric<'t, 's, T, S, NoProbe> {
    /// Creates an idle engine at `t = 0` with no observer attached.
    pub fn new(topo: &'t T, scheduler: &'s mut S, config: SimConfig) -> Self {
        Self::with_probe(topo, scheduler, config, NoProbe)
    }

    /// Rebuilds an engine from a [`FabricSnapshot`] with no observer
    /// attached — see [`restore_with_probe`] for the contract.
    ///
    /// [`restore_with_probe`]: OnlineFabric::restore_with_probe
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadConfig`] when the snapshot is internally
    /// inconsistent or references hosts outside `topo`.
    pub fn restore(
        topo: &'t T,
        scheduler: &'s mut S,
        snapshot: FabricSnapshot,
    ) -> Result<Self, FabricError> {
        Self::restore_with_probe(topo, scheduler, NoProbe, snapshot)
    }
}

impl<'t, 's, T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe> OnlineFabric<'t, 's, T, S, P> {
    /// Creates an idle engine at `t = 0` whose event stream feeds `probe`.
    pub fn with_probe(topo: &'t T, scheduler: &'s mut S, config: SimConfig, probe: P) -> Self {
        let edge_rate = topo.edge_rate();
        let enforce_core = config.enforce_core_capacity || !topo.is_full_bisection();
        let mode = SettleMode::choose(probe.wants_flow_fidelity(), scheduler.supports_lazy_views());
        OnlineFabric {
            topo,
            scheduler,
            probe,
            config,
            enforce_core,
            mode,
            table: FlowTable::new(),
            meta: HashMap::new(),
            alloc: DeltaAllocator::new(edge_rate),
            budgets: CoreBudgets::default(),
            drain_buf: Vec::new(),
            fct: FctRecorder::new(),
            fct_by_size: SizeBucketRecorder::pfabric_buckets(),
            throughput: ThroughputMeter::new(),
            sampler: BacklogSampler::new(config.monitored_port),
            arrivals: 0,
            completions: 0,
            arrived_bytes: Bytes::ZERO,
            reschedules: 0,
            clock: SimTime::ZERO,
            next_sample: SimTime::ZERO,
            last_arrival_time: SimTime::ZERO,
            pending: VecDeque::new(),
            high_watermark: DEFAULT_HIGH_WATERMARK,
            collect_completions: true,
            completed: Vec::new(),
            finished: false,
        }
    }

    /// Rebuilds an engine from a [`FabricSnapshot`], feeding subsequent
    /// events to `probe`.
    ///
    /// The caller supplies the topology and scheduler the snapshot was
    /// taken under (neither is serialized). With the same topology and an
    /// equivalently-stated scheduler, the restored engine's remaining
    /// events, completions, series points, and final [`FabricRun`] are
    /// bit-identical to the uninterrupted run — the contract pinned by
    /// `tests/online_differential.rs`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadConfig`] when the snapshot is internally
    /// inconsistent (duplicate flows, drain accounts that disagree with
    /// the flow table, dangling metadata) or references hosts outside
    /// `topo`.
    pub fn restore_with_probe(
        topo: &'t T,
        scheduler: &'s mut S,
        probe: P,
        snapshot: FabricSnapshot,
    ) -> Result<Self, FabricError> {
        let bad = |msg: String| FabricError::BadConfig(format!("bad snapshot: {msg}"));
        let edge_rate = topo.edge_rate();
        let enforce_core = snapshot.config.enforce_core_capacity || !topo.is_full_bisection();

        let mut table = FlowTable::new();
        for flow in &snapshot.flows {
            if !topo.contains(flow.voq().src()) || !topo.contains(flow.voq().dst()) {
                return Err(bad(format!(
                    "flow {} uses hosts outside the {}-host topology",
                    flow.id(),
                    topo.num_hosts()
                )));
            }
            table.insert(*flow).map_err(|e| bad(e.to_string()))?;
        }

        if snapshot.metas.len() != snapshot.flows.len() {
            return Err(bad(format!(
                "{} metadata records for {} flows",
                snapshot.metas.len(),
                snapshot.flows.len()
            )));
        }
        let mut meta = HashMap::with_capacity(snapshot.metas.len());
        for m in &snapshot.metas {
            if table.get(m.flow).is_none() {
                return Err(bad(format!("metadata for unknown flow {}", m.flow)));
            }
            let prev = meta.insert(
                m.flow,
                FlowMeta {
                    class: m.class,
                    size: m.size,
                    arrival: m.arrival,
                },
            );
            if prev.is_some() {
                return Err(bad(format!("duplicate metadata for flow {}", m.flow)));
            }
        }

        let mut seen = HashSet::with_capacity(snapshot.entries.len());
        for e in &snapshot.entries {
            let flow = table
                .get(e.flow)
                .ok_or_else(|| bad(format!("scheduled entry for unknown flow {}", e.flow)))?;
            if !seen.insert(e.flow) {
                return Err(bad(format!("flow {} scheduled twice", e.flow)));
            }
            if e.settled >= e.epoch_remaining {
                return Err(bad(format!(
                    "flow {} snapshotted fully settled (tombstones are never captured)",
                    e.flow
                )));
            }
            if flow.remaining() != e.epoch_remaining - e.settled {
                return Err(bad(format!(
                    "flow {} drain account disagrees with the flow table \
                     ({} remaining vs {} owed)",
                    e.flow,
                    flow.remaining(),
                    e.epoch_remaining - e.settled
                )));
            }
        }
        let alloc = DeltaAllocator::restore(edge_rate, snapshot.entries, snapshot.alloc_stats);
        let mode = SettleMode::choose(probe.wants_flow_fidelity(), scheduler.supports_lazy_views());

        Ok(OnlineFabric {
            topo,
            scheduler,
            probe,
            config: snapshot.config,
            enforce_core,
            mode,
            table,
            meta,
            alloc,
            budgets: CoreBudgets::default(),
            drain_buf: Vec::new(),
            fct: snapshot.fct,
            fct_by_size: snapshot.fct_by_size,
            throughput: snapshot.throughput,
            sampler: snapshot.sampler,
            arrivals: snapshot.arrivals,
            completions: snapshot.completions,
            arrived_bytes: snapshot.arrived_bytes,
            reschedules: snapshot.reschedules,
            clock: snapshot.clock,
            next_sample: snapshot.next_sample,
            last_arrival_time: snapshot.last_arrival_time,
            pending: snapshot.pending.into(),
            high_watermark: snapshot.high_watermark,
            collect_completions: snapshot.collect_completions,
            completed: snapshot.completed,
            finished: snapshot.finished,
        })
    }

    /// Replaces the in-flight buffer bound (builder style; default
    /// [`DEFAULT_HIGH_WATERMARK`]). `usize::MAX` disables backpressure.
    pub fn high_watermark(mut self, limit: usize) -> Self {
        self.high_watermark = limit;
        self
    }

    /// Sets whether completions are recorded for
    /// [`drain_completions`](OnlineFabric::drain_completions) (builder
    /// style; default `true`). Callers that only want the final
    /// [`FabricRun`] can switch this off so an undrained engine never
    /// accumulates an unbounded completion log — the batch wrapper does.
    pub fn collect_completions(mut self, collect: bool) -> Self {
        self.collect_completions = collect;
        self
    }

    /// Pins this engine to eager settlement (builder style): every
    /// scheduled account settles on every event, as the reference engines
    /// do, regardless of the probe and scheduler. The output is
    /// bit-identical to the lazy path — this is the programmatic twin of
    /// the `BASRPT_SETTLE=eager` debugging knob, used by the differential
    /// suites and benches to compare both paths in one process. Only the
    /// eager direction can be forced; laziness is never forced onto a
    /// scheduler or probe that needs ground-truth tables.
    pub fn force_eager_settle(mut self) -> Self {
        self.mode = SettleMode::Eager;
        self
    }

    /// The settlement mode this engine runs under.
    pub fn settle_mode(&self) -> SettleMode {
        self.mode
    }

    /// Offers one arrival to the engine.
    ///
    /// Arrivals must be offered in non-decreasing time order (the same
    /// contract batch [`simulate`](crate::simulate) enforces) and are
    /// buffered until the clock steps up to their arrival instant.
    ///
    /// # Errors
    ///
    /// [`OfferError::Backpressure`] when the in-flight buffer is at its
    /// high-watermark (step the engine, then retry),
    /// [`OfferError::Rejected`] when the arrival itself is invalid, and
    /// [`OfferError::Finished`] once the horizon has been reached.
    pub fn offer(&mut self, arrival: FlowArrival) -> Result<Accepted, OfferError> {
        if self.finished {
            return Err(OfferError::Finished);
        }
        if arrival.time >= self.config.horizon {
            // The batch loop stops at the horizon before admitting (or
            // even validating) such an arrival; mirror it exactly.
            return Ok(Accepted::IgnoredAfterHorizon);
        }
        if self.pending.len() >= self.high_watermark {
            return Err(OfferError::Backpressure {
                in_flight: self.pending.len(),
                high_watermark: self.high_watermark,
            });
        }
        validate_arrival(self.topo, &arrival, self.last_arrival_time)
            .map_err(OfferError::Rejected)?;
        if arrival.time < self.clock {
            return Err(OfferError::Rejected(FabricError::BadArrival(format!(
                "flow {} arrives at {} but the engine already stepped to {}",
                arrival.id, arrival.time, self.clock
            ))));
        }
        self.last_arrival_time = arrival.time;
        self.pending.push_back(arrival);
        Ok(Accepted::Queued {
            in_flight: self.pending.len(),
        })
    }

    /// The instant of the next internal event: the earliest of the first
    /// buffered arrival, the next scheduled completion, the next sample
    /// point, and the horizon. Always finite (at most the horizon).
    fn next_event_time(&mut self) -> SimTime {
        self.pending
            .front()
            .map_or(SimTime::INFINITY, |a| a.time)
            .min(self.alloc.next_completion())
            .min(self.next_sample)
            .min(self.config.horizon)
    }

    fn step_while(
        &mut self,
        mut keep_going: impl FnMut(SimTime) -> bool,
    ) -> Result<u64, FabricError> {
        let mut steps = 0;
        while !self.finished {
            let t = self.next_event_time();
            if !keep_going(t) {
                break;
            }
            self.advance_to(t)?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Processes every internal event at instants `<= limit`, returning
    /// how many event instants were processed. The clock never moves past
    /// the earliest pending event, so stepping far beyond the last offered
    /// arrival is safe — the engine stops at the horizon.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadArrival`] if a buffered arrival's flow id
    /// collides with an active flow (the only admission failure left after
    /// [`offer`](OnlineFabric::offer) validation).
    pub fn step_until(&mut self, limit: SimTime) -> Result<u64, FabricError> {
        self.step_while(|t| t <= limit)
    }

    /// Processes every internal event at instants strictly before
    /// `limit` — the batch wrapper's primitive: stepping strictly before
    /// the next arrival's instant leaves same-instant completions and
    /// samples to coalesce with that arrival into a single event, exactly
    /// as the monolithic loop ordered them.
    ///
    /// # Errors
    ///
    /// As [`step_until`](OnlineFabric::step_until).
    pub fn step_before(&mut self, limit: SimTime) -> Result<u64, FabricError> {
        self.step_while(|t| t < limit)
    }

    /// Applies one settled drain to the flow table, meters, recorders,
    /// and observers — the one body every settlement site (per-event,
    /// observation-point, and eviction) routes through.
    fn apply_drain(&mut self, t: SimTime, drain: SettledDrain) {
        let outcome = self
            .table
            .drain(drain.flow, drain.amount)
            .expect("scheduled flow is active");
        debug_assert_eq!(outcome.drained, drain.amount, "exact drain cannot be short");
        self.throughput.deliver(Bytes::new(outcome.drained));
        let ev = DrainEvent {
            time: t.as_secs(),
            flow: drain.flow,
            voq: drain.voq,
            amount: outcome.drained,
        };
        self.sampler.on_drain(&ev);
        self.probe.on_drain(&ev);
        if let Some(done) = outcome.completed {
            let info = self
                .meta
                .remove(&drain.flow)
                .expect("active flow has metadata");
            let flow_fct = t - info.arrival + self.config.base_latency;
            self.fct.record(info.class, info.size, flow_fct);
            self.fct_by_size.record(info.size, flow_fct);
            let ev = CompletionEvent {
                time: t.as_secs(),
                flow: drain.flow,
                voq: drain.voq,
                size: info.size.as_u64(),
                fct: flow_fct.as_secs(),
            };
            self.sampler.on_completion(&ev);
            self.probe.on_completion(&ev);
            if self.collect_completions {
                self.completed.push(CompletionRecord {
                    flow: drain.flow,
                    time: t,
                    voq: drain.voq,
                    class: info.class,
                    size: info.size,
                    fct: flow_fct,
                });
            }
            self.completions += 1;
            debug_assert_eq!(drain.voq, done.voq());
            debug_assert!(drain.completed);
        }
    }

    /// Runs one event instant `t`: settle completions, admit due
    /// arrivals, sample, reschedule — the batch loop body, verbatim.
    fn advance_to(&mut self, t: SimTime) -> Result<(), FabricError> {
        let elapsed = t - self.clock;
        let mut completed_any = false;
        if elapsed > SimTime::ZERO {
            // Eager mode settles every account on every event. Lazy mode
            // settles only the due completions — unless this instant is an
            // observation point (a sample fires here, or the horizon is
            // reached and the final table state is about to be read), where
            // every account must be exact at once.
            let observe_all =
                !self.mode.is_lazy() || self.next_sample <= t || t >= self.config.horizon;
            let mut drains = std::mem::take(&mut self.drain_buf);
            drains.clear();
            completed_any = if observe_all {
                self.alloc.settle(t, |d| drains.push(d))
            } else {
                self.alloc.settle_due(t, |d| drains.push(d))
            };
            for drain in drains.drain(..) {
                self.apply_drain(t, drain);
            }
            self.drain_buf = drains;
        }
        self.clock = t;

        if self.clock >= self.config.horizon {
            self.finished = true;
            return Ok(());
        }

        // Arrivals landing at (or before) the current instant.
        let mut arrived_any = false;
        while let Some(arrival) = self.pending.front() {
            if arrival.time > self.clock {
                break;
            }
            let arrival = self.pending.pop_front().expect("checked above");
            self.table
                .insert(FlowState::new(
                    arrival.id,
                    arrival.voq,
                    arrival.size.as_u64(),
                ))
                .map_err(|e| FabricError::BadArrival(e.to_string()))?;
            self.meta.insert(
                arrival.id,
                FlowMeta {
                    class: arrival.class,
                    size: arrival.size,
                    arrival: arrival.time,
                },
            );
            self.arrivals += 1;
            self.arrived_bytes += arrival.size;
            arrived_any = true;
            let ev = ArrivalEvent {
                time: arrival.time.as_secs(),
                flow: arrival.id,
                voq: arrival.voq,
                size: arrival.size.as_u64(),
            };
            self.sampler.on_arrival(&ev);
            self.probe.on_arrival(&ev);
        }

        // Sampling (after same-instant arrivals, so a t = 0 sample records
        // the admitted backlog, not a spurious zero).
        if self.next_sample <= self.clock {
            let ev = SampleEvent {
                time: self.clock.as_secs(),
                table: &self.table,
                delivered: self.throughput.delivered().as_f64(),
            };
            self.sampler.on_sample(&ev);
            self.probe.on_sample(&ev);
            self.next_sample += self.config.sample_every;
        }

        // Reschedule on arrival or completion (the paper's update rule).
        if arrived_any || completed_any {
            let wants_timing =
                self.sampler.wants_decision_timing() || self.probe.wants_decision_timing();
            let started = wants_timing.then(Instant::now);
            // Lazy mode decides from settlement-adjusted VOQ views — the
            // exact views an eagerly settled table would serve — so the
            // stale table never leaks into a decision.
            let schedule = if self.mode.is_lazy() {
                self.scheduler
                    .schedule_adjusted(&self.table, &self.alloc.live_views(self.clock))
            } else {
                self.scheduler.schedule(&self.table)
            };
            let latency = started.map(|s| s.elapsed());
            let ev = DecisionEvent {
                time: self.clock.as_secs(),
                schedule: &schedule,
                latency,
            };
            self.sampler.on_decision(&ev);
            self.probe.on_decision(&ev);
            let selected = if self.enforce_core {
                self.budgets.filter(self.topo, schedule.iter()).to_vec()
            } else {
                schedule.into_pairs()
            };
            // Entrants' remaining bytes are exact in the stale table too:
            // a flow entering the scheduled set was not transmitting, so
            // it has no unsettled drains. Evicted flows settle their
            // unsettled progress on the way out (staged, then applied —
            // the allocator is mutably borrowed during `apply`).
            let table = &self.table;
            let remaining = |id| table.get(id).expect("scheduled flow is active").remaining();
            let mut evicted = std::mem::take(&mut self.drain_buf);
            evicted.clear();
            self.alloc
                .apply(self.clock, selected, remaining, |d| evicted.push(d));
            let t = self.clock;
            for drain in evicted.drain(..) {
                debug_assert!(!drain.completed, "evictions never complete a flow");
                self.apply_drain(t, drain);
            }
            self.drain_buf = evicted;
            self.reschedules += 1;
        }
        Ok(())
    }

    /// Takes the completions recorded since the last call (or since
    /// construction), in completion order. Empty when
    /// [`collect_completions`](OnlineFabric::collect_completions) is off.
    pub fn drain_completions(&mut self) -> Vec<CompletionRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Runs the engine to its horizon and returns the run measurements —
    /// bit-identical to batch [`simulate`](crate::simulate) over the same
    /// offered arrivals.
    ///
    /// # Errors
    ///
    /// As [`step_until`](OnlineFabric::step_until).
    pub fn finish(mut self) -> Result<FabricRun, FabricError> {
        self.step_until(self.config.horizon)?;
        debug_assert!(self.finished, "the horizon event marks the engine finished");
        let series = self.sampler.into_series();
        Ok(FabricRun {
            fct: self.fct,
            fct_by_size: self.fct_by_size,
            throughput: self.throughput,
            total_backlog: series.total_backlog,
            monitored_port_backlog: series.monitored_port_backlog,
            max_port_backlog: series.max_port_backlog,
            cumulative_delivered: series.cumulative_delivered,
            arrivals: self.arrivals,
            completions: self.completions,
            arrived_bytes: self.arrived_bytes,
            leftover_bytes: Bytes::new(self.table.total_backlog()),
            leftover_flows: self.table.len(),
            reschedules: self.reschedules,
            horizon: self.config.horizon,
        })
    }

    /// Captures the full engine state as a [`FabricSnapshot`]. The engine
    /// is untouched and can keep running; the snapshot restores (onto the
    /// same topology and an equivalently-stated scheduler) to an engine
    /// that continues bit-for-bit.
    pub fn snapshot(&self) -> FabricSnapshot {
        let mut flows: Vec<FlowState> = self.table.iter().copied().collect();
        flows.sort_by_key(|f| f.id());
        let metas = flows
            .iter()
            .map(|f| {
                let info = self.meta.get(&f.id()).expect("active flow has metadata");
                MetaRecord {
                    flow: f.id(),
                    class: info.class,
                    size: info.size,
                    arrival: info.arrival,
                }
            })
            .collect();
        FabricSnapshot {
            config: self.config,
            flows,
            metas,
            entries: self.alloc.snapshot_entries(),
            alloc_stats: self.alloc.stats(),
            pending: self.pending.iter().copied().collect(),
            fct: self.fct.clone(),
            fct_by_size: self.fct_by_size.clone(),
            throughput: self.throughput,
            sampler: self.sampler.clone(),
            clock: self.clock,
            next_sample: self.next_sample,
            last_arrival_time: self.last_arrival_time,
            arrivals: self.arrivals,
            completions: self.completions,
            arrived_bytes: self.arrived_bytes,
            reschedules: self.reschedules,
            finished: self.finished,
            high_watermark: self.high_watermark,
            collect_completions: self.collect_completions,
            completed: self.completed.clone(),
        }
    }

    /// The current simulated instant (the last processed event's time).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Whether the horizon has been reached; once `true`, only
    /// [`drain_completions`](OnlineFabric::drain_completions),
    /// [`snapshot`](OnlineFabric::snapshot) and
    /// [`finish`](OnlineFabric::finish) remain useful.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Arrivals offered but not yet admitted into the flow table.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Number of currently active (admitted, not completed) flows.
    pub fn active_flows(&self) -> usize {
        self.table.len()
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Cumulative delta-rescheduling statistics so far.
    pub fn delta_stats(&self) -> DeltaStats {
        self.alloc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FatTree;
    use basrpt_core::Srpt;
    use dcn_types::{FlowClass, FlowId, HostId, Voq};

    fn arrival(id: u64, t: f64, src: u32, dst: u32, size: u64) -> FlowArrival {
        FlowArrival {
            id: FlowId::new(id),
            time: SimTime::from_secs(t),
            voq: Voq::new(HostId::new(src), HostId::new(dst)),
            size: Bytes::new(size),
            class: FlowClass::Background,
        }
    }

    fn small_topo() -> FatTree {
        FatTree::scaled(2, 4, 1).unwrap()
    }

    fn config(horizon_s: f64) -> SimConfig {
        SimConfig::builder()
            .horizon(SimTime::from_secs(horizon_s))
            .build()
    }

    #[test]
    fn offer_step_finish_matches_batch_counters() {
        let topo = small_topo();
        let mut sched = Srpt::new();
        let mut online = OnlineFabric::new(&topo, &mut sched, config(0.01));
        online.offer(arrival(0, 0.0, 0, 1, 1_250_000)).unwrap();
        assert_eq!(online.in_flight(), 1);
        online.step_until(SimTime::from_millis(2.0)).unwrap();
        assert_eq!(online.in_flight(), 0);
        // The clock sits at the last processed event instant, at or before
        // the step limit but past the 1 ms completion.
        assert!(online.clock() >= SimTime::from_millis(1.0));
        assert!(online.clock() <= SimTime::from_millis(2.0));
        let done = online.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].fct, SimTime::from_millis(1.0));
        assert_eq!(done[0].size, Bytes::new(1_250_000));
        let run = online.finish().unwrap();
        assert_eq!(run.completions, 1);
        assert_eq!(run.leftover_flows, 0);
    }

    #[test]
    fn backpressure_trips_at_the_watermark_and_clears_after_stepping() {
        let topo = small_topo();
        let mut sched = Srpt::new();
        let mut online = OnlineFabric::new(&topo, &mut sched, config(1.0)).high_watermark(2);
        online.offer(arrival(0, 0.001, 0, 1, 100)).unwrap();
        online.offer(arrival(1, 0.002, 2, 3, 100)).unwrap();
        let err = online.offer(arrival(2, 0.003, 4, 5, 100)).unwrap_err();
        assert_eq!(
            err,
            OfferError::Backpressure {
                in_flight: 2,
                high_watermark: 2
            }
        );
        online.step_until(SimTime::from_secs(0.0025)).unwrap();
        assert_eq!(online.in_flight(), 0);
        assert!(matches!(
            online.offer(arrival(2, 0.003, 4, 5, 100)),
            Ok(Accepted::Queued { in_flight: 1 })
        ));
    }

    #[test]
    fn arrivals_at_or_past_the_horizon_are_ignored() {
        let topo = small_topo();
        let mut sched = Srpt::new();
        let mut online = OnlineFabric::new(&topo, &mut sched, config(0.01));
        assert_eq!(
            online.offer(arrival(0, 0.01, 0, 1, 100)).unwrap(),
            Accepted::IgnoredAfterHorizon
        );
        // Dropped without validation — even an invalid self-loop passes.
        let mut bad = arrival(1, 0.5, 3, 3, 0);
        bad.size = Bytes::ZERO;
        assert_eq!(online.offer(bad).unwrap(), Accepted::IgnoredAfterHorizon);
        let run = online.finish().unwrap();
        assert_eq!(run.arrivals, 0);
    }

    #[test]
    fn offers_after_finish_report_finished() {
        let topo = small_topo();
        let mut sched = Srpt::new();
        let mut online = OnlineFabric::new(&topo, &mut sched, config(0.01));
        online.step_until(SimTime::from_secs(1.0)).unwrap();
        assert!(online.is_finished());
        assert_eq!(
            online.offer(arrival(0, 0.001, 0, 1, 100)).unwrap_err(),
            OfferError::Finished
        );
    }

    #[test]
    fn invalid_arrivals_are_rejected_at_offer_time() {
        let topo = small_topo();
        let mut sched = Srpt::new();
        let mut online = OnlineFabric::new(&topo, &mut sched, config(1.0));
        assert!(matches!(
            online.offer(arrival(0, 0.1, 0, 0, 100)),
            Err(OfferError::Rejected(FabricError::BadArrival(_)))
        ));
        online.offer(arrival(1, 0.2, 0, 1, 100)).unwrap();
        // Time must not run backwards across offers.
        assert!(matches!(
            online.offer(arrival(2, 0.1, 2, 3, 100)),
            Err(OfferError::Rejected(FabricError::BadArrival(_)))
        ));
    }

    #[test]
    fn snapshot_restore_midrun_continues_to_the_same_run() {
        let topo = small_topo();
        let workload = vec![
            arrival(0, 0.0, 0, 1, 1_250_000),
            arrival(1, 0.0002, 2, 1, 600_000),
            arrival(2, 0.0005, 4, 5, 2_000_000),
            arrival(3, 0.0011, 6, 7, 40_000),
        ];

        let mut sched_a = Srpt::new();
        let mut uninterrupted = OnlineFabric::new(&topo, &mut sched_a, config(0.01));
        for a in &workload {
            uninterrupted.offer(*a).unwrap();
        }
        let want = uninterrupted.finish().unwrap();

        let mut sched_b = Srpt::new();
        let mut first = OnlineFabric::new(&topo, &mut sched_b, config(0.01));
        for a in &workload[..2] {
            first.offer(*a).unwrap();
        }
        first.step_until(SimTime::from_secs(0.0004)).unwrap();
        let snap = first.snapshot();
        assert!(snap.active_flows() > 0);
        let snap_clock = first.clock();
        drop(first);

        let mut sched_c = Srpt::new();
        let mut resumed = OnlineFabric::restore(&topo, &mut sched_c, snap).unwrap();
        assert_eq!(resumed.clock(), snap_clock);
        for a in &workload[2..] {
            resumed.offer(*a).unwrap();
        }
        let got = resumed.finish().unwrap();

        assert_eq!(got.completions, want.completions);
        assert_eq!(got.arrivals, want.arrivals);
        assert_eq!(got.reschedules, want.reschedules);
        assert_eq!(got.throughput.delivered(), want.throughput.delivered());
        assert_eq!(
            got.total_backlog.values(),
            want.total_backlog.values(),
            "restored series must continue bit-for-bit"
        );
    }

    #[test]
    fn lazy_and_eager_settlement_agree_bitwise() {
        let topo = small_topo();
        // Contention on egress 1 forces SRPT preemptions (evictions with
        // unsettled bytes), completions exercise due-settlement, and the
        // default sample cadence exercises observation-point settlement.
        let workload = vec![
            arrival(0, 0.0, 0, 1, 2_000_000),
            arrival(1, 0.0002, 2, 1, 300_000),
            arrival(2, 0.0003, 4, 1, 100_000),
            arrival(3, 0.0004, 0, 5, 400_000),
            arrival(4, 0.0007, 6, 7, 1_250_000),
            arrival(5, 0.0012, 2, 3, 50_000),
        ];

        let run = |force_eager: bool| {
            let mut sched = Srpt::new();
            let mut online = OnlineFabric::new(&topo, &mut sched, config(0.01));
            if force_eager {
                online = online.force_eager_settle();
            }
            for a in &workload {
                online.offer(*a).unwrap();
            }
            (online.settle_mode(), online.finish().unwrap())
        };

        let (lazy_mode, lazy) = run(false);
        let (eager_mode, eager) = run(true);
        assert_eq!(eager_mode, SettleMode::Eager);
        if !crate::settle::forced_eager() {
            assert_eq!(lazy_mode, SettleMode::Lazy, "SRPT + NoProbe runs lazy");
        }

        assert_eq!(lazy.arrivals, eager.arrivals);
        assert_eq!(lazy.completions, eager.completions);
        assert_eq!(lazy.reschedules, eager.reschedules);
        assert_eq!(lazy.throughput.delivered(), eager.throughput.delivered());
        assert_eq!(lazy.leftover_bytes, eager.leftover_bytes);
        assert_eq!(lazy.leftover_flows, eager.leftover_flows);
        assert_eq!(lazy.total_backlog.values(), eager.total_backlog.values());
        assert_eq!(
            lazy.cumulative_delivered.values(),
            eager.cumulative_delivered.values()
        );
        assert_eq!(
            lazy.max_port_backlog.values(),
            eager.max_port_backlog.values()
        );
        assert_eq!(lazy.fct.overall_summary(), eager.fct.overall_summary());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let topo = small_topo();
        let mut sched = Srpt::new();
        let mut online = OnlineFabric::new(&topo, &mut sched, config(0.01));
        online.offer(arrival(0, 0.0, 0, 1, 1_250_000)).unwrap();
        online.step_until(SimTime::from_secs(0.0001)).unwrap();
        let snap = online.snapshot();
        drop(online);

        // A smaller topology no longer contains the snapshot's hosts.
        let tiny = FatTree::scaled(1, 1, 1).unwrap();
        let mut sched2 = Srpt::new();
        let err = OnlineFabric::restore(&tiny, &mut sched2, snap.clone()).unwrap_err();
        assert!(matches!(err, FabricError::BadConfig(_)), "{err}");

        // Corrupting the drain account must be caught.
        let mut broken = snap;
        broken.entries[0].settled += 1;
        let mut sched3 = Srpt::new();
        let err = OnlineFabric::restore(&topo, &mut sched3, broken).unwrap_err();
        assert!(matches!(err, FabricError::BadConfig(_)), "{err}");
    }
}
