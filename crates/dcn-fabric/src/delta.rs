//! Delta-rate rescheduling: per-event work proportional to the flows
//! whose allocated rate actually changed, not to every scheduled flow.
//!
//! On every arrival and completion the paper's update rule recomputes the
//! crossbar matching from scratch. The *schedule* must be recomputed — the
//! discipline's ranking is global — but the *rate allocation* it implies
//! usually barely moves: in steady state a reschedule keeps almost every
//! previously selected flow transmitting at the same (line) rate, and only
//! the flows sharing a bottleneck port with the triggering arrival or
//! completion — the affected frontier — enter or leave the transmitting
//! set. The seed engine nevertheless paid `O(n)` per event to re-bind the
//! whole allocation: it rebuilt the carry-over map of drain epochs, the
//! scheduled-entry vector, *and* the completion calendar's live map on
//! every decision (`calendar_reschedule_unchanged` in
//! `results/bench.json`: 1.9 µs at 64 scheduled flows, 122 µs at 4096 —
//! linear in `n` even when nothing changed).
//!
//! [`DeltaAllocator`] is the persistent replacement. It keeps the
//! allocation state alive across events:
//!
//! * the **priority-order entry vector** — every scheduled flow's exact
//!   byte account (drain epoch, settled bytes, completion instant; see
//!   `ScheduledEntry` in `engine.rs`), contiguous and in schedule order,
//!   so drains settle as a straight cache-friendly scan in exactly the
//!   order the reference engine emits them;
//! * a **flow index** `flow → (position, generation)` — membership and
//!   stay-detection only, never touched while settling;
//! * the indexed [`CompletionCalendar`], edited **only** through its
//!   targeted [`update`](CompletionCalendar::update) /
//!   [`remove`](CompletionCalendar::remove) API.
//!
//! [`apply`](DeltaAllocator::apply) takes the freshly computed matching
//! and computes the allocation delta with a generation sweep: flows
//! already live are re-stamped and their account copied to its new
//! priority position (epoch, byte account, and calendar entry survive —
//! one hash probe and a few dozen bytes of memcpy per kept flow, zero
//! calendar or heap churn); flows entering open a fresh drain epoch and
//! push one calendar entry; flows of the previous schedule whose stamp is
//! stale have left and are evicted from the index and calendar. The cost
//! is `O(|schedule|)` stamps plus `O(Δ log n)` calendar edits — and the
//! calendar work is what used to be the linear term, so per-event
//! reschedule cost is flat in the total flow count (the
//! `delta_reschedule` bench group pins this).
//!
//! The change-log cursors and champion index of `basrpt-core` (PR 5) play
//! the same role one layer down: they make the *decision* incremental,
//! while this module makes the *binding* of the decision incremental. Run
//! an [`IncrementalScheduler`](basrpt_core::IncrementalScheduler) inside
//! the delta engine and every layer of the per-event path is
//! `O(affected)`; `PERFMODEL.md` has the full cost model.
//!
//! The full-recompute binding survives as [`crate::reference`] and the
//! differential suites (`tests/delta_differential.rs`,
//! `tests/calendar_differential.rs`) pin both engines bit-identical.

use crate::calendar::CompletionCalendar;
use crate::engine::ScheduledEntry;
use crate::topology::Topology;
use dcn_types::{FlowId, Rate, SimTime, Voq};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The allocation delta of one [`DeltaAllocator::apply`] call: how many
/// flows entered, left, and kept their rate across the reschedule.
///
/// `entered + kept` is the size of the new schedule; `left` counts flows
/// of the previous schedule that lost their ports (completed flows are
/// accounted by [`DeltaAllocator::settle`], not here). Only `entered` and
/// `left` — the affected frontier — cost calendar work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaOutcome {
    /// Flows newly admitted into the transmitting set (fresh drain epoch,
    /// one calendar push each).
    pub entered: u64,
    /// Flows of the previous schedule that lost their ports (calendar
    /// eviction each).
    pub left: u64,
    /// Flows that stayed scheduled: epoch, byte account, and calendar
    /// entry all untouched.
    pub kept: u64,
}

/// Cumulative [`DeltaOutcome`] totals across a run, plus the reschedule
/// count — the observability hook proving the delta property end-to-end
/// (`kept` should dwarf `entered + left` in steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Number of [`DeltaAllocator::apply`] calls.
    pub reschedules: u64,
    /// Total flows that entered the transmitting set.
    pub entered: u64,
    /// Total flows evicted by a reschedule (not by completing).
    pub left: u64,
    /// Total stay-scheduled decisions (zero-cost per flow).
    pub kept: u64,
}

/// Index record of one live scheduled flow: where its entry sits in the
/// priority-order vector plus the generation stamp of the last schedule
/// that selected it. The byte account itself lives in
/// `DeltaAllocator::order` so settling is a contiguous scan, not a hash
/// walk.
#[derive(Debug, Clone, Copy)]
struct LiveSlot {
    pos: usize,
    gen: u64,
}

/// Persistent, incrementally maintained binding of schedules to drain
/// state and completion instants — the delta-rate rescheduling engine.
///
/// Feed it the matching produced by any `Scheduler` after every event
/// ([`apply`](DeltaAllocator::apply)); between events it answers "when
/// does the next scheduled flow complete?" in `O(1)`
/// ([`next_completion`](DeltaAllocator::next_completion)) and settles
/// exact byte drains in schedule-priority order
/// ([`settle`](DeltaAllocator::settle)). Flows that stay scheduled across
/// an `apply` cost nothing; only the allocation delta touches the
/// calendar. The production [`simulate`](crate::simulate) event loop is a
/// thin driver around this type.
///
/// # Example
///
/// ```
/// use dcn_fabric::DeltaAllocator;
/// use dcn_types::{FlowId, HostId, Rate, SimTime, Voq};
///
/// let voq = |s, d| Voq::new(HostId::new(s), HostId::new(d));
/// let mut alloc = DeltaAllocator::new(Rate::from_gbps(10.0));
///
/// // Two flows admitted at t = 0: 1.25 MB completes after exactly 1 ms.
/// let delta = alloc.apply(
///     SimTime::ZERO,
///     [(FlowId::new(1), voq(0, 1)), (FlowId::new(2), voq(2, 3))],
///     |id| if id == FlowId::new(1) { 1_250_000 } else { 5_000_000 },
/// );
/// assert_eq!((delta.entered, delta.left, delta.kept), (2, 0, 0));
/// assert_eq!(alloc.next_completion(), SimTime::from_millis(1.0));
///
/// // Re-applying the same matching is free: nothing enters or leaves,
/// // drain epochs and calendar entries survive untouched.
/// let delta = alloc.apply(
///     SimTime::ZERO,
///     [(FlowId::new(1), voq(0, 1)), (FlowId::new(2), voq(2, 3))],
///     |_| unreachable!("no flow entered, so no remaining size is read"),
/// );
/// assert_eq!((delta.entered, delta.left, delta.kept), (0, 0, 2));
///
/// // Settle the first completion: flow 1 drains its 1.25 MB and is gone.
/// let mut drained = Vec::new();
/// let completed = alloc.settle(SimTime::from_millis(1.0), |d| {
///     drained.push((d.flow, d.amount, d.completed));
/// });
/// assert!(completed);
/// assert_eq!(drained[0], (FlowId::new(1), 1_250_000, true));
/// assert_eq!(alloc.len(), 1);
/// ```
#[derive(Debug)]
pub struct DeltaAllocator {
    rate: Rate,
    calendar: CompletionCalendar,
    /// `flow → (position in order, generation)` — membership and
    /// stay-detection only; the drain accounts live in `order`.
    index: HashMap<FlowId, LiveSlot>,
    /// The scheduled flows' drain accounts, contiguous, in
    /// schedule-priority order — settling walks this vector exactly like
    /// the reference engine walks its per-event entry vector. Between a
    /// completing [`settle`](DeltaAllocator::settle) and the reschedule
    /// that always follows it, completed flows linger as zero-owed
    /// tombstones (absent from `index` and the calendar) so live
    /// positions never shift outside [`apply`](DeltaAllocator::apply).
    order: Vec<ScheduledEntry>,
    /// Previous `order`, double-buffered for the generation sweep.
    scratch: Vec<ScheduledEntry>,
    /// Per-`scratch`-position "still selected" marks, so the sweep only
    /// hash-probes the positions the new schedule did *not* re-claim
    /// (leavers and completion tombstones — the delta, not the whole
    /// schedule).
    taken: Vec<bool>,
    gen: u64,
    stats: DeltaStats,
}

/// One settled drain reported by [`DeltaAllocator::settle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettledDrain {
    /// The draining flow.
    pub flow: FlowId,
    /// The VOQ it occupies.
    pub voq: Voq,
    /// Bytes newly owed since the last settlement (> 0).
    pub amount: u64,
    /// Whether this drain exhausts the flow's remaining bytes; the flow is
    /// already evicted from the allocator when the callback runs.
    pub completed: bool,
}

impl DeltaAllocator {
    /// An empty allocator whose scheduled flows drain at `rate` (the edge
    /// line rate under the one-big-switch abstraction).
    pub fn new(rate: Rate) -> Self {
        DeltaAllocator {
            rate,
            calendar: CompletionCalendar::new(),
            index: HashMap::new(),
            order: Vec::new(),
            scratch: Vec::new(),
            taken: Vec::new(),
            gen: 0,
            stats: DeltaStats::default(),
        }
    }

    /// Number of currently scheduled flows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no flow is currently scheduled.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cumulative delta statistics since construction.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// The earliest completion instant among scheduled flows, or
    /// [`SimTime::INFINITY`] when none is scheduled. Amortized `O(1)`.
    pub fn next_completion(&mut self) -> SimTime {
        self.calendar.next_completion()
    }

    /// Rebinds the allocator to a new schedule, computed at instant `now`,
    /// and returns the allocation delta.
    ///
    /// `selected` is the matching in priority order; each flow must appear
    /// at most once (a [`basrpt_core::Schedule`] guarantees this). Flows
    /// already scheduled keep their drain epoch and calendar entry
    /// untouched; flows entering open a fresh epoch at `now` over
    /// `remaining(flow)` bytes (read lazily, only for entrants); flows of
    /// the previous schedule not re-selected are evicted. Cost:
    /// `O(|selected|)` generation stamps plus `O(Δ log n)` calendar edits.
    pub fn apply<I>(
        &mut self,
        now: SimTime,
        selected: I,
        mut remaining: impl FnMut(FlowId) -> u64,
    ) -> DeltaOutcome
    where
        I: IntoIterator<Item = (FlowId, Voq)>,
    {
        self.gen += 1;
        let gen = self.gen;
        std::mem::swap(&mut self.order, &mut self.scratch);
        self.order.clear();
        self.taken.clear();
        self.taken.resize(self.scratch.len(), false);
        let mut out = DeltaOutcome::default();
        for (id, voq) in selected {
            match self.index.entry(id) {
                Entry::Occupied(mut slot) => {
                    // A flow that stays scheduled keeps its drain epoch
                    // (its completion instant is unchanged): its account
                    // is copied over to the new priority position, with
                    // no calendar work and no account reset — the whole
                    // point. Positions into `scratch` are exact because
                    // `settle` never shifts the vector.
                    let s = slot.get_mut();
                    debug_assert_ne!(s.gen, gen, "a flow may appear at most once per schedule");
                    let entry = self.scratch[s.pos];
                    debug_assert_eq!(entry.flow, id, "index position is stale");
                    self.taken[s.pos] = true;
                    s.pos = self.order.len();
                    s.gen = gen;
                    self.order.push(entry);
                    out.kept += 1;
                }
                Entry::Vacant(slot) => {
                    let entry = ScheduledEntry::new(id, voq, now, remaining(id), self.rate);
                    self.calendar.update(id, entry.completes_at);
                    slot.insert(LiveSlot {
                        pos: self.order.len(),
                        gen,
                    });
                    self.order.push(entry);
                    out.entered += 1;
                }
            }
        }
        // Sweep the *previous* order for positions the new schedule did
        // not re-claim: flows still indexed there have left and are
        // evicted; completed flows were already evicted by `settle` and
        // their tombstones fail the lookup. Only this delta is hashed —
        // kept flows were marked taken above.
        for i in 0..self.scratch.len() {
            if self.taken[i] {
                continue;
            }
            let id = self.scratch[i].flow;
            if self.index.remove(&id).is_some() {
                self.calendar.remove(id);
                out.left += 1;
            }
        }
        self.stats.reschedules += 1;
        self.stats.entered += out.entered;
        self.stats.left += out.left;
        self.stats.kept += out.kept;
        out
    }

    /// Settles every scheduled flow's byte account at instant `t`,
    /// invoking `on_drain` once per flow that owes bytes — in schedule
    /// priority order, exactly as the reference engine emits drains.
    /// Completing flows are evicted from the allocator (and calendar)
    /// before their callback runs. Returns whether any flow completed.
    pub fn settle(&mut self, t: SimTime, mut on_drain: impl FnMut(SettledDrain)) -> bool {
        let mut completed_any = false;
        // A contiguous scan with zero hashing — the same cache behavior as
        // the reference engine's per-event entry vector. Tombstones of
        // earlier completions owe nothing and fall through the `amount == 0`
        // skip.
        for entry in &mut self.order {
            let target = entry.target_at(t, self.rate);
            let amount = target - entry.settled;
            if amount == 0 {
                continue;
            }
            entry.settled = target;
            let completed = entry.settled == entry.epoch_remaining;
            if completed {
                // Evict from the index and calendar now (so the next
                // `next_completion` moves past this instant), but leave
                // the entry in place as a tombstone: the reschedule every
                // completion triggers sweeps it, and live positions stay
                // exact in the meantime.
                completed_any = true;
                self.index.remove(&entry.flow);
                self.calendar.remove(entry.flow);
            }
            on_drain(SettledDrain {
                flow: entry.flow,
                voq: entry.voq,
                amount,
                completed,
            });
        }
        completed_any
    }

    /// The live scheduled entries in priority order — the allocator's half
    /// of an engine snapshot ([`crate::OnlineFabric::snapshot`]).
    /// Tombstones of completions that have settled but not yet been swept
    /// by the next [`apply`](DeltaAllocator::apply) are excluded: an entry
    /// is live iff the index still points at its position.
    pub(crate) fn snapshot_entries(&self) -> Vec<ScheduledEntry> {
        self.order
            .iter()
            .enumerate()
            .filter(|(i, e)| self.index.get(&e.flow).is_some_and(|s| s.pos == *i))
            .map(|(_, e)| *e)
            .collect()
    }

    /// Rebuilds an allocator from snapshotted live entries (in priority
    /// order) and cumulative stats. The index and calendar are
    /// reconstructed from the entries' exact `completes_at` instants, so a
    /// restored allocator settles, completes, and reschedules bit-for-bit
    /// like the one that was snapshotted; the generation counter restarts
    /// at zero, which is unobservable (generations only detect stays
    /// within one `apply`).
    pub(crate) fn restore(
        rate: Rate,
        entries: impl IntoIterator<Item = ScheduledEntry>,
        stats: DeltaStats,
    ) -> Self {
        let mut alloc = DeltaAllocator::new(rate);
        alloc.stats = stats;
        for entry in entries {
            alloc.calendar.update(entry.flow, entry.completes_at);
            let replaced = alloc.index.insert(
                entry.flow,
                LiveSlot {
                    pos: alloc.order.len(),
                    gen: 0,
                },
            );
            debug_assert!(
                replaced.is_none(),
                "snapshot entries must be unique per flow"
            );
            alloc.order.push(entry);
        }
        alloc
    }

    /// Consistency check: the calendar's live set mirrors the allocator's
    /// index exactly (same flows, same instants), and every indexed
    /// position points at its own flow's entry in the priority-order
    /// vector. Linear; intended for tests.
    pub fn check_consistent(&mut self) -> Result<(), String> {
        if self.order.len() < self.index.len() {
            return Err(format!(
                "{} entries in priority order but {} live",
                self.order.len(),
                self.index.len()
            ));
        }
        if self.calendar.len() != self.index.len() {
            return Err(format!(
                "{} calendar entries but {} live flows",
                self.calendar.len(),
                self.index.len()
            ));
        }
        let mut want = SimTime::INFINITY;
        for (id, slot) in &self.index {
            match self.order.get(slot.pos) {
                None => {
                    return Err(format!(
                        "flow {id} indexes position {} out of bounds",
                        slot.pos
                    ))
                }
                Some(entry) if entry.flow != *id => {
                    return Err(format!(
                        "flow {id} indexes position {} held by flow {}",
                        slot.pos, entry.flow
                    ))
                }
                Some(entry) => want = want.min(entry.completes_at),
            }
        }
        if self.calendar.next_completion() != want {
            return Err(format!(
                "calendar answers {:?}, live minimum is {want:?}",
                self.calendar.next_completion()
            ));
        }
        Ok(())
    }
}

/// Persistent scratch state for the oversubscribed-core admission filter:
/// per-rack uplink/downlink budget accumulators and the filtered output,
/// reused across events so the hot path never allocates. Semantically
/// identical to filtering a schedule (in priority order) down to the flows
/// the core layer can carry: intra-rack flows always pass; inter-rack
/// flows consume `edge_rate` of their source rack's uplink and destination
/// rack's downlink budgets and are skipped once a budget is exhausted.
#[derive(Debug, Default)]
pub(crate) struct CoreBudgets {
    up_used: Vec<f64>,
    down_used: Vec<f64>,
    out: Vec<(FlowId, Voq)>,
}

impl CoreBudgets {
    /// Filters `selected` under `topo`'s per-rack capacity, returning the
    /// admitted sub-sequence in the original priority order.
    pub(crate) fn filter<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        selected: impl Iterator<Item = (FlowId, Voq)>,
    ) -> &[(FlowId, Voq)] {
        let edge = topo.edge_rate().bytes_per_sec();
        let uplink = topo.rack_uplink_capacity().bytes_per_sec();
        self.up_used.clear();
        self.up_used.resize(topo.num_racks() as usize, 0.0);
        self.down_used.clear();
        self.down_used.resize(topo.num_racks() as usize, 0.0);
        self.out.clear();
        for (id, voq) in selected {
            if topo.is_intra_rack(voq) {
                self.out.push((id, voq));
                continue;
            }
            let src_rack = topo.rack_of(voq.src()).as_usize();
            let dst_rack = topo.rack_of(voq.dst()).as_usize();
            // Tolerance absorbs f64 accumulation when the budget divides
            // evenly — identical to the reference filter.
            if self.up_used[src_rack] + edge <= uplink * (1.0 + 1e-9)
                && self.down_used[dst_rack] + edge <= uplink * (1.0 + 1e-9)
            {
                self.up_used[src_rack] += edge;
                self.down_used[dst_rack] += edge;
                self.out.push((id, voq));
            }
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FatTree;
    use dcn_types::HostId;

    fn f(id: u64) -> FlowId {
        FlowId::new(id)
    }

    fn voq(s: u32, d: u32) -> Voq {
        Voq::new(HostId::new(s), HostId::new(d))
    }

    fn gbps10() -> Rate {
        Rate::from_gbps(10.0)
    }

    #[test]
    fn entrants_open_epochs_and_leavers_are_evicted() {
        let mut alloc = DeltaAllocator::new(gbps10());
        let d = alloc.apply(
            SimTime::ZERO,
            [(f(1), voq(0, 1)), (f(2), voq(2, 3))],
            |_| 1_250_000,
        );
        assert_eq!((d.entered, d.left, d.kept), (2, 0, 0));
        alloc.check_consistent().unwrap();

        // Flow 2 is preempted by flow 3; flow 1 stays.
        let d = alloc.apply(
            SimTime::from_micros(10.0),
            [(f(1), voq(0, 1)), (f(3), voq(2, 4))],
            |id| {
                assert_eq!(id, f(3), "remaining read only for entrants");
                2_500_000
            },
        );
        assert_eq!((d.entered, d.left, d.kept), (1, 1, 1));
        assert_eq!(alloc.len(), 2);
        alloc.check_consistent().unwrap();
        // Flow 1's epoch survived: it still completes at its original
        // 1 ms instant, not 1 ms after the second apply.
        assert_eq!(alloc.next_completion(), SimTime::from_millis(1.0));
    }

    #[test]
    fn stays_cost_no_calendar_work() {
        let mut alloc = DeltaAllocator::new(gbps10());
        let sched = [(f(1), voq(0, 1)), (f(2), voq(2, 3))];
        alloc.apply(SimTime::ZERO, sched, |_| 10_000_000);
        let stats_before = alloc.stats();
        for _ in 0..50 {
            let d = alloc.apply(SimTime::ZERO, sched, |_| unreachable!());
            assert_eq!((d.entered, d.left, d.kept), (0, 0, 2));
        }
        let stats = alloc.stats();
        assert_eq!(stats.entered, stats_before.entered);
        assert_eq!(stats.left, stats_before.left);
        assert_eq!(stats.reschedules, stats_before.reschedules + 50);
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn settle_reports_exact_drains_in_priority_order() {
        let mut alloc = DeltaAllocator::new(gbps10());
        // 1250 bytes = 1 µs at 10 Gbps; flow 2 is 10× longer.
        alloc.apply(
            SimTime::ZERO,
            [(f(2), voq(2, 3)), (f(1), voq(0, 1))],
            |id| {
                if id == f(1) {
                    1_250
                } else {
                    12_500
                }
            },
        );
        let mut seen = Vec::new();
        let completed = alloc.settle(SimTime::from_micros(1.0), |d| seen.push(d));
        assert!(completed);
        // Priority order preserved: flow 2 (listed first) settles first.
        assert_eq!(seen[0].flow, f(2));
        assert_eq!(seen[0].amount, 1_250);
        assert!(!seen[0].completed);
        assert_eq!(seen[1].flow, f(1));
        assert_eq!(seen[1].amount, 1_250);
        assert!(seen[1].completed);
        assert_eq!(alloc.len(), 1);
        alloc.check_consistent().unwrap();

        // Nothing more is owed at the same instant.
        let completed = alloc.settle(SimTime::from_micros(1.0), |_| panic!("no bytes owed"));
        assert!(!completed);
    }

    #[test]
    fn returning_flow_opens_a_fresh_epoch() {
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(SimTime::ZERO, [(f(1), voq(0, 1))], |_| 12_500_000); // 10 ms
        alloc.settle(SimTime::from_millis(1.0), |_| {});
        // Preempted at 1 ms with 9 ms of bytes left…
        let d = alloc.apply(SimTime::from_millis(1.0), [(f(2), voq(0, 2))], |_| 1_250);
        assert_eq!((d.entered, d.left), (1, 1));
        // …and re-admitted at 2 ms: completion is 2 ms + 9 ms, a fresh
        // epoch over the *current* remaining bytes.
        let d = alloc.apply(SimTime::from_millis(2.0), [(f(1), voq(0, 1))], |id| {
            assert_eq!(id, f(1));
            11_250_000
        });
        assert_eq!((d.entered, d.left), (1, 1));
        assert_eq!(alloc.next_completion(), SimTime::from_millis(11.0));
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn empty_apply_evicts_everything() {
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(
            SimTime::ZERO,
            [(f(1), voq(0, 1)), (f(2), voq(2, 3))],
            |_| 1_000,
        );
        let d = alloc.apply(SimTime::ZERO, [], |_| unreachable!());
        assert_eq!((d.entered, d.left, d.kept), (0, 2, 0));
        assert!(alloc.is_empty());
        assert_eq!(alloc.next_completion(), SimTime::INFINITY);
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn core_budgets_match_the_reference_filter() {
        // 2 racks × 8 hosts, 1 core: at most 4 inter-rack flows per rack
        // direction (40 Gbps uplink / 10 Gbps edge).
        let topo = FatTree::scaled(2, 8, 1).unwrap();
        assert!(!topo.is_full_bisection());
        let selected: Vec<(FlowId, Voq)> = (0..8)
            .map(|i| (f(i), voq(i as u32, 8 + i as u32)))
            .collect();
        let mut budgets = CoreBudgets::default();
        let got = budgets.filter(&topo, selected.iter().copied()).to_vec();
        assert_eq!(got.len(), 4, "one 40 Gbps uplink carries 4 edge flows");
        assert_eq!(&got[..], &selected[..4], "priority order preserved");
        // Intra-rack flows pass even with the core budget exhausted.
        let mut with_local = selected.clone();
        with_local.push((f(99), voq(0, 1)));
        let got = budgets.filter(&topo, with_local.iter().copied()).to_vec();
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], (f(99), voq(0, 1)));
    }
}
