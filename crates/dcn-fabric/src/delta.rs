//! Delta-rate rescheduling with lazy exact settlement: per-event work
//! proportional to the flows whose allocation actually changed — not to
//! every scheduled flow, and not even one touch per scheduled flow.
//!
//! On every arrival and completion the paper's update rule recomputes the
//! crossbar matching from scratch. The *schedule* must be recomputed — the
//! discipline's ranking is global — but the *rate allocation* it implies
//! usually barely moves: in steady state a reschedule keeps almost every
//! previously selected flow transmitting at the same (line) rate, and only
//! the flows sharing a bottleneck port with the triggering arrival or
//! completion — the affected frontier — enter or leave the transmitting
//! set. Two generations of this engine chipped at the per-event cost:
//!
//! * the seed engine re-bound the whole allocation on every decision
//!   (rebuilt the carry map, the entry vector, and the calendar's live
//!   map): `O(n)` hash work per event even when nothing changed;
//! * the PR 6 `DeltaAllocator` kept the binding alive and made the
//!   *calendar* work `O(Δ log n)`, but still stamped, hash-probed, and
//!   copied every kept flow per `apply` — and still *settled* every
//!   scheduled flow's byte account on every event, an `O(n)` table sweep
//!   that dominated once calendar churn was gone.
//!
//! This generation removes both linear terms:
//!
//! * [`apply`](DeltaAllocator::apply) diffs the new selection against the
//!   previous one **positionally**: the common prefix and suffix of
//!   identical `(flow, VOQ)` pairs — in steady state almost the whole
//!   schedule — match with one `Copy`-pair comparison each, zero hash
//!   probes, zero copies. Only the middle window (the pairs around the
//!   triggering event, size `O(Δ)`) is hashed to classify entrants,
//!   leavers, and movers;
//! * settlement is **lazy**: a scheduled flow's byte account is converted
//!   into table drains only when the flow is *observed* — its own
//!   completion ([`settle_due`](DeltaAllocator::settle_due)), its
//!   eviction (inside `apply`), a sample instant or the horizon
//!   ([`settle`](DeltaAllocator::settle)), or a snapshot. Between
//!   observations the account is the pair (drain epoch, settled bytes),
//!   and every conversion derives cumulative progress with the single
//!   [`settle_drain_target`](crate::settle_drain_target) formula, so the
//!   drains a flow reports always sum to exactly the bytes its epochs
//!   owed: `arrived == delivered + leftover` holds bit-for-bit at every
//!   observation point (`tests/support/battery.rs` asserts it at every
//!   sample of every invariant-battery run).
//!
//! Schedulers that decide from per-VOQ views cannot read the (stale)
//! table directly in lazy mode; [`DeltaAllocator::live_views`] lends them
//! a [`ViewAdjust`] lens that subtracts each VOQ's unsettled bytes on the
//! fly — `O(1)` per VOQ, two hash lookups — reproducing exactly the views
//! an eagerly settled table would have served (same champion, same
//! tie-breaks). Disciplines opt in via
//! [`Scheduler::supports_lazy_views`](basrpt_core::Scheduler::supports_lazy_views);
//! everything else (and every run under a per-flow-fidelity probe, or
//! with `BASRPT_SETTLE=eager`) takes the eager path, which settles every
//! account on every event exactly like the reference engines.
//!
//! The change-log cursors and champion index of `basrpt-core` (PR 5) play
//! the same role one layer down: they make the *decision* incremental,
//! while this module makes the *binding and accounting* of the decision
//! incremental. Run an
//! [`IncrementalScheduler`](basrpt_core::IncrementalScheduler) inside the
//! delta engine and every layer of the per-event path is `O(affected)`;
//! `PERFMODEL.md` has the full cost model.
//!
//! The full-recompute binding survives as [`crate::reference`] and the
//! differential suites (`tests/delta_differential.rs`,
//! `tests/calendar_differential.rs`) pin both engines bit-identical.

use crate::calendar::CompletionCalendar;
use crate::engine::ScheduledEntry;
use crate::topology::Topology;
use basrpt_core::{ViewAdjust, VoqView};
use dcn_types::{FlowId, Rate, SimTime, Voq};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// The allocation delta of one [`DeltaAllocator::apply`] call: how many
/// flows entered, left, and kept their rate across the reschedule.
///
/// `entered + kept` is the size of the new schedule; `left` counts flows
/// of the previous schedule that lost their ports (completed flows are
/// accounted by [`DeltaAllocator::settle_due`] /
/// [`DeltaAllocator::settle`], not here). Only `entered` and `left` — the
/// affected frontier — cost hash or calendar work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaOutcome {
    /// Flows newly admitted into the transmitting set (fresh drain epoch,
    /// one calendar push each).
    pub entered: u64,
    /// Flows of the previous schedule that lost their ports (settled to
    /// the reschedule instant and evicted, one calendar eviction each).
    pub left: u64,
    /// Flows that stayed scheduled: epoch, byte account, and calendar
    /// entry all untouched (pair-compare only for the matched ends).
    pub kept: u64,
}

/// Cumulative [`DeltaOutcome`] totals across a run, plus the reschedule
/// count — the observability hook proving the delta property end-to-end
/// (`kept` should dwarf `entered + left` in steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Number of [`DeltaAllocator::apply`] calls.
    pub reschedules: u64,
    /// Total flows that entered the transmitting set.
    pub entered: u64,
    /// Total flows evicted by a reschedule (not by completing).
    pub left: u64,
    /// Total stay-scheduled decisions (zero-cost per flow).
    pub kept: u64,
}

/// One settled drain reported by the allocator's settlement paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettledDrain {
    /// The draining flow.
    pub flow: FlowId,
    /// The VOQ it occupies.
    pub voq: Voq,
    /// Bytes newly owed since the last settlement (> 0).
    pub amount: u64,
    /// Whether this drain exhausts the flow's remaining bytes; the flow is
    /// already evicted from the allocator when the callback runs.
    pub completed: bool,
}

/// Persistent, incrementally maintained binding of schedules to drain
/// state and completion instants — the delta-rate rescheduling engine
/// with lazy exact settlement.
///
/// Feed it the matching produced by any `Scheduler` after every event
/// ([`apply`](DeltaAllocator::apply)); between events it answers "when
/// does the next scheduled flow complete?" in `O(1)`
/// ([`next_completion`](DeltaAllocator::next_completion)), settles only
/// the flows owed a completion ([`settle_due`](DeltaAllocator::settle_due))
/// or, at observation points, every account
/// ([`settle`](DeltaAllocator::settle)) — in schedule-priority order
/// either way, exactly as the eager reference engines emit drains. Flows
/// that stay scheduled across an `apply` cost one pair comparison; only
/// the allocation delta is hashed or touches the calendar. The production
/// [`simulate`](crate::simulate) event loop is a thin driver around this
/// type.
///
/// # Example
///
/// ```
/// use dcn_fabric::DeltaAllocator;
/// use dcn_types::{FlowId, HostId, Rate, SimTime, Voq};
///
/// let voq = |s, d| Voq::new(HostId::new(s), HostId::new(d));
/// let mut alloc = DeltaAllocator::new(Rate::from_gbps(10.0));
///
/// // Two flows admitted at t = 0: 1.25 MB completes after exactly 1 ms.
/// let delta = alloc.apply(
///     SimTime::ZERO,
///     vec![(FlowId::new(1), voq(0, 1)), (FlowId::new(2), voq(2, 3))],
///     |id| if id == FlowId::new(1) { 1_250_000 } else { 5_000_000 },
///     |_| unreachable!("nothing scheduled before, so nothing is evicted"),
/// );
/// assert_eq!((delta.entered, delta.left, delta.kept), (2, 0, 0));
/// assert_eq!(alloc.next_completion(), SimTime::from_millis(1.0));
///
/// // Re-applying the same matching is free: the whole selection matches
/// // positionally, so nothing is hashed, entered, or evicted.
/// let delta = alloc.apply(
///     SimTime::ZERO,
///     vec![(FlowId::new(1), voq(0, 1)), (FlowId::new(2), voq(2, 3))],
///     |_| unreachable!("no flow entered, so no remaining size is read"),
///     |_| unreachable!("no flow left, so nothing is evicted"),
/// );
/// assert_eq!((delta.entered, delta.left, delta.kept), (0, 0, 2));
///
/// // Settle the due completion: flow 1 drains its 1.25 MB and is gone —
/// // flow 2's account is not even looked at.
/// let mut drained = Vec::new();
/// let completed = alloc.settle_due(SimTime::from_millis(1.0), |d| {
///     drained.push((d.flow, d.amount, d.completed));
/// });
/// assert!(completed);
/// assert_eq!(drained, vec![(FlowId::new(1), 1_250_000, true)]);
/// assert_eq!(alloc.len(), 1);
/// ```
#[derive(Debug)]
pub struct DeltaAllocator {
    rate: Rate,
    calendar: CompletionCalendar,
    /// Byte accounts of the live scheduled flows.
    entries: HashMap<FlowId, ScheduledEntry>,
    /// `VOQ → scheduled flow` — the [`live_views`](DeltaAllocator::live_views)
    /// lens resolves each VOQ's unsettled bytes through this (a matching
    /// schedules at most one flow per VOQ).
    by_voq: HashMap<Voq, FlowId>,
    /// The previous selection in priority order — what `apply` diffs the
    /// next selection against, and the order every settlement path emits
    /// drains in. May contain *tombstones*: pairs whose flow completed
    /// (and left `entries`) after this selection was applied.
    sel: Vec<(FlowId, Voq)>,
    stats: DeltaStats,
}

impl DeltaAllocator {
    /// An empty allocator whose scheduled flows drain at `rate` (the edge
    /// line rate under the one-big-switch abstraction).
    pub fn new(rate: Rate) -> Self {
        DeltaAllocator {
            rate,
            calendar: CompletionCalendar::new(),
            entries: HashMap::new(),
            by_voq: HashMap::new(),
            sel: Vec::new(),
            stats: DeltaStats::default(),
        }
    }

    /// Number of currently scheduled flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no flow is currently scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative delta statistics since construction.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// The earliest completion instant among scheduled flows, or
    /// [`SimTime::INFINITY`] when none is scheduled. Amortized `O(1)`.
    pub fn next_completion(&mut self) -> SimTime {
        self.calendar.next_completion()
    }

    /// Rebinds the allocator to a new schedule, computed at instant `now`,
    /// and returns the allocation delta.
    ///
    /// `selected` is the matching in priority order; each flow must appear
    /// at most once (a [`basrpt_core::Schedule`] guarantees this). Flows
    /// already scheduled keep their drain epoch and calendar entry
    /// untouched; flows entering open a fresh epoch at `now` over
    /// `remaining(flow)` bytes (read lazily, only for entrants); flows of
    /// the previous schedule not re-selected are settled to `now` — any
    /// bytes they transmitted since their last observation are reported
    /// through `on_evict`, never completing one (a due completion must be
    /// settled before rescheduling) — and evicted.
    ///
    /// Cost: the matched prefix and suffix of the previous selection pay
    /// one pair comparison each (no hashing, no copies); only the changed
    /// middle window pays `O(Δ)` hash probes and `O(Δ log n)` calendar
    /// edits. In the steady state of one arrival or completion per event,
    /// that window is a handful of pairs regardless of schedule size.
    pub fn apply(
        &mut self,
        now: SimTime,
        selected: Vec<(FlowId, Voq)>,
        mut remaining: impl FnMut(FlowId) -> u64,
        mut on_evict: impl FnMut(SettledDrain),
    ) -> DeltaOutcome {
        let old = std::mem::replace(&mut self.sel, selected);
        let n_old = old.len();
        let n_new = self.sel.len();

        // Matched ends. A pair can only match a pair of the *same* flow,
        // and a completed flow cannot reappear in a fresh schedule (it
        // left the flow table), so matched pairs are always live kept
        // flows — tombstones and every entrant/leaver/mover land in the
        // middle window by construction.
        let limit = n_old.min(n_new);
        let mut lo = 0;
        while lo < limit && old[lo] == self.sel[lo] {
            lo += 1;
        }
        let mut hi = 0;
        while hi < limit - lo && old[n_old - 1 - hi] == self.sel[n_new - 1 - hi] {
            hi += 1;
        }

        let mut out = DeltaOutcome {
            kept: (lo + hi) as u64,
            ..DeltaOutcome::default()
        };

        // New-side window: classify entrants vs flows that merely moved
        // position. A windowed flow that is still scheduled must also sit
        // in the old window (it cannot occupy a matched position of the
        // old selection without duplicating a pair), so the two windows
        // are self-contained.
        for &(id, voq) in &self.sel[lo..n_new - hi] {
            match self.entries.entry(id) {
                Entry::Occupied(slot) => {
                    debug_assert_eq!(slot.get().voq, voq, "a flow's VOQ is fixed");
                    out.kept += 1;
                }
                Entry::Vacant(slot) => {
                    let entry = ScheduledEntry::new(id, voq, now, remaining(id), self.rate);
                    self.calendar.update(id, entry.completes_at);
                    self.by_voq.insert(voq, id);
                    slot.insert(entry);
                    out.entered += 1;
                }
            }
        }

        // Old-side window: anything not re-selected has left (or is a
        // completion tombstone, already absent from `entries`). Leavers
        // settle to `now` first so the bytes they moved while scheduled
        // are never lost — in eager mode every account was settled this
        // instant already, so the owed amount is zero and no drain fires.
        if lo + hi < n_old {
            let reselected: HashSet<FlowId> =
                self.sel[lo..n_new - hi].iter().map(|&(id, _)| id).collect();
            for &(id, _) in &old[lo..n_old - hi] {
                if reselected.contains(&id) {
                    continue;
                }
                let Some(entry) = self.entries.remove(&id) else {
                    continue; // completion tombstone, swept for free
                };
                self.calendar.remove(id);
                // An entrant may have re-bound this VOQ already (same
                // src-dst preemption); only unbind if the slot is still
                // ours.
                if self.by_voq.get(&entry.voq) == Some(&id) {
                    self.by_voq.remove(&entry.voq);
                }
                let owed = entry.target_at(now, self.rate) - entry.settled;
                if owed > 0 {
                    debug_assert!(
                        entry.settled + owed < entry.epoch_remaining,
                        "a due completion must settle before the reschedule evicts it"
                    );
                    on_evict(SettledDrain {
                        flow: id,
                        voq: entry.voq,
                        amount: owed,
                        completed: false,
                    });
                }
                out.left += 1;
            }
        }

        self.stats.reschedules += 1;
        self.stats.entered += out.entered;
        self.stats.left += out.left;
        self.stats.kept += out.kept;
        out
    }

    /// Settles the byte account of one live flow at instant `t`,
    /// evicting it first if the settlement completes it.
    fn settle_one(&mut self, id: FlowId, t: SimTime, on_drain: &mut impl FnMut(SettledDrain)) {
        let Some(entry) = self.entries.get_mut(&id) else {
            return;
        };
        let target = entry.target_at(t, self.rate);
        let amount = target - entry.settled;
        if amount == 0 {
            return;
        }
        entry.settled = target;
        let completed = entry.settled == entry.epoch_remaining;
        let voq = entry.voq;
        if completed {
            self.entries.remove(&id);
            self.calendar.remove(id);
            self.by_voq.remove(&voq);
        }
        on_drain(SettledDrain {
            flow: id,
            voq,
            amount,
            completed,
        });
    }

    /// Settles exactly the flows owed a completion at instant `t` — the
    /// lazy engine's per-event settlement. Usually that is one flow (the
    /// completion that woke the event loop), popped from the calendar in
    /// amortized `O(log n)`; simultaneous completions (rare byte-exact
    /// ties) are re-ordered into schedule priority before their callbacks
    /// run, so the drain stream is emitted exactly as the eager path
    /// would. Every other scheduled flow's account is untouched. Returns
    /// whether any flow completed.
    pub fn settle_due(&mut self, t: SimTime, mut on_drain: impl FnMut(SettledDrain)) -> bool {
        let Some(first) = self.calendar.pop_due(t) else {
            return false;
        };
        match self.calendar.pop_due(t) {
            None => {
                // The common case: one completion, zero touches elsewhere.
                self.settle_one(first, t, &mut on_drain);
            }
            Some(second) => {
                let mut due: HashSet<FlowId> = HashSet::from([first, second]);
                while let Some(next) = self.calendar.pop_due(t) {
                    due.insert(next);
                }
                let ordered: Vec<FlowId> = self
                    .sel
                    .iter()
                    .map(|&(id, _)| id)
                    .filter(|id| due.contains(id))
                    .collect();
                debug_assert_eq!(ordered.len(), due.len());
                for id in ordered {
                    self.settle_one(id, t, &mut on_drain);
                }
            }
        }
        true
    }

    /// Settles every scheduled flow's byte account at instant `t`,
    /// invoking `on_drain` once per flow that owes bytes — in schedule
    /// priority order, exactly as the reference engine emits drains.
    /// Completing flows are evicted from the allocator (and calendar)
    /// before their callback runs. Returns whether any flow completed.
    ///
    /// This is the *observation* settlement: the eager mode runs it on
    /// every event; the lazy mode only at sample instants, the horizon,
    /// and snapshots, where per-flow exactness is demanded all at once.
    pub fn settle(&mut self, t: SimTime, mut on_drain: impl FnMut(SettledDrain)) -> bool {
        let mut completed_any = false;
        // `settle_one` mutates `entries` but never `sel`, so the walk
        // over a clone-free snapshot of the priority order is sound; the
        // explicit index keeps the borrow checker out of the closure.
        for i in 0..self.sel.len() {
            let id = self.sel[i].0;
            self.settle_one(id, t, &mut |d| {
                completed_any |= d.completed;
                on_drain(d);
            });
        }
        completed_any
    }

    /// A [`ViewAdjust`] lens over this allocator's unsettled bytes at
    /// instant `now`: adjusting a [`VoqView`] subtracts the VOQ's
    /// scheduled flow's unsettled drain from the backlog and re-derives
    /// the champion under the table's exact `(remaining, id)` tie-break,
    /// so a scheduler deciding from adjusted views sees precisely the
    /// views an eagerly settled table would serve. `O(1)` per VOQ.
    pub fn live_views(&self, now: SimTime) -> LiveViews<'_> {
        LiveViews { alloc: self, now }
    }

    /// The live scheduled entries in priority order — the allocator's half
    /// of an engine snapshot ([`crate::OnlineFabric::snapshot`]).
    /// Tombstones of completions that have settled but not yet been swept
    /// by the next [`apply`](DeltaAllocator::apply) are excluded.
    pub(crate) fn snapshot_entries(&self) -> Vec<ScheduledEntry> {
        self.sel
            .iter()
            .filter_map(|(id, _)| self.entries.get(id))
            .copied()
            .collect()
    }

    /// Rebuilds an allocator from snapshotted live entries (in priority
    /// order) and cumulative stats. The selection, index, and calendar are
    /// reconstructed from the entries' exact accounts, so a restored
    /// allocator settles, completes, and reschedules bit-for-bit like the
    /// one that was snapshotted.
    pub(crate) fn restore(
        rate: Rate,
        entries: impl IntoIterator<Item = ScheduledEntry>,
        stats: DeltaStats,
    ) -> Self {
        let mut alloc = DeltaAllocator::new(rate);
        alloc.stats = stats;
        for entry in entries {
            alloc.calendar.update(entry.flow, entry.completes_at);
            let replaced = alloc.entries.insert(entry.flow, entry);
            debug_assert!(
                replaced.is_none(),
                "snapshot entries must be unique per flow"
            );
            alloc.by_voq.insert(entry.voq, entry.flow);
            alloc.sel.push((entry.flow, entry.voq));
        }
        alloc
    }

    /// Consistency check: the calendar's live set, the VOQ index, and the
    /// selection all mirror the entry map exactly (same flows, same
    /// instants, priority order covering every live flow once). Linear;
    /// intended for tests.
    pub fn check_consistent(&mut self) -> Result<(), String> {
        if self.calendar.len() != self.entries.len() {
            return Err(format!(
                "{} calendar entries but {} live flows",
                self.calendar.len(),
                self.entries.len()
            ));
        }
        if self.by_voq.len() != self.entries.len() {
            return Err(format!(
                "{} VOQ index entries but {} live flows",
                self.by_voq.len(),
                self.entries.len()
            ));
        }
        let mut seen = HashSet::new();
        let mut want = SimTime::INFINITY;
        for &(id, voq) in &self.sel {
            let Some(entry) = self.entries.get(&id) else {
                continue; // completion tombstone
            };
            if !seen.insert(id) {
                return Err(format!("flow {id} appears twice in the selection"));
            }
            if entry.voq != voq {
                return Err(format!(
                    "flow {id} selected on {voq:?}, bound to a different VOQ"
                ));
            }
            if self.by_voq.get(&voq) != Some(&id) {
                return Err(format!("VOQ index does not map {voq:?} to flow {id}"));
            }
            if entry.settled > entry.epoch_remaining {
                return Err(format!("flow {id} settled beyond its epoch"));
            }
            want = want.min(entry.completes_at);
        }
        if seen.len() != self.entries.len() {
            return Err(format!(
                "selection covers {} live flows but {} are live",
                seen.len(),
                self.entries.len()
            ));
        }
        if self.calendar.next_completion() != want {
            return Err(format!(
                "calendar answers {:?}, live minimum is {want:?}",
                self.calendar.next_completion()
            ));
        }
        Ok(())
    }
}

/// The settlement-adjusting view lens lent by
/// [`DeltaAllocator::live_views`]: corrects each [`VoqView`] for the
/// bytes its scheduled flow has transmitted but not yet settled into the
/// table, reproducing the exact views of an eagerly settled table.
#[derive(Debug, Clone, Copy)]
pub struct LiveViews<'a> {
    alloc: &'a DeltaAllocator,
    now: SimTime,
}

impl ViewAdjust for LiveViews<'_> {
    fn adjust(&self, view: &mut VoqView) {
        let Some(&flow) = self.alloc.by_voq.get(&view.voq) else {
            return; // no flow of this VOQ is transmitting
        };
        let entry = &self.alloc.entries[&flow];
        let target = entry.target_at(self.now, self.alloc.rate);
        let owed = target - entry.settled;
        if owed == 0 {
            return;
        }
        view.backlog -= owed;
        let live = entry.epoch_remaining - target;
        debug_assert!(live > 0, "due completions settle before views are read");
        if view.shortest_flow == flow {
            // The champion itself drained: smaller key, still champion
            // (no other flow of the VOQ moved).
            view.shortest_remaining -= owed;
        } else if (live, flow) < (view.shortest_remaining, view.shortest_flow) {
            // The transmitting flow's live remaining now beats the stored
            // champion under the table's exact (remaining, id) tie-break.
            view.shortest_flow = flow;
            view.shortest_remaining = live;
        }
    }
}

/// Persistent scratch state for the oversubscribed-core admission filter:
/// per-rack uplink/downlink budget accumulators and the filtered output,
/// reused across events so the hot path never allocates. Semantically
/// identical to filtering a schedule (in priority order) down to the flows
/// the core layer can carry: intra-rack flows always pass; inter-rack
/// flows consume `edge_rate` of their source rack's uplink and destination
/// rack's downlink budgets and are skipped once a budget is exhausted.
#[derive(Debug, Default)]
pub(crate) struct CoreBudgets {
    up_used: Vec<f64>,
    down_used: Vec<f64>,
    out: Vec<(FlowId, Voq)>,
}

impl CoreBudgets {
    /// Filters `selected` under `topo`'s per-rack capacity, returning the
    /// admitted sub-sequence in the original priority order.
    pub(crate) fn filter<T: Topology + ?Sized>(
        &mut self,
        topo: &T,
        selected: impl Iterator<Item = (FlowId, Voq)>,
    ) -> &[(FlowId, Voq)] {
        let edge = topo.edge_rate().bytes_per_sec();
        let uplink = topo.rack_uplink_capacity().bytes_per_sec();
        self.up_used.clear();
        self.up_used.resize(topo.num_racks() as usize, 0.0);
        self.down_used.clear();
        self.down_used.resize(topo.num_racks() as usize, 0.0);
        self.out.clear();
        for (id, voq) in selected {
            if topo.is_intra_rack(voq) {
                self.out.push((id, voq));
                continue;
            }
            let src_rack = topo.rack_of(voq.src()).as_usize();
            let dst_rack = topo.rack_of(voq.dst()).as_usize();
            // Tolerance absorbs f64 accumulation when the budget divides
            // evenly — identical to the reference filter.
            if self.up_used[src_rack] + edge <= uplink * (1.0 + 1e-9)
                && self.down_used[dst_rack] + edge <= uplink * (1.0 + 1e-9)
            {
                self.up_used[src_rack] += edge;
                self.down_used[dst_rack] += edge;
                self.out.push((id, voq));
            }
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FatTree;
    use dcn_types::HostId;

    fn f(id: u64) -> FlowId {
        FlowId::new(id)
    }

    fn voq(s: u32, d: u32) -> Voq {
        Voq::new(HostId::new(s), HostId::new(d))
    }

    fn gbps10() -> Rate {
        Rate::from_gbps(10.0)
    }

    fn no_evict(d: SettledDrain) {
        panic!("unexpected eviction drain: {d:?}");
    }

    #[test]
    fn entrants_open_epochs_and_leavers_are_evicted() {
        let mut alloc = DeltaAllocator::new(gbps10());
        let d = alloc.apply(
            SimTime::ZERO,
            vec![(f(1), voq(0, 1)), (f(2), voq(2, 3))],
            |_| 1_250_000,
            no_evict,
        );
        assert_eq!((d.entered, d.left, d.kept), (2, 0, 0));
        alloc.check_consistent().unwrap();

        // Flow 2 is preempted by flow 3; flow 1 stays. The leaver settles
        // its 10 µs of line-rate bytes (12 500) on the way out.
        let mut evicted = Vec::new();
        let d = alloc.apply(
            SimTime::from_micros(10.0),
            vec![(f(1), voq(0, 1)), (f(3), voq(2, 4))],
            |id| {
                assert_eq!(id, f(3), "remaining read only for entrants");
                2_500_000
            },
            |drain| evicted.push(drain),
        );
        assert_eq!((d.entered, d.left, d.kept), (1, 1, 1));
        assert_eq!(
            evicted,
            vec![SettledDrain {
                flow: f(2),
                voq: voq(2, 3),
                amount: 12_500,
                completed: false,
            }]
        );
        assert_eq!(alloc.len(), 2);
        alloc.check_consistent().unwrap();
        // Flow 1's epoch survived: it still completes at its original
        // 1 ms instant, not 1 ms after the second apply.
        assert_eq!(alloc.next_completion(), SimTime::from_millis(1.0));
    }

    #[test]
    fn stays_cost_no_calendar_work() {
        let mut alloc = DeltaAllocator::new(gbps10());
        let sched = vec![(f(1), voq(0, 1)), (f(2), voq(2, 3))];
        alloc.apply(SimTime::ZERO, sched.clone(), |_| 10_000_000, no_evict);
        let stats_before = alloc.stats();
        for _ in 0..50 {
            let d = alloc.apply(SimTime::ZERO, sched.clone(), |_| unreachable!(), no_evict);
            assert_eq!((d.entered, d.left, d.kept), (0, 0, 2));
        }
        let stats = alloc.stats();
        assert_eq!(stats.entered, stats_before.entered);
        assert_eq!(stats.left, stats_before.left);
        assert_eq!(stats.reschedules, stats_before.reschedules + 50);
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn settle_reports_exact_drains_in_priority_order() {
        let mut alloc = DeltaAllocator::new(gbps10());
        // 1250 bytes = 1 µs at 10 Gbps; flow 2 is 10× longer.
        alloc.apply(
            SimTime::ZERO,
            vec![(f(2), voq(2, 3)), (f(1), voq(0, 1))],
            |id| if id == f(1) { 1_250 } else { 12_500 },
            no_evict,
        );
        let mut seen = Vec::new();
        let completed = alloc.settle(SimTime::from_micros(1.0), |d| seen.push(d));
        assert!(completed);
        // Priority order preserved: flow 2 (listed first) settles first.
        assert_eq!(seen[0].flow, f(2));
        assert_eq!(seen[0].amount, 1_250);
        assert!(!seen[0].completed);
        assert_eq!(seen[1].flow, f(1));
        assert_eq!(seen[1].amount, 1_250);
        assert!(seen[1].completed);
        assert_eq!(alloc.len(), 1);
        alloc.check_consistent().unwrap();

        // Nothing more is owed at the same instant.
        let completed = alloc.settle(SimTime::from_micros(1.0), |_| panic!("no bytes owed"));
        assert!(!completed);
    }

    #[test]
    fn settle_due_touches_only_the_completing_flow() {
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(
            SimTime::ZERO,
            vec![(f(2), voq(2, 3)), (f(1), voq(0, 1))],
            |id| if id == f(1) { 1_250 } else { 12_500 },
            no_evict,
        );
        // Before the completion instant there is nothing due.
        assert!(!alloc.settle_due(SimTime::from_micros(0.5), |_| panic!("nothing due")));

        let mut seen = Vec::new();
        assert!(alloc.settle_due(SimTime::from_micros(1.0), |d| seen.push(d)));
        assert_eq!(
            seen,
            vec![SettledDrain {
                flow: f(1),
                voq: voq(0, 1),
                amount: 1_250,
                completed: true,
            }],
            "only the due flow settles; flow 2's account is untouched"
        );
        assert_eq!(alloc.len(), 1);

        // Flow 2's unsettled progress is still fully recoverable: a full
        // settlement at 10 µs reports all 10 µs of bytes in one drain.
        let mut seen = Vec::new();
        alloc.settle(SimTime::from_micros(10.0), |d| seen.push(d));
        assert_eq!(
            seen,
            vec![SettledDrain {
                flow: f(2),
                voq: voq(2, 3),
                amount: 12_500,
                completed: true,
            }]
        );
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn simultaneous_due_completions_settle_in_priority_order() {
        let mut alloc = DeltaAllocator::new(gbps10());
        // Three identical sizes complete at the same instant; priority
        // order (the order applied) must be preserved in the callbacks,
        // not the calendar's id-order pops.
        alloc.apply(
            SimTime::ZERO,
            vec![(f(3), voq(4, 5)), (f(1), voq(0, 1)), (f(2), voq(2, 3))],
            |_| 1_250,
            no_evict,
        );
        let mut order = Vec::new();
        assert!(alloc.settle_due(SimTime::from_micros(1.0), |d| {
            assert!(d.completed);
            order.push(d.flow);
        }));
        assert_eq!(order, vec![f(3), f(1), f(2)]);
        assert!(alloc.is_empty());
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn returning_flow_opens_a_fresh_epoch() {
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(
            SimTime::ZERO,
            vec![(f(1), voq(0, 1))],
            |_| 12_500_000,
            no_evict,
        ); // 10 ms
        alloc.settle(SimTime::from_millis(1.0), |_| {});
        // Preempted at 1 ms with 9 ms of bytes left (already settled, so
        // the eviction owes nothing)…
        let d = alloc.apply(
            SimTime::from_millis(1.0),
            vec![(f(2), voq(0, 2))],
            |_| 2_500_000,
            no_evict,
        );
        assert_eq!((d.entered, d.left), (1, 1));
        // …and re-admitted at 2 ms: completion is 2 ms + 9 ms, a fresh
        // epoch over the *current* remaining bytes. Flow 2 ran unsettled
        // for 1 ms, so its eviction owes exactly that drain.
        let mut evicted = Vec::new();
        let d = alloc.apply(
            SimTime::from_millis(2.0),
            vec![(f(1), voq(0, 1))],
            |id| {
                assert_eq!(id, f(1));
                11_250_000
            },
            |drain| evicted.push(drain),
        );
        assert_eq!((d.entered, d.left), (1, 1));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].flow, f(2));
        assert_eq!(evicted[0].amount, 1_250_000);
        assert!(!evicted[0].completed);
        assert_eq!(alloc.next_completion(), SimTime::from_millis(11.0));
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn same_voq_preemption_keeps_the_voq_index_bound() {
        let mut alloc = DeltaAllocator::new(gbps10());
        // Two flows between the same host pair: the shorter preempts the
        // longer on the SAME VOQ. The entrant binds the VOQ slot in the
        // new-side window before the leaver's cleanup runs, so the
        // cleanup must not unbind it.
        alloc.apply(
            SimTime::ZERO,
            vec![(f(1), voq(0, 1))],
            |_| 1_250_000,
            no_evict,
        );
        let mut evicted = Vec::new();
        alloc.apply(
            SimTime::from_micros(1.0),
            vec![(f(2), voq(0, 1))],
            |_| 1_250,
            |d| evicted.push(d),
        );
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].flow, f(1));
        assert_eq!(evicted[0].amount, 1_250);
        alloc.check_consistent().unwrap();
        // The entrant is still reachable through the VOQ index: its
        // completion settles normally.
        let mut done = Vec::new();
        assert!(alloc.settle_due(SimTime::from_micros(2.0), |d| done.push(d)));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].flow, f(2));
        assert!(done[0].completed);
        assert!(alloc.is_empty());
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn empty_apply_evicts_everything() {
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(
            SimTime::ZERO,
            vec![(f(1), voq(0, 1)), (f(2), voq(2, 3))],
            |_| 1_000,
            no_evict,
        );
        let d = alloc.apply(SimTime::ZERO, vec![], |_| unreachable!(), no_evict);
        assert_eq!((d.entered, d.left, d.kept), (0, 2, 0));
        assert!(alloc.is_empty());
        assert_eq!(alloc.next_completion(), SimTime::INFINITY);
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn positional_shift_after_a_completion_stays_cheap() {
        let mut alloc = DeltaAllocator::new(gbps10());
        // Flow 1 completes first; the tail of the selection shifts by one
        // position but matches suffix-wise, so the re-apply without flow 1
        // is all kept flows, no entrants, no leavers.
        alloc.apply(
            SimTime::ZERO,
            vec![(f(1), voq(0, 1)), (f(2), voq(2, 3)), (f(3), voq(4, 5))],
            |id| if id == f(1) { 1_250 } else { 12_500 },
            no_evict,
        );
        assert!(alloc.settle_due(SimTime::from_micros(1.0), |d| assert_eq!(d.flow, f(1))));
        let d = alloc.apply(
            SimTime::from_micros(1.0),
            vec![(f(2), voq(2, 3)), (f(3), voq(4, 5))],
            |_| unreachable!("both flows stay scheduled"),
            no_evict,
        );
        assert_eq!((d.entered, d.left, d.kept), (0, 0, 2));
        alloc.check_consistent().unwrap();
    }

    #[test]
    fn live_views_adjusts_backlog_and_champion_exactly() {
        use basrpt_core::{FlowState, FlowTable};

        let mut table = FlowTable::new();
        let q = voq(0, 1);
        // Flow 1 transmits (12 500 bytes); flow 2 waits with 5 000.
        table.insert(FlowState::new(f(1), q, 12_500)).unwrap();
        table.insert(FlowState::new(f(2), q, 5_000)).unwrap();
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(SimTime::ZERO, vec![(f(1), q)], |_| 12_500, no_evict);

        let view_at = |table: &FlowTable, alloc: &DeltaAllocator, t: SimTime| {
            let mut view = table.voqs().next().unwrap();
            alloc.live_views(t).adjust(&mut view);
            view
        };

        // 2 µs in: flow 1 has moved 2 500 unsettled bytes. Its live
        // remaining (10 000) still loses to flow 2's 5 000.
        let v = view_at(&table, &alloc, SimTime::from_micros(2.0));
        assert_eq!(v.backlog, 15_000);
        assert_eq!(v.shortest_flow, f(2));
        assert_eq!(v.shortest_remaining, 5_000);

        // 7 µs in: flow 1's live remaining (3 750) now beats flow 2 —
        // the lens must hand the champion over.
        let v = view_at(&table, &alloc, SimTime::from_micros(7.0));
        assert_eq!(v.backlog, 8_750);
        assert_eq!(v.shortest_flow, f(1));
        assert_eq!(v.shortest_remaining, 3_750);

        // After settling, the adjusted view and the raw view agree: the
        // lens is exactly "the table as if settled".
        let mut drained = 0;
        alloc.settle(SimTime::from_micros(7.0), |d| {
            table.drain(d.flow, d.amount).unwrap();
            drained += d.amount;
        });
        assert_eq!(drained, 8_750);
        let raw = table.voqs().next().unwrap();
        let v = view_at(&table, &alloc, SimTime::from_micros(7.0));
        assert_eq!(v.backlog, raw.backlog);
        assert_eq!(v.shortest_flow, raw.shortest_flow);
        assert_eq!(v.shortest_remaining, raw.shortest_remaining);
    }

    #[test]
    fn live_views_honors_the_id_tie_break() {
        use basrpt_core::{FlowState, FlowTable};

        let mut table = FlowTable::new();
        let q = voq(0, 1);
        // Flow 5 transmits; flow 2 waits. After 1 µs (1 250 bytes) flow
        // 5's live remaining exactly ties flow 2's — and the lens must
        // keep flow 2, the smaller id, exactly as a settled table would.
        table.insert(FlowState::new(f(5), q, 5_000)).unwrap();
        table.insert(FlowState::new(f(2), q, 3_750)).unwrap();
        let mut alloc = DeltaAllocator::new(gbps10());
        alloc.apply(SimTime::ZERO, vec![(f(5), q)], |_| 5_000, no_evict);

        let mut view = table.voqs().next().unwrap();
        assert_eq!(view.shortest_flow, f(2));
        alloc
            .live_views(SimTime::from_micros(1.0))
            .adjust(&mut view);
        assert_eq!(view.shortest_flow, f(2), "equal remaining: smaller id wins");
        assert_eq!(view.shortest_remaining, 3_750);
        assert_eq!(view.backlog, 8_750 - 1_250);

        // A hair later the transmitting flow is strictly shorter and
        // takes the championship over.
        let mut view = table.voqs().next().unwrap();
        alloc
            .live_views(SimTime::from_micros(1.6))
            .adjust(&mut view);
        assert_eq!(view.shortest_flow, f(5));
        assert_eq!(view.shortest_remaining, 3_000);
    }

    #[test]
    fn core_budgets_match_the_reference_filter() {
        // 2 racks × 8 hosts, 1 core: at most 4 inter-rack flows per rack
        // direction (40 Gbps uplink / 10 Gbps edge).
        let topo = FatTree::scaled(2, 8, 1).unwrap();
        assert!(!topo.is_full_bisection());
        let selected: Vec<(FlowId, Voq)> = (0..8)
            .map(|i| (f(i), voq(i as u32, 8 + i as u32)))
            .collect();
        let mut budgets = CoreBudgets::default();
        let got = budgets.filter(&topo, selected.iter().copied()).to_vec();
        assert_eq!(got.len(), 4, "one 40 Gbps uplink carries 4 edge flows");
        assert_eq!(&got[..], &selected[..4], "priority order preserved");
        // Intra-rack flows pass even with the core budget exhausted.
        let mut with_local = selected.clone();
        with_local.push((f(99), voq(0, 1)));
        let got = budgets.filter(&topo, with_local.iter().copied()).to_vec();
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], (f(99), voq(0, 1)));
    }
}
