//! Max-min fair-share fabric allocation: the "no scheduling" baseline.
//!
//! The disciplines in `basrpt-core` pick a crossbar matching — at most one
//! flow per source and destination NIC transmits, at line rate. The
//! related work (Abbasloo et al., "To schedule or not to schedule";
//! Roberts & Rossi) argues the interesting comparison is against *no*
//! scheduling at all: every active flow transmits simultaneously and the
//! fabric divides capacity **max-min fairly**. This module implements that
//! baseline with the same exact byte accounting as the matching engine, so
//! the fig2/table1 grids can put FairShare next to SRPT/BASRPT.
//!
//! # The water-filling model
//!
//! Capacity constraints come from the [`Topology`]: every source NIC and
//! every destination NIC caps the sum of its flows' rates at the edge
//! rate, and — when core capacity is enforced (oversubscribed fabrics, or
//! [`SimConfig::enforce_core_capacity`]) — every rack's uplink and
//! downlink cap the sum over its inter-rack flows. Progressive filling
//! raises every unfrozen flow's rate uniformly until some constraint
//! saturates, freezes that constraint's flows at the saturation level, and
//! repeats — the classic max-min fair allocation.
//!
//! Two implementations compute it:
//!
//! * [`FairShareAllocator`] — the production allocator: per-flow
//!   constraint lists built once per reschedule, a compacted live-flow
//!   list, `O(C + live)` per round;
//! * [`crate::reference::simulate_fair_share_naive`] — a deliberately
//!   naive reference that rescans **every flow for every constraint on
//!   every round** (`O(n²)` per reschedule) with dumb data structures.
//!
//! Both follow the *same canonical arithmetic contract* — fill levels are
//! computed as `(residual / unfrozen).max(0.0)`, residuals are decremented
//! by the round's level once per frozen member in ascending flow-id order
//! (source, destination, uplink, downlink constraint order within a flow)
//! — so their outputs are **bit-identical**, which is what
//! `tests/fairshare_differential.rs` pins across seeds × topologies ×
//! shard counts, the same technique that pins the delta engine against
//! the scan engine.
//!
//! # The event loop
//!
//! [`simulate_fair_share`] mirrors the matching engine's loop — same event
//! ordering within an instant (completions, arrivals, sample,
//! reallocation), same epoch-based drain accounting, same analytic
//! completion instants — but every active flow holds a per-flow *rate*
//! rather than being on/off at line rate. Reallocation happens on every
//! arrival and completion; in the spirit of the [`crate::DeltaAllocator`]
//! delta path, only flows whose rate actually changed re-open their drain
//! epoch and pay a [`CompletionCalendar`] edit — a flow whose fair share
//! is unaffected keeps its epoch, so its completion instant (and every
//! output bit) is invariant to unrelated churn.
//!
//! The production loop also settles byte accounts **lazily** (see
//! [`crate::settle`]): per event only the flows actually *due* drain into
//! the table, and an unchanged-rate flow's account is left untouched
//! until a sample instant, the horizon, or its own rate change observes
//! it. Because each account settles through the same exact
//! `drain_target` conversion no matter when it is read, lazy and eager
//! runs are bit-identical — the naive reference stays eager and
//! `tests/fairshare_differential.rs` pins exactly that.

use crate::calendar::CompletionCalendar;
use crate::engine::{validate_arrival, FabricError, FabricRun, FlowMeta, SimConfig};
use crate::topology::Topology;
use basrpt_core::{FlowState, FlowTable};
use dcn_metrics::{FctRecorder, SizeBucketRecorder, ThroughputMeter};
use dcn_probe::{
    ArrivalEvent, BacklogSampler, CompletionEvent, DrainEvent, Fanout, NoProbe, Probe, SampleEvent,
};
use dcn_types::{Bytes, FlowId, Rate, SimTime, Voq};
use dcn_workload::FlowArrival;
use std::collections::HashMap;

/// The capacity-constraint system of one topology, shared by the
/// production and reference water-fillers so both see the identical
/// constraint indexing, capacities and membership rule.
///
/// Constraint indices are canonical: `0..H` are source-NIC constraints,
/// `H..2H` destination-NIC constraints, then (only when core capacity is
/// enforced) `2H..2H+R` rack uplinks and `2H+R..2H+2R` rack downlinks.
/// Intra-rack flows are not members of any rack constraint.
#[derive(Debug, Clone)]
pub struct ConstraintSpec {
    num_hosts: usize,
    num_racks: usize,
    rack_of: Vec<u32>,
    edge_cap: f64,
    uplink_cap: f64,
    enforce_core: bool,
}

impl ConstraintSpec {
    /// Builds the constraint system of `topo`. Rack constraints are
    /// included only when `enforce_core` is set (the engine passes
    /// `config.enforce_core_capacity || !topo.is_full_bisection()`, the
    /// same rule as the matching engine's core filter).
    pub fn new<T: Topology + ?Sized>(topo: &T, enforce_core: bool) -> Self {
        let num_hosts = topo.num_hosts() as usize;
        let rack_of = (0..num_hosts as u32)
            .map(|h| topo.rack_of(dcn_types::HostId::new(h)).index())
            .collect();
        ConstraintSpec {
            num_hosts,
            num_racks: topo.num_racks() as usize,
            rack_of,
            edge_cap: topo.edge_rate().bytes_per_sec(),
            uplink_cap: topo.rack_uplink_capacity().bytes_per_sec(),
            enforce_core,
        }
    }

    /// Total number of constraints.
    pub fn len(&self) -> usize {
        2 * self.num_hosts
            + if self.enforce_core {
                2 * self.num_racks
            } else {
                0
            }
    }

    /// Whether the system has no constraints (an empty topology cannot be
    /// built, so this is always false in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity of constraint `c`, in bytes/second.
    pub fn cap(&self, c: usize) -> f64 {
        if c < 2 * self.num_hosts {
            self.edge_cap
        } else {
            self.uplink_cap
        }
    }

    /// Writes the constraints `voq` is a member of into `out` in canonical
    /// order (source NIC, destination NIC, rack uplink, rack downlink) and
    /// returns how many there are (2 for intra-rack or unenforced-core
    /// flows, 4 otherwise).
    pub fn constraints_of(&self, voq: Voq, out: &mut [u32; 4]) -> usize {
        let (src, dst) = (voq.src().as_usize(), voq.dst().as_usize());
        out[0] = src as u32;
        out[1] = (self.num_hosts + dst) as u32;
        let (sr, dr) = (self.rack_of[src], self.rack_of[dst]);
        if !self.enforce_core || sr == dr {
            return 2;
        }
        out[2] = (2 * self.num_hosts) as u32 + sr;
        out[3] = (2 * self.num_hosts + self.num_racks) as u32 + dr;
        4
    }
}

/// The production progressive water-filler.
///
/// Reusable across reallocations: internal vectors are cleared, not
/// reallocated. Per reallocation the cost is `O(n)` setup plus
/// `O(C + live)` per filling round, against the naive reference's
/// `O(n · C)` per round — same arithmetic, different data structures (see
/// the module docs for the bit-identity contract).
///
/// # Example
///
/// ```
/// use dcn_fabric::{ConstraintSpec, FairShareAllocator, FatTree};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let topo = FatTree::scaled(2, 4, 1)?;
/// let mut alloc = FairShareAllocator::new(ConstraintSpec::new(&topo, false));
/// // Two flows out of host 0: the 10 Gbps NIC is split fairly.
/// let flows = vec![
///     (FlowId::new(0), Voq::new(HostId::new(0), HostId::new(1))),
///     (FlowId::new(1), Voq::new(HostId::new(0), HostId::new(2))),
/// ];
/// let mut rates = Vec::new();
/// alloc.allocate(&flows, &mut rates);
/// assert_eq!(rates[0], topo.edge_rate().bytes_per_sec() / 2.0);
/// assert_eq!(rates[0], rates[1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FairShareAllocator {
    spec: ConstraintSpec,
    residual: Vec<f64>,
    unfrozen: Vec<u32>,
    cons: Vec<[u32; 4]>,
    cons_len: Vec<u8>,
    live: Vec<u32>,
    marked: Vec<u32>,
}

impl FairShareAllocator {
    /// Creates an allocator for the given constraint system.
    pub fn new(spec: ConstraintSpec) -> Self {
        let c = spec.len();
        FairShareAllocator {
            spec,
            residual: Vec::with_capacity(c),
            unfrozen: Vec::with_capacity(c),
            cons: Vec::new(),
            cons_len: Vec::new(),
            live: Vec::new(),
            marked: Vec::new(),
        }
    }

    /// The constraint system this allocator fills.
    pub fn spec(&self) -> &ConstraintSpec {
        &self.spec
    }

    /// Computes the max-min fair rate (bytes/second) of every flow.
    ///
    /// `flows` must be sorted by ascending [`FlowId`] — the canonical
    /// freezing order of the arithmetic contract (the engine collects the
    /// flow table in that order). `rates` is cleared and filled so
    /// `rates[i]` is the rate of `flows[i]`.
    pub fn allocate(&mut self, flows: &[(FlowId, Voq)], rates: &mut Vec<f64>) {
        debug_assert!(
            flows.windows(2).all(|w| w[0].0 < w[1].0),
            "flows must be sorted by ascending id"
        );
        let c = self.spec.len();
        rates.clear();
        rates.resize(flows.len(), 0.0);
        self.residual.clear();
        self.residual.extend((0..c).map(|i| self.spec.cap(i)));
        self.unfrozen.clear();
        self.unfrozen.resize(c, 0);
        self.cons.clear();
        self.cons_len.clear();
        for &(_, voq) in flows {
            let mut buf = [0u32; 4];
            let n = self.spec.constraints_of(voq, &mut buf);
            for &cc in &buf[..n] {
                self.unfrozen[cc as usize] += 1;
            }
            self.cons.push(buf);
            self.cons_len.push(n as u8);
        }
        self.live.clear();
        self.live.extend(0..flows.len() as u32);

        while !self.live.is_empty() {
            // The round's fill level: the smallest per-constraint level
            // among constraints that still have unfrozen members.
            let mut lambda = f64::INFINITY;
            for i in 0..c {
                if self.unfrozen[i] > 0 {
                    let level = (self.residual[i] / self.unfrozen[i] as f64).max(0.0);
                    if level < lambda {
                        lambda = level;
                    }
                }
            }
            debug_assert!(lambda.is_finite(), "live flows imply a finite level");

            // Freeze every unfrozen flow touching a constraint at the
            // round level. `live` is ascending, so `marked` is too.
            self.marked.clear();
            let (cons, cons_len, unfrozen, residual, marked) = (
                &self.cons,
                &self.cons_len,
                &self.unfrozen,
                &self.residual,
                &mut self.marked,
            );
            self.live.retain(|&f| {
                let fi = f as usize;
                let hit = cons[fi][..cons_len[fi] as usize].iter().any(|&cc| {
                    let ci = cc as usize;
                    unfrozen[ci] > 0
                        && ((residual[ci] / unfrozen[ci] as f64).max(0.0)).to_bits()
                            == lambda.to_bits()
                });
                if hit {
                    marked.push(f);
                }
                !hit
            });
            debug_assert!(!self.marked.is_empty(), "each round freezes a flow");

            // Apply in ascending flow order, constraints in canonical
            // order — the exact subtraction sequence of the contract.
            for &f in &self.marked {
                let fi = f as usize;
                rates[fi] = lambda;
                for &cc in &self.cons[fi][..self.cons_len[fi] as usize] {
                    self.residual[cc as usize] -= lambda;
                    self.unfrozen[cc as usize] -= 1;
                }
            }
        }
    }
}

/// The naive reference water-filler: every round recounts every
/// constraint's unfrozen membership by scanning **all** flows — `O(n · C)`
/// per round, `O(n² · C)` worst case per reallocation — with no retained
/// state beyond the canonical residuals. Kept as the differential-testing
/// reference for [`FairShareAllocator`] (see the module docs).
pub(crate) fn waterfill_naive(
    spec: &ConstraintSpec,
    flows: &[(FlowId, Voq)],
    rates: &mut Vec<f64>,
) {
    let c = spec.len();
    rates.clear();
    rates.resize(flows.len(), 0.0);
    let mut residual: Vec<f64> = (0..c).map(|i| spec.cap(i)).collect();
    let mut frozen = vec![false; flows.len()];
    let member = |voq: Voq, target: usize| {
        let mut buf = [0u32; 4];
        let n = spec.constraints_of(voq, &mut buf);
        buf[..n].contains(&(target as u32))
    };
    loop {
        // Recount and re-level every constraint from scratch.
        let mut lambda = f64::INFINITY;
        let mut level_of = vec![None; c];
        for (ci, level_slot) in level_of.iter_mut().enumerate() {
            let count = flows
                .iter()
                .enumerate()
                .filter(|&(fi, &(_, voq))| !frozen[fi] && member(voq, ci))
                .count();
            if count > 0 {
                let level = (residual[ci] / count as f64).max(0.0);
                *level_slot = Some(level);
                if level < lambda {
                    lambda = level;
                }
            }
        }
        if !lambda.is_finite() {
            break;
        }
        // Two passes — mark against pre-round levels, then apply in
        // ascending flow order (the canonical subtraction sequence).
        let marked: Vec<usize> = flows
            .iter()
            .enumerate()
            .filter(|&(fi, &(_, voq))| {
                !frozen[fi] && {
                    let mut buf = [0u32; 4];
                    let n = spec.constraints_of(voq, &mut buf);
                    buf[..n].iter().any(|&cc| {
                        level_of[cc as usize]
                            .is_some_and(|level| level.to_bits() == lambda.to_bits())
                    })
                }
            })
            .map(|(fi, _)| fi)
            .collect();
        for fi in marked {
            rates[fi] = lambda;
            frozen[fi] = true;
            let mut buf = [0u32; 4];
            let n = spec.constraints_of(flows[fi].1, &mut buf);
            for &cc in &buf[..n] {
                residual[cc as usize] -= lambda;
            }
        }
    }
}

/// Drain-accounting state of one transmitting flow, at its allocated
/// fair-share rate — the per-rate analogue of the matching engine's
/// `ScheduledEntry`, with the same epoch anchoring: cumulative bytes are
/// derived once from `t - epoch`, and the completion instant is the
/// analytic `epoch + remaining / rate`.
#[derive(Debug, Clone, Copy)]
struct FairEntry {
    flow: FlowId,
    voq: Voq,
    rate: Rate,
    epoch: SimTime,
    epoch_remaining: u64,
    settled: u64,
    completes_at: SimTime,
}

impl FairEntry {
    fn new(flow: FlowId, voq: Voq, now: SimTime, remaining: u64, rate: Rate) -> Self {
        FairEntry {
            flow,
            voq,
            rate,
            epoch: now,
            epoch_remaining: remaining,
            settled: 0,
            completes_at: crate::settle::completion_instant(now, remaining, rate),
        }
    }

    fn target_at(&self, t: SimTime) -> u64 {
        crate::settle::drain_target(
            self.epoch,
            self.completes_at,
            self.epoch_remaining,
            self.rate,
            t,
        )
    }
}

/// How the fair-share loop finds the earliest completion: the production
/// path keeps a [`CompletionCalendar`] edited per changed flow (the
/// delta-style integration); the reference path rescans the entries.
/// Both read the same `completes_at` instants, so the choice cannot
/// change a bit of output.
trait FairLookup {
    fn update(&mut self, flow: FlowId, at: SimTime);
    fn remove(&mut self, flow: FlowId);
    fn next_completion(&mut self, entries: &[FairEntry]) -> SimTime;
}

#[derive(Debug, Default)]
struct CalendarFairLookup(CompletionCalendar);

impl FairLookup for CalendarFairLookup {
    fn update(&mut self, flow: FlowId, at: SimTime) {
        self.0.update(flow, at);
    }
    fn remove(&mut self, flow: FlowId) {
        self.0.remove(flow);
    }
    fn next_completion(&mut self, _entries: &[FairEntry]) -> SimTime {
        self.0.next_completion()
    }
}

#[derive(Debug, Default)]
struct ScanFairLookup;

impl FairLookup for ScanFairLookup {
    fn update(&mut self, _flow: FlowId, _at: SimTime) {}
    fn remove(&mut self, _flow: FlowId) {}
    fn next_completion(&mut self, entries: &[FairEntry]) -> SimTime {
        entries
            .iter()
            .map(|e| e.completes_at)
            .min()
            .unwrap_or(SimTime::INFINITY)
    }
}

/// Runs one max-min fair-share simulation with the production
/// [`FairShareAllocator`] (see the module docs for the model).
///
/// Accepts the same inputs as [`crate::simulate`] minus the scheduler —
/// fair sharing *is* the discipline — and produces the same [`FabricRun`]
/// measurements with the same exact accounting, so runs are directly
/// comparable. Also reachable through the builder:
/// [`FabricSim::fair_share`](crate::FabricSim::fair_share).
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
///
/// # Example
///
/// ```
/// use dcn_fabric::{simulate_fair_share, FatTree, SimConfig};
/// use dcn_types::SimTime;
/// use dcn_workload::TrafficSpec;
///
/// let topo = FatTree::scaled(2, 4, 1)?;
/// let spec = TrafficSpec::scaled(2, 4, 0.5)?;
/// let run = simulate_fair_share(
///     &topo,
///     spec.generator(7)?,
///     SimConfig::builder().horizon(SimTime::from_secs(0.05)).build(),
/// )?;
/// assert_eq!(run.arrived_bytes, run.throughput.delivered() + run.leftover_bytes);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_fair_share<T: Topology + ?Sized>(
    topo: &T,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    simulate_fair_share_probed(topo, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_fair_share`].
///
/// The fair-share loop emits arrival, drain, completion and sample events;
/// it has no crossbar schedule, so no decision events are emitted.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_fair_share_probed<T: Topology + ?Sized, P: Probe>(
    topo: &T,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    let enforce_core = config.enforce_core_capacity || !topo.is_full_bisection();
    let mut alloc = FairShareAllocator::new(ConstraintSpec::new(topo, enforce_core));
    run_fair_loop(
        topo,
        generator,
        config,
        probe,
        CalendarFairLookup::default(),
        |flows, rates| alloc.allocate(flows, rates),
        true,
    )
}

/// The naive-reference fair-share loop (see [`crate::reference`]): the
/// `O(n²)` water-filler plus the linear completion rescan. Bit-identical
/// to [`simulate_fair_share`] by the arithmetic contract.
pub(crate) fn run_fair_share_naive<T: Topology + ?Sized, P: Probe>(
    topo: &T,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    let enforce_core = config.enforce_core_capacity || !topo.is_full_bisection();
    let spec = ConstraintSpec::new(topo, enforce_core);
    run_fair_loop(
        topo,
        generator,
        config,
        probe,
        ScanFairLookup,
        |flows, rates| waterfill_naive(&spec, flows, rates),
        false,
    )
}

/// The fair-share event loop, generic over the allocator implementation
/// and the completion-lookup strategy — the two axes the differential
/// suite varies. Mirrors the matching engine's event ordering within an
/// instant: completions settle first, then arrivals, then the sample,
/// then the reallocation.
///
/// `lazy_capable` opts the loop into lazy exact settlement (see
/// [`crate::settle`]): the production calendar path passes `true`, the
/// naive reference `false` so it stays the eagerly settled yardstick.
/// The mode is still forced eager when the probe wants per-flow drain
/// fidelity or `BASRPT_SETTLE=eager` is set, and lazy/eager runs are
/// bit-identical either way — only *when* accounts settle moves.
#[allow(clippy::too_many_arguments)]
fn run_fair_loop<T, P, L, A>(
    topo: &T,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
    mut lookup: L,
    mut allocate: A,
    lazy_capable: bool,
) -> Result<FabricRun, FabricError>
where
    T: Topology + ?Sized,
    P: Probe,
    L: FairLookup,
    A: FnMut(&[(FlowId, Voq)], &mut Vec<f64>),
{
    let mode = crate::settle::SettleMode::choose(probe.wants_flow_fidelity(), lazy_capable);
    let mut generator = generator.into_iter();

    let mut table = FlowTable::new();
    let mut meta: HashMap<FlowId, FlowMeta> = HashMap::new();
    // Transmitting flows in ascending id order, with per-entry rates.
    let mut entries: Vec<FairEntry> = Vec::new();
    let mut carry: HashMap<FlowId, FairEntry> = HashMap::new();
    let mut flows_sorted: Vec<(FlowId, Voq)> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();

    let mut fct = FctRecorder::new();
    let mut fct_by_size = SizeBucketRecorder::pfabric_buckets();
    let mut throughput = ThroughputMeter::new();
    let mut sampler = BacklogSampler::new(config.monitored_port);
    let mut fan = Fanout::new(&mut sampler, probe);
    let mut arrivals_count = 0usize;
    let mut completions_count = 0usize;
    let mut arrived_bytes = Bytes::ZERO;
    let mut reschedules = 0u64;

    let mut clock = SimTime::ZERO;
    let mut next_sample = SimTime::ZERO;
    let mut next_arrival = generator.next();
    let mut last_arrival_time = SimTime::ZERO;

    loop {
        let t_arrival = next_arrival.as_ref().map_or(SimTime::INFINITY, |a| a.time);
        let t_completion = lookup.next_completion(&entries);
        let t = t_arrival
            .min(t_completion)
            .min(next_sample)
            .min(config.horizon);

        // --- advance: settle transmitting flows' accounts at t ---
        // Eager mode settles every account at every event; lazy mode
        // settles only the flows *due* at t (one linear scan of cheap
        // compares, no table or meter work for the rest), deferring the
        // others until a sample instant, the horizon, or their own rate
        // change observes them.
        let observe_all = !mode.is_lazy() || next_sample <= t || t >= config.horizon;
        let elapsed = t - clock;
        let mut completed_any = false;
        if elapsed > SimTime::ZERO {
            let mut i = 0;
            while i < entries.len() {
                let entry = &mut entries[i];
                if !observe_all && t < entry.completes_at {
                    i += 1;
                    continue;
                }
                let target = entry.target_at(t);
                let amount = target - entry.settled;
                if amount == 0 {
                    i += 1;
                    continue;
                }
                entry.settled = target;
                let (id, voq) = (entry.flow, entry.voq);
                let outcome = table.drain(id, amount).expect("allocated flow is active");
                debug_assert_eq!(outcome.drained, amount, "exact drain cannot be short");
                throughput.deliver(Bytes::new(outcome.drained));
                fan.on_drain(&DrainEvent {
                    time: t.as_secs(),
                    flow: id,
                    voq,
                    amount: outcome.drained,
                });
                if outcome.completed.is_some() {
                    let info = meta.remove(&id).expect("active flow has metadata");
                    let flow_fct = t - info.arrival + config.base_latency;
                    fct.record(info.class, info.size, flow_fct);
                    fct_by_size.record(info.size, flow_fct);
                    fan.on_completion(&CompletionEvent {
                        time: t.as_secs(),
                        flow: id,
                        voq,
                        size: info.size.as_u64(),
                        fct: flow_fct.as_secs(),
                    });
                    completions_count += 1;
                    completed_any = true;
                    lookup.remove(id);
                    entries.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        clock = t;

        if clock >= config.horizon {
            break;
        }

        // --- arrivals landing at (or before) the current instant ---
        let mut arrived_any = false;
        while let Some(arrival) = next_arrival.as_ref() {
            if arrival.time > clock {
                break;
            }
            let arrival = *next_arrival.as_ref().expect("checked above");
            validate_arrival(topo, &arrival, last_arrival_time)?;
            last_arrival_time = arrival.time;
            table
                .insert(FlowState::new(
                    arrival.id,
                    arrival.voq,
                    arrival.size.as_u64(),
                ))
                .map_err(|e| FabricError::BadArrival(e.to_string()))?;
            meta.insert(
                arrival.id,
                FlowMeta {
                    class: arrival.class,
                    size: arrival.size,
                    arrival: arrival.time,
                },
            );
            arrivals_count += 1;
            arrived_bytes += arrival.size;
            arrived_any = true;
            fan.on_arrival(&ArrivalEvent {
                time: arrival.time.as_secs(),
                flow: arrival.id,
                voq: arrival.voq,
                size: arrival.size.as_u64(),
            });
            next_arrival = generator.next();
        }

        // --- sampling (after same-instant arrivals) ---
        if next_sample <= clock {
            fan.on_sample(&SampleEvent {
                time: clock.as_secs(),
                table: &table,
                delivered: throughput.delivered().as_f64(),
            });
            next_sample += config.sample_every;
        }

        // --- reallocate on arrival or completion ---
        if arrived_any || completed_any {
            flows_sorted.clear();
            flows_sorted.extend(table.iter().map(|f| (f.id(), f.voq())));
            flows_sorted.sort_unstable_by_key(|&(id, _)| id);
            allocate(&flows_sorted, &mut rates);
            carry.clear();
            carry.extend(entries.drain(..).map(|e| (e.flow, e)));
            for (i, &(id, voq)) in flows_sorted.iter().enumerate() {
                let rate = Rate::from_bytes_per_sec(rates[i]);
                match carry.remove(&id) {
                    // An unchanged rate keeps its drain epoch: the
                    // completion instant is bit-invariant to unrelated
                    // churn, and the calendar is not touched.
                    Some(old)
                        if old.rate.bytes_per_sec().to_bits() == rate.bytes_per_sec().to_bits() =>
                    {
                        entries.push(old);
                    }
                    had_entry => {
                        if let Some(old) = had_entry {
                            // A rate change (or starvation) re-opens the
                            // epoch over the *current* remaining bytes, so
                            // any unsettled residue must drain first — in
                            // eager mode the advance phase already settled
                            // it and this owes nothing.
                            let target = old.target_at(clock);
                            let amount = target - old.settled;
                            if amount > 0 {
                                debug_assert!(
                                    target < old.epoch_remaining,
                                    "due completions settle in the advance phase"
                                );
                                let outcome =
                                    table.drain(id, amount).expect("allocated flow is active");
                                debug_assert_eq!(outcome.drained, amount);
                                throughput.deliver(Bytes::new(outcome.drained));
                                fan.on_drain(&DrainEvent {
                                    time: clock.as_secs(),
                                    flow: id,
                                    voq,
                                    amount: outcome.drained,
                                });
                            }
                            if rate.is_zero() {
                                lookup.remove(id);
                            }
                        }
                        if !rate.is_zero() {
                            // A zero rate is pathological rounding: the
                            // flow starves for one epoch and re-enters at
                            // the next event.
                            let remaining =
                                table.get(id).expect("allocated flow is active").remaining();
                            let entry = FairEntry::new(id, voq, clock, remaining, rate);
                            lookup.update(id, entry.completes_at);
                            entries.push(entry);
                        }
                    }
                }
            }
            debug_assert!(carry.is_empty(), "every active flow was reallocated");
            reschedules += 1;
        }
    }
    drop(fan);
    let series = sampler.into_series();

    Ok(FabricRun {
        fct,
        fct_by_size,
        throughput,
        total_backlog: series.total_backlog,
        monitored_port_backlog: series.monitored_port_backlog,
        max_port_backlog: series.max_port_backlog,
        cumulative_delivered: series.cumulative_delivered,
        arrivals: arrivals_count,
        completions: completions_count,
        arrived_bytes,
        leftover_bytes: Bytes::new(table.total_backlog()),
        leftover_flows: table.len(),
        reschedules,
        horizon: config.horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FatTree, KAryFatTree};
    use dcn_types::{FlowClass, HostId};

    fn arrival(id: u64, t: f64, src: u32, dst: u32, size: u64) -> FlowArrival {
        FlowArrival {
            id: FlowId::new(id),
            time: SimTime::from_secs(t),
            voq: Voq::new(HostId::new(src), HostId::new(dst)),
            size: Bytes::new(size),
            class: FlowClass::Background,
        }
    }

    fn config(horizon_secs: f64) -> SimConfig {
        SimConfig::builder()
            .horizon(SimTime::from_secs(horizon_secs))
            .build()
    }

    #[test]
    fn solo_flow_gets_line_rate_and_exact_fct() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let run = simulate_fair_share(&topo, vec![arrival(0, 0.0, 0, 1, 1_250_000)], config(0.01))
            .unwrap();
        assert_eq!(run.completions, 1);
        let want = topo
            .edge_rate()
            .transfer_time(Bytes::new(1_250_000))
            .as_secs();
        let got = run.fct.summary(FlowClass::Background).unwrap().mean_secs;
        assert_eq!(got.to_bits(), want.to_bits(), "solo flow runs at line rate");
    }

    #[test]
    fn contending_flows_split_the_nic_fairly() {
        // Two equal flows out of host 0: each gets 5 Gbps, both finish at
        // exactly twice the solo time — where SRPT would serialize them.
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let run = simulate_fair_share(
            &topo,
            vec![
                arrival(0, 0.0, 0, 1, 1_250_000),
                arrival(1, 0.0, 0, 2, 1_250_000),
            ],
            config(0.01),
        )
        .unwrap();
        assert_eq!(run.completions, 2);
        let s = run.fct.summary(FlowClass::Background).unwrap();
        let solo = topo
            .edge_rate()
            .transfer_time(Bytes::new(1_250_000))
            .as_secs();
        assert!((s.max_secs - 2.0 * solo).abs() < 1e-9, "max {}", s.max_secs);
        assert!((s.mean_secs - 2.0 * solo).abs() < 1e-9);
    }

    #[test]
    fn released_capacity_is_refilled() {
        // A short and a long flow share a NIC; once the short one ends the
        // long one speeds back up to line rate: total time is the
        // work-conserving 1 ms + 2 ms... as fair share: both at 5 Gbps,
        // short (625 KB) done at 1 ms; long (2.5 MB) then finishes its
        // remaining 1.875 MB at 10 Gbps by 2.5 ms.
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let run = simulate_fair_share(
            &topo,
            vec![
                arrival(0, 0.0, 0, 1, 2_500_000),
                arrival(1, 0.0, 0, 2, 625_000),
            ],
            config(0.02),
        )
        .unwrap();
        assert_eq!(run.completions, 2);
        let s = run.fct.summary(FlowClass::Background).unwrap();
        assert!((s.max_secs - 0.0025).abs() < 1e-9, "max {}", s.max_secs);
        assert_eq!(
            run.throughput.delivered(),
            Bytes::new(3_125_000),
            "all bytes delivered"
        );
    }

    #[test]
    fn bytes_are_conserved_mid_flight() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let run = simulate_fair_share(
            &topo,
            vec![
                arrival(0, 0.0, 0, 1, 50_000_000),
                arrival(1, 0.001, 2, 3, 1_000),
                arrival(2, 0.002, 1, 0, 7_777),
            ],
            config(0.01),
        )
        .unwrap();
        assert_eq!(
            run.arrived_bytes,
            run.throughput.delivered() + run.leftover_bytes
        );
        assert_eq!(run.completions + run.leftover_flows, run.arrivals);
    }

    #[test]
    fn oversubscribed_uplink_is_shared() {
        // 8 hosts/rack, one 40 Gbps core: the uplink is the bottleneck for
        // 8 inter-rack flows — each gets 5 Gbps, where the matching engine
        // would serialize them in two batches of four.
        let topo = FatTree::scaled(2, 8, 1).unwrap();
        assert!(!topo.is_full_bisection());
        let flows: Vec<FlowArrival> = (0..8)
            .map(|i| arrival(i, 0.0, i as u32, 8 + i as u32, 1_250_000))
            .collect();
        let run = simulate_fair_share(&topo, flows, config(0.05)).unwrap();
        assert_eq!(run.completions, 8);
        let s = run.fct.summary(FlowClass::Background).unwrap();
        // 1.25 MB at 5 Gbps = 2 ms, all identical.
        assert!((s.max_secs - 0.002).abs() < 1e-9, "max {}", s.max_secs);
        assert!((s.mean_secs - 0.002).abs() < 1e-9);
    }

    #[test]
    fn allocator_matches_naive_reference_bitwise() {
        let topo = KAryFatTree::builder(4)
            .hosts_per_edge(4)
            .oversubscription(4.0)
            .build()
            .unwrap();
        let spec = ConstraintSpec::new(&topo, true);
        let mut alloc = FairShareAllocator::new(spec.clone());
        // A messy mix: shared sources, shared destinations, intra- and
        // inter-rack flows.
        let flows: Vec<(FlowId, Voq)> = [
            (0u64, 0u32, 1u32),
            (1, 0, 9),
            (2, 0, 17),
            (3, 1, 9),
            (4, 2, 9),
            (5, 8, 9),
            (6, 16, 9),
            (7, 16, 24),
            (8, 17, 25),
            (9, 3, 2),
        ]
        .iter()
        .map(|&(id, s, d)| (FlowId::new(id), Voq::new(HostId::new(s), HostId::new(d))))
        .collect();
        let mut fast = Vec::new();
        let mut naive = Vec::new();
        alloc.allocate(&flows, &mut fast);
        waterfill_naive(&spec, &flows, &mut naive);
        assert_eq!(fast.len(), naive.len());
        for (i, (a, b)) in fast.iter().zip(naive.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "flow {i}: {a} vs {b}");
        }
        // And the allocation respects every constraint.
        for c in 0..spec.len() {
            let mut used = 0.0;
            for (i, &(_, voq)) in flows.iter().enumerate() {
                let mut buf = [0u32; 4];
                let n = spec.constraints_of(voq, &mut buf);
                if buf[..n].contains(&(c as u32)) {
                    used += fast[i];
                }
            }
            assert!(
                used <= spec.cap(c) * (1.0 + 1e-9),
                "constraint {c} oversubscribed: {used} > {}",
                spec.cap(c)
            );
        }
    }

    #[test]
    fn engine_matches_naive_engine_bitwise() {
        let topo = FatTree::scaled(3, 4, 1).unwrap();
        let arrivals = vec![
            arrival(0, 0.0, 0, 4, 300_000),
            arrival(1, 0.0001, 0, 5, 40_000),
            arrival(2, 0.0002, 4, 8, 1_000_000),
            arrival(3, 0.0003, 8, 0, 7_777),
            arrival(4, 0.0004, 1, 0, 250_000),
        ];
        let cfg = config(0.01);
        let fast = simulate_fair_share(&topo, arrivals.clone(), cfg).unwrap();
        let naive = run_fair_share_naive(&topo, arrivals, cfg, NoProbe).unwrap();
        assert_eq!(fast.completions, naive.completions);
        assert_eq!(fast.arrived_bytes, naive.arrived_bytes);
        assert_eq!(fast.leftover_bytes, naive.leftover_bytes);
        assert_eq!(fast.total_backlog, naive.total_backlog);
        assert_eq!(fast.cumulative_delivered, naive.cumulative_delivered);
        let (a, b) = (
            fast.fct.summary(FlowClass::Background).unwrap(),
            naive.fct.summary(FlowClass::Background).unwrap(),
        );
        assert_eq!(a.mean_secs.to_bits(), b.mean_secs.to_bits());
        assert_eq!(a.max_secs.to_bits(), b.max_secs.to_bits());
    }

    #[test]
    fn lazy_and_eager_fair_loops_agree_bitwise() {
        // A probe with the default `wants_flow_fidelity` forces eager
        // settlement; `NoProbe` leaves the production loop lazy. Both
        // must produce bit-identical runs.
        struct EagerProbe;
        impl Probe for EagerProbe {}

        let topo = FatTree::scaled(3, 4, 1).unwrap();
        let arrivals = vec![
            arrival(0, 0.0, 0, 4, 2_000_000),
            arrival(1, 0.0001, 0, 5, 40_000),
            arrival(2, 0.0002, 4, 8, 1_000_000),
            arrival(3, 0.0003, 8, 0, 7_777),
            arrival(4, 0.0004, 1, 0, 250_000),
            arrival(5, 0.0005, 2, 4, 555_555),
        ];
        let cfg = config(0.01);
        let lazy = simulate_fair_share(&topo, arrivals.clone(), cfg).unwrap();
        let eager = simulate_fair_share_probed(&topo, arrivals, cfg, EagerProbe).unwrap();
        assert_eq!(lazy.completions, eager.completions);
        assert_eq!(lazy.reschedules, eager.reschedules);
        assert_eq!(lazy.arrived_bytes, eager.arrived_bytes);
        assert_eq!(lazy.leftover_bytes, eager.leftover_bytes);
        assert_eq!(lazy.throughput.delivered(), eager.throughput.delivered());
        assert_eq!(lazy.total_backlog, eager.total_backlog);
        assert_eq!(lazy.max_port_backlog, eager.max_port_backlog);
        assert_eq!(lazy.cumulative_delivered, eager.cumulative_delivered);
        assert_eq!(lazy.fct.overall_summary(), eager.fct.overall_summary());
    }

    #[test]
    fn empty_workload_produces_the_sample_grid() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let run = simulate_fair_share(&topo, Vec::new(), config(0.001)).unwrap();
        assert_eq!(run.arrivals, 0);
        assert!(!run.total_backlog.is_empty());
    }

    #[test]
    fn bad_arrivals_are_rejected() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let err = simulate_fair_share(&topo, vec![arrival(0, 0.0, 0, 99, 1_000)], config(0.001));
        assert!(matches!(err, Err(FabricError::BadArrival(_))));
        let err = simulate_fair_share(&topo, vec![arrival(0, 0.0, 3, 3, 1_000)], config(0.001));
        assert!(matches!(err, Err(FabricError::BadArrival(_))));
    }
}
