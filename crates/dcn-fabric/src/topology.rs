//! Fabric topologies: the capacity-constraint interface ([`Topology`]),
//! the paper's fixed multi-rooted tree ([`FatTree`], Fig. 4), and the
//! parameterized [`KAryFatTree`] for 1k–16k-host fabrics.
//!
//! The flow-level engine never routes packets; a topology is exactly the
//! set of capacity constraints the scheduler's matching must respect:
//! per-host edge (NIC) rates, per-rack uplink budgets, and the number of
//! independent core planes (ECMP-style path groups). [`Topology`] is that
//! interface, and both concrete trees implement it — the engine, the
//! delta allocator's core-budget filter, and the builder are generic over
//! it, so the paper topology runs bit-identically to the pre-trait engine
//! (`tests/topology_redesign_golden.rs` pins this).

use dcn_types::{HostId, RackId, Rate, Voq};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error building a topology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A dimension (racks, hosts per rack, cores, pods…) was zero.
    #[non_exhaustive]
    ZeroDimension {
        /// Which dimension was zero.
        what: &'static str,
    },
    /// A link rate was zero (or otherwise not positive).
    #[non_exhaustive]
    NonPositiveRate {
        /// Which rate was invalid.
        what: &'static str,
    },
    /// A k-ary fat-tree needs an even arity `k ≥ 2`.
    #[non_exhaustive]
    OddArity {
        /// The rejected arity.
        k: u32,
    },
    /// The oversubscription ratio must be positive and finite.
    #[non_exhaustive]
    NonPositiveOversubscription {
        /// The rejected ratio.
        ratio: f64,
    },
    /// The requested dimensions overflow the host address space.
    #[non_exhaustive]
    TooManyHosts {
        /// The requested host count.
        hosts: u64,
        /// The largest supported host count.
        max: u64,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroDimension { what } => {
                write!(f, "invalid topology: {what} must be positive")
            }
            TopologyError::NonPositiveRate { what } => {
                write!(f, "invalid topology: {what} must be positive")
            }
            TopologyError::OddArity { k } => {
                write!(
                    f,
                    "invalid topology: fat-tree arity k = {k} must be even and >= 2"
                )
            }
            TopologyError::NonPositiveOversubscription { ratio } => {
                write!(
                    f,
                    "invalid topology: oversubscription ratio {ratio} must be positive and finite"
                )
            }
            TopologyError::TooManyHosts { hosts, max } => {
                write!(
                    f,
                    "invalid topology: {hosts} hosts exceed the supported {max}"
                )
            }
        }
    }
}

impl Error for TopologyError {}

/// The capacity constraints a fabric imposes on the central scheduler.
///
/// The engine is flow-level: it never routes, it only asks *what limits
/// concurrent transmission*. Those limits are (a) each host's NIC rate
/// ([`edge_rate`](Topology::edge_rate)), (b) each rack's aggregate uplink
/// budget ([`rack_uplink_capacity`](Topology::rack_uplink_capacity)),
/// shared by all of the rack's inter-rack flows in both directions, and
/// (c) the number of independent core planes
/// ([`core_planes`](Topology::core_planes)) the uplink capacity is striped
/// over (an ECMP-style path-group count; informational to the flow-level
/// model since budgets already aggregate the planes).
///
/// The trait is object-safe — the engine accepts `&dyn Topology` — and
/// every derived quantity (host count, rack membership, bisection test)
/// has a default implementation in terms of the five required methods, so
/// a new topology only describes its capacities.
///
/// # Example
///
/// ```
/// use dcn_fabric::{FatTree, KAryFatTree, Topology};
///
/// let paper = FatTree::paper_topology();
/// let kary = KAryFatTree::builder(4).build()?;
/// for topo in [&paper as &dyn Topology, &kary] {
///     assert!(topo.num_hosts() >= 16);
///     assert!(topo.is_full_bisection());
/// }
/// # Ok::<(), dcn_fabric::TopologyError>(())
/// ```
pub trait Topology {
    /// Number of racks (= ToR / edge switches).
    fn num_racks(&self) -> u32;

    /// Hosts per rack.
    fn hosts_per_rack(&self) -> u32;

    /// Host NIC rate — the per-flow line rate of the flow-level model.
    fn edge_rate(&self) -> Rate;

    /// Aggregate uplink capacity of one rack, shared by its inter-rack
    /// flows (enforced separately for the up and down directions).
    fn rack_uplink_capacity(&self) -> Rate;

    /// Number of independent core planes (ECMP-style path groups) the
    /// uplink capacity is striped over.
    fn core_planes(&self) -> u32;

    /// Total number of hosts.
    fn num_hosts(&self) -> u32 {
        self.num_racks() * self.hosts_per_rack()
    }

    /// Whether a host is part of this topology.
    fn contains(&self, host: HostId) -> bool {
        host.index() < self.num_hosts()
    }

    /// The rack a host lives in.
    ///
    /// # Panics
    ///
    /// Panics if the host is outside the topology.
    fn rack_of(&self, host: HostId) -> RackId {
        assert!(self.contains(host), "host {host} outside topology");
        RackId::new(host.index() / self.hosts_per_rack())
    }

    /// Whether a flow between this VOQ's endpoints stays inside one rack
    /// (and therefore never consumes uplink budget).
    fn is_intra_rack(&self, voq: Voq) -> bool {
        self.rack_of(voq.src()) == self.rack_of(voq.dst())
    }

    /// Whether every rack's uplink capacity covers its hosts' aggregate
    /// edge capacity — the paper's "bottleneck not in the network"
    /// configuration.
    fn is_full_bisection(&self) -> bool {
        self.rack_uplink_capacity().bytes_per_sec()
            >= self.edge_rate().bytes_per_sec() * self.hosts_per_rack() as f64
    }

    /// The oversubscription ratio: host capacity per rack divided by
    /// uplink capacity (1.0 = exactly full bisection, > 1 = oversubscribed).
    fn oversubscription(&self) -> f64 {
        self.edge_rate().bytes_per_sec() * self.hosts_per_rack() as f64
            / self.rack_uplink_capacity().bytes_per_sec()
    }

    /// Maximum number of concurrently transmitting *inter-rack* flows a
    /// single rack can source (or sink) at full edge rate.
    fn max_inter_rack_flows_per_rack(&self) -> u32 {
        let ratio = self.rack_uplink_capacity().bytes_per_sec() / self.edge_rate().bytes_per_sec();
        ratio.floor() as u32
    }
}

/// A three-layer multi-rooted tree: `num_racks` top-of-rack switches each
/// serving `hosts_per_rack` hosts over `edge_rate` links, fully connected
/// to `num_cores` core switches over `core_rate` links (the paper's Fig. 4
/// has 12 racks × 12 hosts, 3 cores, 10/40 Gbps).
///
/// The paper configures the bandwidths so "the bottleneck is not in the
/// network": [`FatTree::is_full_bisection`] checks that a rack's uplink
/// capacity covers all of its hosts. In full-bisection mode only the edge
/// (host NIC) constraints bind and scheduling is a pure crossbar matching;
/// otherwise the engine additionally enforces per-rack uplink capacity.
///
/// `FatTree` is one [`Topology`] implementation; the parameterized
/// [`KAryFatTree`] is another.
///
/// # Example
///
/// ```
/// use dcn_fabric::FatTree;
/// let topo = FatTree::paper_topology();
/// assert_eq!(topo.num_hosts(), 144);
/// assert!(topo.is_full_bisection());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTree {
    num_racks: u32,
    hosts_per_rack: u32,
    num_cores: u32,
    edge_rate: Rate,
    core_rate: Rate,
}

impl FatTree {
    /// Builds a topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] if any dimension is zero
    /// and [`TopologyError::NonPositiveRate`] if a rate is not positive.
    pub fn new(
        num_racks: u32,
        hosts_per_rack: u32,
        num_cores: u32,
        edge_rate: Rate,
        core_rate: Rate,
    ) -> Result<Self, TopologyError> {
        for (value, what) in [
            (num_racks, "number of racks"),
            (hosts_per_rack, "hosts per rack"),
            (num_cores, "number of cores"),
        ] {
            if value == 0 {
                return Err(TopologyError::ZeroDimension { what });
            }
        }
        if edge_rate.is_zero() {
            return Err(TopologyError::NonPositiveRate { what: "edge rate" });
        }
        if core_rate.is_zero() {
            return Err(TopologyError::NonPositiveRate { what: "core rate" });
        }
        Ok(FatTree {
            num_racks,
            hosts_per_rack,
            num_cores,
            edge_rate,
            core_rate,
        })
    }

    /// The paper's evaluation fabric: 12 racks × 12 hosts, 3 cores,
    /// 10 Gbps edge links, 40 Gbps core links (Fig. 4).
    pub fn paper_topology() -> Self {
        FatTree::new(12, 12, 3, Rate::from_gbps(10.0), Rate::from_gbps(40.0))
            .expect("paper topology is valid")
    }

    /// A scaled-down fabric with the paper's link rates and full bisection
    /// preserved when `num_cores × 40 ≥ hosts_per_rack × 10`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] on zero dimensions.
    pub fn scaled(
        num_racks: u32,
        hosts_per_rack: u32,
        num_cores: u32,
    ) -> Result<Self, TopologyError> {
        FatTree::new(
            num_racks,
            hosts_per_rack,
            num_cores,
            Rate::from_gbps(10.0),
            Rate::from_gbps(40.0),
        )
    }

    /// Number of racks (= ToR switches).
    pub fn num_racks(&self) -> u32 {
        self.num_racks
    }

    /// Hosts per rack.
    pub fn hosts_per_rack(&self) -> u32 {
        self.hosts_per_rack
    }

    /// Number of core switches.
    pub fn num_cores(&self) -> u32 {
        self.num_cores
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.num_racks * self.hosts_per_rack
    }

    /// Host NIC rate.
    pub fn edge_rate(&self) -> Rate {
        self.edge_rate
    }

    /// ToR-to-core link rate.
    pub fn core_rate(&self) -> Rate {
        self.core_rate
    }

    /// Aggregate uplink capacity of one rack (`num_cores × core_rate`).
    pub fn rack_uplink_capacity(&self) -> Rate {
        self.core_rate * self.num_cores as f64
    }

    /// Whether a host is part of this topology.
    pub fn contains(&self, host: HostId) -> bool {
        host.index() < self.num_hosts()
    }

    /// The rack a host lives in.
    ///
    /// # Panics
    ///
    /// Panics if the host is outside the topology.
    pub fn rack_of(&self, host: HostId) -> RackId {
        assert!(self.contains(host), "host {host} outside topology");
        RackId::new(host.index() / self.hosts_per_rack)
    }

    /// Whether a flow between this VOQ's endpoints stays inside one rack
    /// (and therefore never touches the core layer).
    pub fn is_intra_rack(&self, voq: Voq) -> bool {
        self.rack_of(voq.src()) == self.rack_of(voq.dst())
    }

    /// Whether every rack's uplink capacity covers its hosts' aggregate
    /// edge capacity — the paper's "bottleneck not in the network"
    /// configuration (12 × 10 Gbps ≤ 3 × 40 Gbps holds with equality).
    pub fn is_full_bisection(&self) -> bool {
        self.rack_uplink_capacity().bytes_per_sec()
            >= self.edge_rate.bytes_per_sec() * self.hosts_per_rack as f64
    }

    /// The oversubscription ratio: host capacity per rack divided by
    /// uplink capacity (1.0 = exactly full bisection, > 1 = oversubscribed).
    pub fn oversubscription(&self) -> f64 {
        self.edge_rate.bytes_per_sec() * self.hosts_per_rack as f64
            / self.rack_uplink_capacity().bytes_per_sec()
    }

    /// Maximum number of concurrently transmitting *inter-rack* flows a
    /// single rack can source (or sink) at full edge rate.
    pub fn max_inter_rack_flows_per_rack(&self) -> u32 {
        let ratio = self.rack_uplink_capacity().bytes_per_sec() / self.edge_rate.bytes_per_sec();
        ratio.floor() as u32
    }
}

impl Topology for FatTree {
    fn num_racks(&self) -> u32 {
        FatTree::num_racks(self)
    }
    fn hosts_per_rack(&self) -> u32 {
        FatTree::hosts_per_rack(self)
    }
    fn edge_rate(&self) -> Rate {
        FatTree::edge_rate(self)
    }
    fn rack_uplink_capacity(&self) -> Rate {
        FatTree::rack_uplink_capacity(self)
    }
    /// Each core switch is an independent path group.
    fn core_planes(&self) -> u32 {
        FatTree::num_cores(self)
    }
}

/// A parameterized k-ary fat-tree (Al-Fares et al.): `k` pods, each with
/// `k/2` edge (ToR) switches serving `hosts_per_edge` hosts, aggregated
/// over `k/2` core planes of `k/2` switches each.
///
/// The flow-level model reduces the tree to its [`Topology`] capacities:
/// `k·k/2` racks of `hosts_per_edge` hosts at `edge_rate`, each rack's
/// uplink budget `hosts_per_edge × edge_rate / oversubscription`. The
/// canonical tree has `hosts_per_edge = k/2` (so `k³/4` hosts: k = 16 →
/// 1024, k = 32 → 8192, k = 40 → 16000); `hosts_per_edge` is a free knob
/// so host counts like 1152 (k = 16 × 9 hosts/edge) are reachable without
/// jumping a whole arity step.
///
/// # Example
///
/// ```
/// use dcn_fabric::{KAryFatTree, Topology};
/// use dcn_types::Rate;
///
/// // Canonical k = 16 tree: 1024 hosts, full bisection.
/// let t = KAryFatTree::builder(16).build()?;
/// assert_eq!(t.num_hosts(), 1024);
/// assert!(t.is_full_bisection());
///
/// // 1152 hosts at 3:1 oversubscription.
/// let t = KAryFatTree::builder(16)
///     .hosts_per_edge(9)
///     .oversubscription(3.0)
///     .build()?;
/// assert_eq!(t.num_hosts(), 1152);
/// assert!((t.oversubscription() - 3.0).abs() < 1e-12);
/// # Ok::<(), dcn_fabric::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KAryFatTree {
    k: u32,
    hosts_per_edge: u32,
    edge_rate: Rate,
    oversubscription: f64,
}

impl KAryFatTree {
    /// Starts building a k-ary fat-tree of arity `k`. Defaults:
    /// `hosts_per_edge = k/2` (the canonical tree), 10 Gbps edge links,
    /// oversubscription 1.0 (full bisection).
    pub fn builder(k: u32) -> KAryFatTreeBuilder {
        KAryFatTreeBuilder {
            k,
            hosts_per_edge: None,
            edge_rate: Rate::from_gbps(10.0),
            oversubscription: 1.0,
        }
    }

    /// The arity `k`: pods, and ports per switch.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hosts attached to each edge (ToR) switch.
    pub fn hosts_per_edge(&self) -> u32 {
        self.hosts_per_edge
    }

    /// Number of pods.
    pub fn num_pods(&self) -> u32 {
        self.k
    }

    /// Edge switches (racks) per pod.
    pub fn edges_per_pod(&self) -> u32 {
        self.k / 2
    }

    /// Total number of core switches (`(k/2)²`, in `k/2` planes).
    pub fn num_cores(&self) -> u32 {
        (self.k / 2) * (self.k / 2)
    }

    /// The pod a host lives in.
    ///
    /// # Panics
    ///
    /// Panics if the host is outside the topology.
    pub fn pod_of(&self, host: HostId) -> u32 {
        self.rack_of(host).index() / self.edges_per_pod()
    }
}

impl Topology for KAryFatTree {
    fn num_racks(&self) -> u32 {
        self.k * (self.k / 2)
    }
    fn hosts_per_rack(&self) -> u32 {
        self.hosts_per_edge
    }
    fn edge_rate(&self) -> Rate {
        self.edge_rate
    }
    fn rack_uplink_capacity(&self) -> Rate {
        self.edge_rate * (self.hosts_per_edge as f64 / self.oversubscription)
    }
    /// The aggregation layer stripes each rack's uplinks over `k/2`
    /// independent core planes.
    fn core_planes(&self) -> u32 {
        self.k / 2
    }
    fn oversubscription(&self) -> f64 {
        self.oversubscription
    }
}

/// Builder for [`KAryFatTree`], obtained from [`KAryFatTree::builder`].
#[must_use = "call .build() to obtain the KAryFatTree"]
#[derive(Debug, Clone, Copy)]
pub struct KAryFatTreeBuilder {
    k: u32,
    hosts_per_edge: Option<u32>,
    edge_rate: Rate,
    oversubscription: f64,
}

impl KAryFatTreeBuilder {
    /// Sets the hosts attached to each edge switch (default `k/2`).
    pub fn hosts_per_edge(mut self, hosts: u32) -> Self {
        self.hosts_per_edge = Some(hosts);
        self
    }

    /// Sets the host NIC rate (default 10 Gbps).
    pub fn edge_rate(mut self, rate: Rate) -> Self {
        self.edge_rate = rate;
        self
    }

    /// Sets the oversubscription ratio: each rack's uplink budget is
    /// `hosts_per_edge × edge_rate / ratio` (default 1.0, full bisection;
    /// 3.0 means three hosts contend for one host's worth of uplink).
    pub fn oversubscription(mut self, ratio: f64) -> Self {
        self.oversubscription = ratio;
        self
    }

    /// Validates the parameters and builds the tree.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::OddArity`] unless `k` is even and ≥ 2,
    /// [`TopologyError::ZeroDimension`] if `hosts_per_edge` is zero,
    /// [`TopologyError::NonPositiveRate`] if the edge rate is zero,
    /// [`TopologyError::NonPositiveOversubscription`] unless the ratio is
    /// positive and finite, and [`TopologyError::TooManyHosts`] if the
    /// dimensions overflow the host address space.
    pub fn build(self) -> Result<KAryFatTree, TopologyError> {
        if self.k < 2 || !self.k.is_multiple_of(2) {
            return Err(TopologyError::OddArity { k: self.k });
        }
        let hosts_per_edge = self.hosts_per_edge.unwrap_or(self.k / 2);
        if hosts_per_edge == 0 {
            return Err(TopologyError::ZeroDimension {
                what: "hosts per edge switch",
            });
        }
        if self.edge_rate.is_zero() {
            return Err(TopologyError::NonPositiveRate { what: "edge rate" });
        }
        if !(self.oversubscription > 0.0 && self.oversubscription.is_finite()) {
            return Err(TopologyError::NonPositiveOversubscription {
                ratio: self.oversubscription,
            });
        }
        let racks = self.k as u64 * (self.k / 2) as u64;
        let hosts = racks * hosts_per_edge as u64;
        if hosts > u32::MAX as u64 {
            return Err(TopologyError::TooManyHosts {
                hosts,
                max: u32::MAX as u64,
            });
        }
        Ok(KAryFatTree {
            k: self.k,
            hosts_per_edge,
            edge_rate: self.edge_rate,
            oversubscription: self.oversubscription,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_fig4() {
        let t = FatTree::paper_topology();
        assert_eq!(t.num_racks(), 12);
        assert_eq!(t.hosts_per_rack(), 12);
        assert_eq!(t.num_cores(), 3);
        assert_eq!(t.num_hosts(), 144);
        assert!((t.edge_rate().gbps() - 10.0).abs() < 1e-9);
        assert!((t.core_rate().gbps() - 40.0).abs() < 1e-9);
        assert!(t.is_full_bisection());
        assert!((t.oversubscription() - 1.0).abs() < 1e-12);
        assert_eq!(t.max_inter_rack_flows_per_rack(), 12);
    }

    #[test]
    fn rack_membership() {
        let t = FatTree::paper_topology();
        assert_eq!(t.rack_of(HostId::new(0)), RackId::new(0));
        assert_eq!(t.rack_of(HostId::new(11)), RackId::new(0));
        assert_eq!(t.rack_of(HostId::new(12)), RackId::new(1));
        assert_eq!(t.rack_of(HostId::new(143)), RackId::new(11));
        assert!(t.is_intra_rack(Voq::new(HostId::new(0), HostId::new(5))));
        assert!(!t.is_intra_rack(Voq::new(HostId::new(0), HostId::new(20))));
        assert!(t.contains(HostId::new(143)));
        assert!(!t.contains(HostId::new(144)));
    }

    #[test]
    fn oversubscribed_topology_detected() {
        // 12 hosts × 10 Gbps = 120 Gbps vs 1 core × 40 Gbps.
        let t = FatTree::scaled(4, 12, 1).unwrap();
        assert!(!t.is_full_bisection());
        assert!((t.oversubscription() - 3.0).abs() < 1e-12);
        assert_eq!(t.max_inter_rack_flows_per_rack(), 4);
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(matches!(
            FatTree::scaled(0, 12, 3),
            Err(TopologyError::ZeroDimension { .. })
        ));
        assert!(matches!(
            FatTree::scaled(12, 0, 3),
            Err(TopologyError::ZeroDimension { .. })
        ));
        assert!(matches!(
            FatTree::scaled(12, 12, 0),
            Err(TopologyError::ZeroDimension { .. })
        ));
        assert!(matches!(
            FatTree::new(1, 1, 1, Rate::ZERO, Rate::from_gbps(40.0)),
            Err(TopologyError::NonPositiveRate { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn rack_of_checks_bounds() {
        let t = FatTree::scaled(2, 2, 1).unwrap();
        let _ = t.rack_of(HostId::new(99));
    }

    #[test]
    fn trait_view_of_fat_tree_matches_inherent() {
        let t = FatTree::paper_topology();
        let dt: &dyn Topology = &t;
        assert_eq!(dt.num_racks(), t.num_racks());
        assert_eq!(dt.hosts_per_rack(), t.hosts_per_rack());
        assert_eq!(dt.num_hosts(), t.num_hosts());
        assert_eq!(dt.core_planes(), t.num_cores());
        assert_eq!(
            dt.rack_uplink_capacity().bytes_per_sec().to_bits(),
            t.rack_uplink_capacity().bytes_per_sec().to_bits(),
            "trait and inherent capacities must be bit-identical"
        );
        assert_eq!(dt.is_full_bisection(), t.is_full_bisection());
        assert_eq!(
            dt.oversubscription().to_bits(),
            t.oversubscription().to_bits()
        );
        assert_eq!(
            dt.max_inter_rack_flows_per_rack(),
            t.max_inter_rack_flows_per_rack()
        );
        assert_eq!(dt.rack_of(HostId::new(13)), t.rack_of(HostId::new(13)));
    }

    #[test]
    fn canonical_kary_dimensions() {
        // k = 4: 4 pods × 2 edges × 2 hosts = 16 hosts, 4 cores in 2 planes.
        let t = KAryFatTree::builder(4).build().unwrap();
        assert_eq!(t.k(), 4);
        assert_eq!(t.num_pods(), 4);
        assert_eq!(t.edges_per_pod(), 2);
        assert_eq!(t.num_racks(), 8);
        assert_eq!(t.hosts_per_rack(), 2);
        assert_eq!(t.num_hosts(), 16);
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.core_planes(), 2);
        assert!(t.is_full_bisection());
        // k = 16 canonical: k³/4 = 1024 hosts.
        let t = KAryFatTree::builder(16).build().unwrap();
        assert_eq!(t.num_hosts(), 1024);
        // k = 32: 8192 hosts; k = 40: 16000 hosts (the 1k–16k range).
        assert_eq!(KAryFatTree::builder(32).build().unwrap().num_hosts(), 8192);
        assert_eq!(KAryFatTree::builder(40).build().unwrap().num_hosts(), 16000);
    }

    #[test]
    fn kary_oversubscription_scales_uplink_budget() {
        let t = KAryFatTree::builder(16)
            .hosts_per_edge(9)
            .oversubscription(3.0)
            .build()
            .unwrap();
        assert_eq!(t.num_hosts(), 1152);
        assert!(!t.is_full_bisection());
        assert!((t.oversubscription() - 3.0).abs() < 1e-12);
        // 9 hosts × 10 Gbps / 3 = 30 Gbps uplink → 3 concurrent flows.
        assert!((t.rack_uplink_capacity().gbps() - 30.0).abs() < 1e-9);
        assert_eq!(t.max_inter_rack_flows_per_rack(), 3);
        // Full bisection at ratio 1.0.
        let fb = KAryFatTree::builder(16).hosts_per_edge(9).build().unwrap();
        assert!(fb.is_full_bisection());
        assert_eq!(fb.max_inter_rack_flows_per_rack(), 9);
    }

    #[test]
    fn kary_pod_membership() {
        let t = KAryFatTree::builder(4).build().unwrap();
        // 2 hosts per edge, 2 edges per pod → 4 hosts per pod.
        assert_eq!(t.pod_of(HostId::new(0)), 0);
        assert_eq!(t.pod_of(HostId::new(3)), 0);
        assert_eq!(t.pod_of(HostId::new(4)), 1);
        assert_eq!(t.pod_of(HostId::new(15)), 3);
        assert_eq!(t.rack_of(HostId::new(5)), RackId::new(2));
    }

    #[test]
    fn invalid_kary_parameters_rejected() {
        assert!(matches!(
            KAryFatTree::builder(5).build(),
            Err(TopologyError::OddArity { k: 5 })
        ));
        assert!(matches!(
            KAryFatTree::builder(0).build(),
            Err(TopologyError::OddArity { k: 0 })
        ));
        assert!(matches!(
            KAryFatTree::builder(4).hosts_per_edge(0).build(),
            Err(TopologyError::ZeroDimension { .. })
        ));
        assert!(matches!(
            KAryFatTree::builder(4).edge_rate(Rate::ZERO).build(),
            Err(TopologyError::NonPositiveRate { .. })
        ));
        assert!(matches!(
            KAryFatTree::builder(4).oversubscription(0.0).build(),
            Err(TopologyError::NonPositiveOversubscription { .. })
        ));
        assert!(matches!(
            KAryFatTree::builder(4).oversubscription(f64::NAN).build(),
            Err(TopologyError::NonPositiveOversubscription { .. })
        ));
        assert!(matches!(
            KAryFatTree::builder(92682).hosts_per_edge(46341).build(),
            Err(TopologyError::TooManyHosts { .. })
        ));
        // Error messages render.
        let err = KAryFatTree::builder(5).build().unwrap_err();
        assert!(err.to_string().contains("even"));
    }

    #[test]
    fn kary_builder_is_reusable() {
        let b = KAryFatTree::builder(8).hosts_per_edge(6);
        let fb = b.build().unwrap();
        let over = b.oversubscription(2.0).build().unwrap();
        assert_eq!(fb.num_hosts(), over.num_hosts());
        assert!(fb.is_full_bisection());
        assert!(!over.is_full_bisection());
        assert_eq!(over.max_inter_rack_flows_per_rack(), 3);
    }
}
