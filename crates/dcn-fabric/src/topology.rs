//! The multi-rooted fat-tree topology of the paper's evaluation (Fig. 4).

use dcn_types::{HostId, RackId, Rate, Voq};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error building a topology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TopologyError(String);

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology: {}", self.0)
    }
}

impl Error for TopologyError {}

/// A three-layer multi-rooted tree: `num_racks` top-of-rack switches each
/// serving `hosts_per_rack` hosts over `edge_rate` links, fully connected
/// to `num_cores` core switches over `core_rate` links (the paper's Fig. 4
/// has 12 racks × 12 hosts, 3 cores, 10/40 Gbps).
///
/// The paper configures the bandwidths so "the bottleneck is not in the
/// network": [`FatTree::is_full_bisection`] checks that a rack's uplink
/// capacity covers all of its hosts. In full-bisection mode only the edge
/// (host NIC) constraints bind and scheduling is a pure crossbar matching;
/// otherwise the engine additionally enforces per-rack uplink capacity.
///
/// # Example
///
/// ```
/// use dcn_fabric::FatTree;
/// let topo = FatTree::paper_topology();
/// assert_eq!(topo.num_hosts(), 144);
/// assert!(topo.is_full_bisection());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTree {
    num_racks: u32,
    hosts_per_rack: u32,
    num_cores: u32,
    edge_rate: Rate,
    core_rate: Rate,
}

impl FatTree {
    /// Builds a topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if any dimension is zero or a rate is not
    /// positive.
    pub fn new(
        num_racks: u32,
        hosts_per_rack: u32,
        num_cores: u32,
        edge_rate: Rate,
        core_rate: Rate,
    ) -> Result<Self, TopologyError> {
        if num_racks == 0 || hosts_per_rack == 0 || num_cores == 0 {
            return Err(TopologyError(
                "racks, hosts per rack and cores must all be positive".into(),
            ));
        }
        if edge_rate.is_zero() || core_rate.is_zero() {
            return Err(TopologyError("link rates must be positive".into()));
        }
        Ok(FatTree {
            num_racks,
            hosts_per_rack,
            num_cores,
            edge_rate,
            core_rate,
        })
    }

    /// The paper's evaluation fabric: 12 racks × 12 hosts, 3 cores,
    /// 10 Gbps edge links, 40 Gbps core links (Fig. 4).
    pub fn paper_topology() -> Self {
        FatTree::new(12, 12, 3, Rate::from_gbps(10.0), Rate::from_gbps(40.0))
            .expect("paper topology is valid")
    }

    /// A scaled-down fabric with the paper's link rates and full bisection
    /// preserved when `num_cores × 40 ≥ hosts_per_rack × 10`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] on zero dimensions.
    pub fn scaled(
        num_racks: u32,
        hosts_per_rack: u32,
        num_cores: u32,
    ) -> Result<Self, TopologyError> {
        FatTree::new(
            num_racks,
            hosts_per_rack,
            num_cores,
            Rate::from_gbps(10.0),
            Rate::from_gbps(40.0),
        )
    }

    /// Number of racks (= ToR switches).
    pub fn num_racks(&self) -> u32 {
        self.num_racks
    }

    /// Hosts per rack.
    pub fn hosts_per_rack(&self) -> u32 {
        self.hosts_per_rack
    }

    /// Number of core switches.
    pub fn num_cores(&self) -> u32 {
        self.num_cores
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.num_racks * self.hosts_per_rack
    }

    /// Host NIC rate.
    pub fn edge_rate(&self) -> Rate {
        self.edge_rate
    }

    /// ToR-to-core link rate.
    pub fn core_rate(&self) -> Rate {
        self.core_rate
    }

    /// Aggregate uplink capacity of one rack (`num_cores × core_rate`).
    pub fn rack_uplink_capacity(&self) -> Rate {
        self.core_rate * self.num_cores as f64
    }

    /// Whether a host is part of this topology.
    pub fn contains(&self, host: HostId) -> bool {
        host.index() < self.num_hosts()
    }

    /// The rack a host lives in.
    ///
    /// # Panics
    ///
    /// Panics if the host is outside the topology.
    pub fn rack_of(&self, host: HostId) -> RackId {
        assert!(self.contains(host), "host {host} outside topology");
        RackId::new(host.index() / self.hosts_per_rack)
    }

    /// Whether a flow between this VOQ's endpoints stays inside one rack
    /// (and therefore never touches the core layer).
    pub fn is_intra_rack(&self, voq: Voq) -> bool {
        self.rack_of(voq.src()) == self.rack_of(voq.dst())
    }

    /// Whether every rack's uplink capacity covers its hosts' aggregate
    /// edge capacity — the paper's "bottleneck not in the network"
    /// configuration (12 × 10 Gbps ≤ 3 × 40 Gbps holds with equality).
    pub fn is_full_bisection(&self) -> bool {
        self.rack_uplink_capacity().bytes_per_sec()
            >= self.edge_rate.bytes_per_sec() * self.hosts_per_rack as f64
    }

    /// The oversubscription ratio: host capacity per rack divided by
    /// uplink capacity (1.0 = exactly full bisection, > 1 = oversubscribed).
    pub fn oversubscription(&self) -> f64 {
        self.edge_rate.bytes_per_sec() * self.hosts_per_rack as f64
            / self.rack_uplink_capacity().bytes_per_sec()
    }

    /// Maximum number of concurrently transmitting *inter-rack* flows a
    /// single rack can source (or sink) at full edge rate.
    pub fn max_inter_rack_flows_per_rack(&self) -> u32 {
        let ratio = self.rack_uplink_capacity().bytes_per_sec() / self.edge_rate.bytes_per_sec();
        ratio.floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_fig4() {
        let t = FatTree::paper_topology();
        assert_eq!(t.num_racks(), 12);
        assert_eq!(t.hosts_per_rack(), 12);
        assert_eq!(t.num_cores(), 3);
        assert_eq!(t.num_hosts(), 144);
        assert!((t.edge_rate().gbps() - 10.0).abs() < 1e-9);
        assert!((t.core_rate().gbps() - 40.0).abs() < 1e-9);
        assert!(t.is_full_bisection());
        assert!((t.oversubscription() - 1.0).abs() < 1e-12);
        assert_eq!(t.max_inter_rack_flows_per_rack(), 12);
    }

    #[test]
    fn rack_membership() {
        let t = FatTree::paper_topology();
        assert_eq!(t.rack_of(HostId::new(0)), RackId::new(0));
        assert_eq!(t.rack_of(HostId::new(11)), RackId::new(0));
        assert_eq!(t.rack_of(HostId::new(12)), RackId::new(1));
        assert_eq!(t.rack_of(HostId::new(143)), RackId::new(11));
        assert!(t.is_intra_rack(Voq::new(HostId::new(0), HostId::new(5))));
        assert!(!t.is_intra_rack(Voq::new(HostId::new(0), HostId::new(20))));
        assert!(t.contains(HostId::new(143)));
        assert!(!t.contains(HostId::new(144)));
    }

    #[test]
    fn oversubscribed_topology_detected() {
        // 12 hosts × 10 Gbps = 120 Gbps vs 1 core × 40 Gbps.
        let t = FatTree::scaled(4, 12, 1).unwrap();
        assert!(!t.is_full_bisection());
        assert!((t.oversubscription() - 3.0).abs() < 1e-12);
        assert_eq!(t.max_inter_rack_flows_per_rack(), 4);
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(FatTree::scaled(0, 12, 3).is_err());
        assert!(FatTree::scaled(12, 0, 3).is_err());
        assert!(FatTree::scaled(12, 12, 0).is_err());
        assert!(FatTree::new(1, 1, 1, Rate::ZERO, Rate::from_gbps(40.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn rack_of_checks_bounds() {
        let t = FatTree::scaled(2, 2, 1).unwrap();
        let _ = t.rack_of(HostId::new(99));
    }
}
