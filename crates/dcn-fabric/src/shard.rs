//! Sharded single-run execution: one simulation, partitioned by rack.
//!
//! The flow-level engine couples two flows only through shared capacity:
//! a host NIC (same endpoint) or a rack uplink budget (same rack). Racks
//! that no flow ever connects therefore evolve **independently** — the
//! scheduler's greedy matching admits a flow iff its own ports are free,
//! and the core-budget filter charges only the flow's own racks, so the
//! decision restricted to one rack-connected component is a pure function
//! of that component's flows. [`ShardPlan`] computes those components by
//! union-find over the workload's (source rack, destination rack) edges,
//! packs them into at most `S` bins, and [`simulate_sharded`] drives each
//! bin through its own delta-rate engine (own [`DeltaAllocator`]
//! [`crate::DeltaAllocator`], own scheduler instance from a
//! [`MakeScheduler`] factory) on scoped worker threads.
//!
//! The merge is deterministic and observable-exact:
//!
//! * counts and byte totals are sums of per-bin `u64`s;
//! * sampled series live on the same `0, Δ, 2Δ…` grid in every bin (the
//!   sample instant participates in each engine's next-event `min`), and
//!   every sampled value is an integer-valued `f64` — per-gridpoint sums
//!   (and the per-gridpoint `max` for the max-port series) are exact;
//! * FCT recorders are rebuilt from the merged [`CompletionRecord`] log
//!   sorted by (completion instant, flow id) — a partition-independent
//!   order — so summary statistics are bit-identical for every shard
//!   count. `BASRPT_SHARDS = 1` takes the same merge path, which is what
//!   `tests/shard_differential.rs` pins across `S ∈ {1, 2, 4, 8}`.
//!
//! One observable is intentionally **not** partition-invariant:
//! [`FabricRun::reschedules`] reports the *sum of per-bin decisions*. The
//! unsharded engine recomputes one global schedule on every event of every
//! component, so its count differs by construction (and its per-decision
//! cost is larger — the whole point: a bin's matching costs
//! `O((P/S)² log (P/S))` against the global `O(P² log P)`, which is where
//! the sharded speedup comes from; see `PERFMODEL.md`).

use crate::engine::{run_with_probe, FabricError, FabricRun, SimConfig};
use crate::topology::Topology;
use basrpt_core::MakeScheduler;
use dcn_metrics::{FctRecorder, SizeBucketRecorder, ThroughputMeter, TimeSeries};
use dcn_probe::{CompletionEvent, Probe};
use dcn_types::{Bytes, FlowClass, FlowId, RackId, SimTime, Voq};
use dcn_workload::FlowArrival;
use std::collections::HashMap;

/// Number of shards requested via the `BASRPT_SHARDS` environment
/// variable (default 1, i.e. the unsharded single-bin path — which still
/// goes through the deterministic merge).
pub fn shards_from_env() -> usize {
    std::env::var("BASRPT_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// One completed flow in the merged, time-sorted completion log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRecord {
    /// The completed flow.
    pub flow: FlowId,
    /// The completion instant.
    pub time: SimTime,
    /// The VOQ the flow occupied.
    pub voq: Voq,
    /// The flow's traffic class.
    pub class: FlowClass,
    /// The flow's size.
    pub size: Bytes,
    /// The recorded flow completion time (includes any configured base
    /// latency).
    pub fct: SimTime,
}

/// The rack partition of one workload: rack-connected components, packed
/// into at most `shards` bins.
///
/// Built by union-find over the arrivals' (source rack, destination rack)
/// edges; components are weighted by flow count and packed largest-first
/// onto the least-loaded bin, so the plan is a deterministic function of
/// (topology, workload, shard count).
///
/// # Example
///
/// ```
/// use dcn_fabric::{KAryFatTree, ShardPlan};
/// use dcn_workload::TrafficSpec;
///
/// let topo = KAryFatTree::builder(4).build()?;
/// let spec = TrafficSpec::scaled(8, 2, 0.5)?;
/// let arrivals: Vec<_> = spec.generator(7)?.take(200).collect();
/// let plan = ShardPlan::new(&topo, &arrivals, 4);
/// assert!(plan.shards_used() >= 1 && plan.shards_used() <= 4);
/// assert!(plan.components() >= plan.shards_used());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Bin index of each rack (`usize::MAX` for racks no flow touches).
    bin_of_rack: Vec<usize>,
    components: usize,
    shards_used: usize,
}

/// Path-halving union-find over rack indices.
fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

impl ShardPlan {
    /// Partitions `arrivals` over `topo`'s racks into at most `shards`
    /// bins (at least one). Arrivals referencing hosts outside the
    /// topology are assigned to bin 0 so the engine reports them as
    /// [`FabricError::BadArrival`] rather than panicking here.
    pub fn new<T: Topology + ?Sized>(
        topo: &T,
        arrivals: &[FlowArrival],
        shards: usize,
    ) -> ShardPlan {
        let num_racks = topo.num_racks() as usize;
        let mut parent: Vec<u32> = (0..num_racks as u32).collect();
        let mut touched = vec![false; num_racks];
        for a in arrivals {
            if !topo.contains(a.voq.src()) || !topo.contains(a.voq.dst()) {
                continue;
            }
            let s = topo.rack_of(a.voq.src()).index();
            let d = topo.rack_of(a.voq.dst()).index();
            touched[s as usize] = true;
            touched[d as usize] = true;
            let (rs, rd) = (uf_find(&mut parent, s), uf_find(&mut parent, d));
            if rs != rd {
                // Deterministic union: smaller root wins.
                let (lo, hi) = if rs < rd { (rs, rd) } else { (rd, rs) };
                parent[hi as usize] = lo;
            }
        }
        // Component ids in rack order; weight = flows per component.
        let mut comp_of_root: HashMap<u32, usize> = HashMap::new();
        let mut comp_of_rack = vec![usize::MAX; num_racks];
        for rack in 0..num_racks {
            if touched[rack] {
                let root = uf_find(&mut parent, rack as u32);
                let next = comp_of_root.len();
                let comp = *comp_of_root.entry(root).or_insert(next);
                comp_of_rack[rack] = comp;
            }
        }
        let components = comp_of_root.len();
        let mut weight = vec![0u64; components];
        for a in arrivals {
            if topo.contains(a.voq.src()) && topo.contains(a.voq.dst()) {
                weight[comp_of_rack[topo.rack_of(a.voq.src()).as_usize()]] += 1;
            }
        }
        // Largest component first onto the least-loaded bin (ties: lower
        // component id, lower bin index) — deterministic best-effort
        // balance. The merge is order-insensitive, so packing only affects
        // wall-clock, never output bits.
        let shards_used = shards.max(1).min(components.max(1));
        let mut order: Vec<usize> = (0..components).collect();
        order.sort_unstable_by(|&a, &b| weight[b].cmp(&weight[a]).then(a.cmp(&b)));
        let mut bin_load = vec![0u64; shards_used];
        let mut bin_of_comp = vec![0usize; components];
        for comp in order {
            let bin = (0..shards_used)
                .min_by_key(|&b| (bin_load[b], b))
                .expect("at least one bin");
            bin_of_comp[comp] = bin;
            bin_load[bin] += weight[comp];
        }
        let bin_of_rack = comp_of_rack
            .into_iter()
            .map(|c| {
                if c == usize::MAX {
                    usize::MAX
                } else {
                    bin_of_comp[c]
                }
            })
            .collect();
        ShardPlan {
            bin_of_rack,
            components,
            shards_used,
        }
    }

    /// Number of rack-connected components the workload induces.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Number of bins actually used (`min(shards, components)`, at least
    /// one).
    pub fn shards_used(&self) -> usize {
        self.shards_used
    }

    /// The bin a rack was assigned to, or `None` if no flow touches it.
    pub fn bin_of_rack(&self, rack: RackId) -> Option<usize> {
        match self.bin_of_rack.get(rack.as_usize()) {
            Some(&bin) if bin != usize::MAX => Some(bin),
            _ => None,
        }
    }

    /// The bin an arrival belongs to (bin 0 for out-of-topology arrivals,
    /// which the engine then rejects).
    fn bin_of_arrival<T: Topology + ?Sized>(&self, topo: &T, a: &FlowArrival) -> usize {
        if !topo.contains(a.voq.src()) {
            return 0;
        }
        self.bin_of_rack(topo.rack_of(a.voq.src()))
            .unwrap_or_default()
    }
}

/// The measurements of one sharded run: the merged [`FabricRun`] plus the
/// partition facts and the deterministic completion log.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged run. Every field is the exact partition-invariant
    /// observable except [`FabricRun::reschedules`], which is the sum of
    /// per-bin decision counts (see the module docs).
    pub run: FabricRun,
    /// Number of bins the run was partitioned into.
    pub shards_used: usize,
    /// Number of rack-connected components the workload induced.
    pub components: usize,
    /// Every completion, sorted by (completion instant, flow id) — the
    /// deterministic merge order the FCT recorders were rebuilt in.
    pub completion_log: Vec<CompletionRecord>,
}

/// Probe capturing every completion event of one bin's engine.
#[derive(Debug, Default)]
struct CompletionLogProbe {
    records: Vec<(f64, FlowId, Voq, u64, f64)>,
}

impl Probe for CompletionLogProbe {
    fn wants_decision_timing(&self) -> bool {
        false
    }
    fn on_completion(&mut self, event: &CompletionEvent) {
        self.records
            .push((event.time, event.flow, event.voq, event.size, event.fct));
    }
}

/// Runs one simulation partitioned into `shards` rack-disjoint bins, each
/// driven by its own delta-rate engine with a fresh scheduler from
/// `factory`, on scoped worker threads; merges the per-bin runs
/// deterministically (see the module docs).
///
/// All partition-invariant observables — arrival/completion counts, byte
/// totals, sampled series, FCT statistics — are **bit-identical for every
/// `shards` value**, including 1. Requesting more shards than the
/// workload has rack-connected components clamps to the component count.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`] (lowest bin index wins when several bins fail).
pub fn simulate_sharded<T, M>(
    topo: &T,
    factory: &M,
    arrivals: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    shards: usize,
) -> Result<ShardedRun, FabricError>
where
    T: Topology + Sync + ?Sized,
    M: MakeScheduler,
{
    run_partitioned(topo, arrivals, config, shards, |bin_arrivals| {
        let mut probe = CompletionLogProbe::default();
        let run = run_with_probe(topo, &mut factory.make(), bin_arrivals, config, &mut probe)?;
        Ok((run, probe))
    })
}

/// Runs one **max-min fair-share** simulation partitioned into `shards`
/// rack-disjoint bins — the sharded companion of
/// [`simulate_fair_share`](crate::simulate_fair_share), sharing
/// [`simulate_sharded`]'s plan and deterministic merge.
///
/// Fair-share is rack-separable under the same argument as the matching
/// engine: the water-filler's constraints (host NICs, rack up/downlinks)
/// each involve hosts of exactly one rack, so flows of disjoint
/// rack-components never share a constraint — every round's fill levels,
/// freezes and residual subtractions restricted to one component are
/// unaffected by the other components' flows, and the component-wise
/// allocation is bit-identical to the global one.
/// `tests/fairshare_differential.rs` pins this across `BASRPT_SHARDS ∈
/// {1, 4}`.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`] (lowest bin index wins when several bins fail).
pub fn simulate_fair_share_sharded<T>(
    topo: &T,
    arrivals: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    shards: usize,
) -> Result<ShardedRun, FabricError>
where
    T: Topology + Sync + ?Sized,
{
    run_partitioned(topo, arrivals, config, shards, |bin_arrivals| {
        let mut probe = CompletionLogProbe::default();
        let run =
            crate::fairshare::simulate_fair_share_probed(topo, bin_arrivals, config, &mut probe)?;
        Ok((run, probe))
    })
}

/// The shared plan → fan-out → deterministic-merge skeleton behind the
/// sharded entry points: partitions the workload with [`ShardPlan`],
/// drives each bin through `run_bin` on scoped worker threads, and merges
/// the per-bin runs (see the module docs for why the merge is exact).
fn run_partitioned<T>(
    topo: &T,
    arrivals: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    shards: usize,
    run_bin: impl Fn(Vec<FlowArrival>) -> Result<(FabricRun, CompletionLogProbe), FabricError> + Sync,
) -> Result<ShardedRun, FabricError>
where
    T: Topology + Sync + ?Sized,
{
    let arrivals: Vec<FlowArrival> = arrivals.into_iter().collect();
    let plan = ShardPlan::new(topo, &arrivals, shards);
    let bins = plan.shards_used();

    let mut per_bin: Vec<Vec<FlowArrival>> = vec![Vec::new(); bins];
    let mut class_of: HashMap<FlowId, FlowClass> = HashMap::with_capacity(arrivals.len());
    for a in arrivals {
        class_of.insert(a.id, a.class);
        per_bin[plan.bin_of_arrival(topo, &a)].push(a);
    }

    // One worker per bin; with a single bin, stay on the caller's thread.
    let results: Vec<Result<(FabricRun, CompletionLogProbe), FabricError>> = if bins == 1 {
        vec![run_bin(per_bin.pop().expect("one bin"))]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_bin
                .drain(..)
                .map(|bin_arrivals| scope.spawn(|| run_bin(bin_arrivals)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    };

    let mut runs = Vec::with_capacity(bins);
    let mut records: Vec<CompletionRecord> = Vec::new();
    for result in results {
        let (run, probe) = result?;
        for (time, flow, voq, size, fct) in probe.records {
            records.push(CompletionRecord {
                flow,
                time: SimTime::from_secs(time),
                voq,
                class: *class_of.get(&flow).expect("completed flow arrived"),
                size: Bytes::new(size),
                fct: SimTime::from_secs(fct),
            });
        }
        runs.push(run);
    }

    // Deterministic merge order: completion instant, then flow id. Both
    // are partition-invariant, so the rebuilt recorders cannot depend on
    // the shard count.
    records.sort_unstable_by(|a, b| {
        a.time
            .as_secs()
            .total_cmp(&b.time.as_secs())
            .then(a.flow.cmp(&b.flow))
    });
    let mut fct = FctRecorder::new();
    let mut fct_by_size = SizeBucketRecorder::pfabric_buckets();
    for r in &records {
        fct.record(r.class, r.size, r.fct);
        fct_by_size.record(r.size, r.fct);
    }

    let mut throughput = ThroughputMeter::new();
    let mut total_backlog = TimeSeries::new();
    let mut monitored = TimeSeries::new();
    let mut max_port = TimeSeries::new();
    let mut delivered_series = TimeSeries::new();
    let samples = runs[0].total_backlog.len();
    for run in &runs {
        debug_assert_eq!(
            run.total_backlog.len(),
            samples,
            "all bins sample the same grid"
        );
        throughput.deliver(run.throughput.delivered());
    }
    for i in 0..samples {
        // Times are grid-identical across bins; values are integer-valued
        // f64s, so the sums (and the max) below are exact.
        let t = runs[0].total_backlog.times()[i];
        total_backlog.push(t, runs.iter().map(|r| r.total_backlog.values()[i]).sum());
        monitored.push(
            t,
            runs.iter()
                .map(|r| r.monitored_port_backlog.values()[i])
                .sum(),
        );
        max_port.push(
            t,
            runs.iter()
                .map(|r| r.max_port_backlog.values()[i])
                .fold(0.0f64, f64::max),
        );
        delivered_series.push(
            t,
            runs.iter()
                .map(|r| r.cumulative_delivered.values()[i])
                .sum(),
        );
    }

    let run = FabricRun {
        fct,
        fct_by_size,
        throughput,
        total_backlog,
        monitored_port_backlog: monitored,
        max_port_backlog: max_port,
        cumulative_delivered: delivered_series,
        arrivals: runs.iter().map(|r| r.arrivals).sum(),
        completions: runs.iter().map(|r| r.completions).sum(),
        arrived_bytes: runs
            .iter()
            .map(|r| r.arrived_bytes)
            .fold(Bytes::ZERO, |a, b| a + b),
        leftover_bytes: runs
            .iter()
            .map(|r| r.leftover_bytes)
            .fold(Bytes::ZERO, |a, b| a + b),
        leftover_flows: runs.iter().map(|r| r.leftover_flows).sum(),
        reschedules: runs.iter().map(|r| r.reschedules).sum(),
        horizon: config.horizon,
    };

    Ok(ShardedRun {
        run,
        shards_used: bins,
        components: plan.components(),
        completion_log: records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, FatTree, KAryFatTree};
    use basrpt_core::Srpt;
    use dcn_types::HostId;

    fn arrival(id: u64, t: f64, src: u32, dst: u32, size: u64) -> FlowArrival {
        FlowArrival {
            id: FlowId::new(id),
            time: SimTime::from_secs(t),
            voq: Voq::new(HostId::new(src), HostId::new(dst)),
            size: Bytes::new(size),
            class: FlowClass::Background,
        }
    }

    #[test]
    fn plan_separates_disconnected_racks() {
        // 2 racks × 4 hosts: flows stay rack-local → 2 components.
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let arrivals = vec![
            arrival(0, 0.0, 0, 1, 1_000),
            arrival(1, 0.0, 4, 5, 1_000),
            arrival(2, 0.001, 2, 3, 1_000),
        ];
        let plan = ShardPlan::new(&topo, &arrivals, 8);
        assert_eq!(plan.components(), 2);
        assert_eq!(plan.shards_used(), 2, "clamped to the component count");
        assert_ne!(
            plan.bin_of_rack(RackId::new(0)),
            plan.bin_of_rack(RackId::new(1))
        );
    }

    #[test]
    fn plan_joins_racks_connected_by_a_flow() {
        let topo = FatTree::scaled(3, 4, 1).unwrap();
        let arrivals = vec![
            arrival(0, 0.0, 0, 4, 1_000), // rack 0 ↔ rack 1
            arrival(1, 0.0, 8, 9, 1_000), // rack 2 local
        ];
        let plan = ShardPlan::new(&topo, &arrivals, 4);
        assert_eq!(plan.components(), 2);
        assert_eq!(
            plan.bin_of_rack(RackId::new(0)),
            plan.bin_of_rack(RackId::new(1))
        );
        assert_ne!(
            plan.bin_of_rack(RackId::new(0)),
            plan.bin_of_rack(RackId::new(2))
        );
    }

    #[test]
    fn untouched_racks_have_no_bin() {
        let topo = FatTree::scaled(4, 4, 1).unwrap();
        let arrivals = vec![arrival(0, 0.0, 0, 1, 1_000)];
        let plan = ShardPlan::new(&topo, &arrivals, 2);
        assert_eq!(plan.bin_of_rack(RackId::new(0)), Some(0));
        assert_eq!(plan.bin_of_rack(RackId::new(3)), None);
    }

    #[test]
    fn sharded_matches_global_on_separable_workload() {
        // Rack-local flows in a 4-rack tree: 4 components, so the global
        // engine and the sharded one agree on every invariant observable.
        let topo = FatTree::scaled(4, 4, 2).unwrap();
        let mut arrivals = Vec::new();
        for rack in 0..4u32 {
            for i in 0..3u64 {
                let base = rack * 4;
                arrivals.push(arrival(
                    (rack as u64) * 3 + i,
                    0.0001 * i as f64,
                    base + (i as u32 % 4),
                    base + ((i as u32 + 1) % 4),
                    40_000 + 1_000 * i,
                ));
            }
        }
        arrivals.sort_by(|a, b| a.time.as_secs().total_cmp(&b.time.as_secs()));
        let config = SimConfig::builder()
            .horizon(SimTime::from_millis(2.0))
            .build();
        let global = simulate(&topo, &mut Srpt::new(), arrivals.clone(), config).unwrap();
        for shards in [1usize, 2, 4, 8] {
            let sharded =
                simulate_sharded(&topo, &|| Srpt::new(), arrivals.clone(), config, shards).unwrap();
            assert_eq!(sharded.components, 4);
            assert_eq!(sharded.run.arrivals, global.arrivals, "{shards} shards");
            assert_eq!(sharded.run.completions, global.completions);
            assert_eq!(sharded.run.arrived_bytes, global.arrived_bytes);
            assert_eq!(
                sharded.run.throughput.delivered(),
                global.throughput.delivered()
            );
            assert_eq!(sharded.run.leftover_bytes, global.leftover_bytes);
            assert_eq!(sharded.run.total_backlog, global.total_backlog);
            assert_eq!(sharded.run.max_port_backlog, global.max_port_backlog);
            assert_eq!(
                sharded.run.cumulative_delivered,
                global.cumulative_delivered
            );
            assert!(sharded
                .completion_log
                .windows(2)
                .all(|w| (w[0].time.as_secs(), w[0].flow) <= (w[1].time.as_secs(), w[1].flow)));
        }
    }

    #[test]
    fn bad_arrivals_surface_from_shards() {
        let topo = KAryFatTree::builder(4).build().unwrap();
        let bad = vec![arrival(0, 0.0, 0, 999, 1_000)];
        let err = simulate_sharded(
            &topo,
            &|| Srpt::new(),
            bad,
            SimConfig::builder()
                .horizon(SimTime::from_millis(1.0))
                .build(),
            2,
        );
        assert!(matches!(err, Err(FabricError::BadArrival(_))));
    }

    #[test]
    fn empty_workload_still_produces_the_sample_grid() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let config = SimConfig::builder()
            .horizon(SimTime::from_millis(1.0))
            .build();
        let global = simulate(&topo, &mut Srpt::new(), Vec::new(), config).unwrap();
        let sharded = simulate_sharded(&topo, &|| Srpt::new(), Vec::new(), config, 4).unwrap();
        assert_eq!(sharded.shards_used, 1, "no components, one empty bin");
        assert_eq!(sharded.run.total_backlog, global.total_backlog);
        assert_eq!(sharded.run.arrivals, 0);
    }

    #[test]
    fn shards_env_parses() {
        // Not set → 1 (the test binary never sets it).
        assert_eq!(shards_from_env(), 1);
    }
}
