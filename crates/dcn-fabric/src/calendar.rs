//! The indexed completion calendar: a lazily invalidated binary min-heap
//! over the scheduled flows' completion instants.
//!
//! The event loop needs "when does the next scheduled flow complete?" on
//! every wakeup. The seed engine answered that with a linear rescan of all
//! scheduled flows (a division per flow per wakeup — `O(n)` even when the
//! wakeup is just a sample point). The calendar answers it from a binary
//! heap keyed by `(completion instant, flow id)`:
//!
//! * [`set_schedule`](CompletionCalendar::set_schedule) diffs the new
//!   scheduled set against the current one and pushes heap entries only
//!   for flows whose completion instant actually changed — a flow that
//!   stays scheduled across a reschedule keeps its entry untouched;
//! * [`update`](CompletionCalendar::update) and
//!   [`remove`](CompletionCalendar::remove) are the *targeted* edits the
//!   delta engine (see [`crate::DeltaAllocator`]) uses instead: they touch
//!   one flow in `O(log n)` and leave every other entry alone, so a
//!   reschedule that changes `Δ` flows costs `O(Δ log n)` — not the
//!   `O(n)` live-map rebuild `set_schedule` pays even when nothing
//!   changed;
//! * superseded and descheduled entries are **not** removed from the heap;
//!   they are invalidated lazily:
//!   [`next_completion`](CompletionCalendar::next_completion) pops stale
//!   tops (entries whose `(flow, instant)` no longer matches the live map)
//!   until a live entry — or an empty heap — remains.
//!
//! Every heap entry is pushed once and popped at most once, so the
//! amortized cost per schedule change is `O(log n)` and a wakeup between
//! schedule changes costs `O(1)` (a peek at an already-validated top).
//!
//! The calendar stores instants, not flow state: exact drain accounting
//! (which instant a flow completes at) is the engine's job — see
//! `engine.rs` — and the calendar never re-derives completion times.
//!
//! The same push-don't-delete discipline powers the champion index inside
//! `basrpt_core::FlowTable` (its per-VOQ runner-up heaps validate entries
//! against live flow state on pop, exactly as `next_completion` does
//! here); when reasoning about one, the other is the reference point.

use dcn_types::{FlowId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// An indexed calendar of flow-completion instants with lazy invalidation.
///
/// # Example
///
/// ```
/// use dcn_fabric::CompletionCalendar;
/// use dcn_types::{FlowId, SimTime};
///
/// let mut cal = CompletionCalendar::new();
/// cal.set_schedule([
///     (FlowId::new(1), SimTime::from_millis(3.0)),
///     (FlowId::new(2), SimTime::from_millis(1.0)),
/// ]);
/// assert_eq!(cal.next_completion(), SimTime::from_millis(1.0));
///
/// // Flow 2 leaves the schedule; flow 1 keeps its instant.
/// cal.set_schedule([(FlowId::new(1), SimTime::from_millis(3.0))]);
/// assert_eq!(cal.next_completion(), SimTime::from_millis(3.0));
/// ```
#[derive(Debug, Default)]
pub struct CompletionCalendar {
    /// Min-heap of `(instant, flow)` entries, possibly stale.
    heap: BinaryHeap<Reverse<(SimTime, FlowId)>>,
    /// The live completion instant per scheduled flow; the heap entry for
    /// a flow is valid iff it matches this map exactly.
    live: HashMap<FlowId, SimTime>,
}

impl CompletionCalendar {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        CompletionCalendar::default()
    }

    /// Number of currently scheduled flows.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no flow is currently scheduled.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of heap entries, including stale ones awaiting lazy removal
    /// (diagnostics; always ≥ [`len`](CompletionCalendar::len)).
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Replaces the scheduled set with `schedule` (`(flow, completion
    /// instant)` pairs). Flows absent from `schedule` are descheduled;
    /// flows whose instant is unchanged keep their existing heap entry;
    /// new or changed pairs push one heap entry each. If a flow appears
    /// more than once, the last pair wins.
    pub fn set_schedule<I>(&mut self, schedule: I)
    where
        I: IntoIterator<Item = (FlowId, SimTime)>,
    {
        let mut next: HashMap<FlowId, SimTime> = HashMap::with_capacity(self.live.len());
        for (flow, at) in schedule {
            if self.live.get(&flow) != Some(&at) {
                self.heap.push(Reverse((at, flow)));
            }
            // Within one call, a repeated flow overwrites its earlier pair;
            // the earlier heap entry goes stale like any superseded one.
            next.insert(flow, at);
        }
        self.live = next;
    }

    /// Schedules `flow` to complete at `at`, or moves its completion
    /// instant if it is already scheduled — the targeted single-flow edit
    /// of the delta path. Re-asserting the current instant is free (no
    /// heap growth); a changed or new instant pushes exactly one heap
    /// entry, `O(log n)`.
    ///
    /// # Example
    ///
    /// ```
    /// use dcn_fabric::CompletionCalendar;
    /// use dcn_types::{FlowId, SimTime};
    ///
    /// let mut cal = CompletionCalendar::new();
    /// cal.update(FlowId::new(1), SimTime::from_millis(3.0));
    /// cal.update(FlowId::new(2), SimTime::from_millis(1.0));
    /// assert_eq!(cal.next_completion(), SimTime::from_millis(1.0));
    ///
    /// // Flow 2 completes and leaves; flow 1 is untouched.
    /// cal.remove(FlowId::new(2));
    /// assert_eq!(cal.next_completion(), SimTime::from_millis(3.0));
    /// ```
    pub fn update(&mut self, flow: FlowId, at: SimTime) {
        if self.live.get(&flow) != Some(&at) {
            self.heap.push(Reverse((at, flow)));
            self.live.insert(flow, at);
        }
    }

    /// Deschedules `flow` (a completion or a preemption): its heap entry
    /// goes stale and is skipped lazily by
    /// [`next_completion`](CompletionCalendar::next_completion). Removing
    /// a flow that is not scheduled is a no-op. `O(1)` now, `O(log n)`
    /// amortized for the eventual stale pop.
    pub fn remove(&mut self, flow: FlowId) {
        self.live.remove(&flow);
    }

    /// The earliest live completion instant, or [`SimTime::INFINITY`] when
    /// nothing is scheduled. Amortized `O(1)`: stale heap tops are popped
    /// here, each at most once over the calendar's lifetime.
    pub fn next_completion(&mut self) -> SimTime {
        while let Some(&Reverse((at, flow))) = self.heap.peek() {
            if self.live.get(&flow) == Some(&at) {
                return at;
            }
            self.heap.pop();
        }
        SimTime::INFINITY
    }

    /// Pops and deschedules the earliest live flow whose completion
    /// instant is at or before `now`, or returns `None` if the earliest
    /// live instant is still in the future (or nothing is scheduled).
    /// This is the lazy engine's due-settlement primitive: at a
    /// completion wakeup it pops exactly the flows owed a completion —
    /// usually one — without touching any other entry. Amortized
    /// `O(log n)` per popped flow.
    ///
    /// Ties on the instant pop in ascending flow-id order; callers that
    /// need a different tie order (the engine settles ties in schedule
    /// priority order) collect the tie set first.
    ///
    /// # Example
    ///
    /// ```
    /// use dcn_fabric::CompletionCalendar;
    /// use dcn_types::{FlowId, SimTime};
    ///
    /// let mut cal = CompletionCalendar::new();
    /// cal.update(FlowId::new(1), SimTime::from_millis(3.0));
    /// cal.update(FlowId::new(2), SimTime::from_millis(1.0));
    /// assert_eq!(cal.pop_due(SimTime::from_millis(2.0)), Some(FlowId::new(2)));
    /// assert_eq!(cal.pop_due(SimTime::from_millis(2.0)), None);
    /// assert_eq!(cal.next_completion(), SimTime::from_millis(3.0));
    /// ```
    pub fn pop_due(&mut self, now: SimTime) -> Option<FlowId> {
        while let Some(&Reverse((at, flow))) = self.heap.peek() {
            if self.live.get(&flow) == Some(&at) {
                if at > now {
                    return None;
                }
                self.heap.pop();
                self.live.remove(&flow);
                return Some(flow);
            }
            self.heap.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u64) -> FlowId {
        FlowId::new(id)
    }

    fn ms(v: f64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn empty_calendar_never_completes() {
        let mut cal = CompletionCalendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.next_completion(), SimTime::INFINITY);
    }

    #[test]
    fn reports_minimum_instant() {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(1), ms(5.0)), (f(2), ms(2.0)), (f(3), ms(9.0))]);
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.next_completion(), ms(2.0));
        // Peeking is idempotent.
        assert_eq!(cal.next_completion(), ms(2.0));
    }

    #[test]
    fn descheduled_flows_are_lazily_dropped() {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(1), ms(1.0)), (f(2), ms(2.0))]);
        assert_eq!(cal.next_completion(), ms(1.0));
        cal.set_schedule([(f(2), ms(2.0))]);
        // Flow 1's entry is stale but still on the heap until looked past.
        assert_eq!(cal.heap_len(), 2);
        assert_eq!(cal.next_completion(), ms(2.0));
        assert_eq!(cal.heap_len(), 1);
    }

    #[test]
    fn rescheduling_updates_instants() {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(1), ms(4.0))]);
        assert_eq!(cal.next_completion(), ms(4.0));
        // The flow pauses and resumes later: a new, later instant.
        cal.set_schedule([(f(1), ms(7.0))]);
        assert_eq!(cal.next_completion(), ms(7.0));
        // An earlier instant also takes effect immediately.
        cal.set_schedule([(f(1), ms(3.0))]);
        assert_eq!(cal.next_completion(), ms(3.0));
    }

    #[test]
    fn unchanged_flows_do_not_grow_the_heap() {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(1), ms(4.0)), (f(2), ms(6.0))]);
        let before = cal.heap_len();
        for _ in 0..100 {
            cal.set_schedule([(f(1), ms(4.0)), (f(2), ms(6.0))]);
        }
        assert_eq!(cal.heap_len(), before, "identical reschedules must be free");
    }

    #[test]
    fn ties_are_deterministic_and_both_reported() {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(2), ms(1.0)), (f(1), ms(1.0))]);
        assert_eq!(cal.next_completion(), ms(1.0));
        // Both complete: the engine drains every flow with an instant <= t,
        // so the calendar only needs the minimum, not the full tie set.
        cal.set_schedule(std::iter::empty());
        assert_eq!(cal.next_completion(), SimTime::INFINITY);
    }

    #[test]
    fn duplicate_flow_in_one_schedule_takes_the_last_pair() {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(1), ms(1.0)), (f(1), ms(5.0))]);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.next_completion(), ms(5.0));
    }

    #[test]
    fn targeted_update_and_remove_track_the_live_set() {
        let mut cal = CompletionCalendar::new();
        cal.update(f(1), ms(5.0));
        cal.update(f(2), ms(2.0));
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.next_completion(), ms(2.0));
        // Moving a flow's instant supersedes the old entry lazily.
        cal.update(f(2), ms(9.0));
        assert_eq!(cal.next_completion(), ms(5.0));
        cal.remove(f(1));
        assert_eq!(cal.next_completion(), ms(9.0));
        cal.remove(f(2));
        assert!(cal.is_empty());
        assert_eq!(cal.next_completion(), SimTime::INFINITY);
    }

    #[test]
    fn targeted_noop_update_is_free() {
        let mut cal = CompletionCalendar::new();
        cal.update(f(1), ms(4.0));
        let before = cal.heap_len();
        for _ in 0..100 {
            cal.update(f(1), ms(4.0));
        }
        assert_eq!(cal.heap_len(), before, "re-asserted instants push nothing");
    }

    #[test]
    fn remove_of_unknown_flow_is_a_noop() {
        let mut cal = CompletionCalendar::new();
        cal.update(f(1), ms(1.0));
        cal.remove(f(99));
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.next_completion(), ms(1.0));
    }

    #[test]
    fn targeted_edits_and_bulk_reschedules_compose() {
        // A set_schedule after targeted edits (and vice versa) keeps the
        // live map exact — the two APIs share one invalidation discipline.
        let mut cal = CompletionCalendar::new();
        cal.set_schedule([(f(1), ms(5.0)), (f(2), ms(2.0))]);
        cal.update(f(3), ms(1.0));
        assert_eq!(cal.next_completion(), ms(1.0));
        cal.remove(f(3));
        cal.set_schedule([(f(1), ms(5.0))]);
        assert_eq!(cal.next_completion(), ms(5.0));
        cal.update(f(1), ms(6.0));
        assert_eq!(cal.next_completion(), ms(6.0));
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn pop_due_drains_exactly_the_due_set() {
        let mut cal = CompletionCalendar::new();
        cal.update(f(1), ms(5.0));
        cal.update(f(2), ms(2.0));
        cal.update(f(3), ms(2.0));
        // Nothing due before the earliest instant.
        assert_eq!(cal.pop_due(ms(1.0)), None);
        assert_eq!(cal.len(), 3);
        // Ties pop in ascending flow-id order and leave the live set exact.
        assert_eq!(cal.pop_due(ms(2.0)), Some(f(2)));
        assert_eq!(cal.pop_due(ms(2.0)), Some(f(3)));
        assert_eq!(cal.pop_due(ms(2.0)), None);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.next_completion(), ms(5.0));
        // Stale entries (a superseded instant) are skipped, not returned.
        cal.update(f(1), ms(9.0));
        assert_eq!(cal.pop_due(ms(5.0)), None);
        assert_eq!(cal.pop_due(ms(9.0)), Some(f(1)));
        assert!(cal.is_empty());
        assert_eq!(cal.pop_due(ms(100.0)), None);
    }

    #[test]
    fn interleaved_churn_stays_consistent() {
        // A randomized-ish torture loop: compare against a naive model.
        let mut cal = CompletionCalendar::new();
        let mut model: Vec<(u64, f64)> = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for step in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = (x >> 60) as usize; // 0..16 flows
            model.clear();
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let id = (x >> 13) % 8;
                let at = ((x >> 29) % 1000) as f64 / 10.0 + step as f64;
                // Last pair wins in the model too.
                model.retain(|&(m, _)| m != id);
                model.push((id, at));
            }
            cal.set_schedule(model.iter().map(|&(id, at)| (f(id), ms(at))));
            let want = model
                .iter()
                .map(|&(_, at)| ms(at))
                .min()
                .unwrap_or(SimTime::INFINITY);
            assert_eq!(cal.next_completion(), want, "step {step}");
            assert_eq!(cal.len(), model.len());
        }
    }
}
