//! The event-driven flow-level simulation engine.

use crate::calendar::CompletionCalendar;
use crate::topology::Topology;
use basrpt_core::{FlowState, FlowTable, Scheduler};
use dcn_metrics::{
    FctRecorder, SizeBucketRecorder, StabilityReport, ThroughputMeter, TimeSeries, TrendConfig,
};
use dcn_probe::{
    ArrivalEvent, BacklogSampler, CompletionEvent, DecisionEvent, DrainEvent, Fanout, NoProbe,
    Probe, SampleEvent,
};
use dcn_types::{Bytes, FlowClass, FlowId, HostId, Rate, SimTime, Voq};
use dcn_workload::FlowArrival;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Error produced by [`simulate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabricError {
    /// An arrival referenced a host outside the topology or a self-loop.
    BadArrival(String),
    /// The configuration was inconsistent.
    BadConfig(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::BadArrival(msg) => write!(f, "bad arrival: {msg}"),
            FabricError::BadConfig(msg) => write!(f, "bad simulation config: {msg}"),
        }
    }
}

impl Error for FabricError {}

/// Configuration of one fabric simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated duration.
    pub horizon: SimTime,
    /// Sampling period for the recorded time series.
    pub sample_every: SimTime,
    /// The port whose queue-length trace is recorded (the paper plots "the
    /// queue length... from one of the servers").
    pub monitored_port: HostId,
    /// Enforce per-rack uplink capacity even on full-bisection fabrics
    /// (always enforced on oversubscribed ones).
    pub enforce_core_capacity: bool,
    /// Additive latency floor applied to every recorded FCT, modelling the
    /// propagation and per-hop forwarding pipeline that the big-switch
    /// abstraction leaves out (zero by default; ~100 us is a typical
    /// three-hop data-center figure). It does not affect scheduling or
    /// bandwidth — only the reported completion times.
    pub base_latency: SimTime,
}

impl SimConfig {
    /// The smallest sampling period automatic sampling will pick: one
    /// slot, i.e. the ~1.2 µs it takes to transmit one 1500-byte MTU at
    /// the 10 Gbps edge rate. Sampling below this timescale cannot observe
    /// anything new (queue state only changes when bytes move) but makes
    /// the event loop wake on every sample point, so short horizons used
    /// to slow down quadratically as `horizon / 400` underflowed the slot.
    pub const MIN_SAMPLE_PERIOD: SimTime = SimTime::from_micros_const(1.2);

    /// Starts building a configuration: set the duration with
    /// [`horizon`](SimConfigBuilder::horizon), then any optional knobs, then
    /// [`build`](SimConfigBuilder::build).
    ///
    /// # Example
    ///
    /// ```
    /// use dcn_fabric::SimConfig;
    /// use dcn_types::SimTime;
    ///
    /// let config = SimConfig::builder()
    ///     .horizon(SimTime::from_secs(0.5))
    ///     .sample_every(SimTime::from_millis(1.0))
    ///     .build();
    /// assert_eq!(config.sample_every, SimTime::from_millis(1.0));
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Replaces the FCT latency floor (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is infinite.
    pub fn with_base_latency(mut self, latency: SimTime) -> Self {
        assert!(!latency.is_infinite(), "latency floor must be finite");
        self.base_latency = latency;
        self
    }

    /// Replaces the monitored port (builder style).
    pub fn with_monitored_port(mut self, port: HostId) -> Self {
        self.monitored_port = port;
        self
    }

    /// Replaces the sampling period (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or infinite.
    pub fn with_sample_every(mut self, period: SimTime) -> Self {
        assert!(
            period > SimTime::ZERO && !period.is_infinite(),
            "sample period must be positive and finite"
        );
        self.sample_every = period;
        self
    }
}

/// Builder for [`SimConfig`], obtained from [`SimConfig::builder`].
///
/// Defaults: a 1 s horizon, automatic ~400-point sampling, monitored
/// port 0, core capacity not enforced, no FCT latency floor.
#[must_use = "call .build() to obtain the SimConfig"]
#[derive(Debug, Clone, Copy)]
pub struct SimConfigBuilder {
    horizon: SimTime,
    sample_every: Option<SimTime>,
    monitored_port: HostId,
    enforce_core_capacity: bool,
    base_latency: SimTime,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            horizon: SimTime::from_secs(1.0),
            sample_every: None,
            monitored_port: HostId::new(0),
            enforce_core_capacity: false,
            base_latency: SimTime::ZERO,
        }
    }
}

impl SimConfigBuilder {
    /// Sets the simulated duration (default 1 s).
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets an explicit sampling period. When unset, [`build`] picks
    /// `horizon / 400`, clamped from below to
    /// [`SimConfig::MIN_SAMPLE_PERIOD`] so short horizons never sample
    /// finer than one transmission slot.
    ///
    /// [`build`]: SimConfigBuilder::build
    pub fn sample_every(mut self, period: SimTime) -> Self {
        self.sample_every = Some(period);
        self
    }

    /// Sets the port whose queue-length trace is recorded (default port 0).
    pub fn monitored_port(mut self, port: HostId) -> Self {
        self.monitored_port = port;
        self
    }

    /// Enforces per-rack uplink capacity even on full-bisection fabrics.
    pub fn enforce_core_capacity(mut self, enforce: bool) -> Self {
        self.enforce_core_capacity = enforce;
        self
    }

    /// Sets the additive latency floor applied to every recorded FCT.
    pub fn base_latency(mut self, latency: SimTime) -> Self {
        self.base_latency = latency;
        self
    }

    /// Validates the settings and produces the [`SimConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the horizon is zero or infinite, the sampling period is
    /// zero or infinite, or the latency floor is infinite.
    pub fn build(self) -> SimConfig {
        assert!(
            self.horizon > SimTime::ZERO && !self.horizon.is_infinite(),
            "horizon must be positive and finite"
        );
        let sample_every = self.sample_every.unwrap_or_else(|| {
            SimTime::from_secs(self.horizon.as_secs() / 400.0).max(SimConfig::MIN_SAMPLE_PERIOD)
        });
        assert!(
            sample_every > SimTime::ZERO && !sample_every.is_infinite(),
            "sample period must be positive and finite"
        );
        assert!(
            !self.base_latency.is_infinite(),
            "latency floor must be finite"
        );
        SimConfig {
            horizon: self.horizon,
            sample_every,
            monitored_port: self.monitored_port,
            enforce_core_capacity: self.enforce_core_capacity,
            base_latency: self.base_latency,
        }
    }
}

/// The measurements of one fabric run.
#[derive(Debug, Clone)]
pub struct FabricRun {
    /// Per-class FCT statistics.
    pub fct: FctRecorder,
    /// FCT statistics broken down by flow size (pFabric-style buckets).
    pub fct_by_size: SizeBucketRecorder,
    /// Bytes that left the fabric.
    pub throughput: ThroughputMeter,
    /// Total fabric backlog (bytes) over time.
    pub total_backlog: TimeSeries,
    /// Backlog of the monitored port over time (Figs. 2 / 5b / 7b).
    pub monitored_port_backlog: TimeSeries,
    /// Backlog of the most loaded port at each sample instant.
    pub max_port_backlog: TimeSeries,
    /// Cumulative delivered bytes over time (Fig. 5a).
    pub cumulative_delivered: TimeSeries,
    /// Number of flow arrivals processed.
    pub arrivals: usize,
    /// Number of flows that completed.
    pub completions: usize,
    /// Total bytes offered by processed arrivals.
    pub arrived_bytes: Bytes,
    /// Bytes still queued at the end of the run.
    pub leftover_bytes: Bytes,
    /// Flows still active at the end of the run.
    pub leftover_flows: usize,
    /// Number of scheduling decisions computed.
    pub reschedules: u64,
    /// The simulated duration.
    pub horizon: SimTime,
}

impl FabricRun {
    /// Average goodput over the whole run.
    pub fn average_throughput(&self) -> Rate {
        self.throughput.average_rate(self.horizon)
    }

    /// Stability verdict for the monitored port's backlog trace.
    pub fn monitored_port_stability(&self, config: TrendConfig) -> StabilityReport {
        StabilityReport::classify(&self.monitored_port_backlog, config)
    }

    /// Stability verdict for the whole-fabric backlog trace.
    pub fn total_backlog_stability(&self, config: TrendConfig) -> StabilityReport {
        StabilityReport::classify(&self.total_backlog, config)
    }
}

/// Engine-side metadata of one active flow (what the [`FlowTable`] does
/// not carry but completions must report).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowMeta {
    pub(crate) class: FlowClass,
    pub(crate) size: Bytes,
    pub(crate) arrival: SimTime,
}

/// Filters a schedule (in priority order) down to the flows the core layer
/// can carry: intra-rack flows always pass; inter-rack flows consume
/// `edge_rate` of their source rack's uplink and destination rack's
/// downlink budgets and are skipped once a budget is exhausted.
fn enforce_core_capacity<T: Topology + ?Sized>(
    topo: &T,
    selected: impl Iterator<Item = (FlowId, Voq)>,
) -> Vec<(FlowId, Voq)> {
    let edge = topo.edge_rate().bytes_per_sec();
    let uplink = topo.rack_uplink_capacity().bytes_per_sec();
    let mut up_used = vec![0.0f64; topo.num_racks() as usize];
    let mut down_used = vec![0.0f64; topo.num_racks() as usize];
    let mut out = Vec::new();
    for (id, voq) in selected {
        if topo.is_intra_rack(voq) {
            out.push((id, voq));
            continue;
        }
        let src_rack = topo.rack_of(voq.src()).as_usize();
        let dst_rack = topo.rack_of(voq.dst()).as_usize();
        // Tolerance absorbs f64 accumulation when the budget divides evenly.
        if up_used[src_rack] + edge <= uplink * (1.0 + 1e-9)
            && down_used[dst_rack] + edge <= uplink * (1.0 + 1e-9)
        {
            up_used[src_rack] += edge;
            down_used[dst_rack] += edge;
            out.push((id, voq));
        }
    }
    out
}

/// Drain-accounting state of one scheduled flow.
///
/// A scheduled flow drains at the edge line rate from the instant it was
/// admitted into the scheduled set — its **epoch** — until it completes or
/// is descheduled. All byte arithmetic is anchored at the epoch: at any
/// event instant `t`, the cumulative bytes owed are derived **once** from
/// the total elapsed time `t - epoch` via [`Rate::bytes_in`] (one floor),
/// and the per-event drain is the integer difference against what has
/// already been settled. Increments therefore sum exactly — no per-event
/// rounding can accumulate — and the completion instant is the analytic
/// `epoch + epoch_remaining / rate`, at which the entry force-settles its
/// exact remaining bytes (no 1-byte residue wakeups).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScheduledEntry {
    pub(crate) flow: FlowId,
    pub(crate) voq: Voq,
    /// When this entry's accounting epoch started (admission into the
    /// current scheduled set; survives reschedules that keep the flow).
    pub(crate) epoch: SimTime,
    /// Remaining bytes at `epoch`.
    pub(crate) epoch_remaining: u64,
    /// Bytes drained from the table since `epoch` (≤ `epoch_remaining`).
    pub(crate) settled: u64,
    /// Exact completion instant: `epoch + epoch_remaining / rate`.
    pub(crate) completes_at: SimTime,
}

impl ScheduledEntry {
    pub(crate) fn new(flow: FlowId, voq: Voq, now: SimTime, remaining: u64, rate: Rate) -> Self {
        ScheduledEntry {
            flow,
            voq,
            epoch: now,
            epoch_remaining: remaining,
            settled: 0,
            completes_at: crate::settle::completion_instant(now, remaining, rate),
        }
    }

    /// Cumulative bytes owed by instant `t`: a single conversion of the
    /// total elapsed time since the epoch, clamped to the entry's size and
    /// forced to exactly `epoch_remaining` at (or past) the analytic
    /// completion instant — [`crate::settle_drain_target`], the one
    /// settlement formula every engine shares.
    pub(crate) fn target_at(&self, t: SimTime, rate: Rate) -> u64 {
        crate::settle::drain_target(self.epoch, self.completes_at, self.epoch_remaining, rate, t)
    }
}

/// How the event loop finds the earliest completion among scheduled flows.
///
/// Two implementations: the production [`CompletionCalendar`] (indexed,
/// `O(log n)` amortized) and the retained linear rescan (the seed engine's
/// strategy, kept as the differential-testing reference — see
/// [`crate::reference`]). Both read the same exact `completes_at` instants
/// from the entries, so the choice cannot change a single bit of output.
pub(crate) trait CompletionLookup {
    /// The scheduled set was replaced.
    fn on_reschedule(&mut self, entries: &[ScheduledEntry]);
    /// The earliest completion instant, or [`SimTime::INFINITY`].
    fn next_completion(&mut self, entries: &[ScheduledEntry]) -> SimTime;
}

/// Production lookup: the indexed completion calendar.
#[derive(Debug, Default)]
pub(crate) struct CalendarLookup(CompletionCalendar);

impl CompletionLookup for CalendarLookup {
    fn on_reschedule(&mut self, entries: &[ScheduledEntry]) {
        self.0
            .set_schedule(entries.iter().map(|e| (e.flow, e.completes_at)));
    }
    fn next_completion(&mut self, _entries: &[ScheduledEntry]) -> SimTime {
        self.0.next_completion()
    }
}

/// Reference lookup: the seed engine's `O(n)` rescan of every scheduled
/// flow on every wakeup.
#[derive(Debug, Default)]
pub(crate) struct ScanLookup;

impl CompletionLookup for ScanLookup {
    fn on_reschedule(&mut self, _entries: &[ScheduledEntry]) {}
    fn next_completion(&mut self, entries: &[ScheduledEntry]) -> SimTime {
        entries
            .iter()
            .map(|e| e.completes_at)
            .min()
            .unwrap_or(SimTime::INFINITY)
    }
}

/// Runs one flow-level simulation.
///
/// Flows arrive from `generator` (any time-ordered arrival stream — the
/// `dcn-workload` generator or a scripted `Vec`), are scheduled by
/// `scheduler` on every arrival and completion, and drain at the edge line
/// rate while selected. Returns all run measurements.
///
/// This is a thin wrapper over the [`FabricSim`](crate::FabricSim) builder
/// with no observer attached ([`NoProbe`]); to watch the event stream,
/// attach a probe via [`FabricSim::probe`](crate::FabricSim).
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] if an arrival references hosts
/// outside `topo`, is a self-loop, has zero size, or goes backwards in
/// time.
pub fn simulate<T: Topology + ?Sized, S: Scheduler + ?Sized>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    run_with_probe(topo, scheduler, generator, config, NoProbe)
}

/// The probe-instrumented batch driver behind [`simulate`] and the
/// [`FabricSim`](crate::FabricSim) builder: a thin wrapper over the
/// step-able [`OnlineFabric`](crate::OnlineFabric) engine (which keeps a
/// persistent [`DeltaAllocator`] across events and pays calendar work only
/// for the flows whose allocation actually changed).
///
/// For each arrival the wrapper steps the online engine through every
/// event instant *strictly before* the arrival, then offers it — so
/// same-instant completions, samples and decisions coalesce with the
/// arrival exactly as in the monolithic loop this replaced, and the
/// in-flight buffer never holds more than one instant's arrivals. The
/// differential suites (`tests/delta_differential.rs`,
/// `tests/online_differential.rs`) pin the outputs bit-identical to the
/// reference engines.
pub(crate) fn run_with_probe<T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    let mut online = crate::online::OnlineFabric::with_probe(topo, scheduler, config, probe)
        .high_watermark(usize::MAX)
        .collect_completions(false);
    for arrival in generator {
        online.step_before(arrival.time)?;
        if online.is_finished() {
            // The horizon passed while stepping: the remaining arrivals
            // can never be admitted (the monolithic loop broke here too).
            break;
        }
        match online.offer(arrival) {
            Ok(_) => {}
            Err(crate::online::OfferError::Rejected(e)) => return Err(e),
            Err(e) => unreachable!("unbounded buffer on an unfinished engine: {e}"),
        }
    }
    online.finish()
}

/// The reference event loop with the linear completion rescan (see
/// [`crate::reference`]).
pub(crate) fn run_scan_with_probe<T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    run_loop(topo, scheduler, generator, config, probe, ScanLookup)
}

/// The reference event loop that rebuilds the full allocation state — the
/// carry-over map, the scheduled-entry vector, and the calendar's live map
/// — on every reschedule (the PR 3–5 production engine, kept as the
/// full-recompute baseline; see [`crate::reference`]).
pub(crate) fn run_rebuild_with_probe<T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    run_loop(
        topo,
        scheduler,
        generator,
        config,
        probe,
        CalendarLookup::default(),
    )
}

/// The event loop, generic over the completion-lookup strategy.
///
/// The engine always composes an internal [`BacklogSampler`] (which fills
/// `FabricRun`'s time-series fields) with the caller's `probe` via
/// [`Fanout`]; with [`NoProbe`] the whole observer layer monomorphizes
/// down to the unobserved loop.
///
/// Event ordering within one instant: completions (drains settle first),
/// then arrivals, then the sample, then the scheduling decision — so a
/// sample taken at an instant with coincident arrivals sees them (a run
/// whose workload starts at `t = 0` no longer records a spurious all-zero
/// first point).
fn run_loop<T, S, P, L>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
    mut lookup: L,
) -> Result<FabricRun, FabricError>
where
    T: Topology + ?Sized,
    S: Scheduler + ?Sized,
    P: Probe,
    L: CompletionLookup,
{
    let mut generator = generator.into_iter();
    let edge_rate = topo.edge_rate();
    let enforce_core = config.enforce_core_capacity || !topo.is_full_bisection();

    let mut table = FlowTable::new();
    let mut meta: HashMap<FlowId, FlowMeta> = HashMap::new();
    // The scheduled set, in schedule-priority order, with per-entry drain
    // epochs (see `ScheduledEntry`).
    let mut entries: Vec<ScheduledEntry> = Vec::new();
    // Scratch map reused across reschedules to carry accounting state of
    // flows that stay scheduled.
    let mut carry: HashMap<FlowId, ScheduledEntry> = HashMap::new();

    let mut fct = FctRecorder::new();
    let mut fct_by_size = SizeBucketRecorder::pfabric_buckets();
    let mut throughput = ThroughputMeter::new();
    let mut sampler = BacklogSampler::new(config.monitored_port);
    let mut fan = Fanout::new(&mut sampler, probe);
    let mut arrivals_count = 0usize;
    let mut completions_count = 0usize;
    let mut arrived_bytes = Bytes::ZERO;
    let mut reschedules = 0u64;

    let mut clock = SimTime::ZERO;
    let mut next_sample = SimTime::ZERO;
    let mut next_arrival = generator.next();
    let mut last_arrival_time = SimTime::ZERO;

    loop {
        // --- determine the next event instant ---
        let t_arrival = next_arrival.as_ref().map_or(SimTime::INFINITY, |a| a.time);
        let t_completion = lookup.next_completion(&entries);
        let t = t_arrival
            .min(t_completion)
            .min(next_sample)
            .min(config.horizon);

        // --- advance: settle every scheduled flow's account at t ---
        let elapsed = t - clock;
        let mut completed_any = false;
        if elapsed > SimTime::ZERO {
            let mut i = 0;
            while i < entries.len() {
                let entry = &mut entries[i];
                let target = entry.target_at(t, edge_rate);
                let amount = target - entry.settled;
                if amount == 0 {
                    i += 1;
                    continue;
                }
                entry.settled = target;
                let (id, voq) = (entry.flow, entry.voq);
                let outcome = table.drain(id, amount).expect("scheduled flow is active");
                debug_assert_eq!(outcome.drained, amount, "exact drain cannot be short");
                throughput.deliver(Bytes::new(outcome.drained));
                fan.on_drain(&DrainEvent {
                    time: t.as_secs(),
                    flow: id,
                    voq,
                    amount: outcome.drained,
                });
                if let Some(done) = outcome.completed {
                    let info = meta.remove(&id).expect("active flow has metadata");
                    let flow_fct = t - info.arrival + config.base_latency;
                    fct.record(info.class, info.size, flow_fct);
                    fct_by_size.record(info.size, flow_fct);
                    fan.on_completion(&CompletionEvent {
                        time: t.as_secs(),
                        flow: id,
                        voq,
                        size: info.size.as_u64(),
                        fct: flow_fct.as_secs(),
                    });
                    completions_count += 1;
                    completed_any = true;
                    debug_assert_eq!(voq, done.voq());
                    // Preserve priority order for the rest of this pass; the
                    // pending reschedule rebuilds the vector anyway.
                    entries.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        clock = t;

        if clock >= config.horizon {
            break;
        }

        // --- arrivals landing at (or before) the current instant ---
        let mut arrived_any = false;
        while let Some(arrival) = next_arrival.as_ref() {
            if arrival.time > clock {
                break;
            }
            let arrival = *next_arrival.as_ref().expect("checked above");
            validate_arrival(topo, &arrival, last_arrival_time)?;
            last_arrival_time = arrival.time;
            table
                .insert(FlowState::new(
                    arrival.id,
                    arrival.voq,
                    arrival.size.as_u64(),
                ))
                .map_err(|e| FabricError::BadArrival(e.to_string()))?;
            meta.insert(
                arrival.id,
                FlowMeta {
                    class: arrival.class,
                    size: arrival.size,
                    arrival: arrival.time,
                },
            );
            arrivals_count += 1;
            arrived_bytes += arrival.size;
            arrived_any = true;
            fan.on_arrival(&ArrivalEvent {
                time: arrival.time.as_secs(),
                flow: arrival.id,
                voq: arrival.voq,
                size: arrival.size.as_u64(),
            });
            next_arrival = generator.next();
        }

        // --- sampling (after same-instant arrivals, so a t = 0 sample
        //     records the admitted backlog, not a spurious zero) ---
        if next_sample <= clock {
            fan.on_sample(&SampleEvent {
                time: clock.as_secs(),
                table: &table,
                delivered: throughput.delivered().as_f64(),
            });
            next_sample += config.sample_every;
        }

        // --- reschedule on arrival or completion (the paper's update rule) ---
        if arrived_any || completed_any {
            let started = fan.wants_decision_timing().then(Instant::now);
            let schedule = scheduler.schedule(&table);
            let latency = started.map(|s| s.elapsed());
            fan.on_decision(&DecisionEvent {
                time: clock.as_secs(),
                schedule: &schedule,
                latency,
            });
            carry.clear();
            carry.extend(entries.drain(..).map(|e| (e.flow, e)));
            let mut admit = |id: FlowId, voq: Voq| {
                // A flow that stays scheduled keeps its drain epoch (its
                // completion instant is unchanged); a newly selected flow
                // opens a fresh epoch at the current remaining size.
                entries.push(carry.remove(&id).unwrap_or_else(|| {
                    let remaining = table.get(id).expect("scheduled flow is active").remaining();
                    ScheduledEntry::new(id, voq, clock, remaining, edge_rate)
                }));
            };
            if enforce_core {
                for (id, voq) in enforce_core_capacity(topo, schedule.iter()) {
                    admit(id, voq);
                }
            } else {
                for (id, voq) in schedule.iter() {
                    admit(id, voq);
                }
            }
            reschedules += 1;
            lookup.on_reschedule(&entries);
        }
    }
    drop(fan);
    let series = sampler.into_series();

    Ok(FabricRun {
        fct,
        fct_by_size,
        throughput,
        total_backlog: series.total_backlog,
        monitored_port_backlog: series.monitored_port_backlog,
        max_port_backlog: series.max_port_backlog,
        cumulative_delivered: series.cumulative_delivered,
        arrivals: arrivals_count,
        completions: completions_count,
        arrived_bytes,
        leftover_bytes: Bytes::new(table.total_backlog()),
        leftover_flows: table.len(),
        reschedules,
        horizon: config.horizon,
    })
}

pub(crate) fn validate_arrival<T: Topology + ?Sized>(
    topo: &T,
    arrival: &FlowArrival,
    last_time: SimTime,
) -> Result<(), FabricError> {
    if !topo.contains(arrival.voq.src()) || !topo.contains(arrival.voq.dst()) {
        return Err(FabricError::BadArrival(format!(
            "flow {} uses hosts outside the {}-host topology",
            arrival.id,
            topo.num_hosts()
        )));
    }
    if arrival.voq.is_self_loop() {
        return Err(FabricError::BadArrival(format!(
            "flow {} is a self-loop at {}",
            arrival.id,
            arrival.voq.src()
        )));
    }
    if arrival.size.is_zero() {
        return Err(FabricError::BadArrival(format!(
            "flow {} has zero size",
            arrival.id
        )));
    }
    if arrival.time < last_time {
        return Err(FabricError::BadArrival(format!(
            "flow {} arrives at {} before the previous arrival at {}",
            arrival.id, arrival.time, last_time
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FatTree;
    use basrpt_core::Srpt;

    fn arrival(id: u64, t: f64, src: u32, dst: u32, size: u64) -> FlowArrival {
        FlowArrival {
            id: FlowId::new(id),
            time: SimTime::from_secs(t),
            voq: Voq::new(HostId::new(src), HostId::new(dst)),
            size: Bytes::new(size),
            class: FlowClass::Background,
        }
    }

    fn small_topo() -> FatTree {
        FatTree::scaled(2, 4, 1).unwrap()
    }

    #[test]
    fn sample_period_clamped_to_one_slot_for_short_horizons() {
        // 100 µs / 400 would be 250 ns — well below one MTU transmission.
        let short = SimConfig::builder()
            .horizon(SimTime::from_micros(100.0))
            .build();
        assert_eq!(short.sample_every, SimConfig::MIN_SAMPLE_PERIOD);
        // Long horizons keep the ~400-point resolution.
        let long = SimConfig::builder()
            .horizon(SimTime::from_secs(4.0))
            .build();
        assert_eq!(long.sample_every, SimTime::from_millis(10.0));
        // The explicit override still wins in both directions.
        let fine = short.with_sample_every(SimTime::from_micros(0.1));
        assert_eq!(fine.sample_every, SimTime::from_micros(0.1));
    }

    #[test]
    fn single_flow_fct_is_size_over_rate() {
        let topo = small_topo();
        // 1.25 MB at 10 Gbps = 1 ms.
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 1, 1_250_000)],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        )
        .unwrap();
        assert_eq!(run.completions, 1);
        let s = run.fct.summary(FlowClass::Background).unwrap();
        assert!(
            (s.mean_ms() - 1.0).abs() < 1e-6,
            "fct = {} ms, expected 1 ms",
            s.mean_ms()
        );
        assert_eq!(run.leftover_flows, 0);
        assert_eq!(run.throughput.delivered(), Bytes::new(1_250_000));
        // The 1.25 MB flow lands in the (100 KB, 10 MB] bucket.
        let rows = run.fct_by_size.summaries();
        assert!(rows[0].1.is_none());
        assert_eq!(rows[1].1.unwrap().count, 1);
    }

    #[test]
    fn odd_sized_flow_completes_exactly_with_one_drain() {
        // Regression for the `.round()`-vs-`.floor()` era: 7,777 bytes at
        // 10 Gbps does not divide any sampling slot, and the old per-event
        // rounding could strand a 1-byte residue that needed an extra
        // micro-wakeup. With epoch accounting the flow must finish in a
        // single drain event at the exact analytic instant.
        let topo = small_topo();
        let size = Bytes::new(7_777);
        let mut counter = dcn_probe::EventCounterProbe::new();
        let run = run_with_probe(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 1, size.as_u64())],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
            &mut counter,
        )
        .unwrap();
        assert_eq!(run.completions, 1);
        assert_eq!(counter.drains(), 1, "no residue micro-drains allowed");
        assert_eq!(run.throughput.delivered(), size);
        let want = topo.edge_rate().transfer_time(size).as_secs();
        let got = run.fct.summary(FlowClass::Background).unwrap().mean_secs;
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "FCT must be bit-exact size/rate"
        );
    }

    #[test]
    fn first_sample_sees_same_instant_arrivals() {
        // Regression: the sampler used to fire before t = 0 arrivals were
        // admitted, so every trace of a workload starting at t = 0 opened
        // with a spurious all-zero point. Arrivals at an instant are now
        // admitted before the sample at that instant.
        let topo = small_topo();
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 1, 50_000_000)],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.001))
                .build(),
        )
        .unwrap();
        assert_eq!(run.total_backlog.times().first(), Some(&0.0));
        assert_eq!(
            run.total_backlog.values().first(),
            Some(&50_000_000.0),
            "the t = 0 sample must include the t = 0 arrival"
        );
    }

    #[test]
    fn srpt_serializes_contending_flows() {
        let topo = small_topo();
        // Two flows from host 0: the short one goes first under SRPT.
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![
                arrival(0, 0.0, 0, 1, 2_500_000), // 2 ms alone
                arrival(1, 0.0, 0, 2, 1_250_000), // 1 ms alone
            ],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        )
        .unwrap();
        assert_eq!(run.completions, 2);
        let mut fcts: Vec<f64> = run
            .fct
            .summary(FlowClass::Background)
            .map(|s| vec![s.mean_secs])
            .unwrap();
        // mean of (1 ms, 3 ms) = 2 ms.
        assert!((fcts.pop().unwrap() - 0.002).abs() < 1e-7);
    }

    #[test]
    fn bytes_are_conserved() {
        let topo = small_topo();
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![
                arrival(0, 0.0, 0, 1, 50_000_000), // won't finish in 10 ms
                arrival(1, 0.001, 2, 3, 1_000),
                arrival(2, 0.002, 1, 0, 7_777),
            ],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        )
        .unwrap();
        assert_eq!(
            run.arrived_bytes,
            run.throughput.delivered() + run.leftover_bytes
        );
        assert!(run.leftover_flows >= 1);
    }

    #[test]
    fn arrivals_after_horizon_are_ignored() {
        let topo = small_topo();
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 1, 1_000), arrival(1, 99.0, 0, 1, 1_000)],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        )
        .unwrap();
        assert_eq!(run.arrivals, 1);
        assert_eq!(run.completions, 1);
    }

    #[test]
    fn preempted_flow_pays_the_pause() {
        let topo = small_topo();
        // A long flow starts alone; a shorter same-source flow preempts it.
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![
                arrival(0, 0.0, 0, 1, 2_500_000),  // 2 ms alone
                arrival(1, 0.0005, 0, 2, 625_000), // 0.5 ms alone, shorter remaining
            ],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.02))
                .build(),
        )
        .unwrap();
        assert_eq!(run.completions, 2);
        // Flow 0 runs 0.5 ms, pauses 0.5 ms, then finishes: FCT 2.5 ms.
        // Flow 1 FCT = 0.5 ms.
        let s = run.fct.summary(FlowClass::Background).unwrap();
        assert!((s.max_secs - 0.0025).abs() < 1e-7, "max {}", s.max_secs);
        assert!((s.mean_secs - 0.0015).abs() < 1e-7, "mean {}", s.mean_secs);
    }

    #[test]
    fn sampling_produces_series() {
        let topo = small_topo();
        let config = SimConfig::builder()
            .horizon(SimTime::from_secs(0.01))
            .build()
            .with_sample_every(SimTime::from_millis(1.0))
            .with_monitored_port(HostId::new(0));
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 1, 50_000_000)],
            config,
        )
        .unwrap();
        assert!(run.total_backlog.len() >= 9);
        assert_eq!(run.total_backlog.len(), run.monitored_port_backlog.len());
        assert_eq!(run.total_backlog.len(), run.cumulative_delivered.len());
        // The monitored port holds the only flow: backlogs match.
        assert_eq!(
            run.total_backlog.values(),
            run.monitored_port_backlog.values()
        );
        // Cumulative delivered bytes are non-decreasing.
        let vals = run.cumulative_delivered.values();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bad_arrivals_are_rejected() {
        let topo = small_topo();
        let out_of_range = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 99, 1_000)],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        );
        assert!(matches!(out_of_range, Err(FabricError::BadArrival(_))));

        let self_loop = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 3, 3, 1_000)],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        );
        assert!(matches!(self_loop, Err(FabricError::BadArrival(_))));

        let backwards = simulate(
            &topo,
            &mut Srpt::new(),
            vec![
                arrival(0, 0.005, 0, 1, 1_000),
                arrival(1, 0.001, 0, 2, 1_000),
            ],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.01))
                .build(),
        );
        assert!(matches!(backwards, Err(FabricError::BadArrival(_))));
    }

    #[test]
    fn oversubscribed_core_limits_inter_rack_flows() {
        // 4 hosts per rack but a single 40 Gbps core carrying at most
        // 4 × 10 Gbps... make it binding: 8 hosts/rack, 1 core => 4 flows.
        let topo = FatTree::scaled(2, 8, 1).unwrap();
        assert!(!topo.is_full_bisection());
        // 8 inter-rack flows from distinct hosts to distinct hosts.
        let flows: Vec<FlowArrival> = (0..8)
            .map(|i| arrival(i, 0.0, i as u32, 8 + i as u32, 12_500_000))
            .collect();
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            flows,
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.1))
                .build(),
        )
        .unwrap();
        // Only 4 can transmit concurrently: after 10 ms (one flow's solo
        // time) at most ~4 flows have finished.
        let done_at_12ms = run
            .fct
            .summary(FlowClass::Background)
            .map(|s| {
                (0..s.count).filter(|_| true).count() // all completed eventually
            })
            .unwrap_or(0);
        assert_eq!(done_at_12ms, 8, "all complete within the long horizon");
        // The last completion must be >= 20 ms (two serialized batches).
        let s = run.fct.summary(FlowClass::Background).unwrap();
        assert!(s.max_secs >= 0.0199, "max fct {} too small", s.max_secs);
        // And on a full-bisection fabric the same load pipelines freely.
        let topo_fb = FatTree::scaled(2, 8, 2).unwrap();
        let flows: Vec<FlowArrival> = (0..8)
            .map(|i| arrival(i, 0.0, i as u32, 8 + i as u32, 12_500_000))
            .collect();
        let run_fb = simulate(
            &topo_fb,
            &mut Srpt::new(),
            flows,
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.1))
                .build(),
        )
        .unwrap();
        let s_fb = run_fb.fct.summary(FlowClass::Background).unwrap();
        assert!(
            s_fb.max_secs <= 0.0101,
            "full bisection max {}",
            s_fb.max_secs
        );
    }

    #[test]
    fn base_latency_shifts_fcts_only() {
        let topo = small_topo();
        let base = SimConfig::builder()
            .horizon(SimTime::from_secs(0.01))
            .build();
        let shifted = base.with_base_latency(SimTime::from_micros(100.0));
        let flows = || vec![arrival(0, 0.0, 0, 1, 1_250_000)];
        let a = simulate(&topo, &mut Srpt::new(), flows(), base).unwrap();
        let b = simulate(&topo, &mut Srpt::new(), flows(), shifted).unwrap();
        let fa = a.fct.summary(FlowClass::Background).unwrap();
        let fb = b.fct.summary(FlowClass::Background).unwrap();
        assert!((fb.mean_secs - fa.mean_secs - 1e-4).abs() < 1e-12);
        assert_eq!(a.throughput.delivered(), b.throughput.delivered());
    }

    #[test]
    fn average_throughput_accounts_only_delivered() {
        let topo = small_topo();
        let run = simulate(
            &topo,
            &mut Srpt::new(),
            vec![arrival(0, 0.0, 0, 1, 1_250_000)],
            SimConfig::builder()
                .horizon(SimTime::from_secs(0.001))
                .build(),
        )
        .unwrap();
        // The flow needs exactly the whole horizon; everything delivered.
        assert!((run.average_throughput().gbps() - 10.0).abs() < 0.1);
    }
}
