//! The [`FabricSim`] builder: the front door of the flow-level simulator.
//!
//! `simulate(topo, sched, gen, config)` takes four positional arguments, two
//! of which are easy to swap, and offers no place to hang an observer. The
//! builder names every ingredient and enforces the assembly order at the
//! type level: topology → (optional config) → scheduler → workload →
//! (optional probe) → run.
//!
//! ```
//! use basrpt_core::Srpt;
//! use dcn_fabric::{FabricSim, FatTree, SimConfig};
//! use dcn_probe::EventCounterProbe;
//! use dcn_types::SimTime;
//! use dcn_workload::TrafficSpec;
//!
//! let topo = FatTree::scaled(2, 4, 1)?;
//! let spec = TrafficSpec::scaled(2, 4, 0.5)?;
//! let mut counter = EventCounterProbe::new();
//! let run = FabricSim::new(&topo)
//!     .config(SimConfig::builder().horizon(SimTime::from_secs(0.05)).build())
//!     .scheduler(&mut Srpt::new())
//!     .workload(spec.generator(7)?)
//!     .probe(&mut counter)
//!     .run()?;
//! assert_eq!(counter.completions() as usize, run.completions);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::engine::{run_with_probe, FabricError, FabricRun, SimConfig};
use crate::topology::Topology;
use crate::FatTree;
use basrpt_core::Scheduler;
use dcn_probe::{NoProbe, Probe};
use dcn_workload::FlowArrival;

/// Entry point of the builder chain: a topology plus a configuration.
///
/// Created by [`FabricSim::new`]; continue with
/// [`scheduler`](FabricSim::scheduler). The typestate chain only compiles
/// in assembly order — topology → config → scheduler → workload → probe →
/// run — so a simulation can never launch half-assembled.
///
/// # Example
///
/// ```
/// use basrpt_core::Srpt;
/// use dcn_fabric::{FabricSim, FatTree, SimConfig};
/// use dcn_types::SimTime;
/// use dcn_workload::TrafficSpec;
///
/// let topo = FatTree::scaled(2, 4, 1)?; // 8 hosts, 1 core
/// let spec = TrafficSpec::scaled(2, 4, 0.5)?;
/// let run = FabricSim::new(&topo)
///     .config(SimConfig::builder().horizon(SimTime::from_secs(0.05)).build())
///     .scheduler(&mut Srpt::new())
///     .workload(spec.generator(7)?)
///     .run()?;
/// assert!(run.completions > 0);
/// assert_eq!(
///     run.arrived_bytes,
///     run.throughput.delivered() + run.leftover_bytes,
///     "bytes are conserved",
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// To watch the event stream, attach an observer with
/// [`probe`](FabricSimReady::probe) before running.
#[must_use = "chain .scheduler(..).workload(..).run() to simulate"]
#[derive(Debug)]
pub struct FabricSim<'t, T: Topology + ?Sized = FatTree> {
    topo: &'t T,
    config: SimConfig,
}

impl<'t, T: Topology + ?Sized> FabricSim<'t, T> {
    /// Starts assembling a simulation of `topo` — any [`Topology`]
    /// implementation — with the default configuration (1 s horizon,
    /// automatic sampling — see [`SimConfig::builder`]).
    pub fn new(topo: &'t T) -> Self {
        FabricSim {
            topo,
            config: SimConfig::builder().build(),
        }
    }

    /// Replaces the run configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches the scheduling discipline, consulted on every flow arrival
    /// and completion.
    pub fn scheduler<S: Scheduler + ?Sized>(
        self,
        scheduler: &mut S,
    ) -> FabricSimSched<'t, '_, S, T> {
        FabricSimSched {
            topo: self.topo,
            config: self.config,
            scheduler,
        }
    }

    /// Selects max-min fair sharing instead of a scheduling discipline:
    /// every active flow transmits simultaneously at its water-filled fair
    /// rate (see [`crate::simulate_fair_share`]) — the "no scheduling"
    /// baseline. Continue with [`workload`](FairShareSim::workload).
    ///
    /// # Example
    ///
    /// ```
    /// use dcn_fabric::{FabricSim, FatTree, SimConfig};
    /// use dcn_types::SimTime;
    /// use dcn_workload::TrafficSpec;
    ///
    /// let topo = FatTree::scaled(2, 4, 1)?;
    /// let spec = TrafficSpec::scaled(2, 4, 0.5)?;
    /// let run = FabricSim::new(&topo)
    ///     .config(SimConfig::builder().horizon(SimTime::from_secs(0.05)).build())
    ///     .fair_share()
    ///     .workload(spec.generator(7)?)
    ///     .run()?;
    /// assert_eq!(
    ///     run.arrived_bytes,
    ///     run.throughput.delivered() + run.leftover_bytes,
    /// );
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn fair_share(self) -> FairShareSim<'t, T> {
        FairShareSim {
            topo: self.topo,
            config: self.config,
        }
    }
}

/// Builder state for a max-min fair-share run (no scheduler); continue
/// with [`workload`](FairShareSim::workload).
#[must_use = "chain .workload(..).run() to simulate"]
#[derive(Debug)]
pub struct FairShareSim<'t, T: Topology + ?Sized = FatTree> {
    topo: &'t T,
    config: SimConfig,
}

impl<'t, T: Topology + ?Sized> FairShareSim<'t, T> {
    /// Attaches the arrival stream: any time-ordered `FlowArrival`
    /// iterator — a `dcn-workload` generator or a scripted `Vec`.
    pub fn workload<G>(self, generator: G) -> FairShareSimReady<'t, G, NoProbe, T>
    where
        G: IntoIterator<Item = FlowArrival>,
    {
        FairShareSimReady {
            topo: self.topo,
            config: self.config,
            generator,
            probe: NoProbe,
        }
    }
}

/// Fully assembled fair-share simulation: [`run`](FairShareSimReady::run)
/// it, optionally attaching an observer first with
/// [`probe`](FairShareSimReady::probe).
#[must_use = "call .run() to simulate"]
#[derive(Debug)]
pub struct FairShareSimReady<'t, G, P, T: Topology + ?Sized = FatTree> {
    topo: &'t T,
    config: SimConfig,
    generator: G,
    probe: P,
}

impl<'t, G, P, T> FairShareSimReady<'t, G, P, T>
where
    G: IntoIterator<Item = FlowArrival>,
    P: Probe,
    T: Topology + ?Sized,
{
    /// Attaches an observer of the event stream (replacing any previous
    /// one).
    pub fn probe<Q: Probe>(self, probe: Q) -> FairShareSimReady<'t, G, Q, T> {
        FairShareSimReady {
            topo: self.topo,
            config: self.config,
            generator: self.generator,
            probe,
        }
    }

    /// Runs the fair-share simulation to the configured horizon.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadArrival`] under the same conditions as
    /// [`crate::simulate`].
    pub fn run(self) -> Result<FabricRun, FabricError> {
        crate::fairshare::simulate_fair_share_probed(
            self.topo,
            self.generator,
            self.config,
            self.probe,
        )
    }
}

/// Builder state with a scheduler attached; continue with
/// [`workload`](FabricSimSched::workload).
#[must_use = "chain .workload(..).run() to simulate"]
#[derive(Debug)]
pub struct FabricSimSched<'t, 's, S: ?Sized, T: Topology + ?Sized = FatTree> {
    topo: &'t T,
    config: SimConfig,
    scheduler: &'s mut S,
}

impl<'t, 's, S: Scheduler + ?Sized, T: Topology + ?Sized> FabricSimSched<'t, 's, S, T> {
    /// Attaches the arrival stream: any time-ordered `FlowArrival`
    /// iterator — a `dcn-workload` generator or a scripted `Vec`.
    pub fn workload<G>(self, generator: G) -> FabricSimReady<'t, 's, S, G, NoProbe, T>
    where
        G: IntoIterator<Item = FlowArrival>,
    {
        FabricSimReady {
            topo: self.topo,
            config: self.config,
            scheduler: self.scheduler,
            generator,
            probe: NoProbe,
        }
    }

    /// Leaves the batch path: instead of attaching a whole workload,
    /// produce the step-able [`OnlineFabric`](crate::OnlineFabric) engine
    /// and feed it arrivals one at a time (see the
    /// [`online` module](crate::OnlineFabric) for the protocol).
    pub fn online(self) -> crate::OnlineFabric<'t, 's, T, S> {
        crate::OnlineFabric::new(self.topo, self.scheduler, self.config)
    }
}

/// Fully assembled simulation: [`run`](FabricSimReady::run) it, optionally
/// attaching an observer first with [`probe`](FabricSimReady::probe).
#[must_use = "call .run() to simulate"]
#[derive(Debug)]
pub struct FabricSimReady<'t, 's, S: ?Sized, G, P, T: Topology + ?Sized = FatTree> {
    topo: &'t T,
    config: SimConfig,
    scheduler: &'s mut S,
    generator: G,
    probe: P,
}

impl<'t, 's, S, G, P, T> FabricSimReady<'t, 's, S, G, P, T>
where
    S: Scheduler + ?Sized,
    G: IntoIterator<Item = FlowArrival>,
    P: Probe,
    T: Topology + ?Sized,
{
    /// Attaches an observer of the event stream (replacing any previous
    /// one). Pass `&mut probe` to keep ownership and read the results
    /// after [`run`](FabricSimReady::run); pass several observers by
    /// nesting them in a [`dcn_probe::Fanout`].
    pub fn probe<Q: Probe>(self, probe: Q) -> FabricSimReady<'t, 's, S, G, Q, T> {
        FabricSimReady {
            topo: self.topo,
            config: self.config,
            scheduler: self.scheduler,
            generator: self.generator,
            probe,
        }
    }

    /// Runs the simulation to the configured horizon.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadArrival`] if an arrival references hosts
    /// outside the topology, is a self-loop, has zero size, or goes
    /// backwards in time.
    pub fn run(self) -> Result<FabricRun, FabricError> {
        run_with_probe(
            self.topo,
            self.scheduler,
            self.generator,
            self.config,
            self.probe,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use basrpt_core::Srpt;
    use dcn_probe::EventCounterProbe;
    use dcn_types::{Bytes, FlowClass, FlowId, HostId, SimTime, Voq};

    fn arrivals() -> Vec<FlowArrival> {
        vec![
            FlowArrival {
                id: FlowId::new(0),
                time: SimTime::ZERO,
                voq: Voq::new(HostId::new(0), HostId::new(1)),
                size: Bytes::new(1_250_000),
                class: FlowClass::Background,
            },
            FlowArrival {
                id: FlowId::new(1),
                time: SimTime::from_millis(1.0),
                voq: Voq::new(HostId::new(2), HostId::new(3)),
                size: Bytes::new(20_000),
                class: FlowClass::Query,
            },
        ]
    }

    #[test]
    fn builder_matches_simulate() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let config = SimConfig::builder()
            .horizon(SimTime::from_secs(0.01))
            .build();
        let via_builder = FabricSim::new(&topo)
            .config(config)
            .scheduler(&mut Srpt::new())
            .workload(arrivals())
            .run()
            .unwrap();
        let via_simulate = simulate(&topo, &mut Srpt::new(), arrivals(), config).unwrap();
        assert_eq!(via_builder.completions, via_simulate.completions);
        assert_eq!(via_builder.total_backlog, via_simulate.total_backlog);
        assert_eq!(
            via_builder.throughput.delivered(),
            via_simulate.throughput.delivered()
        );
    }

    #[test]
    fn probe_observes_the_run() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let mut counter = EventCounterProbe::new();
        let run = FabricSim::new(&topo)
            .config(
                SimConfig::builder()
                    .horizon(SimTime::from_secs(0.01))
                    .build(),
            )
            .scheduler(&mut Srpt::new())
            .workload(arrivals())
            .probe(&mut counter)
            .run()
            .unwrap();
        assert_eq!(counter.arrivals() as usize, run.arrivals);
        assert_eq!(counter.completions() as usize, run.completions);
        assert_eq!(counter.decisions(), run.reschedules);
        assert_eq!(counter.samples() as usize, run.total_backlog.len());
        assert_eq!(counter.drained_units(), run.throughput.delivered().as_u64());
        // The default wants_decision_timing() == true fills latencies.
        assert_eq!(counter.decision_latency().count(), counter.decisions());
    }

    #[test]
    fn default_config_is_one_second_horizon() {
        let topo = FatTree::scaled(2, 4, 1).unwrap();
        let sim = FabricSim::new(&topo);
        assert_eq!(sim.config.horizon, SimTime::from_secs(1.0));
    }
}
