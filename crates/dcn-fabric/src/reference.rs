//! The reference event loops, kept for differential testing.
//!
//! The production engine ([`crate::simulate`]) is the **delta-rate**
//! engine: it keeps a persistent [`DeltaAllocator`](crate::DeltaAllocator)
//! across events and pays calendar work only for the flows whose rate
//! allocation actually changed. This module retains the two earlier
//! engines it replaced:
//!
//! * [`simulate_scan`] — the seed engine's strategy: a linear rescan of
//!   every scheduled flow on every wakeup, `O(n)` per event;
//! * [`simulate_full_rebuild`] — the PR 3–5 production engine: the indexed
//!   [`CompletionCalendar`](crate::CompletionCalendar) for next-event
//!   lookup, but with the full allocation state (carry-over map, entry
//!   vector, calendar live map) rebuilt on every reschedule, also `O(n)`
//!   per event with a higher constant.
//!
//! All three paths share the exact epoch-based drain accounting and the
//! same event ordering within an instant, so their outputs must be
//! **bit-identical**: any divergence is an engine bug, not a modelling
//! difference. `tests/calendar_differential.rs` pins full-rebuild against
//! scan, and `tests/delta_differential.rs` pins the delta engine against
//! both, across seeds × disciplines — the same technique PR 1 used to pin
//! the incremental scheduler against the from-scratch one.
//!
//! Per-event costs are measured in the `event_loop` and `delta_reschedule`
//! bench groups of `sched_overhead` and modelled in `PERFMODEL.md`; these
//! paths are for tests and benches — production callers should use
//! [`crate::simulate`] or the [`FabricSim`](crate::FabricSim) builder.

use crate::engine::{run_rebuild_with_probe, run_scan_with_probe};
use crate::{FabricError, FabricRun, SimConfig, Topology};
use basrpt_core::Scheduler;
use dcn_probe::{NoProbe, Probe};
use dcn_workload::FlowArrival;

/// Runs one simulation with the linear-rescan completion lookup.
///
/// Identical semantics to [`crate::simulate`] — same inputs, same exact
/// accounting, bit-identical outputs — differing only in how the next
/// completion instant is found.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_scan<T: Topology + ?Sized, S: Scheduler + ?Sized>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    run_scan_with_probe(topo, scheduler, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_scan`], for differential tests
/// that compare full event streams, not just run summaries.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_scan_probed<T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    run_scan_with_probe(topo, scheduler, generator, config, probe)
}

/// Runs one simulation with the full-recompute calendar engine: indexed
/// next-completion lookup, but the allocation state is rebuilt from
/// scratch on every reschedule.
///
/// Identical semantics to [`crate::simulate`] — same inputs, same exact
/// accounting, bit-identical outputs — differing only in how much state
/// survives between events.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_full_rebuild<T: Topology + ?Sized, S: Scheduler + ?Sized>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    run_rebuild_with_probe(topo, scheduler, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_full_rebuild`], for
/// differential tests that compare full event streams.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_full_rebuild_probed<T: Topology + ?Sized, S: Scheduler + ?Sized, P: Probe>(
    topo: &T,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    run_rebuild_with_probe(topo, scheduler, generator, config, probe)
}

/// Runs one max-min fair-share simulation with the **naive** `O(n²)`
/// reference water-filler and the linear completion rescan — the
/// differential-testing reference for
/// [`simulate_fair_share`](crate::simulate_fair_share), which
/// `tests/fairshare_differential.rs` pins bit-identical across seeds ×
/// topologies × shard counts (see the `fairshare` module docs for the
/// arithmetic contract that makes two genuinely different implementations
/// agree to the last bit).
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_fair_share_naive<T: Topology + ?Sized>(
    topo: &T,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    crate::fairshare::run_fair_share_naive(topo, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_fair_share_naive`], for
/// differential tests that compare full event streams.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_fair_share_naive_probed<T: Topology + ?Sized, P: Probe>(
    topo: &T,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    crate::fairshare::run_fair_share_naive(topo, generator, config, probe)
}
