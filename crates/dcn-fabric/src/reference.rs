//! The reference event loop, kept for differential testing.
//!
//! The production engine ([`crate::simulate`]) finds the next completion
//! instant through the indexed [`CompletionCalendar`](crate::CompletionCalendar);
//! this module runs the *same* event loop with the seed engine's strategy —
//! a linear rescan of every scheduled flow on every wakeup. Both paths
//! share the exact epoch-based drain accounting, so their outputs must be
//! **bit-identical**: any divergence is a calendar bug, not a modelling
//! difference. `tests/calendar_differential.rs` pins that equivalence
//! across seeds and disciplines, the same technique PR 1 used to pin the
//! incremental scheduler against the from-scratch one.
//!
//! The rescan costs `O(n)` per wakeup in the number of concurrently
//! scheduled flows (the `event_loop` bench group in `sched_overhead`
//! measures the gap), so this path is for tests and benches — production
//! callers should use [`crate::simulate`] or the
//! [`FabricSim`](crate::FabricSim) builder.

use crate::engine::run_scan_with_probe;
use crate::{FabricError, FabricRun, FatTree, SimConfig};
use basrpt_core::Scheduler;
use dcn_probe::{NoProbe, Probe};
use dcn_workload::FlowArrival;

/// Runs one simulation with the linear-rescan completion lookup.
///
/// Identical semantics to [`crate::simulate`] — same inputs, same exact
/// accounting, bit-identical outputs — differing only in how the next
/// completion instant is found.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_scan<S: Scheduler + ?Sized>(
    topo: &FatTree,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
) -> Result<FabricRun, FabricError> {
    run_scan_with_probe(topo, scheduler, generator, config, NoProbe)
}

/// Probe-instrumented variant of [`simulate_scan`], for differential tests
/// that compare full event streams, not just run summaries.
///
/// # Errors
///
/// Returns [`FabricError::BadArrival`] under the same conditions as
/// [`crate::simulate`].
pub fn simulate_scan_probed<S: Scheduler + ?Sized, P: Probe>(
    topo: &FatTree,
    scheduler: &mut S,
    generator: impl IntoIterator<Item = FlowArrival>,
    config: SimConfig,
    probe: P,
) -> Result<FabricRun, FabricError> {
    run_scan_with_probe(topo, scheduler, generator, config, probe)
}
