//! Property tests for [`CompletionCalendar`] under adversarial reschedule
//! sequences — the situations lazy invalidation must survive: the same
//! flow rescheduled over and over (stale entries pile up on the heap),
//! reschedules to the *same* instant (must not grow the heap), and
//! drain-to-zero (empty schedules, `INFINITY` answers, then refills).
//! Every prefix of every sequence is checked against a naive
//! recompute-the-minimum model.

use dcn_fabric::CompletionCalendar;
use dcn_types::{FlowId, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

fn f(id: u64) -> FlowId {
    FlowId::new(id)
}

fn at(tenths: u64) -> SimTime {
    SimTime::from_millis(tenths as f64 / 10.0)
}

/// The naive model: the last schedule handed over, as a map.
fn model_of(schedule: &[(u64, u64)]) -> HashMap<u64, u64> {
    // Last pair wins, like the calendar documents.
    schedule.iter().copied().collect()
}

fn check_against_model(cal: &mut CompletionCalendar, model: &HashMap<u64, u64>, step: usize) {
    assert_eq!(cal.len(), model.len(), "step {step}: live count");
    assert_eq!(cal.is_empty(), model.is_empty(), "step {step}: emptiness");
    let want = model
        .values()
        .map(|&t| at(t))
        .min()
        .unwrap_or(SimTime::INFINITY);
    assert_eq!(cal.next_completion(), want, "step {step}: minimum instant");
    assert!(
        cal.heap_len() >= cal.len(),
        "step {step}: heap can never hold fewer entries than live flows"
    );
}

proptest! {
    /// Arbitrary reschedule sequences over a small id space (maximizing
    /// collisions): after every `set_schedule` the calendar agrees with
    /// the naive model, including empty schedules mid-sequence.
    #[test]
    fn calendar_tracks_the_model_on_arbitrary_sequences(
        steps in prop::collection::vec(
            prop::collection::vec((0u64..5, 0u64..200), 0..8),
            1..30,
        )
    ) {
        let mut cal = CompletionCalendar::new();
        for (step, schedule) in steps.iter().enumerate() {
            cal.set_schedule(schedule.iter().map(|&(id, t)| (f(id), at(t))));
            let model = model_of(schedule);
            check_against_model(&mut cal, &model, step);
        }
    }

    /// One flow rescheduled to a fresh instant every step: the pathological
    /// case for lazy invalidation. The answer must stay exact at every
    /// prefix, and popping through the garbage at the end must terminate
    /// with the single live entry.
    #[test]
    fn repeated_invalidation_of_one_flow_stays_exact(
        instants in prop::collection::vec(0u64..10_000, 1..200)
    ) {
        let mut cal = CompletionCalendar::new();
        for (step, &t) in instants.iter().enumerate() {
            cal.set_schedule([(f(1), at(t))]);
            assert_eq!(cal.next_completion(), at(t), "step {step}");
            assert_eq!(cal.len(), 1);
        }
        // After validation the heap has shed every entry that sorted ahead
        // of the live one; everything behind it may lazily remain.
        prop_assert!(cal.heap_len() >= 1);
        cal.set_schedule(std::iter::empty::<(FlowId, SimTime)>());
        prop_assert_eq!(cal.next_completion(), SimTime::INFINITY);
        prop_assert_eq!(cal.heap_len(), 0, "draining pops all stale entries");
    }

    /// Rescheduling flows to their *current* instants is free: no heap
    /// growth, no answer change — however often it is repeated.
    #[test]
    fn reschedule_to_same_instant_never_grows_the_heap(
        schedule in prop::collection::vec((0u64..8, 0u64..500), 1..8),
        repeats in 1usize..50,
    ) {
        let mut cal = CompletionCalendar::new();
        cal.set_schedule(schedule.iter().map(|&(id, t)| (f(id), at(t))));
        let model = model_of(&schedule);
        check_against_model(&mut cal, &model, 0);
        let heap_before = cal.heap_len();
        for rep in 1..=repeats {
            // Re-hand the deduplicated live set (iteration order varies —
            // the calendar must not care).
            let live: Vec<(u64, u64)> = model.iter().map(|(&id, &t)| (id, t)).collect();
            cal.set_schedule(live.iter().map(|&(id, t)| (f(id), at(t))));
            check_against_model(&mut cal, &model, rep);
        }
        prop_assert_eq!(cal.heap_len(), heap_before, "identical reschedules are free");
    }

    /// Drain-to-zero churn: alternate between a schedule and emptiness.
    /// Emptiness must always answer `INFINITY` immediately, and refills
    /// must resurrect exact answers (including for ids seen before with
    /// different instants).
    #[test]
    fn drain_to_zero_and_refill(
        rounds in prop::collection::vec(
            prop::collection::vec((0u64..4, 0u64..100), 1..5),
            1..20,
        )
    ) {
        let mut cal = CompletionCalendar::new();
        for (step, schedule) in rounds.iter().enumerate() {
            cal.set_schedule(schedule.iter().map(|&(id, t)| (f(id), at(t))));
            check_against_model(&mut cal, &model_of(schedule), step);
            cal.set_schedule(std::iter::empty::<(FlowId, SimTime)>());
            assert_eq!(cal.next_completion(), SimTime::INFINITY, "step {step}: drained");
            assert_eq!(cal.heap_len(), 0, "step {step}: drained heap is empty");
        }
    }
}

/// Every targeted-edit operation the delta engine performs, as a proptest
/// value.
#[derive(Debug, Clone, Copy)]
enum DeltaOp {
    /// `CompletionCalendar::update` — schedule or move one flow.
    Update(u64, u64),
    /// `CompletionCalendar::remove` — deschedule one flow.
    Remove(u64),
    /// `CompletionCalendar::next_completion` — pop through stale garbage.
    Query,
    /// `CompletionCalendar::set_schedule` of the current live set — the
    /// bulk API interleaved mid-stream (the two APIs must compose).
    BulkReassert,
}

fn delta_op() -> impl Strategy<Value = DeltaOp> {
    prop_oneof![
        4 => (0u64..6, 0u64..300).prop_map(|(id, t)| DeltaOp::Update(id, t)),
        2 => (0u64..6).prop_map(DeltaOp::Remove),
        2 => Just(DeltaOp::Query),
        1 => Just(DeltaOp::BulkReassert),
    ]
}

proptest! {
    /// Adversarial interleaving of targeted updates, removes, pops, and
    /// bulk reasserts: after **every** operation the incrementally edited
    /// calendar agrees with a calendar freshly built from the model — same
    /// minimum, same live count, and popping both to exhaustion yields the
    /// same instant sequence (heap-order agreement, not just the top).
    #[test]
    fn targeted_edits_agree_with_a_freshly_built_calendar(
        ops in prop::collection::vec(delta_op(), 1..120)
    ) {
        let mut cal = CompletionCalendar::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (step, &op) in ops.iter().enumerate() {
            match op {
                DeltaOp::Update(id, t) => {
                    cal.update(f(id), at(t));
                    model.insert(id, t);
                }
                DeltaOp::Remove(id) => {
                    cal.remove(f(id));
                    model.remove(&id);
                }
                DeltaOp::Query => {
                    // Exercised below for every step; a standalone query
                    // also forces stale-top pops *between* edits.
                    let _ = cal.next_completion();
                }
                DeltaOp::BulkReassert => {
                    let live: Vec<(u64, u64)> =
                        model.iter().map(|(&id, &t)| (id, t)).collect();
                    cal.set_schedule(live.iter().map(|&(id, t)| (f(id), at(t))));
                }
            }
            let mut fresh = CompletionCalendar::new();
            fresh.set_schedule(model.iter().map(|(&id, &t)| (f(id), at(t))));
            prop_assert_eq!(cal.len(), fresh.len(), "step {}: live count", step);
            prop_assert_eq!(
                cal.next_completion(),
                fresh.next_completion(),
                "step {}: minimum instant",
                step
            );
            prop_assert!(
                cal.heap_len() >= cal.len(),
                "step {}: heap cannot undercount the live set",
                step
            );
        }
        // Drain both calendars to exhaustion in completion order: the
        // edited calendar must yield the identical instant sequence.
        let mut fresh = CompletionCalendar::new();
        fresh.set_schedule(model.iter().map(|(&id, &t)| (f(id), at(t))));
        while !model.is_empty() {
            let want = fresh.next_completion();
            prop_assert_eq!(cal.next_completion(), want, "drain: minimum");
            let (&id, _) = model
                .iter()
                .find(|&(_, &t)| at(t) == want)
                .expect("minimum comes from the model");
            model.remove(&id);
            cal.remove(f(id));
            fresh.remove(f(id));
        }
        prop_assert_eq!(cal.next_completion(), SimTime::INFINITY);
        prop_assert_eq!(cal.heap_len(), 0, "full drain pops all garbage");
    }
}

/// Deterministic worst case outside proptest: N reschedules of one flow to
/// strictly earlier instants each time — every stale entry sorts *behind*
/// the live one, so `next_completion` keeps O(1) peeks while `heap_len`
/// records the garbage, all popped in one terminal drain.
#[test]
fn monotonically_earlier_reschedules_accumulate_then_drain() {
    let mut cal = CompletionCalendar::new();
    let n = 500u64;
    for i in 0..n {
        cal.set_schedule([(f(7), at(10_000 - i))]);
        assert_eq!(cal.next_completion(), at(10_000 - i));
    }
    assert_eq!(cal.len(), 1);
    assert!(cal.heap_len() as u64 >= 1, "live entry present");
    cal.set_schedule(std::iter::empty::<(FlowId, SimTime)>());
    assert_eq!(cal.next_completion(), SimTime::INFINITY);
    assert_eq!(cal.heap_len(), 0);
}
