//! Trend-based stability classification of queue-length traces.

use crate::TimeSeries;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The verdict for a queue-length trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StabilityVerdict {
    /// The backlog fluctuates around a level without macroscale growth.
    Stable,
    /// The backlog keeps growing over the observation window — the paper's
    /// operational definition of instability (§V-A).
    Growing,
}

impl fmt::Display for StabilityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilityVerdict::Stable => f.write_str("stable"),
            StabilityVerdict::Growing => f.write_str("growing"),
        }
    }
}

/// Configuration for the trend test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendConfig {
    /// Fraction of the trace to discard as warm-up before fitting the trend
    /// (default 0.5 — judge on the second half).
    pub warmup_fraction: f64,
    /// The trace is *growing* if the fitted linear growth over the judged
    /// window exceeds this fraction of the window's mean level
    /// (default 0.5 — grows by more than half its own level).
    pub growth_fraction: f64,
    /// Absolute floor: traces whose mean level stays below this value are
    /// always considered stable, whatever their relative trend (filters
    /// out near-empty queues whose relative growth is meaningless).
    pub level_floor: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            warmup_fraction: 0.5,
            growth_fraction: 0.5,
            level_floor: 1.0,
        }
    }
}

/// The outcome of classifying a queue-length trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Stable or growing.
    pub verdict: StabilityVerdict,
    /// Least-squares slope over the judged window (units/second).
    pub slope_per_sec: f64,
    /// Mean level over the judged window.
    pub tail_mean: f64,
    /// Final sampled value.
    pub last_value: f64,
    /// Fitted relative growth over the judged window
    /// (`slope × window / tail_mean`).
    pub relative_growth: f64,
}

impl StabilityReport {
    /// Classifies a backlog trace.
    ///
    /// The long observation window "filters out the impact of short-term
    /// arrivals" (§V-A): the first `warmup_fraction` of the trace is
    /// dropped, a least-squares line is fitted to the remainder, and the
    /// trace is ruled *growing* when the fitted growth across the judged
    /// window exceeds `growth_fraction` of the window's mean level.
    ///
    /// Traces with fewer than four post-warm-up samples are judged `Stable`
    /// (there is no evidence of growth).
    ///
    /// # Example
    ///
    /// ```
    /// use dcn_metrics::{StabilityReport, StabilityVerdict, TimeSeries, TrendConfig};
    /// let mut growing = TimeSeries::new();
    /// let mut flat = TimeSeries::new();
    /// for i in 0..100 {
    ///     growing.push(i as f64, 10.0 * i as f64);
    ///     flat.push(i as f64, 500.0 + (i % 7) as f64);
    /// }
    /// let cfg = TrendConfig::default();
    /// assert_eq!(StabilityReport::classify(&growing, cfg).verdict, StabilityVerdict::Growing);
    /// assert_eq!(StabilityReport::classify(&flat, cfg).verdict, StabilityVerdict::Stable);
    /// ```
    pub fn classify(series: &TimeSeries, config: TrendConfig) -> StabilityReport {
        let tail = series.tail(config.warmup_fraction);
        let last_value = series.last_value().unwrap_or(0.0);
        if tail.len() < 4 {
            return StabilityReport {
                verdict: StabilityVerdict::Stable,
                slope_per_sec: 0.0,
                tail_mean: tail.mean().unwrap_or(0.0),
                last_value,
                relative_growth: 0.0,
            };
        }
        let slope = tail.slope().unwrap_or(0.0);
        let tail_mean = tail.mean().expect("tail non-empty");
        let window = tail.times().last().expect("non-empty") - tail.times()[0];
        let relative_growth = if tail_mean > 0.0 {
            slope * window / tail_mean
        } else {
            0.0
        };
        let verdict = if tail_mean > config.level_floor
            && slope > 0.0
            && relative_growth > config.growth_fraction
        {
            StabilityVerdict::Growing
        } else {
            StabilityVerdict::Stable
        };
        StabilityReport {
            verdict,
            slope_per_sec: slope,
            tail_mean,
            last_value,
            relative_growth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64, n: usize) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..n {
            let t = i as f64;
            ts.push(t, f(t));
        }
        ts
    }

    #[test]
    fn linear_growth_is_growing() {
        let ts = series(|t| 100.0 * t, 200);
        let r = StabilityReport::classify(&ts, TrendConfig::default());
        assert_eq!(r.verdict, StabilityVerdict::Growing);
        assert!(r.slope_per_sec > 99.0);
        assert!(r.relative_growth > 0.5);
    }

    #[test]
    fn flat_with_noise_is_stable() {
        let ts = series(|t| 1000.0 + (t * 0.7).sin() * 50.0, 500);
        let r = StabilityReport::classify(&ts, TrendConfig::default());
        assert_eq!(r.verdict, StabilityVerdict::Stable);
    }

    #[test]
    fn transient_then_flat_is_stable() {
        // Warm-up ramp that settles: judged window is flat.
        let ts = series(|t| if t < 100.0 { 10.0 * t } else { 1000.0 }, 400);
        let r = StabilityReport::classify(&ts, TrendConfig::default());
        assert_eq!(r.verdict, StabilityVerdict::Stable);
    }

    #[test]
    fn tiny_levels_are_stable_whatever_the_trend() {
        let ts = series(|t| 1e-6 * t, 100);
        let r = StabilityReport::classify(&ts, TrendConfig::default());
        assert_eq!(r.verdict, StabilityVerdict::Stable);
    }

    #[test]
    fn short_traces_are_stable() {
        let ts = series(|t| 100.0 * t, 3);
        let r = StabilityReport::classify(&ts, TrendConfig::default());
        assert_eq!(r.verdict, StabilityVerdict::Stable);
    }

    #[test]
    fn decaying_backlog_is_stable() {
        let ts = series(|t| 1e6 / (1.0 + t), 300);
        let r = StabilityReport::classify(&ts, TrendConfig::default());
        assert_eq!(r.verdict, StabilityVerdict::Stable);
        assert!(r.slope_per_sec <= 0.0);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(StabilityVerdict::Stable.to_string(), "stable");
        assert_eq!(StabilityVerdict::Growing.to_string(), "growing");
    }
}
