//! Flow completion time statistics.

use dcn_types::{Bytes, FlowClass, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Exact percentile of a sample set with linear interpolation between order
/// statistics — the R-7 definition, which is numpy's *inclusive* default
/// (`numpy.percentile` with `method="linear"`; Hyndman & Fan type 7).
///
/// `p` is in `[0, 100]`. Returns `None` for an empty sample set. Sorts
/// `samples` in place; when taking several percentiles of the same data,
/// sort once and call [`percentile_sorted`] instead.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or NaN.
///
/// # Example
///
/// ```
/// use dcn_metrics::percentile;
/// let mut xs = vec![4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&mut xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&mut xs, 100.0), Some(4.0));
/// ```
pub fn percentile(samples: &mut [f64], p: f64) -> Option<f64> {
    samples.sort_unstable_by(f64::total_cmp);
    percentile_sorted(samples, p)
}

/// [`percentile`] over an **already sorted** (ascending) sample set,
/// skipping the sort. The caller owns the sort invariant; an unsorted
/// slice silently yields nonsense.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or NaN.
///
/// # Example
///
/// ```
/// use dcn_metrics::percentile_sorted;
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile_sorted(&xs, 50.0), Some(25.0));
/// ```
pub fn percentile_sorted(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if samples.is_empty() {
        return None;
    }
    let rank = p / 100.0 * (samples.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(samples[lo] + (samples[hi] - samples[lo]) * frac)
}

/// Summary statistics over a set of completed flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FctSummary {
    /// Number of completed flows.
    pub count: usize,
    /// Mean FCT in seconds.
    pub mean_secs: f64,
    /// Median FCT in seconds.
    pub p50_secs: f64,
    /// 99th-percentile FCT in seconds (the paper's tail metric).
    pub p99_secs: f64,
    /// Maximum FCT in seconds.
    pub max_secs: f64,
    /// Total bytes carried by the summarized flows.
    pub total_bytes: Bytes,
}

impl FctSummary {
    /// Mean FCT in milliseconds (the unit of the paper's Table I).
    pub fn mean_ms(&self) -> f64 {
        self.mean_secs * 1e3
    }

    /// 99th-percentile FCT in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_secs * 1e3
    }
}

/// Collects per-flow completion records and summarizes them per traffic
/// class, mirroring the paper's split between queries and background flows.
///
/// # Example
///
/// ```
/// use dcn_metrics::FctRecorder;
/// use dcn_types::{Bytes, FlowClass, SimTime};
///
/// let mut rec = FctRecorder::new();
/// rec.record(FlowClass::Query, Bytes::from_kb(20), SimTime::from_millis(1.0));
/// rec.record(FlowClass::Query, Bytes::from_kb(20), SimTime::from_millis(3.0));
/// let s = rec.summary(FlowClass::Query).unwrap();
/// assert_eq!(s.count, 2);
/// assert!((s.mean_ms() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FctRecorder {
    by_class: BTreeMap<FlowClass, ClassSamples>,
}

#[derive(Debug, Clone, Default)]
struct ClassSamples {
    fct_secs: Vec<f64>,
    total_bytes: Bytes,
}

impl FctRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FctRecorder::default()
    }

    /// Records the completion of a flow of `size` that took `fct`.
    ///
    /// # Panics
    ///
    /// Panics if `fct` is infinite (an unfinished flow must not be recorded).
    pub fn record(&mut self, class: FlowClass, size: Bytes, fct: SimTime) {
        assert!(!fct.is_infinite(), "cannot record an unfinished flow");
        let entry = self.by_class.entry(class).or_default();
        entry.fct_secs.push(fct.as_secs());
        entry.total_bytes += size;
    }

    /// Number of completions recorded for `class`.
    pub fn count(&self, class: FlowClass) -> usize {
        self.by_class.get(&class).map_or(0, |c| c.fct_secs.len())
    }

    /// Total completions across all classes.
    pub fn total_count(&self) -> usize {
        self.by_class.values().map(|c| c.fct_secs.len()).sum()
    }

    /// Summarizes one class; `None` if no flow of that class completed.
    pub fn summary(&self, class: FlowClass) -> Option<FctSummary> {
        let samples = self.by_class.get(&class)?;
        Some(Self::summarize(&samples.fct_secs, samples.total_bytes))
    }

    /// Summarizes all completions regardless of class.
    pub fn overall_summary(&self) -> Option<FctSummary> {
        let mut all: Vec<f64> = Vec::with_capacity(self.total_count());
        let mut bytes = Bytes::ZERO;
        for c in self.by_class.values() {
            all.extend_from_slice(&c.fct_secs);
            bytes += c.total_bytes;
        }
        if all.is_empty() {
            None
        } else {
            Some(Self::summarize(&all, bytes))
        }
    }

    fn summarize(fct_secs: &[f64], total_bytes: Bytes) -> FctSummary {
        let mut sorted = fct_secs.to_vec();
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        sorted.sort_unstable_by(f64::total_cmp);
        let p50 = percentile_sorted(&sorted, 50.0).expect("non-empty");
        let p99 = percentile_sorted(&sorted, 99.0).expect("non-empty");
        let max = *sorted.last().expect("non-empty");
        FctSummary {
            count,
            mean_secs: mean,
            p50_secs: p50,
            p99_secs: p99,
            max_secs: max,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edges() {
        let mut xs = vec![1.0];
        assert_eq!(percentile(&mut xs, 0.0), Some(1.0));
        assert_eq!(percentile(&mut xs, 99.0), Some(1.0));
        let mut empty: Vec<f64> = vec![];
        assert_eq!(percentile(&mut empty, 50.0), None);
    }

    #[test]
    fn percentile_interpolates() {
        let mut xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&mut xs, 25.0), Some(20.0));
        assert_eq!(percentile(&mut xs, 90.0), Some(46.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_rejects_out_of_range() {
        let mut xs = vec![1.0];
        let _ = percentile(&mut xs, 101.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let mut xs = vec![7.0, 1.0, 9.0, 4.0, 2.0, 8.0];
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        for p in [0.0, 12.5, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile(&mut xs, p), percentile_sorted(&sorted, p));
        }
        assert_eq!(percentile_sorted(&[], 50.0), None);
    }

    #[test]
    fn recorder_separates_classes() {
        let mut rec = FctRecorder::new();
        rec.record(
            FlowClass::Query,
            Bytes::from_kb(20),
            SimTime::from_millis(1.0),
        );
        rec.record(
            FlowClass::Background,
            Bytes::from_mb(5),
            SimTime::from_millis(100.0),
        );
        assert_eq!(rec.count(FlowClass::Query), 1);
        assert_eq!(rec.count(FlowClass::Background), 1);
        assert_eq!(rec.total_count(), 2);
        let q = rec.summary(FlowClass::Query).unwrap();
        assert!((q.mean_ms() - 1.0).abs() < 1e-12);
        assert_eq!(q.total_bytes, Bytes::from_kb(20));
        let overall = rec.overall_summary().unwrap();
        assert_eq!(overall.count, 2);
        assert_eq!(overall.total_bytes, Bytes::new(5_020_000));
    }

    #[test]
    fn empty_summaries_are_none() {
        let rec = FctRecorder::new();
        assert!(rec.summary(FlowClass::Query).is_none());
        assert!(rec.overall_summary().is_none());
    }

    #[test]
    fn p99_tracks_tail() {
        let mut rec = FctRecorder::new();
        for i in 1..=100 {
            rec.record(
                FlowClass::Query,
                Bytes::from_kb(20),
                SimTime::from_millis(i as f64),
            );
        }
        let s = rec.summary(FlowClass::Query).unwrap();
        assert!((s.p99_ms() - 99.01).abs() < 0.02, "p99 = {}", s.p99_ms());
        assert!((s.mean_ms() - 50.5).abs() < 1e-9);
        assert_eq!(s.max_secs, 0.1);
        assert!((s.p50_secs - 0.0505).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unfinished")]
    fn infinite_fct_rejected() {
        let mut rec = FctRecorder::new();
        rec.record(FlowClass::Query, Bytes::from_kb(20), SimTime::INFINITY);
    }
}
