//! Measurement and analysis utilities for the BASRPT reproduction.
//!
//! The paper's evaluation (§V-A) reports three families of metrics, each of
//! which has a dedicated module here:
//!
//! * **Flow completion time** ([`FctRecorder`], [`FctSummary`]) — mean and
//!   99th-percentile FCT, reported separately for query and background
//!   flows (Table I, Figs. 6 and 8).
//! * **Throughput** ([`ThroughputMeter`]) — total bytes leaving the fabric
//!   over the run (Figs. 5a, 6c, 7a).
//! * **Queue-length evolution** ([`TimeSeries`], [`StabilityReport`]) —
//!   per-port backlog sampled over the run and a trend-based stability
//!   verdict reproducing the paper's "keeps growing in macroscale ⇒
//!   unstable" judgement (Figs. 2, 5b, 7b).
//!
//! Plus [`TextTable`], a small fixed-width table renderer used by the bench
//! harness to print paper-style tables.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod buckets;
pub mod csv;
mod fct;
mod stability;
mod table;
mod throughput;
mod timeseries;

pub use buckets::{SizeBucket, SizeBucketRecorder};
pub use fct::{percentile, percentile_sorted, FctRecorder, FctSummary};
pub use stability::{StabilityReport, StabilityVerdict, TrendConfig};
pub use table::TextTable;
pub use throughput::ThroughputMeter;
pub use timeseries::TimeSeries;
