//! Minimal CSV export for run artifacts.
//!
//! The workspace deliberately avoids serialization-format dependencies;
//! this module hand-writes RFC-4180-compatible CSV so downstream users can
//! load time series and summaries into pandas/gnuplot/Excel directly.

use crate::{FctSummary, TimeSeries};
use std::io::{self, Write};

/// Quotes a CSV cell if it contains a separator, quote or newline.
fn cell(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes one CSV row.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_row<W: Write>(w: &mut W, cells: &[&str]) -> io::Result<()> {
    let line: Vec<String> = cells.iter().map(|c| cell(c)).collect();
    writeln!(w, "{}", line.join(","))
}

/// Writes a time series as `time_secs,value` rows with a header.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Example
///
/// ```
/// use dcn_metrics::{csv, TimeSeries};
/// let mut ts = TimeSeries::new();
/// ts.push(0.0, 1.0);
/// ts.push(1.0, 2.0);
/// let mut out = Vec::new();
/// csv::write_time_series(&mut out, "backlog_bytes", &ts)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("time_secs,backlog_bytes\n"));
/// assert_eq!(text.lines().count(), 3);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_time_series<W: Write>(
    w: &mut W,
    value_name: &str,
    series: &TimeSeries,
) -> io::Result<()> {
    write_row(w, &["time_secs", value_name])?;
    for (t, v) in series.times().iter().zip(series.values()) {
        write_row(w, &[&format!("{t}"), &format!("{v}")])?;
    }
    Ok(())
}

/// Writes labeled FCT summaries as one row per label.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_fct_summaries<W: Write>(w: &mut W, rows: &[(&str, FctSummary)]) -> io::Result<()> {
    write_row(
        w,
        &[
            "label",
            "count",
            "mean_ms",
            "p50_ms",
            "p99_ms",
            "max_ms",
            "total_bytes",
        ],
    )?;
    for (label, s) in rows {
        write_row(
            w,
            &[
                label,
                &s.count.to_string(),
                &format!("{}", s.mean_secs * 1e3),
                &format!("{}", s.p50_secs * 1e3),
                &format!("{}", s.p99_secs * 1e3),
                &format!("{}", s.max_secs * 1e3),
                &s.total_bytes.as_u64().to_string(),
            ],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_types::Bytes;

    #[test]
    fn cells_are_quoted_when_needed() {
        let mut out = Vec::new();
        write_row(&mut out, &["a,b", "plain", "has \"quote\""]).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "\"a,b\",plain,\"has \"\"quote\"\"\"\n"
        );
    }

    #[test]
    fn time_series_roundtrip_shape() {
        let mut ts = TimeSeries::new();
        ts.push(0.5, 10.0);
        ts.push(1.5, 20.0);
        let mut out = Vec::new();
        write_time_series(&mut out, "v", &ts).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["time_secs,v", "0.5,10", "1.5,20"]);
    }

    #[test]
    fn fct_summary_rows() {
        let s = FctSummary {
            count: 3,
            mean_secs: 0.001,
            p50_secs: 0.001,
            p99_secs: 0.002,
            max_secs: 0.002,
            total_bytes: Bytes::from_kb(60),
        };
        let mut out = Vec::new();
        write_fct_summaries(&mut out, &[("query", s)]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("query,3,1,1,2,2,60000"));
    }
}
