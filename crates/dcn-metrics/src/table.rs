//! Plain-text table rendering for experiment output.

use std::fmt;

/// A fixed-width text table: header row plus data rows, rendered with
/// column-wise alignment. The bench harness uses it to print paper-style
/// tables (e.g. Table I) to stdout.
///
/// # Example
///
/// ```
/// use dcn_metrics::TextTable;
/// let mut t = TextTable::new(vec!["scheme".into(), "avg FCT (ms)".into()]);
/// t.add_row(vec!["SRPT".into(), "1.20".into()]);
/// t.add_row(vec!["fast BASRPT".into(), "2.10".into()]);
/// let s = t.to_string();
/// assert!(s.contains("SRPT"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}", w = *w)?;
                first = false;
            }
            writeln!(f)
        };
        render(f, &self.header)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "metric".into()]);
        t.add_row(vec!["longer-cell".into(), "1".into()]);
        t.add_row(vec!["x".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rendered lines share the same width of the widest row.
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("longer-cell"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }
}
