//! FCT statistics broken down by flow-size bucket.

use crate::{percentile_sorted, FctSummary};
use dcn_types::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open size range `(lo, hi]` used to group completed flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeBucket {
    lo: Bytes,
    hi: Bytes,
}

impl SizeBucket {
    /// Creates the bucket `(lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: Bytes, hi: Bytes) -> Self {
        assert!(lo < hi, "bucket must satisfy lo < hi");
        SizeBucket { lo, hi }
    }

    /// Lower bound (exclusive).
    pub fn lo(&self) -> Bytes {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> Bytes {
        self.hi
    }

    /// Whether a flow of `size` falls in this bucket.
    pub fn contains(&self, size: Bytes) -> bool {
        size > self.lo && size <= self.hi
    }
}

impl fmt::Display for SizeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.lo, self.hi)
    }
}

/// Collects FCT samples into contiguous size buckets — the breakdown
/// pFabric uses to show that SRPT-style disciplines serve short flows at
/// near line rate while the paper's point is what happens to the *rest*.
///
/// # Example
///
/// ```
/// use dcn_metrics::SizeBucketRecorder;
/// use dcn_types::{Bytes, SimTime};
///
/// let mut rec = SizeBucketRecorder::pfabric_buckets();
/// rec.record(Bytes::from_kb(20), SimTime::from_micros(20.0));
/// rec.record(Bytes::from_mb(5), SimTime::from_millis(6.0));
/// let rows = rec.summaries();
/// assert_eq!(rows.len(), 3);
/// assert_eq!(rows[0].1.unwrap().count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SizeBucketRecorder {
    buckets: Vec<SizeBucket>,
    samples: Vec<Vec<f64>>,
    bytes: Vec<Bytes>,
}

impl SizeBucketRecorder {
    /// Creates a recorder over the given buckets (kept in the given order;
    /// a flow lands in the first bucket that contains it).
    ///
    /// # Panics
    ///
    /// Panics if no bucket is supplied.
    pub fn new(buckets: Vec<SizeBucket>) -> Self {
        assert!(!buckets.is_empty(), "need at least one bucket");
        let n = buckets.len();
        SizeBucketRecorder {
            buckets,
            samples: vec![Vec::new(); n],
            bytes: vec![Bytes::ZERO; n],
        }
    }

    /// The three-bucket split of the pFabric evaluation:
    /// `(0, 100 KB]`, `(100 KB, 10 MB]`, `(10 MB, 1 GB]`.
    pub fn pfabric_buckets() -> Self {
        SizeBucketRecorder::new(vec![
            SizeBucket::new(Bytes::ZERO, Bytes::from_kb(100)),
            SizeBucket::new(Bytes::from_kb(100), Bytes::from_mb(10)),
            SizeBucket::new(Bytes::from_mb(10), Bytes::from_gb(1)),
        ])
    }

    /// Records one completion; flows larger than every bucket are dropped
    /// (callers choose buckets that cover their size domain).
    pub fn record(&mut self, size: Bytes, fct: dcn_types::SimTime) {
        if let Some(i) = self.buckets.iter().position(|b| b.contains(size)) {
            self.samples[i].push(fct.as_secs());
            self.bytes[i] += size;
        }
    }

    /// Per-bucket summaries, in bucket order (`None` for empty buckets).
    pub fn summaries(&self) -> Vec<(SizeBucket, Option<FctSummary>)> {
        self.buckets
            .iter()
            .zip(&self.samples)
            .zip(&self.bytes)
            .map(|((bucket, fcts), &bytes)| {
                if fcts.is_empty() {
                    (*bucket, None)
                } else {
                    let mut sorted = fcts.clone();
                    let count = sorted.len();
                    let mean = sorted.iter().sum::<f64>() / count as f64;
                    sorted.sort_unstable_by(f64::total_cmp);
                    let p50 = percentile_sorted(&sorted, 50.0).expect("non-empty");
                    let p99 = percentile_sorted(&sorted, 99.0).expect("non-empty");
                    let max = *sorted.last().expect("non-empty");
                    (
                        *bucket,
                        Some(FctSummary {
                            count,
                            mean_secs: mean,
                            p50_secs: p50,
                            p99_secs: p99,
                            max_secs: max,
                            total_bytes: bytes,
                        }),
                    )
                }
            })
            .collect()
    }

    /// Total recorded completions across buckets.
    pub fn total_count(&self) -> usize {
        self.samples.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_types::SimTime;

    #[test]
    fn bucket_membership_is_half_open() {
        let b = SizeBucket::new(Bytes::from_kb(100), Bytes::from_mb(10));
        assert!(!b.contains(Bytes::from_kb(100)));
        assert!(b.contains(Bytes::new(100_001)));
        assert!(b.contains(Bytes::from_mb(10)));
        assert!(!b.contains(Bytes::new(10_000_001)));
        assert_eq!(b.to_string(), "(100.00 KB, 10.00 MB]");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_bucket_rejected() {
        let _ = SizeBucket::new(Bytes::from_mb(1), Bytes::from_kb(1));
    }

    #[test]
    fn records_land_in_the_right_bucket() {
        let mut rec = SizeBucketRecorder::pfabric_buckets();
        rec.record(Bytes::from_kb(20), SimTime::from_micros(16.0));
        rec.record(Bytes::from_kb(20), SimTime::from_micros(32.0));
        rec.record(Bytes::from_mb(1), SimTime::from_millis(1.0));
        rec.record(Bytes::from_mb(50), SimTime::from_millis(80.0));
        // Outside all buckets: silently dropped.
        rec.record(Bytes::from_gb(2), SimTime::from_secs(2.0));
        assert_eq!(rec.total_count(), 4);

        let rows = rec.summaries();
        let small = rows[0].1.unwrap();
        assert_eq!(small.count, 2);
        assert!((small.mean_secs - 24e-6).abs() < 1e-12);
        assert_eq!(rows[1].1.unwrap().count, 1);
        assert_eq!(rows[2].1.unwrap().count, 1);
        assert_eq!(small.total_bytes, Bytes::from_kb(40));
    }

    #[test]
    fn empty_buckets_are_none() {
        let rec = SizeBucketRecorder::pfabric_buckets();
        assert!(rec.summaries().iter().all(|(_, s)| s.is_none()));
        assert_eq!(rec.total_count(), 0);
    }
}
