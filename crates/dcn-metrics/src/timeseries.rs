//! Sampled time series (queue lengths, cumulative throughput).

use serde::{Deserialize, Serialize};

/// A time series of `(time_secs, value)` samples with non-decreasing times.
///
/// Used for the queue-length and cumulative-throughput traces of the
/// paper's Figs. 2, 5 and 7, and as the input to stability classification.
///
/// # Example
///
/// ```
/// use dcn_metrics::TimeSeries;
/// let mut ts = TimeSeries::new();
/// ts.push(0.0, 1.0);
/// ts.push(1.0, 3.0);
/// ts.push(2.0, 5.0);
/// assert_eq!(ts.len(), 3);
/// assert!((ts.slope().unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if inputs are NaN or if `time_secs` precedes the last sample.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        assert!(!time_secs.is_nan() && !value.is_nan(), "NaN sample");
        if let Some(&last) = self.times.last() {
            assert!(
                time_secs >= last,
                "samples must be time-ordered: {time_secs} < {last}"
            );
        }
        self.times.push(time_secs);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// The largest value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean of all values; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Least-squares slope of value against time, in value-units per
    /// second; `None` with fewer than two samples or zero time spread.
    pub fn slope(&self) -> Option<f64> {
        if self.len() < 2 {
            return None;
        }
        let n = self.len() as f64;
        let mean_t = self.times.iter().sum::<f64>() / n;
        let mean_v = self.values.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (t, v) in self.times.iter().zip(&self.values) {
            cov += (t - mean_t) * (v - mean_v);
            var += (t - mean_t) * (t - mean_t);
        }
        if var == 0.0 {
            None
        } else {
            Some(cov / var)
        }
    }

    /// The suffix of the series starting at fraction `from` of its time
    /// span (e.g. `0.5` = second half). Used to judge long-run trends while
    /// ignoring the warm-up transient.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not within `[0, 1]`.
    pub fn tail(&self, from: f64) -> TimeSeries {
        assert!((0.0..=1.0).contains(&from), "fraction must be in [0,1]");
        if self.is_empty() {
            return TimeSeries::new();
        }
        let t0 = self.times[0];
        let t1 = *self.times.last().expect("non-empty");
        let cut = t0 + (t1 - t0) * from;
        let start = self.times.partition_point(|&t| t < cut);
        TimeSeries {
            times: self.times[start..].to_vec(),
            values: self.values[start..].to_vec(),
        }
    }

    /// Downsamples to at most `max_points` evenly spaced samples (for
    /// printing series in the bench harness).
    ///
    /// # Panics
    ///
    /// Panics if `max_points` is zero.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        assert!(max_points > 0, "max_points must be positive");
        if self.len() <= max_points {
            return self.clone();
        }
        let mut out = TimeSeries::new();
        for i in 0..max_points {
            let idx = i * (self.len() - 1) / (max_points - 1).max(1);
            out.push(self.times[idx], self.values[idx]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(n: usize, a: f64, b: f64) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..n {
            let t = i as f64;
            ts.push(t, a * t + b);
        }
        ts
    }

    #[test]
    fn slope_recovers_linear_trend() {
        let ts = linear(100, 3.5, -2.0);
        assert!((ts.slope().unwrap() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn slope_of_flat_series_is_zero() {
        let ts = linear(50, 0.0, 7.0);
        assert!(ts.slope().unwrap().abs() < 1e-12);
        assert_eq!(ts.mean(), Some(7.0));
        assert_eq!(ts.max_value(), Some(7.0));
        assert_eq!(ts.last_value(), Some(7.0));
    }

    #[test]
    fn insufficient_samples_give_none() {
        let mut ts = TimeSeries::new();
        assert!(ts.slope().is_none());
        assert!(ts.mean().is_none());
        assert!(ts.max_value().is_none());
        ts.push(1.0, 2.0);
        assert!(ts.slope().is_none());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(2.0, 1.0);
        ts.push(1.0, 1.0);
    }

    #[test]
    fn tail_selects_suffix() {
        let ts = linear(10, 1.0, 0.0);
        let tail = ts.tail(0.5);
        assert_eq!(tail.len(), 5); // times 4.5..9 -> samples at 5..9... partition on 4.5
        assert_eq!(tail.times()[0], 5.0);
        assert!(ts.tail(0.0).len() == 10);
        assert!(ts.tail(1.0).len() == 1);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let ts = linear(1000, 2.0, 1.0);
        let d = ts.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.times()[0], 0.0);
        assert_eq!(*d.times().last().unwrap(), 999.0);
        // Small series pass through unchanged.
        assert_eq!(ts.downsample(5000), ts);
    }

    #[test]
    fn equal_times_are_allowed() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 1.0);
        ts.push(1.0, 2.0);
        assert_eq!(ts.len(), 2);
        assert!(ts.slope().is_none()); // zero time variance
    }
}
