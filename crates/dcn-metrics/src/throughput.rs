//! Global throughput accounting.

use dcn_types::{Bytes, Rate, SimTime};
use serde::{Deserialize, Serialize};

/// Counts bytes leaving the fabric, the paper's throughput metric:
/// "calculated globally in bytes, counting the total data volume leaving
/// the fabric during the whole simulation period" (§V-A). Packets still in
/// flight at the end of a run are *not* counted — that difference is
/// exactly the bandwidth an unstable discipline wastes.
///
/// # Example
///
/// ```
/// use dcn_metrics::ThroughputMeter;
/// use dcn_types::{Bytes, SimTime};
///
/// let mut m = ThroughputMeter::new();
/// m.deliver(Bytes::from_mb(10));
/// m.deliver(Bytes::from_mb(10));
/// assert_eq!(m.delivered(), Bytes::from_mb(20));
/// let avg = m.average_rate(SimTime::from_secs(2.0));
/// assert!((avg.gbps() - 0.08).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    delivered: Bytes,
}

impl ThroughputMeter {
    /// Creates a meter with nothing delivered.
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Accounts `bytes` as having left the fabric.
    pub fn deliver(&mut self, bytes: Bytes) {
        self.delivered += bytes;
    }

    /// Total bytes delivered so far.
    pub fn delivered(&self) -> Bytes {
        self.delivered
    }

    /// Average delivery rate over an elapsed duration.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero or infinite.
    pub fn average_rate(&self, elapsed: SimTime) -> Rate {
        assert!(
            elapsed > SimTime::ZERO && !elapsed.is_infinite(),
            "elapsed must be positive and finite"
        );
        Rate::from_bytes_per_sec(self.delivered.as_f64() / elapsed.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = ThroughputMeter::new();
        assert_eq!(m.delivered(), Bytes::ZERO);
        m.deliver(Bytes::new(100));
        m.deliver(Bytes::new(150));
        assert_eq!(m.delivered(), Bytes::new(250));
    }

    #[test]
    fn average_rate_math() {
        let mut m = ThroughputMeter::new();
        m.deliver(Bytes::from_gb(1));
        let r = m.average_rate(SimTime::from_secs(1.0));
        assert!((r.gbps() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_elapsed_panics() {
        let m = ThroughputMeter::new();
        let _ = m.average_rate(SimTime::ZERO);
    }
}
