//! The paper's query/background traffic pattern and its flow generator.

use crate::{EmpiricalCdf, PoissonProcess, WorkloadError};
use dcn_types::{Bytes, FlowClass, FlowId, HostId, RackId, Rate, SimTime, Voq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Destination scope of the query population.
///
/// The paper draws query destinations uniformly over **all** other hosts
/// ([`QueryScope::Fabric`]). Narrower scopes keep queries inside the
/// source's rack or cluster of racks, which makes the workload
/// *rack-separable*: no flow connects two clusters, so the sharded fabric
/// engine (`dcn-fabric`) can partition one run into independent
/// per-cluster sub-simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QueryScope {
    /// Uniform over all other hosts of the fabric (the paper's pattern).
    #[default]
    Fabric,
    /// Uniform over the other hosts of the source's rack.
    Rack,
    /// Uniform over the other hosts of the source's cluster of this many
    /// consecutive racks (must divide the rack count).
    Cluster(u32),
}

/// One generated flow arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowArrival {
    /// Identifier, strictly increasing with arrival order.
    pub id: FlowId,
    /// Arrival instant.
    pub time: SimTime,
    /// Source/destination pair (the VOQ the flow joins).
    pub voq: Voq,
    /// Flow size in bytes.
    pub size: Bytes,
    /// Traffic class (query or background).
    pub class: FlowClass,
}

/// Configuration of the paper's two-population workload (§V-A), calibrated
/// to a target per-port load.
///
/// Each host runs two independent Poisson sources:
///
/// * queries of fixed [`TrafficSpec::query_size`], destination uniform over
///   all *other* hosts;
/// * background flows with sizes from
///   [`TrafficSpec::background_sizes`], destination uniform over the other
///   hosts of the *same rack*.
///
/// Arrival rates are derived so each ingress port offers
/// `load × edge_rate` bytes per second, split `query_fraction` /
/// `1 − query_fraction` between the two populations. By symmetry (uniform
/// destinations within scope) the expected egress load per port equals the
/// ingress load, which is how the paper "carefully controls the volume
/// between each server pair so that the workload on each port does not
/// exceed link capacity".
///
/// # Example
///
/// ```
/// use dcn_workload::TrafficSpec;
/// let spec = TrafficSpec::paper_default(0.8)?;
/// assert_eq!(spec.num_hosts(), 144);
/// // Offered ≈ 8 Gbps of the 10 Gbps edge.
/// assert!((spec.offered_bytes_per_sec() - 1e9).abs() < 1e-6);
/// # Ok::<(), dcn_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    num_racks: u32,
    hosts_per_rack: u32,
    edge_rate: Rate,
    load: f64,
    query_fraction: f64,
    query_size: Bytes,
    background_sizes: EmpiricalCdf,
    #[serde(default)]
    query_scope: QueryScope,
}

impl TrafficSpec {
    /// Fraction of offered bytes carried by queries in
    /// [`TrafficSpec::paper_default`]. The paper does not publish its split;
    /// 10 % queries / 90 % background matches the "numerous small queries,
    /// byte volume dominated by background transfers" description.
    pub const DEFAULT_QUERY_FRACTION: f64 = 0.1;

    /// Builds a fully custom specification.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if any dimension is zero, the
    /// load is not in `(0, ∞)` (loads ≥ 1 violate the admissibility
    /// condition (2) and are only useful for overload experiments), the
    /// query fraction is outside `[0, 1]`, or a population has no valid
    /// destination (queries need ≥ 2 hosts, background needs ≥ 2 hosts per
    /// rack).
    pub fn new(
        num_racks: u32,
        hosts_per_rack: u32,
        edge_rate: Rate,
        load: f64,
        query_fraction: f64,
        query_size: Bytes,
        background_sizes: EmpiricalCdf,
    ) -> Result<Self, WorkloadError> {
        let invalid = |msg: String| Err(WorkloadError::InvalidSpec(msg));
        if num_racks == 0 || hosts_per_rack == 0 {
            return invalid("topology must have at least one rack and host".into());
        }
        if edge_rate.is_zero() {
            return invalid("edge rate must be positive".into());
        }
        if !load.is_finite() || load <= 0.0 {
            return invalid(format!("load must be positive and finite, got {load}"));
        }
        if !(0.0..=1.0).contains(&query_fraction) {
            return invalid(format!(
                "query fraction must be in [0, 1], got {query_fraction}"
            ));
        }
        if query_size.is_zero() {
            return invalid("query size must be positive".into());
        }
        if query_fraction > 0.0 && u64::from(num_racks) * u64::from(hosts_per_rack) < 2 {
            return invalid("queries need at least two hosts".into());
        }
        if query_fraction < 1.0 && hosts_per_rack < 2 {
            return invalid("rack-local background flows need at least two hosts per rack".into());
        }
        Ok(TrafficSpec {
            num_racks,
            hosts_per_rack,
            edge_rate,
            load,
            query_fraction,
            query_size,
            background_sizes,
            query_scope: QueryScope::Fabric,
        })
    }

    /// The paper's configuration: 12 racks × 12 hosts behind 10 Gbps edge
    /// links, 20 KB queries ([`TrafficSpec::DEFAULT_QUERY_FRACTION`] of the
    /// bytes) over the web-search background distribution, at the given
    /// per-port `load` fraction.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if `load` is not positive and
    /// finite.
    pub fn paper_default(load: f64) -> Result<Self, WorkloadError> {
        TrafficSpec::new(
            12,
            12,
            Rate::from_gbps(10.0),
            load,
            Self::DEFAULT_QUERY_FRACTION,
            Bytes::from_kb(20),
            EmpiricalCdf::web_search(),
        )
    }

    /// A scaled-down topology with the same per-port dynamics, for fast
    /// tests and default bench runs: `num_racks` racks of `hosts_per_rack`
    /// hosts, everything else as in [`TrafficSpec::paper_default`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] on invalid dimensions or load.
    pub fn scaled(num_racks: u32, hosts_per_rack: u32, load: f64) -> Result<Self, WorkloadError> {
        TrafficSpec::new(
            num_racks,
            hosts_per_rack,
            Rate::from_gbps(10.0),
            load,
            Self::DEFAULT_QUERY_FRACTION,
            Bytes::from_kb(20),
            EmpiricalCdf::web_search(),
        )
    }

    /// Replaces the query byte-share (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if the fraction is invalid for
    /// this topology.
    pub fn with_query_fraction(mut self, query_fraction: f64) -> Result<Self, WorkloadError> {
        self.query_fraction = query_fraction;
        TrafficSpec::new(
            self.num_racks,
            self.hosts_per_rack,
            self.edge_rate,
            self.load,
            query_fraction,
            self.query_size,
            self.background_sizes,
        )
    }

    /// Replaces the background size distribution (builder style).
    pub fn with_background_sizes(mut self, cdf: EmpiricalCdf) -> Self {
        self.background_sizes = cdf;
        self
    }

    /// Replaces the query destination scope (builder style). The default,
    /// [`QueryScope::Fabric`], is the paper's fabric-wide pattern and
    /// leaves the generator's random draw sequence untouched.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if the scope has no valid
    /// destination for this topology (a rack scope needs ≥ 2 hosts per
    /// rack; a cluster scope needs a positive rack count per cluster that
    /// divides the total rack count).
    pub fn with_query_scope(mut self, scope: QueryScope) -> Result<Self, WorkloadError> {
        let invalid = |msg: String| Err(WorkloadError::InvalidSpec(msg));
        match scope {
            QueryScope::Fabric => {}
            QueryScope::Rack => {
                if self.query_fraction > 0.0 && self.hosts_per_rack < 2 {
                    return invalid("rack-scoped queries need at least two hosts per rack".into());
                }
            }
            QueryScope::Cluster(racks) => {
                if racks == 0 || !self.num_racks.is_multiple_of(racks) {
                    return invalid(format!(
                        "cluster size {racks} must be positive and divide the {} racks",
                        self.num_racks
                    ));
                }
                if self.query_fraction > 0.0 && racks * self.hosts_per_rack < 2 {
                    return invalid("cluster-scoped queries need at least two hosts".into());
                }
            }
        }
        self.query_scope = scope;
        Ok(self)
    }

    /// Number of racks.
    pub fn num_racks(&self) -> u32 {
        self.num_racks
    }

    /// Hosts per rack.
    pub fn hosts_per_rack(&self) -> u32 {
        self.hosts_per_rack
    }

    /// Total number of hosts.
    pub fn num_hosts(&self) -> u32 {
        self.num_racks * self.hosts_per_rack
    }

    /// The edge (host NIC) rate.
    pub fn edge_rate(&self) -> Rate {
        self.edge_rate
    }

    /// The target per-port load fraction.
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Fraction of offered bytes carried by queries.
    pub fn query_fraction(&self) -> f64 {
        self.query_fraction
    }

    /// The fixed query size.
    pub fn query_size(&self) -> Bytes {
        self.query_size
    }

    /// The background flow-size distribution.
    pub fn background_sizes(&self) -> &EmpiricalCdf {
        &self.background_sizes
    }

    /// The query destination scope.
    pub fn query_scope(&self) -> QueryScope {
        self.query_scope
    }

    /// The rack a host belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the host is outside the topology.
    pub fn rack_of(&self, host: HostId) -> RackId {
        assert!(host.index() < self.num_hosts(), "host {host} out of range");
        RackId::new(host.index() / self.hosts_per_rack)
    }

    /// Offered bytes per second per ingress port (`load × edge_rate`).
    pub fn offered_bytes_per_sec(&self) -> f64 {
        self.load * self.edge_rate.bytes_per_sec()
    }

    /// Expected query arrivals per host per second.
    pub fn query_rate_per_host(&self) -> f64 {
        self.offered_bytes_per_sec() * self.query_fraction / self.query_size.as_f64()
    }

    /// Expected background arrivals per host per second.
    pub fn background_rate_per_host(&self) -> f64 {
        self.offered_bytes_per_sec() * (1.0 - self.query_fraction) / self.background_sizes.mean()
    }

    /// Builds the deterministic, endless arrival stream for this spec.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if both populations have zero
    /// rate (nothing would ever arrive).
    pub fn generator(&self, seed: u64) -> Result<FlowGenerator, WorkloadError> {
        FlowGenerator::new(self.clone(), seed)
    }
}

/// Which population a pending per-host arrival belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Population {
    Query,
    Background,
}

/// An endless, deterministic stream of [`FlowArrival`]s merging every
/// host's query and background Poisson processes in time order.
///
/// Flow ids are assigned in strictly increasing arrival order (FIFO
/// scheduling relies on this). The stream never ends; consumers stop by
/// bounding simulated time.
///
/// # Example
///
/// ```
/// use dcn_workload::TrafficSpec;
/// let mut gen = TrafficSpec::scaled(2, 3, 0.5)?.generator(7)?;
/// let a = gen.next().unwrap();
/// let b = gen.next().unwrap();
/// assert!(a.time <= b.time);
/// assert!(a.id < b.id);
/// # Ok::<(), dcn_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowGenerator {
    spec: TrafficSpec,
    rng: StdRng,
    pending: BinaryHeap<Reverse<(SimTime, u32, Population)>>,
    query_process: Option<PoissonProcess>,
    background_process: Option<PoissonProcess>,
    next_id: u64,
}

impl FlowGenerator {
    fn new(spec: TrafficSpec, seed: u64) -> Result<Self, WorkloadError> {
        let query_process = if spec.query_fraction > 0.0 {
            Some(PoissonProcess::new(spec.query_rate_per_host()))
        } else {
            None
        };
        let background_process = if spec.query_fraction < 1.0 {
            Some(PoissonProcess::new(spec.background_rate_per_host()))
        } else {
            None
        };
        if query_process.is_none() && background_process.is_none() {
            return Err(WorkloadError::InvalidSpec(
                "both populations have zero rate".into(),
            ));
        }
        let mut gen = FlowGenerator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            pending: BinaryHeap::new(),
            query_process,
            background_process,
            next_id: 0,
        };
        // Seed each host's first arrival of each active population.
        for host in 0..gen.spec.num_hosts() {
            if let Some(p) = gen.query_process {
                let t = SimTime::ZERO + p.next_gap(&mut gen.rng);
                gen.pending.push(Reverse((t, host, Population::Query)));
            }
            if let Some(p) = gen.background_process {
                let t = SimTime::ZERO + p.next_gap(&mut gen.rng);
                gen.pending.push(Reverse((t, host, Population::Background)));
            }
        }
        Ok(gen)
    }

    /// The specification this generator was built from.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Uniformly draws a destination different from `src` within
    /// `[base, base + span)`.
    fn pick_dst(&mut self, src: u32, base: u32, span: u32) -> HostId {
        debug_assert!(span >= 2, "validated at spec construction");
        let offset_src = src - base;
        let raw = self.rng.gen_range(0..span - 1);
        let offset = if raw >= offset_src { raw + 1 } else { raw };
        HostId::new(base + offset)
    }
}

impl Iterator for FlowGenerator {
    type Item = FlowArrival;

    fn next(&mut self) -> Option<FlowArrival> {
        let Reverse((time, host, population)) = self.pending.pop()?;
        let src = HostId::new(host);
        let (dst, size, class, process) = match population {
            Population::Query => {
                let (base, span) = match self.spec.query_scope {
                    QueryScope::Fabric => (0, self.spec.num_hosts()),
                    QueryScope::Rack => (
                        self.spec.rack_of(src).index() * self.spec.hosts_per_rack,
                        self.spec.hosts_per_rack,
                    ),
                    QueryScope::Cluster(racks) => {
                        let cluster = self.spec.rack_of(src).index() / racks;
                        (
                            cluster * racks * self.spec.hosts_per_rack,
                            racks * self.spec.hosts_per_rack,
                        )
                    }
                };
                let dst = self.pick_dst(host, base, span);
                (
                    dst,
                    self.spec.query_size,
                    FlowClass::Query,
                    self.query_process.expect("query arrival implies process"),
                )
            }
            Population::Background => {
                let rack_base = self.spec.rack_of(src).index() * self.spec.hosts_per_rack;
                let dst = self.pick_dst(host, rack_base, self.spec.hosts_per_rack);
                let size = self.spec.background_sizes.sample(&mut self.rng);
                (
                    dst,
                    size,
                    FlowClass::Background,
                    self.background_process
                        .expect("background arrival implies process"),
                )
            }
        };
        // Schedule this host/population's next arrival.
        let next_time = time + process.next_gap(&mut self.rng);
        self.pending.push(Reverse((next_time, host, population)));

        let id = FlowId::new(self.next_id);
        self.next_id += 1;
        Some(FlowArrival {
            id,
            time,
            voq: Voq::new(src, dst),
            size,
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_dimensions() {
        let spec = TrafficSpec::paper_default(0.95).unwrap();
        assert_eq!(spec.num_hosts(), 144);
        assert_eq!(spec.num_racks(), 12);
        assert_eq!(spec.hosts_per_rack(), 12);
        assert_eq!(spec.query_size(), Bytes::from_kb(20));
        assert!((spec.edge_rate().gbps() - 10.0).abs() < 1e-9);
        assert_eq!(spec.rack_of(HostId::new(0)), RackId::new(0));
        assert_eq!(spec.rack_of(HostId::new(143)), RackId::new(11));
        assert_eq!(spec.rack_of(HostId::new(12)), RackId::new(1));
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(TrafficSpec::paper_default(0.0).is_err());
        assert!(TrafficSpec::paper_default(f64::NAN).is_err());
        assert!(TrafficSpec::scaled(0, 4, 0.5).is_err());
        // Single-host racks cannot host rack-local background flows.
        assert!(TrafficSpec::scaled(4, 1, 0.5).is_err());
        // ...unless the workload is queries only.
        let queries_only = TrafficSpec::new(
            4,
            1,
            Rate::from_gbps(10.0),
            0.5,
            1.0,
            Bytes::from_kb(20),
            EmpiricalCdf::web_search(),
        );
        assert!(queries_only.is_ok());
        let bad_fraction = TrafficSpec::paper_default(0.5)
            .unwrap()
            .with_query_fraction(1.5);
        assert!(bad_fraction.is_err());
    }

    #[test]
    fn rates_recover_offered_load() {
        let spec = TrafficSpec::paper_default(0.8).unwrap();
        let offered = spec.offered_bytes_per_sec();
        let recovered = spec.query_rate_per_host() * spec.query_size().as_f64()
            + spec.background_rate_per_host() * spec.background_sizes().mean();
        assert!((offered - recovered).abs() / offered < 1e-12);
        assert!((offered - 0.8 * 1.25e9).abs() < 1e-3);
    }

    #[test]
    fn arrivals_are_time_ordered_with_increasing_ids() {
        let mut gen = TrafficSpec::scaled(2, 4, 0.7)
            .unwrap()
            .generator(1)
            .unwrap();
        let mut last_time = SimTime::ZERO;
        let mut last_id = None;
        for _ in 0..2_000 {
            let a = gen.next().unwrap();
            assert!(a.time >= last_time);
            if let Some(prev) = last_id {
                assert!(a.id > prev);
            }
            last_time = a.time;
            last_id = Some(a.id);
        }
    }

    #[test]
    fn destinations_respect_class_scopes() {
        let spec = TrafficSpec::scaled(3, 4, 0.7).unwrap();
        let mut gen = spec.generator(2).unwrap();
        for _ in 0..5_000 {
            let a = gen.next().unwrap();
            assert_ne!(a.voq.src(), a.voq.dst(), "no self-loops");
            match a.class {
                FlowClass::Background => {
                    assert_eq!(
                        spec.rack_of(a.voq.src()),
                        spec.rack_of(a.voq.dst()),
                        "background flows stay in-rack"
                    );
                    assert!(a.size >= spec.background_sizes().min_size());
                }
                FlowClass::Query => {
                    assert_eq!(a.size, spec.query_size());
                }
            }
        }
    }

    #[test]
    fn query_destinations_leave_the_rack() {
        let spec = TrafficSpec::scaled(4, 3, 0.7).unwrap();
        let mut gen = spec.generator(3).unwrap();
        let mut crossed = false;
        for _ in 0..2_000 {
            let a = gen.next().unwrap();
            if a.class == FlowClass::Query && spec.rack_of(a.voq.src()) != spec.rack_of(a.voq.dst())
            {
                crossed = true;
                break;
            }
        }
        assert!(crossed, "queries should cross racks");
    }

    #[test]
    fn generated_load_matches_target() {
        let spec = TrafficSpec::scaled(2, 6, 0.6).unwrap();
        let mut gen = spec.generator(4).unwrap();
        let horizon = 5.0;
        let mut total_bytes = 0u64;
        for a in gen.by_ref() {
            if a.time.as_secs() > horizon {
                break;
            }
            total_bytes += a.size.as_u64();
        }
        let offered = total_bytes as f64 / horizon / spec.num_hosts() as f64;
        let target = spec.offered_bytes_per_sec();
        assert!(
            (offered - target).abs() / target < 0.15,
            "offered {offered} B/s per host vs target {target}"
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let spec = TrafficSpec::scaled(2, 4, 0.7).unwrap();
        let a: Vec<FlowArrival> = spec.generator(9).unwrap().take(500).collect();
        let b: Vec<FlowArrival> = spec.generator(9).unwrap().take(500).collect();
        assert_eq!(a, b);
        let c: Vec<FlowArrival> = spec.generator(10).unwrap().take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn query_only_and_background_only() {
        let q_only = TrafficSpec::paper_default(0.5)
            .unwrap()
            .with_query_fraction(1.0)
            .unwrap();
        let mut gen = q_only.generator(1).unwrap();
        for _ in 0..200 {
            assert_eq!(gen.next().unwrap().class, FlowClass::Query);
        }
        let bg_only = TrafficSpec::paper_default(0.5)
            .unwrap()
            .with_query_fraction(0.0)
            .unwrap();
        let mut gen = bg_only.generator(1).unwrap();
        for _ in 0..200 {
            assert_eq!(gen.next().unwrap().class, FlowClass::Background);
        }
    }

    #[test]
    fn with_background_sizes_swaps_distribution() {
        let spec = TrafficSpec::paper_default(0.5)
            .unwrap()
            .with_background_sizes(EmpiricalCdf::data_mining());
        assert_eq!(spec.background_sizes(), &EmpiricalCdf::data_mining());
    }

    #[test]
    fn fabric_scope_leaves_the_arrival_stream_untouched() {
        let baseline = TrafficSpec::paper_default(0.8).unwrap();
        let scoped = TrafficSpec::paper_default(0.8)
            .unwrap()
            .with_query_scope(QueryScope::Fabric)
            .unwrap();
        let mut a = baseline.generator(42).unwrap();
        let mut b = scoped.generator(42).unwrap();
        for _ in 0..500 {
            let (x, y) = (a.next().unwrap(), b.next().unwrap());
            assert_eq!((x.id, x.voq, x.size), (y.id, y.voq, y.size));
            assert_eq!(x.time.as_secs().to_bits(), y.time.as_secs().to_bits());
        }
    }

    #[test]
    fn scoped_queries_stay_inside_their_scope() {
        let spec = TrafficSpec::paper_default(0.8)
            .unwrap()
            .with_query_scope(QueryScope::Rack)
            .unwrap();
        let mut gen = spec.generator(7).unwrap();
        for _ in 0..500 {
            let a = gen.next().unwrap();
            assert_eq!(spec.rack_of(a.voq.src()), spec.rack_of(a.voq.dst()));
        }

        let clustered = TrafficSpec::paper_default(0.8)
            .unwrap()
            .with_query_scope(QueryScope::Cluster(3))
            .unwrap();
        let mut gen = clustered.generator(7).unwrap();
        for _ in 0..500 {
            let a = gen.next().unwrap();
            let src_cluster = clustered.rack_of(a.voq.src()).index() / 3;
            let dst_cluster = clustered.rack_of(a.voq.dst()).index() / 3;
            assert_eq!(src_cluster, dst_cluster);
        }
    }

    #[test]
    fn invalid_query_scopes_are_rejected() {
        let spec = TrafficSpec::paper_default(0.8).unwrap(); // 12 racks
        assert!(spec.with_query_scope(QueryScope::Cluster(0)).is_err());
        let spec = TrafficSpec::paper_default(0.8).unwrap();
        assert!(spec.with_query_scope(QueryScope::Cluster(5)).is_err());
        let single = TrafficSpec::new(
            4,
            1,
            Rate::from_gbps(10.0),
            0.5,
            1.0, // queries only, so one host per rack passes `new`
            Bytes::from_kb(20),
            EmpiricalCdf::web_search(),
        )
        .unwrap();
        assert!(single.with_query_scope(QueryScope::Rack).is_err());
    }
}
