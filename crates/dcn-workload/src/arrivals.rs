//! Arrival processes.

use dcn_types::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Poisson arrival process: inter-arrival gaps are exponential with the
/// configured rate. Both flow populations of the paper's workload arrive
/// according to Poisson processes (§V-A).
///
/// # Example
///
/// ```
/// use dcn_workload::PoissonProcess;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let p = PoissonProcess::new(100.0); // 100 arrivals per second
/// let mut rng = StdRng::seed_from_u64(1);
/// let gap = p.next_gap(&mut rng);
/// assert!(gap.as_secs() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    rate_per_sec: f64,
}

impl PoissonProcess {
    /// Creates a process with `rate_per_sec` expected arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and strictly positive.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        PoissonProcess { rate_per_sec }
    }

    /// The expected arrivals per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the gap until the next arrival (exponential, always > 0).
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        // 1 - U is in (0, 1], so ln never sees zero.
        let u: f64 = rng.gen();
        SimTime::from_secs(-(1.0 - u).ln() / self.rate_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_gap_matches_rate() {
        let p = PoissonProcess::new(50.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs()).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 0.02).abs() < 0.001,
            "mean gap {mean} should be ~1/50"
        );
        assert_eq!(p.rate_per_sec(), 50.0);
    }

    #[test]
    fn gaps_are_positive() {
        let p = PoissonProcess::new(1e6);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(p.next_gap(&mut rng) > SimTime::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0);
    }
}
