//! Empirical flow-size distributions.

use crate::WorkloadError;
use dcn_types::Bytes;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A piecewise-linear empirical CDF over flow sizes, sampled by inverse
/// transform.
///
/// The CDF is given as `(size_bytes, cumulative_probability)` knots with
/// strictly increasing sizes and non-decreasing probabilities ending at
/// `1.0`. Probability mass below the first knot is concentrated *at* the
/// first knot's size (the usual convention for published data-center
/// distributions, where the first knot is the minimum flow size).
///
/// Two presets transcribe the distributions the paper builds on:
/// [`EmpiricalCdf::web_search`] (DCTCP\[1\]-shaped, used for background
/// flows: heavy-tailed, with ~30 % of flows in 1–20 MB carrying over 95 %
/// of the bytes, all sizes ≤ 50 MB) and [`EmpiricalCdf::data_mining`]
/// (VL2/Kandula\[16\]-shaped, even heavier-tailed).
///
/// # Example
///
/// ```
/// use dcn_workload::EmpiricalCdf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cdf = EmpiricalCdf::web_search();
/// let mut rng = StdRng::seed_from_u64(7);
/// let size = cdf.sample(&mut rng);
/// assert!(size.as_u64() >= 5_000 && size.as_u64() <= 20_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    /// `(size_bytes, cdf)` knots; sizes strictly increasing, cdf ending at 1.
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds a CDF from `(size_bytes, cumulative_probability)` knots.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidCdf`] if the knots are empty, sizes
    /// are not strictly increasing and positive, probabilities are not
    /// non-decreasing within `(0, 1]`, or the last probability is not `1.0`.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self, WorkloadError> {
        if points.is_empty() {
            return Err(WorkloadError::InvalidCdf("no knots".into()));
        }
        let mut prev_size = 0.0;
        let mut prev_cdf = 0.0;
        for &(size, cdf) in &points {
            if !size.is_finite() || size <= prev_size {
                return Err(WorkloadError::InvalidCdf(format!(
                    "sizes must be positive and strictly increasing (got {size} after {prev_size})"
                )));
            }
            if !cdf.is_finite() || cdf < prev_cdf || cdf <= 0.0 || cdf > 1.0 {
                return Err(WorkloadError::InvalidCdf(format!(
                    "probabilities must be non-decreasing in (0, 1] (got {cdf} after {prev_cdf})"
                )));
            }
            prev_size = size;
            prev_cdf = cdf;
        }
        if (prev_cdf - 1.0).abs() > 1e-12 {
            return Err(WorkloadError::InvalidCdf(format!(
                "last probability must be 1.0, got {prev_cdf}"
            )));
        }
        Ok(EmpiricalCdf { points })
    }

    /// A degenerate distribution: every flow has exactly `size` bytes
    /// (the paper's fixed 20 KB queries).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn fixed(size: Bytes) -> Self {
        assert!(!size.is_zero(), "flow size must be positive");
        EmpiricalCdf {
            points: vec![(size.as_f64(), 1.0)],
        }
    }

    /// The DCTCP web-search-shaped distribution used for background flows.
    ///
    /// Shape constraints transcribed from the paper's description of \[1\]
    /// and \[3\]: heavy-tailed; ~70 % of flows below 1 MB; the remaining
    /// ~30 % spread over 1–20 MB and carrying ≈97 % of all bytes; maximum
    /// size well below the 50 MB bound of \[1\]. Mean ≈ 1.8 MB.
    pub fn web_search() -> Self {
        EmpiricalCdf::from_points(vec![
            (5_000.0, 0.10),
            (10_000.0, 0.25),
            (20_000.0, 0.40),
            (50_000.0, 0.55),
            (200_000.0, 0.65),
            (1_000_000.0, 0.70),
            (2_000_000.0, 0.78),
            (5_000_000.0, 0.88),
            (10_000_000.0, 0.95),
            (20_000_000.0, 1.0),
        ])
        .expect("preset is valid")
    }

    /// The VL2/data-mining-shaped distribution (Kandula et al. \[16\]):
    /// ~80 % of flows below 10 KB, a 50 MB elephant tail carrying most of
    /// the bytes. Mean ≈ 0.55 MB.
    pub fn data_mining() -> Self {
        EmpiricalCdf::from_points(vec![
            (100.0, 0.10),
            (1_000.0, 0.50),
            (10_000.0, 0.80),
            (100_000.0, 0.90),
            (1_000_000.0, 0.95),
            (10_000_000.0, 0.99),
            (50_000_000.0, 1.0),
        ])
        .expect("preset is valid")
    }

    /// The CDF knots.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The minimum possible sampled size in bytes.
    pub fn min_size(&self) -> Bytes {
        Bytes::new(self.points[0].0.round().max(1.0) as u64)
    }

    /// The maximum possible sampled size in bytes.
    pub fn max_size(&self) -> Bytes {
        Bytes::new(self.points.last().expect("non-empty").0.round() as u64)
    }

    /// The exact mean of the piecewise-linear distribution, in bytes.
    ///
    /// The quantile function is constant at the first knot's size on
    /// `[0, cdf_0]` and linear between knots, so the mean is
    /// `cdf_0·s_0 + Σ (cdf_{k+1} − cdf_k)(s_k + s_{k+1})/2`.
    pub fn mean(&self) -> f64 {
        let mut mean = self.points[0].1 * self.points[0].0;
        for pair in self.points.windows(2) {
            let (s0, c0) = pair[0];
            let (s1, c1) = pair[1];
            mean += (c1 - c0) * (s0 + s1) / 2.0;
        }
        mean
    }

    /// The quantile function `Q(u)` in bytes, for `u ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "u must be in [0,1], got {u}");
        if u <= self.points[0].1 {
            return self.points[0].0;
        }
        for pair in self.points.windows(2) {
            let (s0, c0) = pair[0];
            let (s1, c1) = pair[1];
            if u <= c1 {
                if c1 == c0 {
                    return s1;
                }
                return s0 + (s1 - s0) * (u - c0) / (c1 - c0);
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Draws a flow size (at least 1 byte).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Bytes {
        let u: f64 = rng.gen();
        Bytes::new(self.quantile(u).round().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_malformed_cdfs() {
        assert!(EmpiricalCdf::from_points(vec![]).is_err());
        assert!(EmpiricalCdf::from_points(vec![(10.0, 0.5)]).is_err()); // no 1.0
        assert!(EmpiricalCdf::from_points(vec![(10.0, 0.5), (5.0, 1.0)]).is_err()); // sizes
        assert!(EmpiricalCdf::from_points(vec![(10.0, 0.9), (20.0, 0.5)]).is_err()); // cdf
        assert!(EmpiricalCdf::from_points(vec![(-1.0, 1.0)]).is_err()); // negative
        assert!(EmpiricalCdf::from_points(vec![(10.0, 0.0), (20.0, 1.0)]).is_err()); // zero p
        assert!(EmpiricalCdf::from_points(vec![(10.0, 1.0)]).is_ok());
    }

    #[test]
    fn fixed_always_returns_the_size() {
        let cdf = EmpiricalCdf::fixed(Bytes::from_kb(20));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(cdf.sample(&mut rng), Bytes::from_kb(20));
        }
        assert_eq!(cdf.mean(), 20_000.0);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let cdf = EmpiricalCdf::web_search();
        let mut prev = 0.0;
        for i in 0..=1000 {
            let u = i as f64 / 1000.0;
            let q = cdf.quantile(u);
            assert!(q >= prev, "quantile must be non-decreasing");
            assert!(q >= cdf.min_size().as_f64() && q <= cdf.max_size().as_f64());
            prev = q;
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let cdf = EmpiricalCdf::web_search();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| cdf.sample(&mut rng).as_f64()).sum();
        let sample_mean = total / n as f64;
        let mean = cdf.mean();
        assert!(
            (sample_mean - mean).abs() / mean < 0.02,
            "sample mean {sample_mean} vs analytic {mean}"
        );
    }

    #[test]
    fn web_search_matches_paper_constraints() {
        let cdf = EmpiricalCdf::web_search();
        // All flow sizes within the 50 MB bound of \[1\].
        assert!(cdf.max_size() <= Bytes::from_mb(50));
        // ~30 % of flows in 1-20 MB...
        let p_large = 1.0_f64 - 0.70;
        assert!((p_large - 0.30).abs() < 1e-9);
        // ...carrying over 95 % of all bytes.
        let total_mean = cdf.mean();
        let mut large_mass = 0.0;
        for pair in cdf.points().windows(2) {
            let (s0, c0) = pair[0];
            let (s1, c1) = pair[1];
            if s0 >= 1_000_000.0 {
                large_mass += (c1 - c0) * (s0 + s1) / 2.0;
            }
        }
        assert!(
            large_mass / total_mean > 0.95,
            "large flows carry {:.1}% of bytes",
            100.0 * large_mass / total_mean
        );
    }

    #[test]
    fn data_mining_is_heavier_tailed_than_web_search() {
        let dm = EmpiricalCdf::data_mining();
        let ws = EmpiricalCdf::web_search();
        // Most data-mining flows are tiny...
        assert!(dm.quantile(0.8) <= 10_000.0);
        // ...but its maximum dwarfs web-search's.
        assert!(dm.max_size() > ws.max_size());
    }

    #[test]
    #[should_panic(expected = "u must be in")]
    fn quantile_rejects_out_of_range() {
        let _ = EmpiricalCdf::web_search().quantile(1.5);
    }

    #[test]
    fn deterministic_under_seed() {
        let cdf = EmpiricalCdf::web_search();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| cdf.sample(&mut rng).as_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| cdf.sample(&mut rng).as_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
