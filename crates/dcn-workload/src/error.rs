//! Workload configuration errors.

use std::error::Error;
use std::fmt;

/// Error produced while validating a workload configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// An empirical CDF was malformed (empty, non-monotone, bad range, …).
    InvalidCdf(String),
    /// A traffic specification was inconsistent (load out of range, too few
    /// hosts for the requested locality, …).
    InvalidSpec(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidCdf(msg) => write!(f, "invalid flow-size CDF: {msg}"),
            WorkloadError::InvalidSpec(msg) => write!(f, "invalid traffic spec: {msg}"),
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = WorkloadError::InvalidCdf("empty".into());
        assert_eq!(e.to_string(), "invalid flow-size CDF: empty");
        let e = WorkloadError::InvalidSpec("load".into());
        assert!(e.to_string().contains("load"));
    }
}
