//! Workload generation for the BASRPT reproduction.
//!
//! The paper's evaluation (§V-A) drives the fabric with two flow
//! populations derived from published data-center measurements:
//!
//! * **Queries** — fixed-size 20 KB flows, Poisson arrivals, destinations
//!   uniform over all hosts (they "travel across the whole cluster");
//! * **Background flows** — heavy-tailed sizes following the DCTCP
//!   web-search distribution, Poisson arrivals, destinations uniform within
//!   the source's rack (the data-mining locality of Kandula et al.).
//!
//! [`EmpiricalCdf`] implements inverse-transform sampling from piecewise
//! linear flow-size CDFs with the built-in [`EmpiricalCdf::web_search`] and
//! [`EmpiricalCdf::data_mining`] presets; [`PoissonProcess`] produces
//! exponential inter-arrival gaps; [`TrafficSpec`] calibrates per-host
//! arrival rates to a target load and builds a deterministic, seeded
//! [`FlowGenerator`] that merges all hosts' arrivals in time order.
//!
//! # Example
//!
//! ```
//! use dcn_workload::TrafficSpec;
//!
//! let spec = TrafficSpec::paper_default(0.6)?; // 60 % load, 144 hosts
//! let mut gen = spec.generator(42)?;
//! let first = gen.next().expect("generator is endless");
//! assert!(first.size.as_u64() > 0);
//! # Ok::<(), dcn_workload::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod cdf;
mod error;
mod pattern;
mod scripted;

pub use arrivals::PoissonProcess;
pub use cdf::EmpiricalCdf;
pub use error::WorkloadError;
pub use pattern::{FlowArrival, FlowGenerator, QueryScope, TrafficSpec};
pub use scripted::StarvationScript;
