//! Deterministic adversarial workloads.

use crate::{FlowArrival, WorkloadError};
use dcn_types::{Bytes, FlowClass, FlowId, HostId, Rate, SimTime, Voq};
use serde::{Deserialize, Serialize};

/// The continuous-time generalization of the paper's Fig.-1 instability
/// example: a periodic three-population pattern over two bottleneck links
/// that starves SRPT while staying strictly inside the capacity region.
///
/// Four hosts A, B, C, D:
///
/// * *short* flows A → C arrive every `short_period` (load `ρ_s` on A's
///   uplink);
/// * *short* flows D → B arrive every `short_period`, offset by half a
///   period so their busy windows interleave with A's;
/// * *long* flows A → B arrive every `long_period` (load `ρ_l` on both
///   bottlenecks).
///
/// Under SRPT a long flow with remaining size above the short size `S`
/// only transmits when **both** bottlenecks are simultaneously free of
/// shorter flows; with the half-period offset that overlap is only
/// `1 − 2ρ_s` of the time. Each long of size `L` must push its *exposed*
/// portion `L − S` through those windows before its remaining drops below
/// `S` and it starts beating fresh shorts, so the long class starves —
/// and its backlog grows forever — whenever
///
/// ```text
/// ρ_l · (L − S) > (1 − 2ρ_s) · L      (starvation)
/// ρ_s + ρ_l < 1                       (inside the capacity region)
/// ```
///
/// A backlog-aware scheduler lets the A→B queue accumulate only until its
/// backlog outweighs the shorts' size advantage, then serves it — the
/// queue stabilizes near `(V/N)·(L − S)` for fast BASRPT.
///
/// With the defaults (1 MB shorts every 2.5 MB-times, 10 MB longs every
/// 33⅓ MB-times) the loads are `ρ_s = 0.4`, `ρ_l = 0.3`:
/// `0.4 + 0.3 = 0.7 < 1` but `0.3 · 9 = 2.7 > 0.2 · 10 = 2`, so SRPT
/// loses ≈ `0.3 − 0.2·10/9 ≈ 0.078` of a link's capacity (~97 MB/s at
/// 10 Gbps) to starvation.
///
/// # Example
///
/// ```
/// use dcn_workload::StarvationScript;
/// use dcn_types::Rate;
///
/// let mut script = StarvationScript::with_defaults(Rate::from_gbps(10.0))?;
/// let first = script.next().unwrap();
/// assert_eq!(first.time.as_secs(), 0.0);
/// # Ok::<(), dcn_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StarvationScript {
    short_size: Bytes,
    long_size: Bytes,
    short_period: SimTime,
    long_period: SimTime,
    /// Next arrival index per population: A→C shorts, D→B shorts, A→B longs.
    next_index: [u64; 3],
    next_id: u64,
}

/// Host A: source of the shorts to C and of the starved long flows.
pub const HOST_A: HostId = HostId::new(0);
/// Host B: destination shared by the longs and D's shorts.
pub const HOST_B: HostId = HostId::new(1);
/// Host C: sink of A's shorts.
pub const HOST_C: HostId = HostId::new(2);
/// Host D: source of the shorts to B.
pub const HOST_D: HostId = HostId::new(3);

impl StarvationScript {
    /// Builds the gadget from explicit sizes and periods.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if a size is zero, a period
    /// is non-positive, the combined load of a bottleneck reaches 1 (the
    /// gadget must stay inside the capacity region), or the starvation
    /// condition `ρ_l > 1 − 2ρ_s` fails (the gadget would not starve SRPT).
    pub fn new(
        edge_rate: Rate,
        short_size: Bytes,
        short_period: SimTime,
        long_size: Bytes,
        long_period: SimTime,
    ) -> Result<Self, WorkloadError> {
        let invalid = |m: String| Err(WorkloadError::InvalidSpec(m));
        if short_size.is_zero() || long_size.is_zero() {
            return invalid("sizes must be positive".into());
        }
        if short_period <= SimTime::ZERO || long_period <= SimTime::ZERO {
            return invalid("periods must be positive".into());
        }
        if long_size <= short_size {
            return invalid("long flows must be larger than short flows".into());
        }
        let rho_s = edge_rate.transfer_time(short_size).as_secs() / short_period.as_secs();
        let rho_l = edge_rate.transfer_time(long_size).as_secs() / long_period.as_secs();
        if rho_s + rho_l >= 1.0 {
            return invalid(format!(
                "bottleneck load {rho_s} + {rho_l} must stay below capacity"
            ));
        }
        let exposed = (long_size.as_f64() - short_size.as_f64()) / long_size.as_f64();
        if rho_l * exposed <= 1.0 - 2.0 * rho_s {
            return invalid(format!(
                "starvation condition rho_l (L-S)/L > 1 - 2 rho_s violated \
                 ({} <= {})",
                rho_l * exposed,
                1.0 - 2.0 * rho_s
            ));
        }
        Ok(StarvationScript {
            short_size,
            long_size,
            short_period,
            long_period,
            next_index: [0; 3],
            next_id: 0,
        })
    }

    /// The default gadget at the given edge rate: 1 MB shorts every
    /// 2.5 MB-transfer-times (`ρ_s = 0.4` per bottleneck) and 10 MB longs
    /// every 33⅓ MB-transfer-times (`ρ_l = 0.3`).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] only if `edge_rate` is zero.
    pub fn with_defaults(edge_rate: Rate) -> Result<Self, WorkloadError> {
        if edge_rate.is_zero() {
            return Err(WorkloadError::InvalidSpec(
                "edge rate must be positive".into(),
            ));
        }
        let mb_time = edge_rate.transfer_time(Bytes::from_mb(1));
        StarvationScript::new(
            edge_rate,
            Bytes::from_mb(1),
            SimTime::from_secs(mb_time.as_secs() * 2.5),
            Bytes::from_mb(10),
            SimTime::from_secs(mb_time.as_secs() * 100.0 / 3.0),
        )
    }

    /// The per-bottleneck load of the short-flow populations (`ρ_s`).
    pub fn short_load(&self, edge_rate: Rate) -> f64 {
        edge_rate.transfer_time(self.short_size).as_secs() / self.short_period.as_secs()
    }

    /// The bottleneck load of the long-flow population (`ρ_l`).
    pub fn long_load(&self, edge_rate: Rate) -> f64 {
        edge_rate.transfer_time(self.long_size).as_secs() / self.long_period.as_secs()
    }

    /// Arrival time of population `p`'s `k`-th flow.
    fn time_of(&self, p: usize, k: u64) -> SimTime {
        match p {
            // A -> C shorts at k * short_period.
            0 => SimTime::from_secs(self.short_period.as_secs() * k as f64),
            // D -> B shorts offset by half a period.
            1 => SimTime::from_secs(self.short_period.as_secs() * (k as f64 + 0.5)),
            // A -> B longs.
            _ => SimTime::from_secs(self.long_period.as_secs() * k as f64),
        }
    }
}

impl Iterator for StarvationScript {
    type Item = FlowArrival;

    fn next(&mut self) -> Option<FlowArrival> {
        // Pick the population with the earliest pending arrival
        // (deterministic tie-break by population index).
        let p = (0..3)
            .min_by(|&a, &b| {
                self.time_of(a, self.next_index[a])
                    .cmp(&self.time_of(b, self.next_index[b]))
            })
            .expect("three populations");
        let k = self.next_index[p];
        self.next_index[p] += 1;
        let (voq, size, class) = match p {
            0 => (Voq::new(HOST_A, HOST_C), self.short_size, FlowClass::Query),
            1 => (Voq::new(HOST_D, HOST_B), self.short_size, FlowClass::Query),
            _ => (
                Voq::new(HOST_A, HOST_B),
                self.long_size,
                FlowClass::Background,
            ),
        };
        let id = FlowId::new(self.next_id);
        self.next_id += 1;
        Some(FlowArrival {
            id,
            time: self.time_of(p, k),
            voq,
            size,
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_satisfy_the_starvation_conditions() {
        let rate = Rate::from_gbps(10.0);
        let s = StarvationScript::with_defaults(rate).unwrap();
        let rho_s = s.short_load(rate);
        let rho_l = s.long_load(rate);
        assert!((rho_s - 0.4).abs() < 1e-12);
        assert!((rho_l - 0.3).abs() < 1e-12);
        assert!(rho_s + rho_l < 1.0);
        // Exposed-portion starvation condition.
        assert!(rho_l * 0.9 > 1.0 - 2.0 * rho_s);
    }

    #[test]
    fn invalid_gadgets_rejected() {
        let rate = Rate::from_gbps(10.0);
        let mb = rate.transfer_time(Bytes::from_mb(1)).as_secs();
        // Overloaded bottleneck.
        assert!(StarvationScript::new(
            rate,
            Bytes::from_mb(1),
            SimTime::from_secs(mb * 1.2),
            Bytes::from_mb(10),
            SimTime::from_secs(mb * 100.0 / 3.0),
        )
        .is_err());
        // No starvation: shorts too sparse.
        assert!(StarvationScript::new(
            rate,
            Bytes::from_mb(1),
            SimTime::from_secs(mb * 10.0),
            Bytes::from_mb(10),
            SimTime::from_secs(mb * 100.0 / 3.0),
        )
        .is_err());
        // Longs not larger than shorts.
        assert!(StarvationScript::new(
            rate,
            Bytes::from_mb(2),
            SimTime::from_secs(mb * 5.0),
            Bytes::from_mb(2),
            SimTime::from_secs(mb * 8.0),
        )
        .is_err());
    }

    #[test]
    fn arrivals_are_time_ordered_and_periodic() {
        let mut s = StarvationScript::with_defaults(Rate::from_gbps(10.0)).unwrap();
        let arrivals: Vec<FlowArrival> = s.by_ref().take(200).collect();
        for pair in arrivals.windows(2) {
            assert!(pair[0].time <= pair[1].time);
            assert!(pair[0].id < pair[1].id);
        }
        // All three populations appear.
        assert!(arrivals.iter().any(|a| a.voq == Voq::new(HOST_A, HOST_C)));
        assert!(arrivals.iter().any(|a| a.voq == Voq::new(HOST_D, HOST_B)));
        assert!(arrivals.iter().any(|a| a.voq == Voq::new(HOST_A, HOST_B)));
        // Longs are Background, shorts are Query.
        for a in &arrivals {
            if a.voq == Voq::new(HOST_A, HOST_B) {
                assert_eq!(a.class, FlowClass::Background);
                assert_eq!(a.size, Bytes::from_mb(10));
            } else {
                assert_eq!(a.class, FlowClass::Query);
                assert_eq!(a.size, Bytes::from_mb(1));
            }
        }
    }

    #[test]
    fn offered_load_is_periodic_average() {
        let rate = Rate::from_gbps(10.0);
        let mut s = StarvationScript::with_defaults(rate).unwrap();
        let horizon = 1.0; // seconds
        let mut a_bytes = 0u64;
        for a in s.by_ref() {
            if a.time.as_secs() > horizon {
                break;
            }
            if a.voq.src() == HOST_A {
                a_bytes += a.size.as_u64();
            }
        }
        // A's egress load = 0.4 + 0.3 = 0.7 of 1.25 GB/s.
        let load = a_bytes as f64 / horizon / rate.bytes_per_sec();
        assert!((load - 0.7).abs() < 0.04, "A load {load}");
    }
}
