//! Theorem 1 — empirical verification of the Lyapunov drift-plus-penalty
//! bounds on the slotted input-queued switch.
//!
//! The theorem guarantees, for any admissible arrival matrix with slack
//! `ε` and second-moment bound `B` (`B' = N(1+NB)/2`):
//!
//! * time-average penalty `ȳ ≤ ȳ* + B'/V` — the FCT proxy approaches the
//!   delay-optimal value as `O(1/V)`;
//! * time-average total backlog `Σ E[X] ≤ (B' + V(ȳ*−y_min))/ε` — the
//!   queue bound grows as `O(V)`.
//!
//! This bench sweeps V, measures both time averages, and prints them next
//! to the analytic bounds (using measured SRPT as the `ȳ*` proxy — SRPT is
//! the delay-greedy reference the paper compares against).

use basrpt_bench::Scale;
use basrpt_core::{FastBasrpt, Srpt};
use dcn_metrics::TextTable;
use dcn_switch::arrivals::BernoulliFlowArrivals;
use dcn_switch::lyapunov::TheoremBounds;
use dcn_switch::{run_with_engine, Engine, RunConfig};

const PORTS: u32 = 8;
const RHO: f64 = 0.8;
const MEAN_SIZE: u64 = 5;

fn main() {
    let scale = Scale::from_env();
    let slots = scale.switch_slots();
    // Both engines produce bit-identical runs; Bernoulli arrivals offer no
    // lookahead, so the fast-forward engine only helps here when a served
    // flow's remaining size exceeds one slot.
    let engine = Engine::from_env();
    println!("== Theorem 1: drift-plus-penalty bounds on the slotted switch ==");
    println!(
        "{PORTS} ports, uniform load {RHO}, mean flow {MEAN_SIZE} pkts, {slots} slots, {engine:?} engine\n"
    );

    let arrivals = || BernoulliFlowArrivals::uniform(PORTS, RHO, MEAN_SIZE, 77).unwrap();
    let b = arrivals().second_moment_bound();
    let epsilon = arrivals().capacity_slack();

    // SRPT reference: the proxy for the delay-optimal penalty y*.
    let mut srpt_arr = arrivals();
    let srpt = run_with_engine(
        engine,
        PORTS,
        &mut Srpt::new(),
        &mut srpt_arr,
        RunConfig::new(slots),
    );
    let y_star = srpt.avg_penalty;
    let bounds = TheoremBounds::new(PORTS, b, epsilon, y_star, 1.0);
    println!(
        "B = {b:.2}, B' = {:.1}, epsilon = {:.2}, measured SRPT penalty y* = {y_star:.2}\n",
        bounds.b_prime, bounds.epsilon
    );

    let mut table = TextTable::new(vec![
        "V".into(),
        "avg penalty".into(),
        "bound y*+B'/V".into(),
        "avg total backlog".into(),
        "bound (B'+V(y*-1))/eps".into(),
        "leftover pkts".into(),
    ]);
    for v in [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0] {
        let mut arr = arrivals();
        let mut sched = FastBasrpt::new(v, PORTS as usize);
        let r = run_with_engine(engine, PORTS, &mut sched, &mut arr, RunConfig::new(slots));
        table.add_row(vec![
            format!("{v}"),
            format!("{:.2}", r.avg_penalty),
            format!("{:.2}", y_star + bounds.penalty_gap(v)),
            format!("{:.1}", r.avg_total_backlog),
            format!("{:.0}", bounds.queue_bound(v)),
            format!("{}", r.leftover_packets),
        ]);
    }
    println!("{table}");
    println!(
        "expected: penalty falls toward y* as O(1/V) and stays below its \
         bound; backlog grows with V and stays below its O(V) bound."
    );
}
