//! Ablation — scheduler decision latency (§IV-C's complexity discussion).
//!
//! Criterion micro-benchmarks of a single `schedule()` call as the number
//! of active flows grows, for every discipline (and exact BASRPT on the
//! small instances it can enumerate). The paper motivates fast BASRPT by
//! exactly this cost: the exact scheduler is exponential, the greedy pass
//! is `O(N^2 log N^2)` worst case and `O(Q log Q)` per decision here.
//!
//! The `per_event_decision` group measures the realistic steady-state
//! loop — one table event (a one-unit drain, cycling over the flows)
//! followed by one scheduling decision — comparing each one-pass
//! discipline against its `IncrementalScheduler` wrapping across fabric
//! sizes `N ∈ {16, 48, 144, 288}` with 40 flows per server. The
//! incremental path re-keys only the event's VOQ instead of re-sorting
//! all of them, turning the `O(Q log Q)` sort into an `O(log Q)` patch
//! plus an `O(Q)` pre-sorted walk.
//!
//! The `fastforward_switch` group measures the orthogonal lever: instead
//! of making each decision cheaper, the macro-slot fast-forward engine
//! makes *fewer* decisions, re-invoking the scheduler only when a cached
//! schedule can no longer be proven valid (see ARCHITECTURE.md).
//!
//! The `delta_reschedule` group prices the third lever — making the
//! *binding* of each decision cheaper: the delta-rate fabric engine pays
//! calendar work only for the flows whose allocation changed, versus the
//! full per-event rebind the PR 3–5 engine paid (see PERFMODEL.md).
//!
//! The `settle_cost` group prices the fourth lever — lazy exact
//! settlement: byte accounts settle only when observed, so the per-event
//! residue is an `O(1)` due-check plus `O(1)` per-VOQ view adjustment
//! instead of an `O(n)` sweep of every scheduled flow.

use basrpt_core::{
    ExactBasrpt, FastBasrpt, Fifo, FlowState, FlowTable, IncrementalScheduler, MaxWeight,
    Scheduler, Srpt, VoqView,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use dcn_types::{FlowId, HostId, Voq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn table_with(num_hosts: u32, num_flows: usize, seed: u64) -> FlowTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = FlowTable::new();
    for i in 0..num_flows {
        let src = rng.gen_range(0..num_hosts);
        let mut dst = rng.gen_range(0..num_hosts - 1);
        if dst >= src {
            dst += 1;
        }
        table
            .insert(FlowState::new(
                FlowId::new(i as u64),
                Voq::new(HostId::new(src), HostId::new(dst)),
                rng.gen_range(1..=50_000_000u64),
            ))
            .expect("unique ids");
    }
    table
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_decision");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);

    for &flows in &[100usize, 1_000, 10_000] {
        let table = table_with(144, flows, 42);
        let mut schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
            ("srpt", Box::new(Srpt::new())),
            ("fast_basrpt", Box::new(FastBasrpt::new(2500.0, 144))),
            ("maxweight", Box::new(MaxWeight::new())),
            ("fifo", Box::new(Fifo::new())),
        ];
        for (name, sched) in schedulers.iter_mut() {
            group.bench_with_input(BenchmarkId::new(name, flows), &table, |b, t| {
                b.iter(|| sched.schedule(std::hint::black_box(t)))
            });
        }
        // The literal Algorithm 1 (sorts all flows) vs the per-VOQ-head
        // scheduler above — the O(F log F) vs O(Q log Q) gap.
        group.bench_with_input(
            BenchmarkId::new("fast_basrpt_literal", flows),
            &table,
            |b, t| {
                b.iter(|| {
                    basrpt_core::reference::fast_basrpt_all_flows(
                        std::hint::black_box(t),
                        2500.0,
                        144,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Applies one table event: drains one unit from the next flow in a
/// round-robin over the initial flow ids, re-inserting a completed flow in
/// place so the population stays constant across iterations.
fn one_event(table: &mut FlowTable, cursor: &mut usize, num_flows: usize) {
    let id = FlowId::new((*cursor % num_flows) as u64);
    *cursor += 1;
    let out = table.drain(id, 1).expect("cycled flows stay live");
    if let Some(done) = out.completed {
        table
            .insert(FlowState::new(id, done.voq(), 1_000))
            .expect("id was just freed");
    }
}

fn bench_per_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_event_decision");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    const FLOWS_PER_SERVER: usize = 40;
    for &n in &[16u32, 48, 144, 288] {
        let flows = FLOWS_PER_SERVER * n as usize;

        {
            let mut table = table_with(n, flows, 42);
            let mut sched = FastBasrpt::new(2500.0, n as usize);
            let mut cursor = 0usize;
            group.bench_with_input(
                BenchmarkId::new("fast_basrpt_one_pass", n),
                &flows,
                |b, &f| {
                    b.iter(|| {
                        one_event(&mut table, &mut cursor, f);
                        sched.schedule(std::hint::black_box(&table))
                    })
                },
            );
        }
        {
            let mut table = table_with(n, flows, 42);
            let mut sched = IncrementalScheduler::new(FastBasrpt::new(2500.0, n as usize));
            sched.schedule(&table); // pay the initial build outside the loop
            let mut cursor = 0usize;
            group.bench_with_input(
                BenchmarkId::new("fast_basrpt_incremental", n),
                &flows,
                |b, &f| {
                    b.iter(|| {
                        one_event(&mut table, &mut cursor, f);
                        sched.schedule(std::hint::black_box(&table))
                    })
                },
            );
        }
        {
            let mut table = table_with(n, flows, 42);
            let mut sched = Srpt::new();
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new("srpt_one_pass", n), &flows, |b, &f| {
                b.iter(|| {
                    one_event(&mut table, &mut cursor, f);
                    sched.schedule(std::hint::black_box(&table))
                })
            });
        }
        {
            let mut table = table_with(n, flows, 42);
            let mut sched = IncrementalScheduler::new(Srpt::new());
            sched.schedule(&table);
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new("srpt_incremental", n), &flows, |b, &f| {
                b.iter(|| {
                    one_event(&mut table, &mut cursor, f);
                    sched.schedule(std::hint::black_box(&table))
                })
            });
        }
    }
    group.finish();
}

/// End-to-end engine runs under each probe flavour. `builder_noprobe`
/// must match `simulate_bare` — `NoProbe` is a ZST whose no-op callbacks
/// monomorphize away, so attaching it costs nothing. The counter and
/// JSONL rows price the real observers (the JSONL probe writes to
/// `io::sink`, so its row is pure formatting cost).
fn bench_probe_overhead(c: &mut Criterion) {
    use dcn_fabric::{simulate, FabricSim, FatTree, SimConfig};
    use dcn_probe::{EventCounterProbe, JsonlProbe, NoProbe};
    use dcn_types::SimTime;
    use dcn_workload::TrafficSpec;

    let mut group = c.benchmark_group("probe_overhead");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    let topo = FatTree::scaled(2, 4, 1).expect("valid scaled fabric");
    let spec = TrafficSpec::scaled(2, 4, 0.7).expect("valid load");
    let config = SimConfig::builder()
        .horizon(SimTime::from_secs(0.05))
        .build();

    group.bench_function("simulate_bare", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            simulate(&topo, &mut sched, generator, config).expect("valid simulation")
        })
    });
    group.bench_function("builder_noprobe", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            FabricSim::new(&topo)
                .config(config)
                .scheduler(&mut sched)
                .workload(generator)
                .probe(NoProbe)
                .run()
                .expect("valid simulation")
        })
    });
    group.bench_function("builder_counter", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            FabricSim::new(&topo)
                .config(config)
                .scheduler(&mut sched)
                .workload(generator)
                .probe(EventCounterProbe::new())
                .run()
                .expect("valid simulation")
        })
    });
    group.bench_function("builder_jsonl_sink", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            FabricSim::new(&topo)
                .config(config)
                .scheduler(&mut sched)
                .workload(generator)
                .probe(JsonlProbe::new(std::io::sink()))
                .run()
                .expect("valid simulation")
        })
    });
    group.finish();
}

/// Next-event lookup cost inside the fabric event loop: the seed engine
/// rescanned every scheduled flow on every wakeup (`next_completion_scan`,
/// `O(n)`), while the indexed `CompletionCalendar` answers from a
/// validated heap top (`next_completion_calendar`, `O(1)` between schedule
/// changes, `O(log n)` amortized across them). The
/// `calendar_reschedule_unchanged` row prices the engine's common case of
/// re-submitting a mostly identical schedule — the diff pushes nothing, so
/// the cost is iteration only, with zero heap churn. The `engine_*` rows
/// measure the end-to-end gap on the paper's 144-host fabric, where the
/// scheduled set is large enough for the lookup to matter.
fn bench_event_loop(c: &mut Criterion) {
    use dcn_fabric::{reference, simulate, CompletionCalendar, FatTree, SimConfig};
    use dcn_types::SimTime;
    use dcn_workload::TrafficSpec;

    let mut group = c.benchmark_group("event_loop");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    for &n in &[64usize, 256, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(9);
        let pairs: Vec<(FlowId, SimTime)> = (0..n)
            .map(|i| {
                (
                    FlowId::new(i as u64),
                    SimTime::from_micros(rng.gen_range(1.0..1e6)),
                )
            })
            .collect();

        group.bench_with_input(
            BenchmarkId::new("next_completion_scan", n),
            &pairs,
            |b, p| {
                b.iter(|| {
                    p.iter()
                        .map(|&(_, at)| at)
                        .min()
                        .unwrap_or(SimTime::INFINITY)
                })
            },
        );

        let mut cal = CompletionCalendar::new();
        cal.set_schedule(pairs.iter().copied());
        group.bench_with_input(
            BenchmarkId::new("next_completion_calendar", n),
            &(),
            |b, _| b.iter(|| cal.next_completion()),
        );

        let mut cal = CompletionCalendar::new();
        cal.set_schedule(pairs.iter().copied());
        group.bench_with_input(
            BenchmarkId::new("calendar_reschedule_unchanged", n),
            &pairs,
            |b, p| {
                b.iter(|| {
                    cal.set_schedule(p.iter().copied());
                    cal.next_completion()
                })
            },
        );
    }

    let topo = FatTree::paper_topology();
    let spec = TrafficSpec::paper_default(0.9).expect("valid load");
    let config = SimConfig::builder()
        .horizon(SimTime::from_millis(5.0))
        .build();
    group.bench_function("engine_calendar_paper_fabric", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            simulate(&topo, &mut sched, generator, config).expect("valid simulation")
        })
    });
    group.bench_function("engine_scan_paper_fabric", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            reference::simulate_scan(&topo, &mut sched, generator, config)
                .expect("valid simulation")
        })
    });
    group.bench_function("engine_rebuild_paper_fabric", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            let generator = spec.generator(42).expect("valid spec");
            reference::simulate_full_rebuild(&topo, &mut sched, generator, config)
                .expect("valid simulation")
        })
    });
    group.finish();
}

/// Per-event rebinding cost under the delta discipline vs the full
/// recompute it replaced, as the scheduled set grows 64 → 4096:
///
/// * `targeted_churn` — the delta engine's calendar work for a one-flow
///   allocation change: one [`CompletionCalendar::update`] plus the
///   validated peek, `O(log n)` — near-flat in `n`;
/// * `full_set_schedule` — the same one-flow change bound through
///   `set_schedule`, which rebuilds the live map even though nothing else
///   moved: `O(n)` hashing and allocation per event (the PR 3–5 engine's
///   per-event floor);
/// * `allocator_swap_one` — the whole `DeltaAllocator::apply` for a
///   schedule differing in one flow: a prefix/suffix positional diff
///   (one `Copy`-pair compare per kept flow, no hashing, no stamping)
///   isolates the one-entry window, then the entrant/leaver pay the
///   `O(log n)` calendar edit — the true `O(Δ log n)` per-event cost.
///
/// In the fabric engine the schedule is a crossbar matching (≤ 72 pairs on
/// the paper topology), so `targeted_churn` is the term that scales with
/// the *backlog*, and its flatness is what unlocks million-flow runs —
/// `PERFMODEL.md` has the full decomposition.
fn bench_delta_reschedule(c: &mut Criterion) {
    use dcn_fabric::{CompletionCalendar, DeltaAllocator};
    use dcn_types::{Rate, SimTime};

    let mut group = c.benchmark_group("delta_reschedule");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    for &n in &[64usize, 256, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(9);
        let pairs: Vec<(FlowId, SimTime)> = (0..n)
            .map(|i| {
                (
                    FlowId::new(i as u64),
                    SimTime::from_micros(rng.gen_range(1.0..1e6)),
                )
            })
            .collect();

        {
            let mut cal = CompletionCalendar::new();
            cal.set_schedule(pairs.iter().copied());
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new("targeted_churn", n), &n, |b, &n| {
                b.iter(|| {
                    // One flow's completion instant moves; nothing else is
                    // touched. Rotate the victim and the instant so the
                    // heap sees genuine churn, not a cached no-op.
                    tick += 1;
                    let victim = FlowId::new(tick % n as u64);
                    cal.update(victim, SimTime::from_micros((1 + tick % 999_983) as f64));
                    cal.next_completion()
                })
            });
        }

        {
            let mut cal = CompletionCalendar::new();
            cal.set_schedule(pairs.iter().copied());
            let mut moved = pairs.clone();
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new("full_set_schedule", n), &n, |b, &n| {
                b.iter(|| {
                    tick += 1;
                    let victim = (tick % n as u64) as usize;
                    moved[victim].1 = SimTime::from_micros((1 + tick % 999_983) as f64);
                    cal.set_schedule(moved.iter().copied());
                    cal.next_completion()
                })
            });
        }

        {
            let mut alloc = DeltaAllocator::new(Rate::from_gbps(10.0));
            // Distinct VOQs per flow: the allocator indexes live flows by
            // VOQ under the crossbar's one-flow-per-VOQ invariant.
            let base: Vec<(FlowId, Voq)> = (0..n)
                .map(|i| {
                    (
                        FlowId::new(i as u64),
                        Voq::new(HostId::new(2 * i as u32), HostId::new(2 * i as u32 + 1)),
                    )
                })
                .collect();
            alloc.apply(SimTime::ZERO, base.clone(), |_| 1 << 40, |_| {});
            let mut swapped = base.clone();
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new("allocator_swap_one", n), &n, |b, &n| {
                b.iter(|| {
                    // Alternate the last slot between two flow ids: every
                    // apply sees one entrant, one leaver, n-1 stays.
                    tick += 1;
                    swapped[n - 1].0 = FlowId::new((n as u64) + (tick & 1));
                    alloc.apply(SimTime::ZERO, swapped.clone(), |_| 1 << 40, |_| {});
                    alloc.next_completion()
                })
            });
        }
    }
    group.finish();
}

/// The lazy settlement primitives the per-event path leans on, as the
/// scheduled set grows 64 → 4096 — both must stay near-flat in `n`, the
/// load-bearing claim of the lazy engine:
///
/// * `due_check` — [`DeltaAllocator::settle_due`] at an instant with no
///   completion due: one validated heap peek, `O(1)`. This is what every
///   arrival event pays instead of the old full-set sweep;
/// * `view_adjust` — one [`VoqView`] corrected through the
///   [`DeltaAllocator::live_views`] lens: two hash probes and integer
///   arithmetic, `O(1)` per VOQ regardless of how many flows are live.
///
/// The `O(Δ)` reschedule itself is covered by `delta_reschedule`; these
/// rows isolate the *observation* costs that the lazy discipline added.
fn bench_settle_cost(c: &mut Criterion) {
    use basrpt_core::ViewAdjust;
    use dcn_fabric::DeltaAllocator;
    use dcn_types::{Rate, SimTime};

    let mut group = c.benchmark_group("settle_cost");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    for &n in &[64usize, 256, 1024, 4096] {
        let sel: Vec<(FlowId, Voq)> = (0..n)
            .map(|i| {
                (
                    FlowId::new(i as u64),
                    Voq::new(HostId::new(2 * i as u32), HostId::new(2 * i as u32 + 1)),
                )
            })
            .collect();

        {
            let mut alloc = DeltaAllocator::new(Rate::from_gbps(10.0));
            // ~1 TiB per flow at 10 Gbps: nothing completes within the
            // probed window, so every check is the no-op fast path.
            alloc.apply(SimTime::ZERO, sel.clone(), |_| 1 << 40, |_| {});
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new("due_check", n), &n, |b, _| {
                b.iter(|| {
                    tick += 1;
                    alloc.settle_due(SimTime::from_micros((tick % 997) as f64), |_| {
                        unreachable!("no completion is due")
                    })
                })
            });
        }

        {
            let mut alloc = DeltaAllocator::new(Rate::from_gbps(10.0));
            alloc.apply(SimTime::ZERO, sel.clone(), |_| 1 << 40, |_| {});
            let mut tick = 0u64;
            group.bench_with_input(BenchmarkId::new("view_adjust", n), &n, |b, &n| {
                b.iter(|| {
                    tick += 1;
                    let i = (tick % n as u64) as u32;
                    let mut view = VoqView {
                        voq: Voq::new(HostId::new(2 * i), HostId::new(2 * i + 1)),
                        backlog: 1 << 41,
                        shortest_remaining: 1 << 40,
                        shortest_flow: FlowId::new(i as u64),
                        oldest_flow: FlowId::new(i as u64),
                        len: 2,
                    };
                    alloc
                        .live_views(SimTime::from_micros((1 + tick % 997) as f64))
                        .adjust(&mut view);
                    view.backlog
                })
            });
        }
    }
    group.finish();
}

/// Macro-slot fast-forward vs the slot-by-slot reference on the 16-port
/// slotted switch (default scale, 200 k slots). The workload is the
/// slotted analogue of Fig. 2's regime: a two-class mix of long
/// background elephants and short queries, *scripted* so the engine has
/// arrival lookahead (Bernoulli arrivals admit none — any slot may bring
/// a flow — which caps every window at one slot). Before timing, the
/// scheduler-invocation comparison is printed per discipline: the
/// fast-forward engine must invoke `schedule()` ≥ 5× less often while
/// producing a bit-identical run, which the differential suite
/// (`tests/fastforward_differential.rs`) enforces and this group records.
fn bench_fastforward(c: &mut Criterion) {
    use basrpt_core::{CountingScheduler, ThresholdBacklogSrpt};
    use dcn_switch::{run_with_engine, Engine, RunConfig, ScriptedArrivals};

    const PORTS: u32 = 16;
    const SLOTS: u64 = 200_000;

    fn fig2_style_script(seed: u64) -> ScriptedArrivals {
        let mut rng = StdRng::seed_from_u64(seed);
        let voq = |rng: &mut StdRng| {
            let src = rng.gen_range(0..PORTS);
            let mut dst = rng.gen_range(0..PORTS - 1);
            if dst >= src {
                dst += 1;
            }
            Voq::new(HostId::new(src), HostId::new(dst))
        };
        let mut script = Vec::new();
        // Background elephants: long flows whose service dominates the
        // horizon, so cached schedules stay provably valid for stretches.
        for _ in 0..300 {
            let slot = rng.gen_range(0..SLOTS);
            let q = voq(&mut rng);
            script.push((slot, q, rng.gen_range(2_000..=20_000u64)));
        }
        // Short queries: the latency-sensitive class that interrupts them.
        for _ in 0..2_000 {
            let slot = rng.gen_range(0..SLOTS);
            let q = voq(&mut rng);
            script.push((slot, q, rng.gen_range(1..=8u64)));
        }
        ScriptedArrivals::new(script)
    }

    type MakeScheduler = Box<dyn Fn() -> Box<dyn Scheduler>>;
    let disciplines: Vec<(&str, MakeScheduler)> = vec![
        ("srpt", Box::new(|| Box::new(Srpt::new()))),
        (
            "threshold",
            Box::new(|| Box::new(ThresholdBacklogSrpt::new(10_000))),
        ),
    ];
    for (name, make) in &disciplines {
        let mut slow = CountingScheduler::new(make());
        let slow_run = run_with_engine(
            Engine::SlotBySlot,
            PORTS,
            &mut slow,
            &mut fig2_style_script(1),
            RunConfig::new(SLOTS),
        );
        let mut fast = CountingScheduler::new(make());
        let fast_run = run_with_engine(
            Engine::FastForward,
            PORTS,
            &mut fast,
            &mut fig2_style_script(1),
            RunConfig::new(SLOTS),
        );
        let identical = slow_run.delivered_packets == fast_run.delivered_packets
            && slow_run.leftover_packets == fast_run.leftover_packets
            && slow_run.avg_penalty.to_bits() == fast_run.avg_penalty.to_bits()
            && slow_run.avg_total_backlog.to_bits() == fast_run.avg_total_backlog.to_bits();
        println!(
            "fastforward_switch/{name}: {} -> {} scheduler invocations over {SLOTS} slots \
             ({:.1}x fewer), outputs bit-identical: {identical}",
            slow.calls(),
            fast.calls(),
            slow.calls() as f64 / fast.calls() as f64,
        );
    }

    let mut group = c.benchmark_group("fastforward_switch");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("slot_by_slot", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            run_with_engine(
                Engine::SlotBySlot,
                PORTS,
                &mut sched,
                &mut fig2_style_script(1),
                RunConfig::new(SLOTS),
            )
        })
    });
    group.bench_function("fast_forward", |b| {
        b.iter(|| {
            let mut sched = Srpt::new();
            run_with_engine(
                Engine::FastForward,
                PORTS,
                &mut sched,
                &mut fig2_style_script(1),
                RunConfig::new(SLOTS),
            )
        })
    });
    group.finish();
}

/// The champion index head to head against the full scan it replaced,
/// at fixed fabric size (144 hosts, so Q ≤ 144² VOQs) and growing flow
/// count. Every iteration applies one table event (`one_event`, which
/// also recycles completed ids) before deciding, so the index pays its
/// incremental maintenance inside the loop — no free pre-built state:
///
/// * `scan` — `reference::schedule_scan`: recompute all per-VOQ
///   champions from the `F` flows, `O(F + Q log Q)` per decision;
/// * `one_pass` — the production `FastBasrpt`: read champions from the
///   table's index and sort them, `O(Q log Q)` per decision;
/// * `indexed` — `IncrementalScheduler` on top: re-key only the event's
///   VOQ, `O(log Q)` patch plus the pre-sorted walk.
///
/// The `scan`/`one_pass` gap is the champion index's win and must be
/// ≥ 5× from `F = 10_000` up (the indexed rows are then strictly
/// faster still); `results/bench.json` records all three series.
fn bench_champion_index(c: &mut Criterion) {
    use basrpt_core::reference::schedule_scan;

    let mut group = c.benchmark_group("champion_index");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(15);

    for &flows in &[100usize, 1_000, 10_000, 100_000] {
        {
            let mut table = table_with(144, flows, 42);
            let discipline = FastBasrpt::new(2500.0, 144);
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new("scan", flows), &flows, |b, &f| {
                b.iter(|| {
                    one_event(&mut table, &mut cursor, f);
                    schedule_scan(&discipline, std::hint::black_box(&table))
                })
            });
        }
        {
            let mut table = table_with(144, flows, 42);
            let mut sched = FastBasrpt::new(2500.0, 144);
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new("one_pass", flows), &flows, |b, &f| {
                b.iter(|| {
                    one_event(&mut table, &mut cursor, f);
                    sched.schedule(std::hint::black_box(&table))
                })
            });
        }
        {
            let mut table = table_with(144, flows, 42);
            let mut sched = IncrementalScheduler::new(FastBasrpt::new(2500.0, 144));
            sched.schedule(&table); // pay the initial build outside the loop
            let mut cursor = 0usize;
            group.bench_with_input(BenchmarkId::new("indexed", flows), &flows, |b, &f| {
                b.iter(|| {
                    one_event(&mut table, &mut cursor, f);
                    sched.schedule(std::hint::black_box(&table))
                })
            });
        }
    }
    group.finish();
}

fn bench_exact_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_basrpt_enumeration");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    for &ports in &[3u32, 4, 5, 6] {
        // Dense small instance: ~2 flows per VOQ.
        let flows = (ports * ports * 2) as usize;
        let table = table_with(ports, flows, 7);
        let exact = ExactBasrpt::with_port_limit(100.0, ports as usize);
        group.bench_with_input(BenchmarkId::new("ports", ports), &table, |b, t| {
            b.iter(|| exact.try_schedule(std::hint::black_box(t)).unwrap())
        });
        // The greedy approximation on the identical instance, for contrast.
        let mut fast = FastBasrpt::new(100.0, ports as usize);
        group.bench_with_input(
            BenchmarkId::new("fast_same_instance", ports),
            &table,
            |b, t| b.iter(|| fast.schedule(std::hint::black_box(t))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_disciplines,
    bench_per_event,
    bench_champion_index,
    bench_probe_overhead,
    bench_event_loop,
    bench_delta_reschedule,
    bench_settle_cost,
    bench_fastforward,
    bench_exact_blowup
);

fn main() {
    benches();
    let results = criterion::take_results();
    // Merge (not overwrite): other bench targets also record groups here.
    match basrpt_bench::write_merged(&results) {
        Ok(path) => println!("recorded {} benchmark medians to {path}", results.len()),
        Err(e) => eprintln!("could not write bench.json: {e}"),
    }
}
