//! Ablation — how closely fast BASRPT's greedy selection approaches the
//! exact BASRPT optimum (`V·ȳ − Σ X_ij R_ij`) it was designed to
//! approximate (§IV-C).
//!
//! Random small-switch instances are generated, both schedulers pick a
//! schedule, and the objective gap is reported. The exact scheduler
//! enumerates every maximal schedule, so its objective is the true
//! optimum; the table reports how often the greedy decision is exactly
//! optimal and the mean/worst relative gap when it is not.

use basrpt_core::{ExactBasrpt, FastBasrpt, FlowState, FlowTable, Schedule, Scheduler};
use dcn_metrics::TextTable;
use dcn_types::{FlowId, HostId, Voq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PORTS: u32 = 5;
const INSTANCES: usize = 300;

fn random_table(rng: &mut StdRng, max_flows: usize) -> FlowTable {
    let mut table = FlowTable::new();
    let n_flows = rng.gen_range(1..=max_flows);
    for i in 0..n_flows {
        let src = rng.gen_range(0..PORTS);
        let mut dst = rng.gen_range(0..PORTS - 1);
        if dst >= src {
            dst += 1;
        }
        let size = rng.gen_range(1..=1_000u64);
        table
            .insert(FlowState::new(
                FlowId::new(i as u64),
                Voq::new(HostId::new(src), HostId::new(dst)),
                size,
            ))
            .expect("unique ids");
    }
    table
}

fn objective(table: &FlowTable, schedule: &Schedule, v: f64) -> f64 {
    if schedule.is_empty() {
        return 0.0;
    }
    let sizes: f64 = schedule
        .flow_ids()
        .map(|id| table.get(id).expect("scheduled flow").remaining() as f64)
        .sum();
    let backlog: f64 = schedule
        .iter()
        .map(|(_, voq)| table.voq_backlog(voq) as f64)
        .sum();
    v * sizes / schedule.len() as f64 - backlog
}

fn main() {
    println!("== Ablation: fast BASRPT vs exact BASRPT objective quality ==");
    println!("{PORTS}-port switch, {INSTANCES} random instances per V\n");

    let mut table = TextTable::new(vec![
        "V".into(),
        "greedy optimal".into(),
        "aggregate rel. gap".into(),
        "worst instance gap".into(),
    ]);
    for v in [0.0, 1.0, 10.0, 100.0, 1000.0] {
        let mut rng = StdRng::seed_from_u64(2024);
        let mut optimal = 0usize;
        let mut gap_sum = 0.0;
        let mut opt_magnitude_sum = 0.0;
        let mut worst = 0.0f64;
        for _ in 0..INSTANCES {
            let t = random_table(&mut rng, 14);
            let exact = ExactBasrpt::new(v)
                .try_schedule(&t)
                .expect("small instance");
            let fast = FastBasrpt::new(v, PORTS as usize).schedule(&t);
            let obj_e = objective(&t, &exact, v);
            let obj_f = objective(&t, &fast, v);
            let gap = obj_f - obj_e; // >= 0: exact is the minimum
            if gap <= 1e-9 {
                optimal += 1;
            }
            gap_sum += gap;
            opt_magnitude_sum += obj_e.abs();
            // Per-instance relative gap against the objective's magnitude,
            // guarded for near-zero optima.
            worst = worst.max(gap / obj_e.abs().max(v.max(1.0)));
        }
        // Aggregate relative gap: total excess objective over total optimal
        // magnitude — robust to individual near-zero optima.
        let mean_gap = gap_sum / opt_magnitude_sum.max(1e-12);
        table.add_row(vec![
            format!("{v}"),
            format!(
                "{optimal}/{INSTANCES} ({:.0}%)",
                100.0 * optimal as f64 / INSTANCES as f64
            ),
            format!("{:.4}", mean_gap),
            format!("{:.4}", worst),
        ]);
    }
    println!("{table}");
    println!(
        "expected: the greedy one-pass selection attains the exact optimum \
         on most instances and stays within a few percent otherwise — the \
         O(N^3)-vs-O(N!) tradeoff of §IV-C."
    );
}
