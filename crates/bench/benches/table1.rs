//! Table I — average and 99th-percentile FCT (ms) for queries and
//! background flows: SRPT vs fast BASRPT (V = 2500) at saturating load,
//! plus the classical baselines the paper compares against — max-min
//! fair share (per-flow fairness, the TCP ideal), single-path ECMP SRPT
//! over the striped core planes, and RepFlow-style replication of
//! sub-100 KB flows across planes.
//!
//! The paper reports that at ~9.5 Gbps per port the fast BASRPT query FCT
//! stays below 2× SRPT's average and 4× its 99th percentile, while
//! background flows are essentially unaffected and the global throughput
//! improves. The `V` parameter is mapped to the paper-equivalent per-flow
//! weight `V/144` when the fabric is scaled down (see
//! `basrpt_bench::paper_equivalent_fast_basrpt`).

use basrpt_bench::{
    paper_equivalent_fast_basrpt, run_fabric_with, run_seeds, seeds_from_env, Scale, SeedStats,
    FCT_BASE_LATENCY_US,
};
use basrpt_core::{RepFlow, Srpt};
use dcn_fabric::{
    simulate_ecmp, simulate_fair_share, simulate_repflow, FabricRun, FatTree, SimConfig,
};
use dcn_metrics::TextTable;
use dcn_types::{FlowClass, SimTime};
use dcn_workload::TrafficSpec;

/// The seed the recorded single-run numbers were produced with.
const DEFAULT_SEED: u64 = 7;

/// One baseline row: a full engine invocation rather than a crossbar
/// scheduler, so the list can range over the non-crossbar fair-share and
/// RepFlow engines alongside the matched disciplines.
type RunRow = fn(&FatTree, &TrafficSpec, u64, SimConfig) -> FabricRun;

fn row_srpt(topo: &FatTree, spec: &TrafficSpec, seed: u64, cfg: SimConfig) -> FabricRun {
    run_fabric_with(topo, spec, &mut Srpt::new(), seed, cfg)
}

fn row_fast_basrpt(topo: &FatTree, spec: &TrafficSpec, seed: u64, cfg: SimConfig) -> FabricRun {
    let mut sched = paper_equivalent_fast_basrpt(2500.0, topo.num_hosts() as usize);
    run_fabric_with(topo, spec, &mut sched, seed, cfg)
}

fn row_fair_share(topo: &FatTree, spec: &TrafficSpec, seed: u64, cfg: SimConfig) -> FabricRun {
    simulate_fair_share(topo, spec.generator(seed).expect("valid spec"), cfg)
        .expect("valid simulation")
}

/// Single-path routing: each flow is hashed onto one of the fabric's
/// striped core planes and filtered against that plane's budget alone.
fn row_ecmp_srpt(topo: &FatTree, spec: &TrafficSpec, seed: u64, cfg: SimConfig) -> FabricRun {
    let mut cfg = cfg;
    cfg.enforce_core_capacity = true;
    simulate_ecmp(
        topo,
        &mut Srpt::new(),
        spec.generator(seed).expect("valid spec"),
        cfg,
    )
    .expect("valid simulation")
}

/// ECMP plus RepFlow replication: flows under 100 KB race a duplicate on
/// an alternate plane; the recorded FCT is the first copy to finish.
fn row_repflow(topo: &FatTree, spec: &TrafficSpec, seed: u64, cfg: SimConfig) -> FabricRun {
    let mut cfg = cfg;
    cfg.enforce_core_capacity = true;
    simulate_repflow(
        topo,
        &mut RepFlow::default(),
        spec.generator(seed).expect("valid spec"),
        cfg,
    )
    .expect("valid simulation")
    .run
}

/// The rows of the extended Table I. SRPT and fast BASRPT stay first so
/// the headline ratio below keeps its meaning.
fn baseline_rows() -> Vec<(&'static str, RunRow)> {
    vec![
        ("SRPT", row_srpt),
        ("fast BASRPT (V=2500)", row_fast_basrpt),
        ("max-min fair share", row_fair_share),
        ("ECMP SRPT (single path)", row_ecmp_srpt),
        ("RepFlow (<100 KB x2)", row_repflow),
    ]
}

/// Multi-seed variant: every metric as `mean ± CI95` over the sweep, one
/// simulation per (scheduler, seed) fanned out across cores.
fn seed_sweep(scale: Scale, seeds: &[u64]) {
    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let horizon = scale.fct_horizon();

    println!(
        "seed sweep over {} seeds {seeds:?}, {} worker threads\n",
        seeds.len(),
        basrpt_bench::threads_from_env().min(seeds.len())
    );
    let mut table = TextTable::new(vec![
        "scheme".into(),
        "query avg".into(),
        "query p99".into(),
        "bg avg".into(),
        "bg p99".into(),
        "throughput (Gbps)".into(),
    ]);
    for (label, row) in baseline_rows() {
        let runs = run_seeds(seeds, |seed| {
            let config = SimConfig::builder()
                .horizon(horizon)
                .base_latency(SimTime::from_micros(FCT_BASE_LATENCY_US))
                .build();
            row(&topo, &spec, seed, config)
        });
        let metric = |f: &dyn Fn(&dcn_fabric::FabricRun) -> f64| -> Vec<f64> {
            runs.iter().map(|(_, run)| f(run)).collect()
        };
        let q_avg = SeedStats::from_samples(&metric(&|r| {
            r.fct
                .summary(FlowClass::Query)
                .expect("queries finish")
                .mean_ms()
        }));
        let q_p99 = SeedStats::from_samples(&metric(&|r| {
            r.fct
                .summary(FlowClass::Query)
                .expect("queries finish")
                .p99_ms()
        }));
        let b_avg = SeedStats::from_samples(&metric(&|r| {
            r.fct
                .summary(FlowClass::Background)
                .expect("background finishes")
                .mean_ms()
        }));
        let b_p99 = SeedStats::from_samples(&metric(&|r| {
            r.fct
                .summary(FlowClass::Background)
                .expect("background finishes")
                .p99_ms()
        }));
        let tput = SeedStats::from_samples(&metric(&|r| r.average_throughput().gbps()));
        table.add_row(vec![
            label.to_string(),
            q_avg.display(3),
            q_p99.display(3),
            b_avg.display(2),
            b_p99.display(1),
            tput.display(1),
        ]);
    }
    println!("{table}");
}

fn main() {
    let scale = Scale::from_env();
    println!("== Table I: FCT (ms), SRPT vs fast BASRPT (V = 2500) ==");
    println!(
        "{scale}, load {:.0}%, latency floor {FCT_BASE_LATENCY_US} us\n",
        scale.saturating_load() * 100.0
    );

    let seeds = seeds_from_env(DEFAULT_SEED);
    if seeds.len() > 1 {
        seed_sweep(scale, &seeds);
        return;
    }

    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let horizon = scale.fct_horizon();

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "query avg".into(),
        "query p99".into(),
        "bg avg".into(),
        "bg p99".into(),
        "throughput (Gbps)".into(),
        "completions".into(),
    ]);

    let mut summaries = Vec::new();
    for (label, row) in baseline_rows() {
        let config = SimConfig::builder()
            .horizon(horizon)
            .base_latency(SimTime::from_micros(FCT_BASE_LATENCY_US))
            .build();
        let run = row(&topo, &spec, DEFAULT_SEED, config);
        let q = run.fct.summary(FlowClass::Query).expect("queries finish");
        let b = run
            .fct
            .summary(FlowClass::Background)
            .expect("background finishes");
        table.add_row(vec![
            label.to_string(),
            format!("{:.3}", q.mean_ms()),
            format!("{:.3}", q.p99_ms()),
            format!("{:.2}", b.mean_ms()),
            format!("{:.1}", b.p99_ms()),
            format!("{:.1}", run.average_throughput().gbps()),
            format!("{}", run.completions),
        ]);
        summaries.push((label.to_string(), q, b, run.average_throughput()));
    }
    println!("{table}");

    let (_, q_srpt, b_srpt, t_srpt) = &summaries[0];
    let (_, q_fb, b_fb, t_fb) = &summaries[1];
    println!("ratios (fast BASRPT / SRPT):");
    println!(
        "  query avg {:.2}x, query p99 {:.2}x, bg avg {:.2}x, bg p99 {:.2}x, throughput {:+.1} Gbps",
        q_fb.mean_ms() / q_srpt.mean_ms(),
        q_fb.p99_ms() / q_srpt.p99_ms(),
        b_fb.mean_ms() / b_srpt.mean_ms(),
        b_fb.p99_ms() / b_srpt.p99_ms(),
        t_fb.gbps() - t_srpt.gbps()
    );
    println!(
        "paper: query avg < 2x, query p99 < 4x, background ~ SRPT, throughput higher.\n\
         note: FCTs include the {FCT_BASE_LATENCY_US} us propagation floor. Our SRPT query\n\
         baseline is still lower than the paper's (the flow-level engine has no\n\
         per-packet queueing), so the query ratios run higher than the paper's\n\
         <2x / <4x while the absolute fast-BASRPT FCTs remain in the paper's\n\
         millisecond range; the background and throughput shapes match."
    );
    println!(
        "baselines: max-min fair share spreads capacity evenly, so queries queue\n\
         behind background flows; ECMP hashes each flow onto one striped core\n\
         plane (collisions serialize); RepFlow additionally races a duplicate of\n\
         every sub-100 KB flow on an alternate plane and keeps the first copy."
    );
}
