//! Extension — oversubscribed cores (beyond the paper's full-bisection
//! assumption).
//!
//! The paper abstracts the fabric as a non-blocking big switch because its
//! topology has full bisection bandwidth; real fabrics are often 2:1 or
//! 4:1 oversubscribed. Here the engine's per-rack uplink enforcement is
//! switched on and the same workload runs on a full-bisection fabric and a
//! 2:1-oversubscribed one, under SRPT and fast BASRPT. The qualitative
//! question: does backlog-awareness still stabilize queues when the
//! binding constraint moves from the hosts into the core?

use basrpt_bench::paper_equivalent_fast_basrpt;
use basrpt_core::{Scheduler, Srpt};
use dcn_fabric::{simulate, FatTree, SimConfig};
use dcn_metrics::{TextTable, TrendConfig};
use dcn_types::SimTime;
use dcn_workload::TrafficSpec;

fn main() {
    println!("== Extension: full-bisection vs 2:1-oversubscribed core ==\n");
    // 2 racks x 8 hosts. Full bisection needs 2 cores (80 Gbps of uplink);
    // one core gives 2:1 oversubscription.
    let full = FatTree::scaled(2, 8, 2).expect("valid");
    let over = FatTree::scaled(2, 8, 1).expect("valid");
    // Raise the cross-rack share so the core matters: 55 % of bytes are
    // queries with fabric-wide destinations. Expected cross-rack offered
    // load: 0.9 x 0.55 x (8 x 10 Gbps) x (8/15 of query destinations are in
    // the other rack) ~ 21 Gbps per direction on a 40 Gbps uplink *plus*
    // the matching constraint: at most 4 concurrent inter-rack flows per
    // rack at 10 Gbps each on the oversubscribed fabric, against 8 on the
    // full-bisection one. The binding resource is concurrency, not average
    // volume — exactly where the backlog-aware priority order matters.
    let spec = TrafficSpec::scaled(2, 8, 0.9)
        .expect("valid")
        .with_query_fraction(0.55)
        .expect("valid fraction");
    let horizon = SimTime::from_secs(10.0);
    let n = full.num_hosts() as usize;

    let mut table = TextTable::new(vec![
        "fabric".into(),
        "scheme".into(),
        "thpt (Gbps)".into(),
        "leftover (GB)".into(),
        "max-port queue verdict".into(),
        "query avg (ms)".into(),
    ]);
    for (fabric_label, topo) in [("full bisection", &full), ("2:1 oversub", &over)] {
        let mut schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
            ("SRPT".into(), Box::new(Srpt::new())),
            (
                "fast BASRPT (V=2500)".into(),
                Box::new(paper_equivalent_fast_basrpt(2500.0, n)),
            ),
        ];
        for (label, sched) in schedulers.iter_mut() {
            let run = simulate(
                topo,
                sched.as_mut(),
                spec.generator(5).expect("valid spec"),
                SimConfig::builder().horizon(horizon).build(),
            )
            .expect("valid simulation");
            let st = dcn_metrics::StabilityReport::classify(
                &run.max_port_backlog,
                TrendConfig::default(),
            );
            let q = run
                .fct
                .summary(dcn_types::FlowClass::Query)
                .expect("queries finish");
            table.add_row(vec![
                fabric_label.to_string(),
                label.clone(),
                format!("{:.1}", run.average_throughput().gbps()),
                format!("{:.2}", run.leftover_bytes.as_f64() / 1e9),
                st.verdict.to_string(),
                format!("{:.3}", q.mean_ms()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "finding: with the paper's rack-local background pattern the core \
         rarely binds even at 2:1 oversubscription — cross-rack traffic is \
         query-dominated and bursty concurrency only occasionally exceeds \
         the 4-flow uplink budget (slightly higher leftover). This is \
         evidence *for* the paper's big-switch abstraction: under its \
         workload the edge really is the bottleneck. Raising the uplink \
         pressure further simply overloads the core, which no scheduler \
         can fix (admissibility now fails at the uplinks)."
    );
}
