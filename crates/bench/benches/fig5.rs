//! Fig. 5 — (a) global throughput over the run and (b) the evolution of a
//! typical per-port queue, SRPT vs fast BASRPT (V = 2500) at saturating
//! load.
//!
//! The paper's claims: the SRPT queue keeps growing for the whole 500 s
//! while fast BASRPT's flattens at a finite level, and fast BASRPT's
//! cumulative delivered volume ends higher (the paper quotes a +5352 Gb
//! total gain).

use basrpt_bench::{paper_equivalent_fast_basrpt, run_fabric, Scale};
use basrpt_core::{Scheduler, Srpt};
use dcn_metrics::{TextTable, TimeSeries, TrendConfig};

fn print_series(label: &str, series: &TimeSeries, unit: f64, suffix: &str) {
    let s = series.downsample(10);
    let pts: Vec<String> = s
        .times()
        .iter()
        .zip(s.values())
        .map(|(t, v)| format!("{t:.0}s:{:.0}{suffix}", v / unit))
        .collect();
    println!("  {label:24} {}", pts.join(" "));
}

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 5: throughput and queue evolution at saturating load ==");
    println!("{scale}, load {:.0}%\n", scale.saturating_load() * 100.0);

    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let horizon = scale.stability_horizon();

    let mut runs = Vec::new();
    let mut schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
        ("SRPT".into(), Box::new(Srpt::new())),
        (
            "fast BASRPT (V=2500)".into(),
            Box::new(paper_equivalent_fast_basrpt(2500.0, n)),
        ),
    ];
    for (label, sched) in schedulers.iter_mut() {
        let run = run_fabric(&topo, &spec, sched.as_mut(), 1, horizon);
        runs.push((label.clone(), run));
    }

    println!("-- (a) cumulative delivered volume (GB) --");
    for (label, run) in &runs {
        print_series(label, &run.cumulative_delivered, 1e9, "");
    }
    println!();

    println!("-- (b) queue length of a typical port (MB) --");
    for (label, run) in &runs {
        print_series(label, &run.monitored_port_backlog, 1e6, "");
    }
    println!();

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "queue verdict".into(),
        "queue trend (MB/s)".into(),
        "stable level (MB)".into(),
        "delivered (GB)".into(),
        "avg throughput (Gbps)".into(),
    ]);
    for (label, run) in &runs {
        let st = run.monitored_port_stability(TrendConfig::default());
        table.add_row(vec![
            label.clone(),
            st.verdict.to_string(),
            format!("{:+.1}", st.slope_per_sec / 1e6),
            format!("{:.0}", st.tail_mean / 1e6),
            format!("{:.1}", run.throughput.delivered().as_f64() / 1e9),
            format!("{:.1}", run.average_throughput().gbps()),
        ]);
    }
    println!("{table}");

    let gain_gbit = (runs[1].1.throughput.delivered().as_f64()
        - runs[0].1.throughput.delivered().as_f64())
        * 8.0
        / 1e9;
    println!(
        "fast BASRPT delivered {gain_gbit:+.0} Gb more than SRPT over the run \
         (paper: +5352 Gb over 500 s at full scale)."
    );
}
