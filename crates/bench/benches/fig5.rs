//! Fig. 5 — (a) global throughput over the run and (b) the evolution of a
//! typical per-port queue, SRPT vs fast BASRPT (V = 2500) at saturating
//! load.
//!
//! The paper's claims: the SRPT queue keeps growing for the whole 500 s
//! while fast BASRPT's flattens at a finite level, and fast BASRPT's
//! cumulative delivered volume ends higher (the paper quotes a +5352 Gb
//! total gain).

use basrpt_bench::{
    paper_equivalent_fast_basrpt, run_fabric, run_seeds, seeds_from_env, Scale, SeedStats,
};
use basrpt_core::{Scheduler, Srpt};
use dcn_metrics::{StabilityVerdict, TextTable, TimeSeries, TrendConfig};

/// The seed the recorded single-run numbers were produced with.
const DEFAULT_SEED: u64 = 1;

fn print_series(label: &str, series: &TimeSeries, unit: f64, suffix: &str) {
    let s = series.downsample(10);
    let pts: Vec<String> = s
        .times()
        .iter()
        .zip(s.values())
        .map(|(t, v)| format!("{t:.0}s:{:.0}{suffix}", v / unit))
        .collect();
    println!("  {label:24} {}", pts.join(" "));
}

/// Multi-seed variant: the stability verdict must hold for *every* seed,
/// and the scalar metrics get `mean ± CI95` error bars.
fn seed_sweep(scale: Scale, seeds: &[u64]) {
    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let horizon = scale.stability_horizon();

    println!(
        "seed sweep over {} seeds {seeds:?}, {} worker threads\n",
        seeds.len(),
        basrpt_bench::threads_from_env().min(seeds.len())
    );
    let mut table = TextTable::new(vec![
        "scheme".into(),
        "unstable seeds".into(),
        "queue trend (MB/s)".into(),
        "stable level (MB)".into(),
        "delivered (GB)".into(),
        "avg throughput (Gbps)".into(),
    ]);
    type Mk = fn(usize) -> Box<dyn Scheduler>;
    let rows: Vec<(&str, Mk)> = vec![
        ("SRPT", |_| Box::new(Srpt::new())),
        ("fast BASRPT (V=2500)", |n| {
            Box::new(paper_equivalent_fast_basrpt(2500.0, n))
        }),
    ];
    for (label, mk) in rows {
        let runs = run_seeds(seeds, |seed| {
            let mut sched = mk(n);
            run_fabric(&topo, &spec, sched.as_mut(), seed, horizon)
        });
        let reports: Vec<_> = runs
            .iter()
            .map(|(_, run)| run.monitored_port_stability(TrendConfig::default()))
            .collect();
        let unstable = reports
            .iter()
            .filter(|st| st.verdict != StabilityVerdict::Stable)
            .count();
        let stat = |f: &dyn Fn(usize) -> f64| {
            SeedStats::from_samples(&(0..runs.len()).map(f).collect::<Vec<_>>())
        };
        table.add_row(vec![
            label.to_string(),
            format!("{unstable}/{}", runs.len()),
            stat(&|i| reports[i].slope_per_sec / 1e6).display(1),
            stat(&|i| reports[i].tail_mean / 1e6).display(0),
            stat(&|i| runs[i].1.throughput.delivered().as_f64() / 1e9).display(1),
            stat(&|i| runs[i].1.average_throughput().gbps()).display(1),
        ]);
    }
    println!("{table}");
}

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 5: throughput and queue evolution at saturating load ==");
    println!("{scale}, load {:.0}%\n", scale.saturating_load() * 100.0);

    let seeds = seeds_from_env(DEFAULT_SEED);
    if seeds.len() > 1 {
        seed_sweep(scale, &seeds);
        return;
    }

    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let horizon = scale.stability_horizon();

    let mut runs = Vec::new();
    let mut schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
        ("SRPT".into(), Box::new(Srpt::new())),
        (
            "fast BASRPT (V=2500)".into(),
            Box::new(paper_equivalent_fast_basrpt(2500.0, n)),
        ),
    ];
    for (label, sched) in schedulers.iter_mut() {
        let run = run_fabric(&topo, &spec, sched.as_mut(), DEFAULT_SEED, horizon);
        runs.push((label.clone(), run));
    }

    println!("-- (a) cumulative delivered volume (GB) --");
    for (label, run) in &runs {
        print_series(label, &run.cumulative_delivered, 1e9, "");
    }
    println!();

    println!("-- (b) queue length of a typical port (MB) --");
    for (label, run) in &runs {
        print_series(label, &run.monitored_port_backlog, 1e6, "");
    }
    println!();

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "queue verdict".into(),
        "queue trend (MB/s)".into(),
        "stable level (MB)".into(),
        "delivered (GB)".into(),
        "avg throughput (Gbps)".into(),
    ]);
    for (label, run) in &runs {
        let st = run.monitored_port_stability(TrendConfig::default());
        table.add_row(vec![
            label.clone(),
            st.verdict.to_string(),
            format!("{:+.1}", st.slope_per_sec / 1e6),
            format!("{:.0}", st.tail_mean / 1e6),
            format!("{:.1}", run.throughput.delivered().as_f64() / 1e9),
            format!("{:.1}", run.average_throughput().gbps()),
        ]);
    }
    println!("{table}");

    let gain_gbit = (runs[1].1.throughput.delivered().as_f64()
        - runs[0].1.throughput.delivered().as_f64())
        * 8.0
        / 1e9;
    println!(
        "fast BASRPT delivered {gain_gbit:+.0} Gb more than SRPT over the run \
         (paper: +5352 Gb over 500 s at full scale)."
    );
}
