//! Fig. 7 — impact of V on throughput (a) and queue-length evolution (b)
//! at saturating load, V ∈ {1000, 2500, 5000, 10000}.
//!
//! The paper's claims: as V grows the stable queue level rises slightly
//! and the global throughput declines slightly — V buys FCT (Fig. 8) at a
//! small stability/throughput cost.

use basrpt_bench::{paper_equivalent_fast_basrpt, run_fabric, Scale};
use dcn_metrics::{TextTable, TimeSeries, TrendConfig};

fn print_series(label: &str, series: &TimeSeries) {
    let s = series.downsample(10);
    let pts: Vec<String> = s
        .times()
        .iter()
        .zip(s.values())
        .map(|(t, v)| format!("{t:.0}s:{:.0}MB", v / 1e6))
        .collect();
    println!("  {label:12} {}", pts.join(" "));
}

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 7: throughput and queue level vs V ==");
    println!("{scale}, load {:.0}%\n", scale.saturating_load() * 100.0);

    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let horizon = scale.stability_horizon();

    let mut table = TextTable::new(vec![
        "V".into(),
        "queue verdict".into(),
        "queue trend (MB/s)".into(),
        "stable level (MB)".into(),
        "throughput (Gbps)".into(),
        "leftover (GB)".into(),
    ]);
    let mut series = Vec::new();
    for v in [1000.0, 2500.0, 5000.0, 10000.0] {
        let mut sched = paper_equivalent_fast_basrpt(v, n);
        let run = run_fabric(&topo, &spec, &mut sched, 1, horizon);
        let st = run.monitored_port_stability(TrendConfig::default());
        table.add_row(vec![
            format!("{v}"),
            st.verdict.to_string(),
            format!("{:+.1}", st.slope_per_sec / 1e6),
            format!("{:.0}", st.tail_mean / 1e6),
            format!("{:.1}", run.average_throughput().gbps()),
            format!("{:.2}", run.leftover_bytes.as_f64() / 1e9),
        ]);
        series.push((format!("V={v}"), run.monitored_port_backlog));
    }
    println!("{table}");
    println!("queue-length series at a typical port:");
    for (label, s) in &series {
        print_series(label, s);
    }
    println!(
        "\npaper: the stable queue level rises slightly and throughput \
         declines slightly as V grows."
    );
}
