//! Sustained-throughput benches for the streaming [`OnlineFabric`] engine.
//!
//! The batch benches (`fabric_scale`) measure whole-run wall time; this
//! group measures the online daemon's steady-state serving rate — how many
//! scheduling decisions per second the step-able engine sustains when
//! arrivals are offered one at a time and completions are drained as they
//! happen, exactly as `examples/daemon.rs` drives it.
//!
//! Three rows per fabric size (144 hosts `k = 4` and 1152 hosts `k = 16`,
//! both 3:1 oversubscribed, matching the `fabric_scale` cells):
//!
//! * `stream/<hosts>` — criterion-timed full offer/step/drain run, the
//!   apples-to-apples counterpart of `fat_tree_scale/end_to_end`.
//! * `decision_ns/<hosts>` — sustained wall nanoseconds per scheduling
//!   decision (run wall time / reschedules); the reciprocal is the
//!   decisions/sec figure in PERFMODEL.md.
//! * `offer_to_completion_ns/<hosts>` — mean wall-clock latency from
//!   `offer()` returning to the flow's completion record being drained
//!   (processing latency only: the driver never sleeps, so simulated
//!   waiting costs no wall time).
//!
//! Medians land in `results/bench.json` via the merging recorder.

use basrpt_core::Srpt;
use criterion::{criterion_group, BenchResult, BenchmarkId, Criterion};
use dcn_fabric::{KAryFatTree, OnlineFabric, SimConfig, Topology};
use dcn_types::{FlowId, SimTime};
use dcn_workload::{FlowArrival, QueryScope, TrafficSpec};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Whether this is the seconds-budget smoke run (`BASRPT_SCALE=quick`).
fn quick() -> bool {
    std::env::var("BASRPT_SCALE").as_deref() == Ok("quick")
}

/// The benchmarked fabric cells: (k, hosts_per_edge) → 144 and 1152 hosts.
const CELLS: &[(u32, u32)] = &[(4, 18), (16, 9)];

fn topo_for(k: u32, hosts_per_edge: u32) -> KAryFatTree {
    KAryFatTree::builder(k)
        .hosts_per_edge(hosts_per_edge)
        .oversubscription(3.0)
        .build()
        .expect("valid k-ary parameters")
}

fn arrivals_for(topo: &KAryFatTree, horizon: SimTime) -> Vec<FlowArrival> {
    TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), 0.6)
        .and_then(|s| s.with_query_scope(QueryScope::Cluster(topo.num_racks().max(2) / 2)))
        .expect("valid scoped spec")
        .generator(11)
        .expect("generator")
        .take_while(|a| a.time <= horizon)
        .collect()
}

/// Tallies from one full streaming run.
struct StreamStats {
    decisions: u64,
    completions: usize,
    /// Sum and count of wall-clock offer→completion latencies.
    latency_sum: Duration,
}

/// Drives one full daemon-style run: `step_before` each arrival, `offer`
/// it, drain completions as they appear, then run out the horizon.
fn stream_once(topo: &KAryFatTree, arrivals: &[FlowArrival], cfg: SimConfig) -> StreamStats {
    let mut sched = Srpt::new();
    let mut online = OnlineFabric::new(topo, &mut sched, cfg);
    let mut offered_at: HashMap<FlowId, Instant> = HashMap::with_capacity(arrivals.len());
    let mut latency_sum = Duration::ZERO;
    let mut completions = 0usize;
    let mut drain = |online: &mut OnlineFabric<'_, '_, KAryFatTree, Srpt>,
                     offered_at: &mut HashMap<FlowId, Instant>| {
        for c in online.drain_completions() {
            if let Some(t0) = offered_at.remove(&c.flow) {
                latency_sum += t0.elapsed();
            }
            completions += 1;
        }
    };
    for &arrival in arrivals {
        online.step_before(arrival.time).expect("step");
        drain(&mut online, &mut offered_at);
        if online.is_finished() {
            break;
        }
        online.offer(arrival).expect("offer");
        offered_at.insert(arrival.id, Instant::now());
    }
    online.step_until(cfg.horizon).expect("step to horizon");
    drain(&mut online, &mut offered_at);
    let decisions = online.finish().expect("finish").reschedules;
    StreamStats {
        decisions,
        completions,
        latency_sum,
    }
}

/// Criterion-timed full streaming runs across the fabric cells.
fn bench_daemon_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("daemon_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(if quick() { 1 } else { 3 }));

    let horizon = SimTime::from_secs(100e-6);
    let cfg = SimConfig::builder().horizon(horizon).build();
    for &(k, hosts_per_edge) in CELLS {
        let topo = topo_for(k, hosts_per_edge);
        let arrivals = arrivals_for(&topo, horizon);
        group.bench_with_input(
            BenchmarkId::new("stream", topo.num_hosts()),
            &arrivals,
            |b, arrivals| b.iter(|| stream_once(&topo, arrivals, cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_daemon_throughput);

fn main() {
    benches();
    let mut results = criterion::take_results();

    // Derived steady-state rows: one instrumented run per cell.
    let horizon = SimTime::from_secs(100e-6);
    let cfg = SimConfig::builder().horizon(horizon).build();
    for &(k, hosts_per_edge) in CELLS {
        let topo = topo_for(k, hosts_per_edge);
        let arrivals = arrivals_for(&topo, horizon);
        let start = Instant::now();
        let stats = stream_once(&topo, &arrivals, cfg);
        let wall = start.elapsed();
        let hosts = topo.num_hosts();
        if stats.decisions > 0 {
            let per_decision = wall.as_nanos() as f64 / stats.decisions as f64;
            println!(
                "daemon_throughput: {hosts} hosts — {} decisions in {wall:?} \
                 ({:.0} ns/decision, {:.0} decisions/sec)",
                stats.decisions,
                per_decision,
                1e9 / per_decision,
            );
            results.push(BenchResult {
                id: format!("daemon_throughput/decision_ns/{hosts}"),
                median_ns: per_decision,
                n: stats.decisions as usize,
            });
        }
        if stats.completions > 0 {
            results.push(BenchResult {
                id: format!("daemon_throughput/offer_to_completion_ns/{hosts}"),
                median_ns: stats.latency_sum.as_nanos() as f64 / stats.completions as f64,
                n: stats.completions,
            });
        }
    }

    match basrpt_bench::write_merged(&results) {
        Ok(path) => println!("recorded {} benchmark medians to {path}", results.len()),
        Err(e) => eprintln!("could not write bench.json: {e}"),
    }
}
