//! Fig. 8 — impact of V on FCTs at saturating load,
//! V ∈ {1000, 2500, 5000, 10000}.
//!
//! The paper's claims: larger V sharply reduces both the average and the
//! 99th-percentile query FCT; background average FCT rises with V (larger
//! flows lose more slots to queries) while the background 99th percentile
//! slightly falls.

use basrpt_bench::{paper_equivalent_fast_basrpt, run_fabric, Scale};
use dcn_metrics::TextTable;
use dcn_types::FlowClass;

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 8: FCT vs V at saturating load ==");
    println!("{scale}, load {:.0}%\n", scale.saturating_load() * 100.0);

    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let horizon = scale.fct_horizon();

    let mut table = TextTable::new(vec![
        "V".into(),
        "query avg (ms)".into(),
        "query p99 (ms)".into(),
        "bg avg (ms)".into(),
        "bg p99 (ms)".into(),
    ]);
    let mut first_last = Vec::new();
    for v in [1000.0, 2500.0, 5000.0, 10000.0] {
        let mut sched = paper_equivalent_fast_basrpt(v, n);
        let run = run_fabric(&topo, &spec, &mut sched, 3, horizon);
        let q = run.fct.summary(FlowClass::Query).expect("queries finish");
        let b = run
            .fct
            .summary(FlowClass::Background)
            .expect("background finishes");
        table.add_row(vec![
            format!("{v}"),
            format!("{:.3}", q.mean_ms()),
            format!("{:.3}", q.p99_ms()),
            format!("{:.2}", b.mean_ms()),
            format!("{:.1}", b.p99_ms()),
        ]);
        first_last.push((q.mean_ms(), q.p99_ms()));
    }
    println!("{table}");
    let (first, last) = (first_last.first().unwrap(), first_last.last().unwrap());
    println!(
        "query FCT improvement from V=1000 to V=10000: avg {:.1}x, p99 {:.1}x",
        first.0 / last.0,
        first.1 / last.1
    );
    println!(
        "paper: query avg and p99 fall sharply with V; background avg rises, \
         background p99 slightly falls."
    );
}
