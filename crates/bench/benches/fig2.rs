//! Fig. 2 — queue length at a port: SRPT grows without bound at a load
//! inside capacity; the simple threshold backlog-aware strategy stabilizes.
//!
//! Two parts:
//!
//! 1. the paper's setup — the fat-tree fabric under the measured traffic
//!    pattern at ~92 % per-port load (9.2 Gbps of 10 Gbps), comparing SRPT
//!    against the threshold strategy, with the max-min fair-share and
//!    RepFlow replication baselines run under the same load for context;
//! 2. a deterministic witness — the two-bottleneck starvation gadget where
//!    SRPT's growth rate is analytically ~97 MB/s, removing any doubt that
//!    part 1's growth is a transient.

use basrpt_bench::{run_fabric, run_seeds, seeds_from_env, Scale, SeedStats};
use basrpt_core::{RepFlow, Scheduler, Srpt, ThresholdBacklogSrpt};
use dcn_fabric::{simulate, simulate_fair_share, simulate_repflow, FabricRun, FatTree, SimConfig};
use dcn_metrics::{StabilityVerdict, TextTable, TrendConfig};
use dcn_types::SimTime;
use dcn_workload::{StarvationScript, TrafficSpec};

/// The seed the recorded single-run numbers were produced with.
const DEFAULT_SEED: u64 = 1;

/// A stability row: one full engine run at (threshold, seed, horizon), so
/// the comparison can include the non-crossbar fair-share and RepFlow
/// baselines alongside the crossbar disciplines.
type RunRow = fn(&FatTree, &TrafficSpec, u64, u64, SimTime) -> FabricRun;

fn row_srpt(
    topo: &FatTree,
    spec: &TrafficSpec,
    _thr: u64,
    seed: u64,
    horizon: SimTime,
) -> FabricRun {
    run_fabric(topo, spec, &mut Srpt::new(), seed, horizon)
}

fn row_threshold(
    topo: &FatTree,
    spec: &TrafficSpec,
    thr: u64,
    seed: u64,
    horizon: SimTime,
) -> FabricRun {
    run_fabric(
        topo,
        spec,
        &mut ThresholdBacklogSrpt::new(thr),
        seed,
        horizon,
    )
}

fn row_fair_share(
    topo: &FatTree,
    spec: &TrafficSpec,
    _thr: u64,
    seed: u64,
    horizon: SimTime,
) -> FabricRun {
    let cfg = SimConfig::builder().horizon(horizon).build();
    simulate_fair_share(topo, spec.generator(seed).expect("valid spec"), cfg)
        .expect("valid simulation")
}

fn row_repflow(
    topo: &FatTree,
    spec: &TrafficSpec,
    _thr: u64,
    seed: u64,
    horizon: SimTime,
) -> FabricRun {
    let cfg = SimConfig::builder()
        .horizon(horizon)
        .enforce_core_capacity(true)
        .build();
    simulate_repflow(
        topo,
        &mut RepFlow::default(),
        spec.generator(seed).expect("valid spec"),
        cfg,
    )
    .expect("valid simulation")
    .run
}

/// The part-1 comparison set: the paper's SRPT-vs-threshold pair plus the
/// fair-share and RepFlow baselines under the same saturating load.
fn stability_rows() -> Vec<(&'static str, RunRow)> {
    vec![
        ("SRPT", row_srpt),
        ("threshold backlog-aware SRPT", row_threshold),
        ("max-min fair share", row_fair_share),
        ("RepFlow (<100 KB x2)", row_repflow),
    ]
}

fn print_series(label: &str, series: &dcn_metrics::TimeSeries) {
    let s = series.downsample(12);
    let pts: Vec<String> = s
        .times()
        .iter()
        .zip(s.values())
        .map(|(t, v)| format!("{t:.1}s:{:.0}MB", v / 1e6))
        .collect();
    println!("  {label:32} {}", pts.join("  "));
}

/// Multi-seed variant of part 1: verdicts counted over seeds, scalar
/// metrics reported as `mean ± CI95`, one simulation per (scheduler, seed)
/// fanned out across cores.
fn part1_seed_sweep(scale: Scale, seeds: &[u64]) {
    println!("-- part 1: measured traffic pattern at 92% load --\n");
    let topo = scale.topology();
    let spec = scale.spec(0.92).expect("valid load");
    let horizon = scale.stability_horizon();
    let threshold = 50_000_000u64;

    println!(
        "seed sweep over {} seeds {seeds:?}, {} worker threads\n",
        seeds.len(),
        basrpt_bench::threads_from_env().min(seeds.len())
    );
    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "unstable seeds".into(),
        "trend (MB/s)".into(),
        "final port queue (MB)".into(),
        "throughput (Gbps)".into(),
        "leftover (GB)".into(),
    ]);
    for (label, row) in stability_rows() {
        let runs = run_seeds(seeds, |seed| row(&topo, &spec, threshold, seed, horizon));
        let reports: Vec<_> = runs
            .iter()
            .map(|(_, run)| run.monitored_port_stability(TrendConfig::default()))
            .collect();
        let unstable = reports
            .iter()
            .filter(|st| st.verdict != StabilityVerdict::Stable)
            .count();
        let stat = |f: &dyn Fn(usize) -> f64| {
            SeedStats::from_samples(&(0..runs.len()).map(f).collect::<Vec<_>>())
        };
        table.add_row(vec![
            label.to_string(),
            format!("{unstable}/{}", runs.len()),
            stat(&|i| reports[i].slope_per_sec / 1e6).display(1),
            stat(&|i| reports[i].last_value / 1e6).display(0),
            stat(&|i| runs[i].1.average_throughput().gbps()).display(1),
            stat(&|i| runs[i].1.leftover_bytes.as_f64() / 1e9).display(2),
        ]);
    }
    println!("{table}");
}

fn part1_measured_traffic(scale: Scale) {
    println!("-- part 1: measured traffic pattern at 92% load --\n");
    let topo = scale.topology();
    let spec = scale.spec(0.92).expect("valid load");
    let horizon = scale.stability_horizon();
    // The threshold is scaled to the stable queue level observed at this
    // fabric size (50 MB per VOQ at default scale).
    let threshold = 50_000_000u64;

    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "port queue verdict".into(),
        "trend (MB/s)".into(),
        "final port queue (MB)".into(),
        "throughput (Gbps)".into(),
        "leftover (GB)".into(),
    ]);
    let mut series = Vec::new();
    for (label, row) in stability_rows() {
        let run = row(&topo, &spec, threshold, DEFAULT_SEED, horizon);
        let st = run.monitored_port_stability(TrendConfig::default());
        table.add_row(vec![
            label.to_string(),
            st.verdict.to_string(),
            format!("{:+.1}", st.slope_per_sec / 1e6),
            format!("{:.0}", st.last_value / 1e6),
            format!("{:.1}", run.average_throughput().gbps()),
            format!("{:.2}", run.leftover_bytes.as_f64() / 1e9),
        ]);
        series.push((label.to_string(), run.monitored_port_backlog));
    }
    println!("{table}");
    println!("queue-length series (time:port-backlog):");
    for (label, s) in &series {
        print_series(label, s);
    }
    println!();
}

fn part2_deterministic_witness() {
    println!("-- part 2: deterministic starvation gadget (2 bottlenecks) --\n");
    let topo = FatTree::scaled(1, 4, 1).expect("valid");
    let script = || StarvationScript::with_defaults(topo.edge_rate()).expect("valid");
    let horizon = SimTime::from_secs(3.0);
    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "A-port queue trend (MB/s)".into(),
        "leftover (MB)".into(),
    ]);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Srpt::new()),
        Box::new(ThresholdBacklogSrpt::new(15_000_000)),
    ];
    for mut sched in schedulers {
        let config = SimConfig::builder().horizon(horizon).build();
        let run = simulate(&topo, sched.as_mut(), script(), config).expect("valid simulation");
        let slope = run.monitored_port_backlog.slope().unwrap_or(0.0);
        table.add_row(vec![
            sched.name().to_string(),
            format!("{:+.1}", slope / 1e6),
            format!("{:.1}", run.leftover_bytes.as_f64() / 1e6),
        ]);
    }
    println!("{table}");
    println!("analytic SRPT growth rate for the gadget: ~97 MB/s.");
}

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 2: per-port queue evolution, SRPT vs backlog-aware ==");
    println!("{scale}\n");
    let seeds = seeds_from_env(DEFAULT_SEED);
    if seeds.len() > 1 {
        part1_seed_sweep(scale, &seeds);
    } else {
        part1_measured_traffic(scale);
    }
    // Part 2 is a deterministic script: seeds do not apply.
    part2_deterministic_witness();
}
