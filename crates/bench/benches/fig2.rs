//! Fig. 2 — queue length at a port: SRPT grows without bound at a load
//! inside capacity; the simple threshold backlog-aware strategy stabilizes.
//!
//! Two parts:
//!
//! 1. the paper's setup — the fat-tree fabric under the measured traffic
//!    pattern at ~92 % per-port load (9.2 Gbps of 10 Gbps), comparing SRPT
//!    against the threshold strategy;
//! 2. a deterministic witness — the two-bottleneck starvation gadget where
//!    SRPT's growth rate is analytically ~97 MB/s, removing any doubt that
//!    part 1's growth is a transient.

use basrpt_bench::{run_fabric, run_seeds, seeds_from_env, Scale, SeedStats};
use basrpt_core::{Scheduler, Srpt, ThresholdBacklogSrpt};
use dcn_fabric::{simulate, FatTree, SimConfig};
use dcn_metrics::{StabilityVerdict, TextTable, TrendConfig};
use dcn_types::SimTime;
use dcn_workload::StarvationScript;

/// The seed the recorded single-run numbers were produced with.
const DEFAULT_SEED: u64 = 1;

fn print_series(label: &str, series: &dcn_metrics::TimeSeries) {
    let s = series.downsample(12);
    let pts: Vec<String> = s
        .times()
        .iter()
        .zip(s.values())
        .map(|(t, v)| format!("{t:.1}s:{:.0}MB", v / 1e6))
        .collect();
    println!("  {label:32} {}", pts.join("  "));
}

/// Multi-seed variant of part 1: verdicts counted over seeds, scalar
/// metrics reported as `mean ± CI95`, one simulation per (scheduler, seed)
/// fanned out across cores.
fn part1_seed_sweep(scale: Scale, seeds: &[u64]) {
    println!("-- part 1: measured traffic pattern at 92% load --\n");
    let topo = scale.topology();
    let spec = scale.spec(0.92).expect("valid load");
    let horizon = scale.stability_horizon();
    let threshold = 50_000_000u64;

    println!(
        "seed sweep over {} seeds {seeds:?}, {} worker threads\n",
        seeds.len(),
        basrpt_bench::threads_from_env().min(seeds.len())
    );
    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "unstable seeds".into(),
        "trend (MB/s)".into(),
        "final port queue (MB)".into(),
        "throughput (Gbps)".into(),
        "leftover (GB)".into(),
    ]);
    type Mk = fn(u64) -> Box<dyn Scheduler>;
    let rows: Vec<(&str, Mk)> = vec![
        ("SRPT", |_| Box::new(Srpt::new())),
        ("threshold backlog-aware SRPT", |thr| {
            Box::new(ThresholdBacklogSrpt::new(thr))
        }),
    ];
    for (label, mk) in rows {
        let runs = run_seeds(seeds, |seed| {
            let mut sched = mk(threshold);
            run_fabric(&topo, &spec, sched.as_mut(), seed, horizon)
        });
        let reports: Vec<_> = runs
            .iter()
            .map(|(_, run)| run.monitored_port_stability(TrendConfig::default()))
            .collect();
        let unstable = reports
            .iter()
            .filter(|st| st.verdict != StabilityVerdict::Stable)
            .count();
        let stat = |f: &dyn Fn(usize) -> f64| {
            SeedStats::from_samples(&(0..runs.len()).map(f).collect::<Vec<_>>())
        };
        table.add_row(vec![
            label.to_string(),
            format!("{unstable}/{}", runs.len()),
            stat(&|i| reports[i].slope_per_sec / 1e6).display(1),
            stat(&|i| reports[i].last_value / 1e6).display(0),
            stat(&|i| runs[i].1.average_throughput().gbps()).display(1),
            stat(&|i| runs[i].1.leftover_bytes.as_f64() / 1e9).display(2),
        ]);
    }
    println!("{table}");
}

fn part1_measured_traffic(scale: Scale) {
    println!("-- part 1: measured traffic pattern at 92% load --\n");
    let topo = scale.topology();
    let spec = scale.spec(0.92).expect("valid load");
    let horizon = scale.stability_horizon();
    // The threshold is scaled to the stable queue level observed at this
    // fabric size (50 MB per VOQ at default scale).
    let threshold = 50_000_000u64;

    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "port queue verdict".into(),
        "trend (MB/s)".into(),
        "final port queue (MB)".into(),
        "throughput (Gbps)".into(),
        "leftover (GB)".into(),
    ]);
    let mut series = Vec::new();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Srpt::new()),
        Box::new(ThresholdBacklogSrpt::new(threshold)),
    ];
    for mut sched in schedulers {
        let run = run_fabric(&topo, &spec, sched.as_mut(), DEFAULT_SEED, horizon);
        let st = run.monitored_port_stability(TrendConfig::default());
        table.add_row(vec![
            sched.name().to_string(),
            st.verdict.to_string(),
            format!("{:+.1}", st.slope_per_sec / 1e6),
            format!("{:.0}", st.last_value / 1e6),
            format!("{:.1}", run.average_throughput().gbps()),
            format!("{:.2}", run.leftover_bytes.as_f64() / 1e9),
        ]);
        series.push((sched.name().to_string(), run.monitored_port_backlog));
    }
    println!("{table}");
    println!("queue-length series (time:port-backlog):");
    for (label, s) in &series {
        print_series(label, s);
    }
    println!();
}

fn part2_deterministic_witness() {
    println!("-- part 2: deterministic starvation gadget (2 bottlenecks) --\n");
    let topo = FatTree::scaled(1, 4, 1).expect("valid");
    let script = || StarvationScript::with_defaults(topo.edge_rate()).expect("valid");
    let horizon = SimTime::from_secs(3.0);
    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "A-port queue trend (MB/s)".into(),
        "leftover (MB)".into(),
    ]);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Srpt::new()),
        Box::new(ThresholdBacklogSrpt::new(15_000_000)),
    ];
    for mut sched in schedulers {
        let config = SimConfig::builder().horizon(horizon).build();
        let run = simulate(&topo, sched.as_mut(), script(), config).expect("valid simulation");
        let slope = run.monitored_port_backlog.slope().unwrap_or(0.0);
        table.add_row(vec![
            sched.name().to_string(),
            format!("{:+.1}", slope / 1e6),
            format!("{:.1}", run.leftover_bytes.as_f64() / 1e6),
        ]);
    }
    println!("{table}");
    println!("analytic SRPT growth rate for the gadget: ~97 MB/s.");
}

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 2: per-port queue evolution, SRPT vs backlog-aware ==");
    println!("{scale}\n");
    let seeds = seeds_from_env(DEFAULT_SEED);
    if seeds.len() > 1 {
        part1_seed_sweep(scale, &seeds);
    } else {
        part1_measured_traffic(scale);
    }
    // Part 2 is a deterministic script: seeds do not apply.
    part2_deterministic_witness();
}
