//! Ablation (§IV-B design choice) — the penalty must be the *mean*
//! selected size, not the *sum*: "The average value rather than the sum is
//! to avoid the preference for scheduling with less flows which lowers the
//! link utilization."
//!
//! Random small-switch instances are scheduled under both objectives. The
//! sum objective systematically selects fewer flows (lower instantaneous
//! utilization of the crossbar), confirming the paper's reasoning.

use basrpt_core::{ExactBasrpt, FlowState, FlowTable, PenaltyKind};
use dcn_metrics::TextTable;
use dcn_types::{FlowId, HostId, Voq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PORTS: u32 = 5;
const INSTANCES: usize = 300;

fn random_table(rng: &mut StdRng) -> FlowTable {
    let mut table = FlowTable::new();
    let n_flows = rng.gen_range(2..=14usize);
    for i in 0..n_flows {
        let src = rng.gen_range(0..PORTS);
        let mut dst = rng.gen_range(0..PORTS - 1);
        if dst >= src {
            dst += 1;
        }
        table
            .insert(FlowState::new(
                FlowId::new(i as u64),
                Voq::new(HostId::new(src), HostId::new(dst)),
                rng.gen_range(1..=1_000u64),
            ))
            .expect("unique ids");
    }
    table
}

fn main() {
    println!("== Ablation: mean vs sum penalty in the exact BASRPT objective ==");
    println!("{PORTS}-port switch, {INSTANCES} random instances per V\n");

    let mut table = TextTable::new(vec![
        "V".into(),
        "avg selected (mean obj)".into(),
        "avg selected (sum obj)".into(),
        "sum picks fewer".into(),
    ]);
    for v in [1.0, 10.0, 100.0, 1000.0] {
        let mut rng = StdRng::seed_from_u64(99);
        let mut mean_total = 0usize;
        let mut sum_total = 0usize;
        let mut fewer = 0usize;
        for _ in 0..INSTANCES {
            let t = random_table(&mut rng);
            let mean_s = ExactBasrpt::new(v).try_schedule(&t).expect("small");
            let sum_s = ExactBasrpt::new(v)
                .with_penalty(PenaltyKind::SumSize)
                .try_schedule(&t)
                .expect("small");
            mean_total += mean_s.len();
            sum_total += sum_s.len();
            if sum_s.len() < mean_s.len() {
                fewer += 1;
            }
        }
        table.add_row(vec![
            format!("{v}"),
            format!("{:.2}", mean_total as f64 / INSTANCES as f64),
            format!("{:.2}", sum_total as f64 / INSTANCES as f64),
            format!(
                "{fewer}/{INSTANCES} ({:.0}%)",
                100.0 * fewer as f64 / INSTANCES as f64
            ),
        ]);
    }
    println!("{table}");
    println!(
        "expected: the sum objective selects fewer flows as V grows — the \
         utilization loss the paper's mean-penalty design avoids. (Both \
         objectives only search maximal schedules, so the gap is bounded; \
         without the maximality constraint the sum objective would idle \
         even more of the crossbar.)"
    );
}
