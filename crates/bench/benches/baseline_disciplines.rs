//! End-to-end cost of the baseline disciplines on one congested fabric.
//!
//! One group, `baseline_disciplines`: the same oversubscribed k-ary
//! fat-tree workload run through each engine the baselines added —
//!
//! * `srpt` — the production delta-rate engine with the aggregate core
//!   filter (the reference point every other engine is measured against);
//! * `fair_share` — the incremental max-min water-filling engine, whose
//!   per-event cost is dominated by allocator rounds instead of the
//!   crossbar matching;
//! * `ecmp_srpt` — single-path routing: the per-plane budget filter in
//!   place of the aggregate one, no replication;
//! * `repflow` — ECMP plus replica races for every sub-100 KB flow, which
//!   adds the race bookkeeping and a second admission pass on top.
//!
//! Medians land in `results/bench.json` via the merging recorder, so the
//! relative cost of the baselines is tracked alongside the scale curves.

use basrpt_core::{RepFlow, Srpt};
use criterion::{criterion_group, BenchmarkId, Criterion};
use dcn_fabric::{
    simulate, simulate_ecmp, simulate_fair_share, simulate_repflow, KAryFatTree, SimConfig,
    Topology,
};
use dcn_types::SimTime;
use dcn_workload::{FlowArrival, TrafficSpec};
use std::time::Duration;

/// Whether this is the seconds-budget smoke run (`BASRPT_SCALE=quick`).
fn quick() -> bool {
    std::env::var("BASRPT_SCALE").as_deref() == Ok("quick")
}

/// The measured fabric: 2:1 oversubscribed, two core planes of exactly
/// one edge-rate flow each, so the plane filters bind and RepFlow's
/// races actually run (the same shape the differential suites pin).
fn bench_topology() -> KAryFatTree {
    KAryFatTree::builder(4)
        .hosts_per_edge(4)
        .oversubscription(2.0)
        .build()
        .expect("valid k-ary parameters")
}

fn arrivals_for(topo: &KAryFatTree, load: f64, horizon: SimTime, seed: u64) -> Vec<FlowArrival> {
    TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), load)
        .expect("valid scaled spec")
        .generator(seed)
        .expect("generator")
        .take_while(|a| a.time < horizon)
        .collect()
}

fn bench_baseline_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_disciplines");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(if quick() { 1 } else { 3 }));

    let topo = bench_topology();
    let horizon = SimTime::from_millis(if quick() { 5.0 } else { 20.0 });
    let cfg = SimConfig::builder().horizon(horizon).build();
    let arrivals = arrivals_for(&topo, 0.8, horizon, 11);

    group.bench_with_input(
        BenchmarkId::new("end_to_end", "srpt"),
        &arrivals,
        |b, arrivals| {
            b.iter(|| {
                simulate(&topo, &mut Srpt::new(), arrivals.iter().copied(), cfg)
                    .expect("fabric run")
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("end_to_end", "fair_share"),
        &arrivals,
        |b, arrivals| {
            b.iter(|| {
                simulate_fair_share(&topo, arrivals.iter().copied(), cfg).expect("fabric run")
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("end_to_end", "ecmp_srpt"),
        &arrivals,
        |b, arrivals| {
            b.iter(|| {
                simulate_ecmp(&topo, &mut Srpt::new(), arrivals.iter().copied(), cfg)
                    .expect("fabric run")
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("end_to_end", "repflow"),
        &arrivals,
        |b, arrivals| {
            b.iter(|| {
                simulate_repflow(
                    &topo,
                    &mut RepFlow::default(),
                    arrivals.iter().copied(),
                    cfg,
                )
                .expect("fabric run")
            })
        },
    );
    group.finish();
}

/// One full RepFlow run on the bench fabric, reported as a replication
/// effectiveness summary (the criterion group above measures cost; this
/// measures what the races buy).
fn print_replication_summary() {
    let topo = bench_topology();
    let horizon = SimTime::from_millis(20.0);
    let cfg = SimConfig::builder().horizon(horizon).build();
    let arrivals = arrivals_for(&topo, 0.8, horizon, 11);
    let rep = simulate_repflow(
        &topo,
        &mut RepFlow::default(),
        arrivals.iter().copied(),
        cfg,
    )
    .expect("fabric run");
    let s = &rep.stats;
    let wins: Vec<f64> = rep
        .completions
        .iter()
        .filter(|c| c.winner.is_some())
        .map(|c| (c.base_fct - c.fct).as_secs() * 1e6)
        .collect();
    let mean_gain_us = wins.iter().sum::<f64>() / wins.len().max(1) as f64;
    println!("\nreplication effectiveness (20 ms, 80% load, seed 11):");
    println!(
        "  flows {} | replicated {} | replica wins {} | mean FCT gain per win {:.1} us",
        rep.run.arrivals, s.replicated_flows, s.replica_wins, mean_gain_us
    );
    println!(
        "  replica bytes {} (winning {} / losing {} / racing {}) | cancelled primary bytes {}",
        s.replica_bytes,
        s.winning_replica_bytes,
        s.losing_replica_bytes,
        s.racing_replica_bytes,
        s.cancelled_primary_bytes
    );
}

criterion_group!(benches, bench_baseline_disciplines);

fn main() {
    benches();
    let results = criterion::take_results();
    match basrpt_bench::write_merged(&results) {
        Ok(path) => println!("recorded {} benchmark medians to {path}", results.len()),
        Err(e) => eprintln!("could not write bench.json: {e}"),
    }
    print_replication_summary();
}
