//! Scale benches for the parameterized-topology / sharded-engine redesign.
//!
//! Two groups, both end-to-end `dcn-fabric` runs (not micro-benchmarks):
//!
//! * `fat_tree_scale` — one global engine on `KAryFatTree` fabrics from
//!   144 to 9216 hosts (fixed simulated horizon, so the measured time
//!   tracks how per-event cost grows with fabric size). This is the
//!   motivating curve for sharding: the greedy matching ranks every
//!   active flow in the fabric on every reschedule, so doubling the
//!   fabric more than doubles the run time.
//!
//! * `shard_speedup` — the ISSUE acceptance measurement: the 1152-host
//!   k = 16 fat-tree (9 hosts per edge, 3:1 oversubscribed) under a
//!   cluster-separable workload, simulated via `simulate_sharded` at
//!   S ∈ {1, 2, 4, 8}. The machine this records on has **one core**, so
//!   any speedup is purely algorithmic — S independent engines each rank
//!   only their own component's flows, turning one `O(A log A)` matching
//!   per event into `O((A/S) log (A/S))` — and the differential suite
//!   (`tests/shard_differential.rs`) pins every row to the same output
//!   bits.
//!
//! Medians land in `results/bench.json` via the merging recorder.

use basrpt_core::Srpt;
use criterion::{criterion_group, BenchmarkId, Criterion};
use dcn_fabric::{simulate, simulate_sharded, KAryFatTree, SimConfig, Topology};
use dcn_types::SimTime;
use dcn_workload::{FlowArrival, QueryScope, TrafficSpec};
use std::time::Duration;

/// Whether this is the seconds-budget smoke run (`BASRPT_SCALE=quick`).
fn quick() -> bool {
    std::env::var("BASRPT_SCALE").as_deref() == Ok("quick")
}

/// A cluster-separable arrival vector for `topo`, cut at `horizon`.
fn arrivals_for(
    topo: &KAryFatTree,
    scope: QueryScope,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> Vec<FlowArrival> {
    TrafficSpec::scaled(topo.num_racks(), topo.hosts_per_rack(), load)
        .and_then(|s| s.with_query_scope(scope))
        .expect("valid scoped spec")
        .generator(seed)
        .expect("generator")
        .take_while(|a| a.time <= horizon)
        .collect()
}

/// One global engine across fabric sizes 144 → 9216 hosts.
fn bench_fat_tree_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fat_tree_scale");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(if quick() { 1 } else { 3 }));

    // (k, hosts_per_edge): 8·18 = 144, 32·18 = 576, 128·9 = 1152,
    // 128·18 = 2304, 512·18 = 9216 hosts.
    let cells: &[(u32, u32)] = if quick() {
        &[(4, 18), (16, 9)]
    } else {
        &[(4, 18), (8, 18), (16, 9), (16, 18), (32, 18)]
    };
    let horizon = SimTime::from_secs(100e-6);
    let cfg = SimConfig::builder().horizon(horizon).build();
    for &(k, hosts_per_edge) in cells {
        let topo = KAryFatTree::builder(k)
            .hosts_per_edge(hosts_per_edge)
            .oversubscription(3.0)
            .build()
            .expect("valid k-ary parameters");
        let arrivals = arrivals_for(&topo, QueryScope::Cluster(k / 2), 0.6, horizon, 11);
        group.bench_with_input(
            BenchmarkId::new("end_to_end", topo.num_hosts()),
            &arrivals,
            |b, arrivals| {
                b.iter(|| {
                    simulate(&topo, &mut Srpt::new(), arrivals.iter().copied(), cfg)
                        .expect("fabric run")
                })
            },
        );
    }
    group.finish();
}

/// The same 1152-host run at every shard count.
fn bench_shard_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_speedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(if quick() { 1 } else { 3 }));

    let topo = KAryFatTree::builder(16)
        .hosts_per_edge(9)
        .oversubscription(3.0)
        .build()
        .expect("valid k-ary parameters");
    let horizon = SimTime::from_secs(if quick() { 200e-6 } else { 500e-6 });
    let cfg = SimConfig::builder().horizon(horizon).build();
    let arrivals = arrivals_for(&topo, QueryScope::Cluster(8), 0.6, horizon, 11);
    let factory = || Srpt::new();
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("end_to_end", shards),
            &arrivals,
            |b, arrivals| {
                b.iter(|| {
                    simulate_sharded(&topo, &factory, arrivals.iter().copied(), cfg, shards)
                        .expect("sharded run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fat_tree_scale, bench_shard_speedup);

fn main() {
    benches();
    let results = criterion::take_results();
    match basrpt_bench::write_merged(&results) {
        Ok(path) => println!("recorded {} benchmark medians to {path}", results.len()),
        Err(e) => eprintln!("could not write bench.json: {e}"),
    }
}
