//! Fig. 6 — varying load 10 % → 80 %: average query FCT, 99th-percentile
//! query FCT and overall throughput for SRPT vs fast BASRPT (V = 2500).
//!
//! The paper's claims: at low load the two schemes are indistinguishable;
//! at 80 % load fast BASRPT's query FCT is within +7.4 % (mean) and
//! +29.7 % (p99) of SRPT's, and fast BASRPT's throughput is never lower.

use basrpt_bench::{paper_equivalent_fast_basrpt, run_fabric_with, Scale, FCT_BASE_LATENCY_US};
use basrpt_core::{Scheduler, Srpt};
use dcn_fabric::SimConfig;
use dcn_metrics::TextTable;
use dcn_types::{FlowClass, SimTime};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 6: load sweep 10%..80%, SRPT vs fast BASRPT (V=2500) ==");
    println!("{scale}, latency floor {FCT_BASE_LATENCY_US} us\n");

    let topo = scale.topology();
    let n = topo.num_hosts() as usize;
    let horizon = scale.fct_horizon();

    let mut table = TextTable::new(vec![
        "load".into(),
        "scheme".into(),
        "query avg (ms)".into(),
        "query p99 (ms)".into(),
        "bg avg (ms)".into(),
        "throughput (Gbps)".into(),
    ]);

    let loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let mut deltas = Vec::new();
    for &load in &loads {
        let spec = scale.spec(load).expect("valid load");
        let mut per_scheme = Vec::new();
        let mut schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
            ("SRPT".into(), Box::new(Srpt::new())),
            (
                "fast BASRPT".into(),
                Box::new(paper_equivalent_fast_basrpt(2500.0, n)),
            ),
        ];
        for (label, sched) in schedulers.iter_mut() {
            let config = SimConfig::builder()
                .horizon(horizon)
                .base_latency(SimTime::from_micros(FCT_BASE_LATENCY_US))
                .build();
            let run = run_fabric_with(&topo, &spec, sched.as_mut(), 11, config);
            let q = run.fct.summary(FlowClass::Query).expect("queries finish");
            let b = run
                .fct
                .summary(FlowClass::Background)
                .expect("background finishes");
            table.add_row(vec![
                format!("{:.0}%", load * 100.0),
                label.clone(),
                format!("{:.3}", q.mean_ms()),
                format!("{:.3}", q.p99_ms()),
                format!("{:.2}", b.mean_ms()),
                format!("{:.1}", run.average_throughput().gbps()),
            ]);
            per_scheme.push((q, run.average_throughput()));
        }
        let (q_srpt, t_srpt) = &per_scheme[0];
        let (q_fb, t_fb) = &per_scheme[1];
        deltas.push((
            load,
            (q_fb.mean_ms() / q_srpt.mean_ms() - 1.0) * 100.0,
            (q_fb.p99_ms() / q_srpt.p99_ms() - 1.0) * 100.0,
            t_fb.gbps() - t_srpt.gbps(),
        ));
    }
    println!("{table}");

    println!("fast BASRPT relative to SRPT:");
    let mut delta_table = TextTable::new(vec![
        "load".into(),
        "query avg delta".into(),
        "query p99 delta".into(),
        "throughput delta (Gbps)".into(),
    ]);
    for (load, dmean, dp99, dthpt) in &deltas {
        delta_table.add_row(vec![
            format!("{:.0}%", load * 100.0),
            format!("{dmean:+.1}%"),
            format!("{dp99:+.1}%"),
            format!("{dthpt:+.2}"),
        ]);
    }
    println!("{delta_table}");
    println!(
        "paper: near-identical at low load; at 80% load +7.4% (mean) and \
         +29.7% (p99), throughput always >= SRPT."
    );
}
