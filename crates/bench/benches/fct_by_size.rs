//! Extension — FCT broken down by flow-size bucket (the pFabric-style view
//! behind the paper's query/background split).
//!
//! Table I aggregates flows into two classes; this bench shows the same
//! runs through size buckets `(0,100KB] / (100KB,10MB] / (10MB,1GB]`,
//! making visible *where* fast BASRPT's stabilization takes its toll: tiny
//! flows lose their absolute priority, mid-size background flows gain.

use basrpt_bench::{paper_equivalent_fast_basrpt, run_fabric, Scale};
use basrpt_core::{Scheduler, Srpt};
use dcn_metrics::TextTable;

fn main() {
    let scale = Scale::from_env();
    println!("== Extension: FCT by flow-size bucket at saturating load ==");
    println!("{scale}, load {:.0}%\n", scale.saturating_load() * 100.0);

    let topo = scale.topology();
    let spec = scale.spec(scale.saturating_load()).expect("valid load");
    let n = topo.num_hosts() as usize;
    let horizon = scale.fct_horizon();

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "bucket".into(),
        "count".into(),
        "mean (ms)".into(),
        "p99 (ms)".into(),
        "max (ms)".into(),
    ]);
    let mut schedulers: Vec<(String, Box<dyn Scheduler>)> = vec![
        ("SRPT".into(), Box::new(Srpt::new())),
        (
            "fast BASRPT (V=2500)".into(),
            Box::new(paper_equivalent_fast_basrpt(2500.0, n)),
        ),
    ];
    for (label, sched) in schedulers.iter_mut() {
        let run = run_fabric(&topo, &spec, sched.as_mut(), 7, horizon);
        for (bucket, summary) in run.fct_by_size.summaries() {
            match summary {
                Some(s) => table.add_row(vec![
                    label.clone(),
                    bucket.to_string(),
                    s.count.to_string(),
                    format!("{:.3}", s.mean_secs * 1e3),
                    format!("{:.3}", s.p99_secs * 1e3),
                    format!("{:.3}", s.max_secs * 1e3),
                ]),
                None => table.add_row(vec![
                    label.clone(),
                    bucket.to_string(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    println!("{table}");
    println!(
        "expected: SRPT's smallest bucket is near line rate; fast BASRPT \
         trades some small-flow latency for bounded queues, and the largest \
         bucket (the flows SRPT starves) completes instead of aging."
    );
}
