//! Fig. 1 — the SRPT instability walk-through (3 flows, 2 bottlenecks).
//!
//! Regenerates the slot-by-slot outcome of the paper's motivating example:
//! SRPT (Fig. 1b) strands one packet of the 5-packet flow after 6 slots,
//! while the backlog-aware schedule (Fig. 1c) completes all three flows in
//! the same horizon, a throughput gain of 1/6 pkt/slot.

use basrpt_core::{ExactBasrpt, FastBasrpt, Scheduler, Srpt, ThresholdBacklogSrpt};
use dcn_metrics::TextTable;
use dcn_switch::fig1;

fn main() {
    println!("== Fig. 1: SRPT vs backlog-aware scheduling on the 3-flow example ==\n");
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Srpt::new()),
        Box::new(ExactBasrpt::new(0.8)),
        Box::new(FastBasrpt::new(0.8, 4)),
        Box::new(ThresholdBacklogSrpt::new(2)),
    ];

    let mut table = TextTable::new(vec![
        "scheduler".into(),
        "delivered (pkts)".into(),
        "stranded".into(),
        "f1 FCT".into(),
        "f2 FCT".into(),
        "f3 FCT".into(),
        "throughput (pkt/slot)".into(),
    ]);
    for mut sched in schedulers {
        let run = fig1::run_fig1(sched.as_mut());
        let fct_of = |pick: &dyn Fn(&dcn_switch::CompletedFlow) -> bool| {
            run.completions
                .iter()
                .find(|c| pick(c))
                .map_or("-".to_string(), |c| format!("{} slots", c.fct_slots()))
        };
        table.add_row(vec![
            sched.name().to_string(),
            format!("{}/{}", run.delivered_packets, fig1::TOTAL_PACKETS),
            format!("{}", run.leftover_packets),
            fct_of(&|c| c.size == 5),
            fct_of(&|c| c.voq.dst() == fig1::HOST_C),
            fct_of(&|c| c.voq.src() == fig1::HOST_D),
            format!(
                "{:.3}",
                run.delivered_packets as f64 / fig1::HORIZON_SLOTS as f64
            ),
        ]);
    }
    println!("{table}");
    println!(
        "paper: SRPT strands 1 packet (Fig. 1b); backlog-aware completes all \
         7 in 6 slots (Fig. 1c), +1/6 pkt/slot."
    );
}
