//! Multi-seed parallel sweeps with confidence intervals.
//!
//! The recorded experiments default to one seed per figure so their output
//! stays byte-comparable across runs. For error bars, set `BASRPT_SEEDS`
//! and the `fig2`, `fig5` and `table1` benches fan the per-seed simulations
//! out across cores with [`run_seeds`] (scoped `std::thread`s — no external
//! dependencies) and report each metric as `mean ± CI95` via [`SeedStats`].
//!
//! Environment variables:
//!
//! * `BASRPT_SEEDS` — either a single integer `N` (run `N` seeds starting
//!   at the bench's default seed: `default, default+1, …`) or an explicit
//!   comma-separated list (`3,7,11`). Unset, empty, `0` or `1` keep the
//!   single default seed.
//! * `BASRPT_THREADS` — worker thread cap; defaults to the machine's
//!   available parallelism. The sweep never spawns more workers than
//!   seeds.

use dcn_probe::EventCounterProbe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Two-sided 95% Student-t critical values for 1–30 degrees of freedom;
/// larger samples fall back to the normal approximation 1.96.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary of one scalar metric over a seed sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStats {
    /// Number of seeds (samples).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; zero for `n < 2`).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval for the mean
    /// (Student-t for small `n`); zero for `n < 2`.
    pub ci95: f64,
}

impl SeedStats {
    /// Computes mean, standard deviation and CI95 half-width of `samples`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice — a sweep always has at least one seed.
    pub fn from_samples(samples: &[f64]) -> SeedStats {
        assert!(!samples.is_empty(), "a sweep has at least one sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return SeedStats {
                n,
                mean,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std_dev = var.sqrt();
        let df = n - 1;
        let t = if df <= T95.len() { T95[df - 1] } else { 1.96 };
        SeedStats {
            n,
            mean,
            std_dev,
            ci95: t * std_dev / (n as f64).sqrt(),
        }
    }

    /// Renders `mean ± ci95` with the given number of decimals.
    pub fn display(&self, decimals: usize) -> String {
        if self.n < 2 {
            format!("{:.*}", decimals, self.mean)
        } else {
            format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.ci95)
        }
    }
}

/// The seeds to sweep, from `BASRPT_SEEDS` (see the module docs);
/// `default_seed` is the bench's recorded single-run seed.
pub fn seeds_from_env(default_seed: u64) -> Vec<u64> {
    parse_seeds(std::env::var("BASRPT_SEEDS").ok().as_deref(), default_seed)
}

fn parse_seeds(spec: Option<&str>, default_seed: u64) -> Vec<u64> {
    let spec = spec.unwrap_or("").trim();
    if spec.is_empty() {
        return vec![default_seed];
    }
    if spec.contains(',') {
        let seeds: Vec<u64> = spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        if seeds.is_empty() {
            return vec![default_seed];
        }
        return seeds;
    }
    match spec.parse::<u64>() {
        Ok(0) => vec![default_seed],
        Ok(count) => (0..count).map(|i| default_seed.wrapping_add(i)).collect(),
        Err(_) => vec![default_seed],
    }
}

/// Worker count from `BASRPT_THREADS`, defaulting to the machine's
/// available parallelism (at least 1).
pub fn threads_from_env() -> usize {
    std::env::var("BASRPT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Runs `job(seed)` for every seed, fanning out over at most `threads`
/// scoped worker threads, and returns the results **in seed order**
/// (independent of completion order). A panicking job aborts the whole
/// sweep when the scope joins.
pub fn run_seeds_with<T, F>(seeds: &[u64], threads: usize, job: F) -> Vec<(u64, T)>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = threads.clamp(1, seeds.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let result = job(seed);
                *slots[i]
                    .lock()
                    .expect("no worker panicked holding the lock") = Some(result);
            });
        }
    });
    seeds
        .iter()
        .copied()
        .zip(slots.into_iter().map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding the lock")
                .expect("every slot was filled before the scope joined")
        }))
        .collect()
}

/// [`run_seeds_with`] using the thread count from [`threads_from_env`].
pub fn run_seeds<T, F>(seeds: &[u64], job: F) -> Vec<(u64, T)>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_seeds_with(seeds, threads_from_env(), job)
}

/// Observed variant of [`run_seeds`]: every seed's job receives its own
/// fresh [`EventCounterProbe`] (probes are stateful, so sharing one across
/// worker threads is impossible by construction), and the per-seed probes
/// are folded into one merged sweep-wide report after the scope joins.
///
/// Returns the per-seed results in seed order plus the merged probe.
///
/// # Example
///
/// ```
/// use basrpt_bench::parallel::run_seeds_probed;
/// use dcn_probe::Probe;
///
/// let (results, merged) = run_seeds_probed(&[1, 2, 3], |seed, probe| {
///     probe.on_sample(&dcn_probe::SampleEvent {
///         time: 0.0,
///         table: &basrpt_core::FlowTable::new(),
///         delivered: 0.0,
///     });
///     seed * 10
/// });
/// assert_eq!(results, vec![(1, 10), (2, 20), (3, 30)]);
/// assert_eq!(merged.samples(), 3);
/// ```
pub fn run_seeds_probed<T, F>(seeds: &[u64], job: F) -> (Vec<(u64, T)>, EventCounterProbe)
where
    T: Send,
    F: Fn(u64, &mut EventCounterProbe) -> T + Sync,
{
    let per_seed = run_seeds(seeds, |seed| {
        let mut probe = EventCounterProbe::new();
        let out = job(seed, &mut probe);
        (out, probe)
    });
    let mut merged = EventCounterProbe::new();
    let results = per_seed
        .into_iter()
        .map(|(seed, (out, probe))| {
            merged.merge(&probe);
            (seed, out)
        })
        .collect();
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_samples() {
        let s = SeedStats::from_samples(&[4.0, 4.0, 4.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.display(2), "4.00 ± 0.00");
    }

    #[test]
    fn stats_match_hand_computation() {
        // Samples 1..=5: mean 3, sample variance 2.5, sd ~1.5811.
        let s = SeedStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        // t(df=4) = 2.776; ci = 2.776 * sd / sqrt(5).
        let expect = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-9, "ci95 = {}", s.ci95);
    }

    #[test]
    fn single_sample_has_no_interval() {
        let s = SeedStats::from_samples(&[7.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.display(1), "7.5");
    }

    #[test]
    fn seed_spec_parsing() {
        assert_eq!(parse_seeds(None, 7), vec![7]);
        assert_eq!(parse_seeds(Some(""), 7), vec![7]);
        assert_eq!(parse_seeds(Some("0"), 7), vec![7]);
        assert_eq!(parse_seeds(Some("1"), 7), vec![7]);
        assert_eq!(parse_seeds(Some("4"), 7), vec![7, 8, 9, 10]);
        assert_eq!(parse_seeds(Some("3, 7,11"), 1), vec![3, 7, 11]);
        assert_eq!(parse_seeds(Some("bogus"), 9), vec![9]);
    }

    #[test]
    fn sweep_preserves_seed_order_across_threads() {
        let seeds: Vec<u64> = (0..40).collect();
        let results = run_seeds_with(&seeds, 8, |seed| seed * seed);
        assert_eq!(results.len(), seeds.len());
        for (seed, sq) in results {
            assert_eq!(sq, seed * seed);
        }
    }

    #[test]
    fn sweep_with_one_thread_and_one_seed() {
        let results = run_seeds_with(&[42], 1, |seed| seed + 1);
        assert_eq!(results, vec![(42, 43)]);
    }
}
