//! Merging writer for `results/bench.json`.
//!
//! Several `[[bench]]` targets record machine-readable medians
//! (`sched_overhead`, `fabric_scale`). Each used to overwrite the whole
//! file, so running one target silently dropped the other's numbers. The
//! writer here merges instead: groups recorded by *this* invocation
//! replace their previous entries, every other group is carried over
//! verbatim, and the output stays deterministic (groups and rows sorted
//! by recording order within sorted groups).
//!
//! The file format is the hand-rolled JSON this module itself emits —
//! `{ group: { "function/parameter": { "median_ns": …, "n": … } } }` —
//! so the reader only has to understand its own writer (the workspace
//! deliberately vendors no JSON parser).

use criterion::BenchResult;
use std::collections::BTreeMap;
use std::io;

/// Workspace-level path of the recorded medians, anchored on this crate's
/// manifest so `cargo bench` resolves it regardless of its CWD.
pub const BENCH_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/bench.json");

/// `group → [(bench key, raw row object)]` in file order.
pub type Groups = BTreeMap<String, Vec<(String, String)>>;

/// Reads back the groups of an existing `bench.json`. Only lines in the
/// shape this module writes are recognised; anything else is ignored, so
/// a corrupt file degrades to "start fresh" rather than an error.
///
/// Public for the `perf_gate` binary, which compares a committed baseline
/// against freshly recorded medians.
pub fn parse_groups(text: &str) -> Groups {
    let mut groups = Groups::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        if let Some(stripped) = t.strip_suffix("\": {") {
            if let Some(name) = stripped.strip_prefix('"') {
                current = Some(name.to_string());
                groups.entry(name.to_string()).or_default();
                continue;
            }
        }
        if t == "}" || t == "}," {
            current = None;
            continue;
        }
        if let (Some(group), Some(rest)) = (&current, t.strip_prefix('"')) {
            if let Some((key, row)) = rest.split_once("\": ") {
                let row = row.trim_end_matches(',').to_string();
                if let Some(rows) = groups.get_mut(group) {
                    rows.push((key.to_string(), row));
                }
            }
        }
    }
    groups
}

/// Extracts the `median_ns` field from a row object in this module's own
/// format. Returns `None` on anything it did not write itself.
///
/// # Example
///
/// ```
/// use basrpt_bench::record::median_ns;
/// assert_eq!(median_ns("{ \"median_ns\": 12.5, \"n\": 15 }"), Some(12.5));
/// assert_eq!(median_ns("{}"), None);
/// ```
pub fn median_ns(row: &str) -> Option<f64> {
    let rest = row.split("\"median_ns\":").nth(1)?;
    let number: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    number.parse().ok()
}

fn render(groups: &Groups) -> String {
    let mut json = String::from("{\n");
    for (gi, (group, rows)) in groups.iter().enumerate() {
        json.push_str(&format!("  {group:?}: {{\n"));
        for (ri, (key, row)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {key:?}: {row}{}\n",
                if ri + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  }}{}\n",
            if gi + 1 < groups.len() { "," } else { "" }
        ));
    }
    json.push_str("}\n");
    json
}

/// Groups freshly recorded results as `group → [(key, row object)]`.
fn group_results(results: &[BenchResult]) -> Groups {
    let mut fresh = Groups::new();
    for r in results {
        let group = r.id.split('/').next().unwrap_or(&r.id).to_string();
        let key =
            r.id.strip_prefix(group.as_str())
                .and_then(|s| s.strip_prefix('/'))
                .unwrap_or(&r.id)
                .to_string();
        let row = format!("{{ \"median_ns\": {:.1}, \"n\": {} }}", r.median_ns, r.n);
        fresh.entry(group).or_default().push((key, row));
    }
    fresh
}

/// Merges `results` into `results/bench.json` and returns the path
/// written. Groups present in `results` are replaced wholesale (a rerun
/// of one bench target refreshes all of its rows); groups recorded by
/// other targets survive untouched.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_merged(results: &[BenchResult]) -> io::Result<String> {
    let mut groups = std::fs::read_to_string(BENCH_JSON_PATH)
        .map(|text| parse_groups(&text))
        .unwrap_or_default();
    for (group, rows) in group_results(results) {
        groups.insert(group, rows);
    }
    std::fs::write(BENCH_JSON_PATH, render(&groups))?;
    Ok(BENCH_JSON_PATH.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, median_ns: f64, n: usize) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            median_ns,
            n,
        }
    }

    #[test]
    fn roundtrip_preserves_groups_and_rows() {
        let rendered = render(&group_results(&[
            result("alpha/one_pass/100", 12.5, 15),
            result("alpha/one_pass/200", 25.0, 15),
            result("beta/scan/100", 7.0, 20),
        ]));
        let parsed = parse_groups(&rendered);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["alpha"].len(), 2);
        assert_eq!(parsed["alpha"][0].0, "one_pass/100");
        assert_eq!(parsed["beta"][0].1, "{ \"median_ns\": 7.0, \"n\": 20 }");
        assert_eq!(render(&parsed), rendered);
    }

    #[test]
    fn merge_replaces_only_the_recorded_groups() {
        let mut on_disk = group_results(&[
            result("alpha/one_pass/100", 12.5, 15),
            result("beta/scan/100", 7.0, 20),
        ]);
        let fresh = group_results(&[result("beta/scan/100", 9.0, 25)]);
        for (group, rows) in fresh {
            on_disk.insert(group, rows);
        }
        assert_eq!(on_disk["alpha"][0].1, "{ \"median_ns\": 12.5, \"n\": 15 }");
        assert_eq!(on_disk["beta"][0].1, "{ \"median_ns\": 9.0, \"n\": 25 }");
    }

    #[test]
    fn unrecognised_lines_are_ignored() {
        let parsed = parse_groups("not json at all\n{\n  garbage\n}\n");
        assert!(parsed.is_empty());
    }
}
