//! Experiment scaling.

use dcn_fabric::FatTree;
use dcn_types::SimTime;
use dcn_workload::{TrafficSpec, WorkloadError};
use std::fmt;

/// How large to run each experiment; selected with `BASRPT_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test size: 8 hosts, 1–2 s horizons.
    Quick,
    /// Reduced fabric (16 hosts) with horizons of tens of seconds — the
    /// scale used for the recorded results in `EXPERIMENTS.md`.
    Default,
    /// The paper's exact configuration: 144 hosts, 500 s horizons.
    Paper,
}

impl Scale {
    /// Reads `BASRPT_SCALE` (`quick` / `default` / `paper`, case
    /// insensitive); unset or unrecognized values map to `Default`.
    pub fn from_env() -> Scale {
        match std::env::var("BASRPT_SCALE")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Racks, hosts per rack and cores at this scale.
    pub fn dimensions(&self) -> (u32, u32, u32) {
        match self {
            Scale::Quick => (2, 4, 1),
            Scale::Default => (4, 4, 1),
            Scale::Paper => (12, 12, 3),
        }
    }

    /// The fabric topology at this scale (paper link rates throughout).
    pub fn topology(&self) -> FatTree {
        let (racks, hpr, cores) = self.dimensions();
        FatTree::scaled(racks, hpr, cores).expect("scale dimensions are valid")
    }

    /// The workload at this scale and per-port `load`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for an invalid load.
    pub fn spec(&self, load: f64) -> Result<TrafficSpec, WorkloadError> {
        let (racks, hpr, _) = self.dimensions();
        TrafficSpec::scaled(racks, hpr, load)
    }

    /// Number of hosts at this scale.
    pub fn num_hosts(&self) -> u32 {
        let (racks, hpr, _) = self.dimensions();
        racks * hpr
    }

    /// Horizon for stability experiments (Figs. 2, 5, 7): long enough for
    /// the SRPT/BASRPT queue trends to separate.
    pub fn stability_horizon(&self) -> SimTime {
        SimTime::from_secs(match self {
            Scale::Quick => 2.0,
            Scale::Default => 25.0,
            Scale::Paper => 500.0,
        })
    }

    /// Horizon for FCT experiments (Table I, Figs. 6, 8): long enough for
    /// tens of thousands of completions per class.
    pub fn fct_horizon(&self) -> SimTime {
        SimTime::from_secs(match self {
            Scale::Quick => 1.0,
            Scale::Default => 8.0,
            Scale::Paper => 100.0,
        })
    }

    /// Slots for slotted-switch experiments (Theorem 1).
    pub fn switch_slots(&self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Default => 200_000,
            Scale::Paper => 2_000_000,
        }
    }

    /// The saturating load of the paper's stability experiments
    /// (~9.5 Gbps of the 10 Gbps ports).
    pub fn saturating_load(&self) -> f64 {
        0.95
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (racks, hpr, cores) = self.dimensions();
        let name = match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        };
        write!(
            f,
            "{name} scale: {racks} racks x {hpr} hosts ({} total), {cores} cores, \
             stability horizon {}, FCT horizon {}",
            racks * hpr,
            self.stability_horizon(),
            self.fct_horizon()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper() {
        let s = Scale::Paper;
        assert_eq!(s.dimensions(), (12, 12, 3));
        assert_eq!(s.num_hosts(), 144);
        assert_eq!(s.stability_horizon(), SimTime::from_secs(500.0));
        assert!(s.topology().is_full_bisection());
    }

    #[test]
    fn all_scales_build_valid_topologies_and_specs() {
        for s in [Scale::Quick, Scale::Default, Scale::Paper] {
            let topo = s.topology();
            assert!(topo.is_full_bisection(), "{s} must be full bisection");
            assert!(s.spec(0.5).is_ok());
            assert!(!s.to_string().is_empty());
        }
    }

    #[test]
    fn env_parsing_defaults() {
        // from_env reads the live environment; only check it never panics
        // and yields one of the variants.
        let s = Scale::from_env();
        assert!(matches!(s, Scale::Quick | Scale::Default | Scale::Paper));
    }
}
