//! Experiment execution helpers shared by the bench targets.

use basrpt_core::{FastBasrpt, Scheduler};
use dcn_fabric::{simulate, FabricRun, FabricSim, FatTree, SimConfig};
use dcn_probe::Probe;
use dcn_types::SimTime;
use dcn_workload::TrafficSpec;

/// Latency floor used by the FCT-focused benches (Table I, Fig. 6): a
/// conservative three-hop propagation + forwarding figure. The paper's
/// simulator reports millisecond-scale query FCTs even under SRPT, which a
/// zero-overhead big-switch engine cannot produce; the floor restores a
/// comparable baseline without touching scheduling or bandwidth.
pub const FCT_BASE_LATENCY_US: f64 = 100.0;

/// Number of servers in the paper's fabric; the reference point for
/// [`paper_equivalent_fast_basrpt`].
pub const PAPER_NUM_HOSTS: usize = 144;

/// A finished run with the label it should carry in printed tables.
#[derive(Debug)]
pub struct LabeledRun {
    /// Row label (scheduler name, V value, load, …).
    pub label: String,
    /// The measurements.
    pub run: FabricRun,
}

/// Builds a fast BASRPT scheduler whose *per-flow weight* `V/N` equals that
/// of the paper's scheduler with parameter `v_paper` on the 144-host
/// fabric.
///
/// The quantity that enters Algorithm 1's key is the weight `V/N`, not `V`
/// itself, so when an experiment runs on a reduced fabric the paper's `V`
/// values must be mapped to `v_paper × N/144` to exercise the same
/// delay-vs-stability operating point. On the paper-scale fabric this is
/// the identity.
///
/// # Example
///
/// ```
/// use basrpt_bench::paper_equivalent_fast_basrpt;
/// let s16 = paper_equivalent_fast_basrpt(2500.0, 16);
/// let s144 = paper_equivalent_fast_basrpt(2500.0, 144);
/// assert!((s16.weight() - s144.weight()).abs() < 1e-9);
/// assert!((s144.v() - 2500.0).abs() < 1e-9);
/// ```
pub fn paper_equivalent_fast_basrpt(v_paper: f64, num_hosts: usize) -> FastBasrpt {
    let v = v_paper * num_hosts as f64 / PAPER_NUM_HOSTS as f64;
    FastBasrpt::new(v, num_hosts)
}

/// Runs one fabric experiment and returns its measurements.
///
/// # Panics
///
/// Panics if the workload or simulation reports an error — bench targets
/// construct both from validated [`crate::Scale`] values, so an error here
/// is a harness bug worth crashing on.
pub fn run_fabric(
    topo: &FatTree,
    spec: &TrafficSpec,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    horizon: SimTime,
) -> FabricRun {
    let config = SimConfig::builder().horizon(horizon).build();
    run_fabric_with(topo, spec, scheduler, seed, config)
}

/// Like [`run_fabric`] with an explicit simulation config (latency floor,
/// sampling, monitored port).
///
/// # Panics
///
/// Panics on workload or simulation errors, as in [`run_fabric`].
pub fn run_fabric_with(
    topo: &FatTree,
    spec: &TrafficSpec,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    config: SimConfig,
) -> FabricRun {
    let generator = spec.generator(seed).expect("valid spec");
    simulate(topo, scheduler, generator, config).expect("valid simulation")
}

/// Like [`run_fabric_with`], additionally streaming the run's events to
/// `probe` (pass `&mut probe` to keep it). Combine with
/// [`crate::parallel::run_seeds_probed`] for a per-seed probe merged into
/// one sweep-wide report.
///
/// # Panics
///
/// Panics on workload or simulation errors, as in [`run_fabric`].
pub fn run_fabric_probed<P: Probe>(
    topo: &FatTree,
    spec: &TrafficSpec,
    scheduler: &mut dyn Scheduler,
    seed: u64,
    config: SimConfig,
    probe: P,
) -> FabricRun {
    let generator = spec.generator(seed).expect("valid spec");
    FabricSim::new(topo)
        .config(config)
        .scheduler(scheduler)
        .workload(generator)
        .probe(probe)
        .run()
        .expect("valid simulation")
}

/// Formats a millisecond quantity with three significant decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use basrpt_core::Srpt;

    #[test]
    fn paper_equivalent_weight_is_invariant() {
        for n in [8usize, 16, 36, 144] {
            let s = paper_equivalent_fast_basrpt(2500.0, n);
            assert!((s.weight() - 2500.0 / 144.0).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn run_fabric_smoke() {
        let scale = Scale::Quick;
        let topo = scale.topology();
        let spec = scale.spec(0.5).unwrap();
        let run = run_fabric(&topo, &spec, &mut Srpt::new(), 1, SimTime::from_secs(0.05));
        assert!(run.arrivals > 0);
    }
}
