//! CI perf-regression gate over `results/bench.json` medians.
//!
//! Usage: `perf_gate <baseline.json> [fresh.json]`
//!
//! Compares the gated criterion groups of a freshly recorded
//! `bench.json` (defaulting to the workspace `results/bench.json`)
//! against a committed baseline copy and **fails (exit 1) when any row's
//! median regresses by more than 1.5×**. The gated groups are the ones
//! that pin the event-loop cost model of PERFMODEL.md:
//!
//! * `event_loop` — end-to-end per-event engine cost;
//! * `delta_reschedule` — the `O(Δ log n)` rebind primitives;
//! * `settle_cost` — the lazy-settlement observation primitives.
//!
//! Rows present only in the fresh file (new benches) or only in the
//! baseline (renamed benches) are reported but do not fail the gate, so
//! adding a row does not require a two-step baseline dance. Medians come
//! from `BASRPT_SCALE=quick` runs in CI; the 1.5× threshold leaves
//! headroom for machine noise while catching an accidental return to the
//! `O(n)`-per-event regime, which shows up as integer multiples.

use basrpt_bench::{median_ns, parse_groups};
use std::process::ExitCode;

/// The criterion groups the gate compares.
const GATED_GROUPS: &[&str] = &["event_loop", "delta_reschedule", "settle_cost"];

/// Maximum tolerated `fresh / baseline` median ratio.
const MAX_RATIO: f64 = 1.5;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(baseline_path) = args.next() else {
        eprintln!("usage: perf_gate <baseline.json> [fresh.json]");
        return ExitCode::FAILURE;
    };
    let fresh_path = args
        .next()
        .unwrap_or_else(|| basrpt_bench::record::BENCH_JSON_PATH.to_string());

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_groups(&text),
        Err(e) => {
            eprintln!("perf_gate: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fresh = match std::fs::read_to_string(&fresh_path) {
        Ok(text) => parse_groups(&text),
        Err(e) => {
            eprintln!("perf_gate: cannot read fresh results {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for &group in GATED_GROUPS {
        let base_rows = baseline.get(group);
        let Some(fresh_rows) = fresh.get(group) else {
            println!("perf_gate: group {group:?} missing from fresh results (not run?)");
            continue;
        };
        for (key, row) in fresh_rows {
            let Some(fresh_med) = median_ns(row) else {
                continue;
            };
            let base_med = base_rows
                .and_then(|rows| rows.iter().find(|(k, _)| k == key))
                .and_then(|(_, row)| median_ns(row));
            match base_med {
                Some(base_med) if base_med > 0.0 => {
                    compared += 1;
                    let ratio = fresh_med / base_med;
                    let verdict = if ratio > MAX_RATIO { "REGRESSED" } else { "ok" };
                    println!(
                        "{group}/{key}: {base_med:.1} ns -> {fresh_med:.1} ns ({ratio:.2}x) {verdict}"
                    );
                    if ratio > MAX_RATIO {
                        regressions.push(format!("{group}/{key}: {ratio:.2}x"));
                    }
                }
                _ => println!("{group}/{key}: {fresh_med:.1} ns (new row, no baseline)"),
            }
        }
        if let Some(rows) = base_rows {
            for (key, _) in rows {
                if !fresh_rows.iter().any(|(k, _)| k == key) {
                    println!("{group}/{key}: only in baseline (renamed or dropped)");
                }
            }
        }
    }

    if regressions.is_empty() {
        println!("perf_gate: {compared} rows within {MAX_RATIO}x of baseline");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf_gate: {} median(s) regressed beyond {MAX_RATIO}x:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
