//! Shared harness for the experiment benches.
//!
//! Every table and figure of the paper has a `[[bench]]` target in this
//! crate (run them all with `cargo bench`). The harness scales each
//! experiment to the machine it runs on via the `BASRPT_SCALE` environment
//! variable:
//!
//! * `quick` — seconds-long smoke runs (CI);
//! * `default` — a reduced 16-host fabric with horizons of a few tens of
//!   simulated seconds; the full suite completes in minutes on one core
//!   while preserving every qualitative result;
//! * `paper` — the paper's exact 144-host fabric and 500 s horizon
//!   (hundreds of core-hours; for record runs only).
//!
//! Independently, `BASRPT_SEEDS` turns the seed-sensitive experiments
//! (`fig2`, `fig5`, `table1`) into multi-seed sweeps run in parallel across
//! cores, reporting `mean ± CI95` per metric (see [`parallel`]).
//!
//! `EXPERIMENTS.md` documents which scale produced the recorded numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod record;
pub mod runner;
pub mod scale;

pub use parallel::{
    run_seeds, run_seeds_probed, run_seeds_with, seeds_from_env, threads_from_env, SeedStats,
};
pub use record::{median_ns, parse_groups, write_merged, Groups};
pub use runner::{
    paper_equivalent_fast_basrpt, run_fabric, run_fabric_probed, run_fabric_with, LabeledRun,
    FCT_BASE_LATENCY_US,
};
pub use scale::Scale;
