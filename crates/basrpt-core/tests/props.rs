//! Property-based tests for the scheduling core.

use basrpt_core::{
    check_equivalence, check_maximal, ExactBasrpt, FastBasrpt, Fifo, FlowState, FlowTable,
    IncrementalScheduler, MaxWeight, RoundRobin, Scheduler, Srpt, ThresholdBacklogSrpt,
};
use dcn_types::{FlowId, HostId, Voq};
use proptest::prelude::*;

/// A randomly generated flow arrival for table construction.
#[derive(Debug, Clone, Copy)]
struct ArbFlow {
    src: u32,
    dst: u32,
    size: u64,
}

fn arb_flow(ports: u32) -> impl Strategy<Value = ArbFlow> {
    (0..ports, 0..ports, 1u64..500).prop_map(|(src, dst, size)| ArbFlow { src, dst, size })
}

fn build_table(flows: &[ArbFlow]) -> FlowTable {
    let mut table = FlowTable::new();
    for (i, f) in flows.iter().enumerate() {
        table
            .insert(FlowState::new(
                FlowId::new(i as u64),
                Voq::new(HostId::new(f.src), HostId::new(f.dst)),
                f.size,
            ))
            .expect("ids are unique by construction");
    }
    table
}

fn all_schedulers(num_ports: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Srpt::new()),
        Box::new(FastBasrpt::new(2500.0, num_ports)),
        Box::new(FastBasrpt::new(1.0, num_ports)),
        Box::new(MaxWeight::new()),
        Box::new(Fifo::new()),
        Box::new(RoundRobin::new()),
        Box::new(ThresholdBacklogSrpt::new(100)),
    ]
}

proptest! {
    /// Every discipline produces a valid, maximal crossbar matching.
    #[test]
    fn schedules_are_valid_and_maximal(flows in prop::collection::vec(arb_flow(6), 0..40)) {
        let table = build_table(&flows);
        for mut sched in all_schedulers(6) {
            let s = sched.schedule(&table);
            prop_assert!(check_maximal(&table, &s).is_ok(),
                "{} produced an invalid schedule", sched.name());
        }
    }

    /// Exact BASRPT is valid and maximal on instances within its port limit.
    #[test]
    fn exact_basrpt_valid(flows in prop::collection::vec(arb_flow(4), 0..12),
                          v in 0.0f64..1e4) {
        let table = build_table(&flows);
        let s = ExactBasrpt::new(v).try_schedule(&table).unwrap();
        prop_assert!(check_maximal(&table, &s).is_ok());
    }

    /// The exact scheduler's objective never exceeds fast BASRPT's: fast
    /// BASRPT's schedule is itself maximal, hence inside the exact search
    /// space.
    #[test]
    fn exact_no_worse_than_fast(flows in prop::collection::vec(arb_flow(4), 1..12),
                                v in 0.0f64..1e4) {
        let table = build_table(&flows);
        let objective = |s: &basrpt_core::Schedule| -> f64 {
            if s.is_empty() { return 0.0; }
            let sizes: f64 = s
                .flow_ids()
                .map(|id| table.get(id).unwrap().remaining() as f64)
                .sum();
            let backlog: f64 = s
                .iter()
                .map(|(_, voq)| table.voq_backlog(voq) as f64)
                .sum();
            v * sizes / s.len() as f64 - backlog
        };
        let exact = ExactBasrpt::new(v).try_schedule(&table).unwrap();
        let fast = FastBasrpt::new(v, 4).schedule(&table);
        prop_assert!(objective(&exact) <= objective(&fast) + 1e-6,
            "exact {} > fast {}", objective(&exact), objective(&fast));
    }

    /// As V grows unboundedly, fast BASRPT's decision converges to SRPT's.
    /// Sizes are made pairwise distinct: with ties in remaining size the two
    /// disciplines may legitimately tie-break differently at any finite V.
    #[test]
    fn fast_basrpt_limits(flows in prop::collection::vec(arb_flow(6), 0..30)) {
        let flows: Vec<ArbFlow> = flows
            .into_iter()
            .enumerate()
            .map(|(i, f)| ArbFlow { size: f.size * 64 + i as u64, ..f })
            .collect();
        let table = build_table(&flows);
        let srpt: Vec<_> = Srpt::new().schedule(&table).flow_ids().collect();
        let huge_v: Vec<_> = FastBasrpt::new(1e15, 6).schedule(&table).flow_ids().collect();
        prop_assert_eq!(srpt, huge_v);

        let mw: Vec<_> = MaxWeight::new().schedule(&table).flow_ids().collect();
        let zero_v: Vec<_> = FastBasrpt::new(0.0, 6).schedule(&table).flow_ids().collect();
        prop_assert_eq!(mw, zero_v);
    }

    /// Stateless disciplines are deterministic: same table, same schedule.
    #[test]
    fn scheduling_is_deterministic(flows in prop::collection::vec(arb_flow(6), 0..30)) {
        let table = build_table(&flows);
        for mk in [
            || Box::new(Srpt::new()) as Box<dyn Scheduler>,
            || Box::new(FastBasrpt::new(2500.0, 6)) as Box<dyn Scheduler>,
        ] {
            let a: Vec<_> = mk().schedule(&table).flow_ids().collect();
            let b: Vec<_> = mk().schedule(&table).flow_ids().collect();
            prop_assert_eq!(a, b);
        }
    }

    /// Random interleavings of insert/drain/remove preserve every table
    /// invariant, and drains conserve units.
    #[test]
    fn table_ops_preserve_invariants(
        flows in prop::collection::vec(arb_flow(5), 1..25),
        ops in prop::collection::vec((0usize..25, 1u64..600), 0..60),
    ) {
        let mut table = build_table(&flows);
        let initial = table.total_backlog();
        let mut drained_total = 0u64;
        for (raw_idx, units) in ops {
            let id = FlowId::new((raw_idx % flows.len()) as u64);
            if table.get(id).is_some() {
                let out = table.drain(id, units).unwrap();
                drained_total += out.drained;
                prop_assert!(out.drained <= units);
            }
            table.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(initial, table.total_backlog() + drained_total);
    }

    /// The literal all-flows Algorithm 1 and the optimized per-VOQ-head
    /// scheduler make identical decisions, for SRPT and for fast BASRPT at
    /// every V.
    #[test]
    fn literal_reference_matches_optimized(
        flows in prop::collection::vec(arb_flow(6), 0..40),
        v in 0.0f64..1e4,
    ) {
        let table = build_table(&flows);
        let lit_srpt: Vec<_> =
            basrpt_core::reference::srpt_all_flows(&table).flow_ids().collect();
        let opt_srpt: Vec<_> = Srpt::new().schedule(&table).flow_ids().collect();
        prop_assert_eq!(lit_srpt, opt_srpt);

        let lit_fb: Vec<_> = basrpt_core::reference::fast_basrpt_all_flows(&table, v, 6)
            .flow_ids()
            .collect();
        let opt_fb: Vec<_> = FastBasrpt::new(v, 6).schedule(&table).flow_ids().collect();
        prop_assert_eq!(lit_fb, opt_fb);
    }

    /// Incremental schedulers stay **bit-identical** to their one-pass
    /// twins across random arrival/drain/removal traces, for every
    /// discipline that implements `VoqDiscipline`. The incremental state is
    /// carried across the whole trace (that is the point), while one-pass
    /// schedulers are stateless.
    #[test]
    fn incremental_matches_one_pass_on_traces(
        flows in prop::collection::vec(arb_flow(6), 0..16),
        ops in prop::collection::vec((0usize..4, arb_flow(6), 1u64..600), 0..50),
    ) {
        let mut table = build_table(&flows);
        let mut live: Vec<u64> = (0..flows.len() as u64).collect();
        let mut next_id = flows.len() as u64;

        let mut inc_srpt = IncrementalScheduler::new(Srpt::new());
        let mut inc_fb = IncrementalScheduler::new(FastBasrpt::new(2500.0, 6));
        let mut inc_mw = IncrementalScheduler::new(MaxWeight::new());
        let mut inc_fifo = IncrementalScheduler::new(Fifo::new());
        let mut inc_thr = IncrementalScheduler::new(ThresholdBacklogSrpt::new(100));

        macro_rules! check_all {
            () => {
                check_equivalence(&mut inc_srpt, &mut Srpt::new(), &table)
                    .map_err(TestCaseError::fail)?;
                check_equivalence(&mut inc_fb, &mut FastBasrpt::new(2500.0, 6), &table)
                    .map_err(TestCaseError::fail)?;
                check_equivalence(&mut inc_mw, &mut MaxWeight::new(), &table)
                    .map_err(TestCaseError::fail)?;
                check_equivalence(&mut inc_fifo, &mut Fifo::new(), &table)
                    .map_err(TestCaseError::fail)?;
                check_equivalence(&mut inc_thr, &mut ThresholdBacklogSrpt::new(100), &table)
                    .map_err(TestCaseError::fail)?;
            };
        }

        check_all!();
        for (op, f, units) in ops {
            match op {
                // Bias towards arrivals so queues build up.
                0 | 1 => {
                    table
                        .insert(FlowState::new(
                            FlowId::new(next_id),
                            Voq::new(HostId::new(f.src), HostId::new(f.dst)),
                            f.size,
                        ))
                        .expect("fresh ids never collide");
                    live.push(next_id);
                    next_id += 1;
                }
                2 if !live.is_empty() => {
                    let pick = (units as usize) % live.len();
                    let id = FlowId::new(live[pick]);
                    let out = table.drain(id, units).expect("picked a live flow");
                    if out.completed.is_some() {
                        live.swap_remove(pick);
                    }
                }
                3 if !live.is_empty() => {
                    let pick = (f.size as usize) % live.len();
                    let id = FlowId::new(live[pick]);
                    table.remove(id).expect("picked a live flow");
                    live.swap_remove(pick);
                }
                _ => {}
            }
            check_all!();
        }
    }

    /// A schedule never assigns two flows to one port in either direction
    /// (redundant with `Schedule`'s constructor guarantee, but checked
    /// end-to-end through every discipline).
    #[test]
    fn no_port_reuse(flows in prop::collection::vec(arb_flow(5), 0..30)) {
        let table = build_table(&flows);
        for mut sched in all_schedulers(5) {
            let s = sched.schedule(&table);
            let srcs: Vec<_> = s.iter().map(|(_, q)| q.src()).collect();
            let dsts: Vec<_> = s.iter().map(|(_, q)| q.dst()).collect();
            let mut s2 = srcs.clone();
            s2.sort_unstable();
            s2.dedup();
            prop_assert_eq!(srcs.len(), s2.len());
            let mut d2 = dsts.clone();
            d2.sort_unstable();
            d2.dedup();
            prop_assert_eq!(dsts.len(), d2.len());
        }
    }
}
