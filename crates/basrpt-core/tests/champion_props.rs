//! Property tests for the champion index: random arrival / drain /
//! completion / removal scripts (with aggressive flow-id reuse) must
//! leave every per-VOQ champion equal to a from-scratch scan of the
//! table, tie-breaks included, and every key-driven discipline's
//! schedule equal to its full-scan twin's.
//!
//! The tie-break contract under test is the one `tests/tie_break.rs`
//! pins directly: within a VOQ the shortest flow wins with the smaller
//! `FlowId` breaking remaining-size ties, the oldest flow is the
//! smallest id, and across VOQs `greedy_by_key` admits in ascending
//! `(key, flow id)` order.

use basrpt_core::reference::{schedule_scan, ScanScheduler};
use basrpt_core::{
    check_maximal, FastBasrpt, Fifo, FlowState, FlowTable, IncrementalScheduler, MaxWeight,
    Scheduler, Srpt, ThresholdBacklogSrpt, VoqDiscipline,
};
use dcn_types::{FlowId, HostId, Voq};
use proptest::prelude::*;

/// One step of a random table script. Flow identity is taken modulo a
/// small id space so completions and removals are routinely followed by
/// an insert reusing the same id — the hardest case for any index that
/// caches per-flow state.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert {
        id: u64,
        src: u32,
        dst: u32,
        size: u64,
    },
    Drain {
        pick: usize,
        units: u64,
    },
    Remove {
        pick: usize,
    },
}

fn arb_op(ports: u32, ids: u64) -> impl Strategy<Value = Op> {
    (
        0u8..8,
        0u64..ids,
        0u32..ports,
        0u32..ports,
        1u64..40,
        0usize..64,
    )
        .prop_map(|(kind, id, src, dst, size, pick)| match kind {
            // Weighted towards inserts so tables actually grow.
            0..=3 => Op::Insert { id, src, dst, size },
            4..=6 => Op::Drain {
                pick,
                units: 1 + size % 12,
            },
            _ => Op::Remove { pick },
        })
}

/// Applies `op` to `table`, treating the pick as an index into the live
/// flow list (no-op when the table is empty or the id already exists).
fn apply(table: &mut FlowTable, op: Op) {
    match op {
        Op::Insert { id, src, dst, size } => {
            let flow = FlowState::new(
                FlowId::new(id),
                Voq::new(
                    HostId::new(src),
                    HostId::new(dst % 7 + if src == dst % 7 { 1 } else { 0 }),
                ),
                size,
            );
            let _ = table.insert(flow);
        }
        Op::Drain { pick, units } => {
            let live: Vec<FlowId> = table.iter().map(|f| f.id()).collect();
            if !live.is_empty() {
                let id = live[pick % live.len()];
                table.drain(id, units).expect("picked a live flow");
            }
        }
        Op::Remove { pick } => {
            let live: Vec<FlowId> = table.iter().map(|f| f.id()).collect();
            if !live.is_empty() {
                let id = live[pick % live.len()];
                table.remove(id).expect("picked a live flow");
            }
        }
    }
}

/// Recomputes every VOQ summary by scanning all flows and asserts the
/// champion index agrees field for field.
fn assert_champions_match_scan(table: &FlowTable) -> Result<(), TestCaseError> {
    let mut seen = 0usize;
    for view in table.voqs() {
        let mut backlog = 0u64;
        let mut len = 0usize;
        let mut shortest: Option<(u64, FlowId)> = None;
        let mut oldest: Option<FlowId> = None;
        for f in table.iter().filter(|f| f.voq() == view.voq) {
            backlog += f.remaining();
            len += 1;
            let key = (f.remaining(), f.id());
            shortest = Some(shortest.map_or(key, |s| s.min(key)));
            oldest = Some(oldest.map_or(f.id(), |o| o.min(f.id())));
        }
        prop_assert!(len > 0, "voqs() yielded empty VOQ {:?}", view.voq);
        let (srem, sflow) = shortest.expect("non-empty");
        prop_assert_eq!(view.backlog, backlog, "backlog of {:?}", view.voq);
        prop_assert_eq!(view.len, len, "len of {:?}", view.voq);
        prop_assert_eq!(
            view.shortest_remaining,
            srem,
            "shortest remaining of {:?}",
            view.voq
        );
        prop_assert_eq!(
            view.shortest_flow,
            sflow,
            "shortest flow (id tie-break) of {:?}",
            view.voq
        );
        prop_assert_eq!(
            view.oldest_flow,
            oldest.expect("non-empty"),
            "oldest flow of {:?}",
            view.voq
        );
        seen += 1;
    }
    prop_assert_eq!(seen, table.num_nonempty_voqs(), "voqs() cardinality");
    Ok(())
}

/// Asserts a discipline's three candidate paths — champion index, sorted
/// incremental set, and full scan — produce the identical schedule.
fn assert_three_paths_agree<D>(
    direct: &mut dyn Scheduler,
    incremental: &mut IncrementalScheduler<D>,
    discipline: &D,
    table: &FlowTable,
) -> Result<(), TestCaseError>
where
    D: VoqDiscipline,
{
    let indexed = direct.schedule(table);
    let scanned = schedule_scan(discipline, table);
    let inc = incremental.schedule(table);
    prop_assert_eq!(
        &indexed,
        &scanned,
        "{}: champion index vs full scan",
        direct.name()
    );
    prop_assert_eq!(
        &inc,
        &scanned,
        "{}: incremental vs full scan",
        direct.name()
    );
    prop_assert!(
        check_maximal(table, &indexed).is_ok(),
        "{}: schedule not maximal",
        direct.name()
    );
    Ok(())
}

proptest! {
    /// The core champion invariant: after any script of arrivals, partial
    /// drains, completions, and removals — with ids recycled — every VOQ
    /// view equals a from-scratch scan, and the table's own invariant
    /// audit passes.
    #[test]
    fn champions_equal_full_scan_under_random_scripts(
        ops in prop::collection::vec(arb_op(8, 12), 1..120),
    ) {
        let mut table = FlowTable::new();
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut table, op);
            // Audit at every step for short scripts, periodically (and at
            // the end) for long ones.
            if ops.len() <= 30 || i % 13 == 0 || i + 1 == ops.len() {
                table.check_invariants().expect("table invariants");
                assert_champions_match_scan(&table)?;
            }
        }
    }

    /// Schedules agree across all three candidate paths for every
    /// key-driven discipline, with incremental schedulers kept alive
    /// across the whole script so they exercise their change-log apply
    /// path rather than rebuilding.
    #[test]
    fn schedules_agree_across_paths_under_random_scripts(
        ops in prop::collection::vec(arb_op(8, 12), 1..80),
    ) {
        let mut table = FlowTable::new();
        let mut inc_srpt = IncrementalScheduler::new(Srpt::new());
        let mut inc_fifo = IncrementalScheduler::new(Fifo::new());
        let mut inc_mw = IncrementalScheduler::new(MaxWeight::new());
        let mut inc_fb2 = IncrementalScheduler::new(FastBasrpt::new(16.0, 8));
        let mut inc_fb05 = IncrementalScheduler::new(FastBasrpt::new(4.0, 8));
        let mut inc_thr = IncrementalScheduler::new(ThresholdBacklogSrpt::new(15));
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut table, op);
            if i % 7 == 0 || i + 1 == ops.len() {
                assert_three_paths_agree(&mut Srpt::new(), &mut inc_srpt, &Srpt::new(), &table)?;
                assert_three_paths_agree(&mut Fifo::new(), &mut inc_fifo, &Fifo::new(), &table)?;
                assert_three_paths_agree(
                    &mut MaxWeight::new(),
                    &mut inc_mw,
                    &MaxWeight::new(),
                    &table,
                )?;
                assert_three_paths_agree(
                    &mut FastBasrpt::new(16.0, 8),
                    &mut inc_fb2,
                    &FastBasrpt::new(16.0, 8),
                    &table,
                )?;
                assert_three_paths_agree(
                    &mut FastBasrpt::new(4.0, 8),
                    &mut inc_fb05,
                    &FastBasrpt::new(4.0, 8),
                    &table,
                )?;
                assert_three_paths_agree(
                    &mut ThresholdBacklogSrpt::new(15),
                    &mut inc_thr,
                    &ThresholdBacklogSrpt::new(15),
                    &table,
                )?;
            }
        }
    }

    /// The `ScanScheduler` adapter is interchangeable with the raw
    /// `schedule_scan` call it wraps.
    #[test]
    fn scan_scheduler_wraps_schedule_scan(
        ops in prop::collection::vec(arb_op(6, 10), 1..40),
    ) {
        let mut table = FlowTable::new();
        for &op in &ops {
            apply(&mut table, op);
        }
        let mut wrapped = ScanScheduler::new(Srpt::new());
        prop_assert_eq!(wrapped.schedule(&table), schedule_scan(&Srpt::new(), &table));
    }
}
