//! Differential equivalence harness for the incremental scheduling path.
//!
//! Drives long seeded arrival/drain/completion traces through a
//! `FlowTable` and asserts after every event that each
//! `IncrementalScheduler` produces a schedule **bit-identical** to its
//! one-pass twin (`check_equivalence` also verifies maximality and the
//! internal candidate-set consistency). Where `tests/props.rs` covers many
//! short random traces, this harness covers fewer but much longer traces —
//! long enough to cross change-log compaction — plus adversarial cases
//! like table cloning mid-trace and schedulers joining late.

use basrpt_core::{
    check_equivalence, FastBasrpt, Fifo, FlowState, FlowTable, IncrementalScheduler, MaxWeight,
    Scheduler, Srpt, ThresholdBacklogSrpt,
};
use dcn_types::{FlowId, HostId, Voq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All five incremental/one-pass pairs, checked as a unit.
struct Pairs {
    srpt: IncrementalScheduler<Srpt>,
    fast: IncrementalScheduler<FastBasrpt>,
    maxweight: IncrementalScheduler<MaxWeight>,
    fifo: IncrementalScheduler<Fifo>,
    threshold: IncrementalScheduler<ThresholdBacklogSrpt>,
}

impl Pairs {
    fn new(num_ports: usize) -> Pairs {
        Pairs {
            srpt: IncrementalScheduler::new(Srpt::new()),
            fast: IncrementalScheduler::new(FastBasrpt::new(2500.0, num_ports)),
            maxweight: IncrementalScheduler::new(MaxWeight::new()),
            fifo: IncrementalScheduler::new(Fifo::new()),
            threshold: IncrementalScheduler::new(ThresholdBacklogSrpt::new(200)),
        }
    }

    fn assert_equivalent(&mut self, table: &FlowTable, num_ports: usize, context: &str) {
        check_equivalence(&mut self.srpt, &mut Srpt::new(), table)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        check_equivalence(
            &mut self.fast,
            &mut FastBasrpt::new(2500.0, num_ports),
            table,
        )
        .unwrap_or_else(|e| panic!("{context}: {e}"));
        check_equivalence(&mut self.maxweight, &mut MaxWeight::new(), table)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        check_equivalence(&mut self.fifo, &mut Fifo::new(), table)
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        check_equivalence(
            &mut self.threshold,
            &mut ThresholdBacklogSrpt::new(200),
            table,
        )
        .unwrap_or_else(|e| panic!("{context}: {e}"));
    }
}

/// Applies one random table event, returning whether anything changed.
fn random_event(
    rng: &mut StdRng,
    table: &mut FlowTable,
    live: &mut Vec<u64>,
    next_id: &mut u64,
    num_ports: u32,
) {
    let roll: u32 = rng.gen_range(0u32..10);
    if roll < 4 || live.is_empty() {
        // Arrival.
        let src = rng.gen_range(0..num_ports);
        let mut dst = rng.gen_range(0..num_ports);
        if dst == src {
            dst = (dst + 1) % num_ports;
        }
        let size = rng.gen_range(1u64..2_000);
        table
            .insert(FlowState::new(
                FlowId::new(*next_id),
                Voq::new(HostId::new(src), HostId::new(dst)),
                size,
            ))
            .expect("fresh ids never collide");
        live.push(*next_id);
        *next_id += 1;
    } else if roll < 9 {
        // Service: drain a random live flow, possibly to completion.
        let pick = rng.gen_range(0..live.len());
        let id = FlowId::new(live[pick]);
        let units = rng.gen_range(1u64..800);
        let out = table.drain(id, units).expect("picked a live flow");
        if out.completed.is_some() {
            live.swap_remove(pick);
        }
    } else {
        // Cancellation.
        let pick = rng.gen_range(0..live.len());
        let id = FlowId::new(live[pick]);
        table.remove(id).expect("picked a live flow");
        live.swap_remove(pick);
    }
}

#[test]
fn long_trace_stays_bit_identical() {
    const PORTS: u32 = 16;
    const EVENTS: usize = 3_000;
    let mut rng = StdRng::seed_from_u64(0xBA5);
    let mut table = FlowTable::new();
    let mut live = Vec::new();
    let mut next_id = 0u64;
    let mut pairs = Pairs::new(PORTS as usize);

    for step in 0..EVENTS {
        random_event(&mut rng, &mut table, &mut live, &mut next_id, PORTS);
        pairs.assert_equivalent(&table, PORTS as usize, &format!("event {step}"));
    }
    // The trace is long enough that the change log compacted at least once,
    // i.e. the rebuild-after-compaction path was exercised.
    assert!(table.change_log_end() > 1_024);
}

#[test]
fn scheduler_joining_mid_trace_catches_up() {
    const PORTS: u32 = 8;
    let mut rng = StdRng::seed_from_u64(42);
    let mut table = FlowTable::new();
    let mut live = Vec::new();
    let mut next_id = 0u64;

    for _ in 0..200 {
        random_event(&mut rng, &mut table, &mut live, &mut next_id, PORTS);
    }
    // A scheduler that has never seen the table builds from scratch and
    // immediately agrees with the one-pass decision.
    let mut pairs = Pairs::new(PORTS as usize);
    pairs.assert_equivalent(&table, PORTS as usize, "late join");

    // And keeps agreeing when the trace continues.
    for step in 0..200 {
        random_event(&mut rng, &mut table, &mut live, &mut next_id, PORTS);
        pairs.assert_equivalent(&table, PORTS as usize, &format!("post-join event {step}"));
    }
}

#[test]
fn cloning_the_table_mid_trace_forces_resync() {
    const PORTS: u32 = 8;
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = FlowTable::new();
    let mut live = Vec::new();
    let mut next_id = 0u64;
    let mut pairs = Pairs::new(PORTS as usize);

    for _ in 0..100 {
        random_event(&mut rng, &mut table, &mut live, &mut next_id, PORTS);
    }
    pairs.assert_equivalent(&table, PORTS as usize, "before clone");

    // Diverge a clone from the original; schedulers synced to the original
    // must detect the identity change and rebuild rather than patch.
    let mut forked = table.clone();
    let mut forked_live = live.clone();
    for step in 0..100 {
        random_event(&mut rng, &mut forked, &mut forked_live, &mut next_id, PORTS);
        pairs.assert_equivalent(&forked, PORTS as usize, &format!("fork event {step}"));
        // Alternate back to the (unchanged) original: worst case for the
        // sync logic, since identity flips on every decision.
        pairs.assert_equivalent(&table, PORTS as usize, &format!("flip-back {step}"));
    }
}

#[test]
fn drain_heavy_trace_drives_queues_to_empty_and_back() {
    const PORTS: u32 = 4;
    let mut rng = StdRng::seed_from_u64(1234);
    let mut table = FlowTable::new();
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut pairs = Pairs::new(PORTS as usize);

    for round in 0..20 {
        // Burst of arrivals…
        for _ in 0..15 {
            random_event(&mut rng, &mut table, &mut live, &mut next_id, PORTS);
        }
        pairs.assert_equivalent(&table, PORTS as usize, &format!("round {round} burst"));
        // …then drain everything to empty, checking at every completion.
        while let Some(&id) = live.last() {
            let out = table.drain(FlowId::new(id), u64::MAX).unwrap();
            assert!(out.completed.is_some());
            live.pop();
            pairs.assert_equivalent(&table, PORTS as usize, &format!("round {round} drain"));
        }
        assert!(table.is_empty());
        assert!(pairs.srpt.schedule(&table).is_empty());
    }
}
