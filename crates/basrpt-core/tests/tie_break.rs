//! Pins the ordering contract of [`greedy_by_key`] documented on the
//! function: candidates are admitted in ascending `(key, flow id)` order,
//! independent of the order they are presented in, and the incremental
//! engine reproduces the exact same admissions. The fast-forward engine's
//! schedule cache (`dcn-switch`) relies on this determinism — a cached
//! schedule is only bit-comparable to a recomputed one if equal keys
//! always break the same way.

use basrpt_core::{
    check_maximal, greedy_by_key, Candidate, FlowState, FlowTable, IncrementalScheduler, Scheduler,
    Srpt,
};
use dcn_types::{FlowId, HostId, Voq};

fn cand(key: f64, id: u64, src: u32, dst: u32) -> Candidate {
    Candidate {
        key,
        flow: FlowId::new(id),
        voq: Voq::new(HostId::new(src), HostId::new(dst)),
    }
}

/// Equal keys across port-disjoint VOQs: both are admitted, and the
/// admission order (which [`Schedule`](basrpt_core::Schedule) equality is
/// sensitive to) is ascending flow id.
#[test]
fn equal_keys_admit_in_flow_id_order() {
    let mut forward = [cand(5.0, 1, 0, 1), cand(5.0, 2, 2, 3)];
    let mut reversed = [cand(5.0, 2, 2, 3), cand(5.0, 1, 0, 1)];
    let a = greedy_by_key(&mut forward);
    let b = greedy_by_key(&mut reversed);
    assert_eq!(a, b, "presentation order must not matter");
    let order: Vec<u64> = a.iter().map(|(id, _)| id.raw()).collect();
    assert_eq!(order, vec![1, 2], "ties break towards the smaller flow id");
}

/// Equal keys on *contending* VOQs: the smaller flow id wins the ports.
#[test]
fn equal_keys_on_contending_voqs_favor_smaller_id() {
    for permutation in [
        [cand(7.0, 10, 0, 2), cand(7.0, 4, 1, 2)],
        [cand(7.0, 4, 1, 2), cand(7.0, 10, 0, 2)],
    ] {
        let mut cands = permutation;
        let schedule = greedy_by_key(&mut cands);
        assert_eq!(schedule.len(), 1, "egress 2 admits one flow");
        let (winner, _) = schedule.iter().next().unwrap();
        assert_eq!(winner, FlowId::new(4), "smaller id wins the tie");
    }
}

/// A negative-zero key sorts *before* positive zero under `total_cmp` —
/// part of the contract (total order over all finite f64s), pinned here so
/// a future switch to `partial_cmp` cannot slip through silently.
#[test]
fn total_cmp_orders_signed_zeros() {
    let mut cands = [cand(0.0, 1, 0, 2), cand(-0.0, 2, 1, 2)];
    let schedule = greedy_by_key(&mut cands);
    let (winner, _) = schedule.iter().next().unwrap();
    assert_eq!(
        winner,
        FlowId::new(2),
        "-0.0 precedes +0.0 in the total order"
    );
}

/// On a real table with many equal-remaining flows, the incremental engine
/// must reproduce the direct engine's admissions exactly — including every
/// tie-break — because the fast-forward cache treats them as
/// interchangeable.
#[test]
fn incremental_reproduces_direct_tie_breaks() {
    let mut table = FlowTable::new();
    // 12 flows, all remaining = 9 (every SRPT key ties), spread over a
    // 6-port switch with heavy port contention; ids deliberately inserted
    // out of order.
    let placements = [
        (7u64, 0u32, 1u32),
        (3, 0, 2),
        (11, 1, 2),
        (2, 1, 3),
        (9, 2, 3),
        (5, 2, 4),
        (1, 3, 4),
        (8, 3, 5),
        (4, 4, 5),
        (10, 4, 0),
        (6, 5, 0),
        (12, 5, 1),
    ];
    for &(id, src, dst) in &placements {
        table
            .insert(FlowState::new(
                FlowId::new(id),
                Voq::new(HostId::new(src), HostId::new(dst)),
                9,
            ))
            .unwrap();
    }
    let direct = Srpt::new().schedule(&table);
    let incremental = IncrementalScheduler::new(Srpt::new()).schedule(&table);
    assert_eq!(
        direct, incremental,
        "identical admissions, order included, on an all-ties table"
    );
    check_maximal(&table, &direct).expect("maximal matching");
    // And the winner set is exactly the id-order greedy outcome: flow 1
    // first, then every later id whose ports are still free.
    let order: Vec<u64> = direct.iter().map(|(id, _)| id.raw()).collect();
    assert_eq!(order, vec![1, 2, 3, 4, 6], "ascending-id greedy admission");
}
