//! Crossbar schedules (matchings between ingress and egress ports).

use dcn_types::{FlowId, HostId, PortSet, Voq};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Error returned when adding a flow to a [`Schedule`] would violate the
/// crossbar constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The flow's ingress port is already transmitting in this schedule.
    IngressBusy(HostId),
    /// The flow's egress port is already receiving in this schedule.
    EgressBusy(HostId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::IngressBusy(h) => write!(f, "ingress port {h} already scheduled"),
            ScheduleError::EgressBusy(h) => write!(f, "egress port {h} already scheduled"),
        }
    }
}

impl Error for ScheduleError {}

/// A scheduling decision: the set of flows selected to transmit, one per
/// matched (ingress, egress) port pair.
///
/// `Schedule` enforces the paper's crossbar constraint (Eq. 2's per-slot
/// form): each ingress port sends at most one flow and each egress port
/// receives at most one flow. [`Schedule::add`] rejects violations, so any
/// schedule that exists is valid by construction.
///
/// Port occupancy is tracked in dense [`PortSet`] bitmaps, so the greedy
/// admission loops ([`Schedule::admits`]) and flow membership
/// ([`Schedule::contains`]) are `O(1)`.
///
/// # Example
///
/// ```
/// use basrpt_core::{Schedule, ScheduleError};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut s = Schedule::new();
/// let q = Voq::new(HostId::new(0), HostId::new(1));
/// s.add(FlowId::new(1), q)?;
/// assert!(s.add(FlowId::new(2), q).is_err()); // both ports busy
/// assert_eq!(s.len(), 1);
/// # Ok::<(), ScheduleError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    selected: Vec<(FlowId, Voq)>,
    flows: HashSet<FlowId>,
    busy_ingress: PortSet,
    busy_egress: PortSet,
}

/// Two schedules are equal when they select the same flows in the same
/// order; the busy sets and membership index are derived from `selected`,
/// so they never need comparing.
impl PartialEq for Schedule {
    fn eq(&self, other: &Self) -> bool {
        self.selected == other.selected
    }
}

impl Eq for Schedule {}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Number of selected flows.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Whether no flow is selected.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Whether `ingress` already sends in this schedule.
    pub fn ingress_busy(&self, ingress: HostId) -> bool {
        self.busy_ingress.contains(ingress)
    }

    /// Whether `egress` already receives in this schedule.
    pub fn egress_busy(&self, egress: HostId) -> bool {
        self.busy_egress.contains(egress)
    }

    /// Whether a flow in `voq` could still be added.
    pub fn admits(&self, voq: Voq) -> bool {
        !self.ingress_busy(voq.src()) && !self.egress_busy(voq.dst())
    }

    /// Adds a flow transmitting from `voq.src()` to `voq.dst()`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if either port is already in use.
    pub fn add(&mut self, flow: FlowId, voq: Voq) -> Result<(), ScheduleError> {
        if self.ingress_busy(voq.src()) {
            return Err(ScheduleError::IngressBusy(voq.src()));
        }
        if self.egress_busy(voq.dst()) {
            return Err(ScheduleError::EgressBusy(voq.dst()));
        }
        self.busy_ingress.insert(voq.src());
        self.busy_egress.insert(voq.dst());
        self.flows.insert(flow);
        self.selected.push((flow, voq));
        Ok(())
    }

    /// Iterates over the selected `(flow, voq)` pairs in selection order
    /// (highest priority first — the order the discipline admitted them).
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, Voq)> + '_ {
        self.selected.iter().copied()
    }

    /// The selected flow ids, in selection order.
    pub fn flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.selected.iter().map(|&(id, _)| id)
    }

    /// Whether this schedule selects the given flow. `O(1)`.
    pub fn contains(&self, flow: FlowId) -> bool {
        self.flows.contains(&flow)
    }

    /// Consumes the schedule, returning the selected `(flow, voq)` pairs
    /// in selection order. The zero-copy handover for engines that keep
    /// the previous selection alive across events (the delta allocator's
    /// stay-detection diff) instead of re-reading it per event.
    pub fn into_pairs(self) -> Vec<(FlowId, Voq)> {
        self.selected
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = (FlowId, Voq);
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, (FlowId, Voq)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.selected.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voq(src: u32, dst: u32) -> Voq {
        Voq::new(HostId::new(src), HostId::new(dst))
    }

    #[test]
    fn add_marks_ports_busy() {
        let mut s = Schedule::new();
        s.add(FlowId::new(1), voq(0, 1)).unwrap();
        assert!(s.ingress_busy(HostId::new(0)));
        assert!(s.egress_busy(HostId::new(1)));
        assert!(!s.ingress_busy(HostId::new(1)));
        assert!(s.admits(voq(2, 3)));
        assert!(!s.admits(voq(0, 3)));
        assert!(!s.admits(voq(2, 1)));
    }

    #[test]
    fn conflicting_adds_rejected() {
        let mut s = Schedule::new();
        s.add(FlowId::new(1), voq(0, 1)).unwrap();
        assert_eq!(
            s.add(FlowId::new(2), voq(0, 2)),
            Err(ScheduleError::IngressBusy(HostId::new(0)))
        );
        assert_eq!(
            s.add(FlowId::new(3), voq(2, 1)),
            Err(ScheduleError::EgressBusy(HostId::new(1)))
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_preserves_selection_order() {
        let mut s = Schedule::new();
        s.add(FlowId::new(5), voq(0, 1)).unwrap();
        s.add(FlowId::new(2), voq(2, 3)).unwrap();
        let ids: Vec<FlowId> = s.flow_ids().collect();
        assert_eq!(ids, vec![FlowId::new(5), FlowId::new(2)]);
        assert!(s.contains(FlowId::new(2)));
        assert!(!s.contains(FlowId::new(9)));
        let pairs: Vec<_> = (&s).into_iter().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn equality_is_by_selection() {
        let mut a = Schedule::new();
        let mut b = Schedule::new();
        assert_eq!(a, b);
        a.add(FlowId::new(1), voq(0, 1)).unwrap();
        assert_ne!(a, b);
        b.add(FlowId::new(1), voq(0, 1)).unwrap();
        assert_eq!(a, b);
        // Rejected adds leave no trace that could break equality.
        assert!(b.add(FlowId::new(2), voq(0, 2)).is_err());
        assert_eq!(a, b);
    }
}
