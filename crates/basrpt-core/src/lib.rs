//! Flow scheduling disciplines for data-center fabrics.
//!
//! This crate implements the primary contribution of *"Backlog-Aware SRPT
//! Flow Scheduling in Data Center Networks"* (ICDCS 2016): the **BASRPT**
//! family of schedulers, together with the SRPT discipline they improve on
//! and several baselines used in the evaluation and ablations.
//!
//! All schedulers operate on a [`FlowTable`] — the set of active flows
//! organized in virtual output queues (VOQs), mirroring the paper's "one big
//! switch" abstraction of the fabric (§III) — and produce a [`Schedule`]: a
//! crossbar matching that uses each ingress and each egress port at most
//! once.
//!
//! Flow sizes are measured in abstract *units* so the same schedulers drive
//! both the packet-granularity slotted switch model (`dcn-switch`, units =
//! packets) and the byte-granularity flow-level fabric simulator
//! (`dcn-fabric`, units = bytes).
//!
//! # Disciplines
//!
//! | Type | Paper reference | Ranking key (smaller = served first) |
//! |------|-----------------|--------------------------------------|
//! | [`Srpt`] | §II, the greedy maximal SRPT of PDQ/pFabric/PASE | remaining size |
//! | [`FastBasrpt`] | §IV-C, Algorithm 1 | `(V/N)·remaining − voq_backlog` |
//! | [`ExactBasrpt`] | §IV-A optimization problem | exhaustive search over maximal schedules minimizing `V·ȳ − Σ X_ij R_ij` |
//! | [`ThresholdBacklogSrpt`] | Fig. 2's comparison strategy | SRPT, but VOQs whose backlog exceeds a threshold jump the queue |
//! | [`MaxWeight`] | classic throughput-optimal baseline (the `V → 0` limit) | `−voq_backlog` |
//! | [`Fifo`] | baseline | arrival order |
//! | [`RoundRobin`] | fair-share baseline | least recently served VOQ |
//!
//! # Incremental scheduling
//!
//! The stateless disciplines above also implement [`VoqDiscipline`] and can
//! be wrapped in an [`IncrementalScheduler`], which keeps the ranked
//! candidate set alive across decisions and re-keys only the VOQs each
//! table event touched — same schedules, bit for bit, at a fraction of the
//! per-event cost (see the [`incremental`] module).
//!
//! # Example
//!
//! ```
//! use basrpt_core::{FastBasrpt, FlowState, FlowTable, Scheduler};
//! use dcn_types::{FlowId, HostId, Voq};
//!
//! let mut table = FlowTable::new();
//! let q01 = Voq::new(HostId::new(0), HostId::new(1));
//! let q21 = Voq::new(HostId::new(2), HostId::new(1));
//! table.insert(FlowState::new(FlowId::new(1), q01, 5))?;
//! table.insert(FlowState::new(FlowId::new(2), q21, 1))?;
//!
//! let mut sched = FastBasrpt::new(2500.0, 144);
//! let schedule = sched.schedule(&table);
//! // Both flows target egress 1, so exactly one of them is selected.
//! assert_eq!(schedule.len(), 1);
//! # Ok::<(), basrpt_core::FlowTableError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod disciplines;
mod flow;
pub mod incremental;
pub mod reference;
mod schedule;
mod scheduler;
mod table;
pub mod validity;

pub use disciplines::{
    ExactBasrpt, ExactBasrptError, FastBasrpt, Fifo, MaxWeight, PenaltyKind, RepFlow, RoundRobin,
    Srpt, ThresholdBacklogSrpt, REPFLOW_DEFAULT_THRESHOLD,
};
pub use flow::FlowState;
pub use incremental::{check_equivalence, F64Key, IncrementalScheduler, VoqDiscipline};
pub use schedule::{Schedule, ScheduleError};
pub use scheduler::{
    check_maximal, greedy_by_key, schedule_champions, schedule_champions_adjusted, Candidate,
    CountingScheduler, MakeScheduler, NoAdjust, Scheduler, ViewAdjust,
};
pub use table::{
    ChangeLogRead, CursorId, DrainOutcome, FlowTable, FlowTableError, TableCursor, VoqView,
};
