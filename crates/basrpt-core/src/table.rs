//! The active-flow store: flows organized in virtual output queues.

use crate::FlowState;
use dcn_types::{FlowId, HostId, Voq};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of process-unique table identities (see [`FlowTable::table_id`]).
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_table_id() -> u64 {
    NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Error returned by [`FlowTable`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowTableError {
    /// A flow with this identifier is already active.
    DuplicateFlow(FlowId),
    /// No active flow has this identifier.
    UnknownFlow(FlowId),
}

impl fmt::Display for FlowTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowTableError::DuplicateFlow(id) => write!(f, "flow {id} is already active"),
            FlowTableError::UnknownFlow(id) => write!(f, "flow {id} is not active"),
        }
    }
}

impl Error for FlowTableError {}

/// Result of draining units from a flow via [`FlowTable::drain`].
///
/// `drained` only falls short of the requested amount when the request
/// exceeds the flow's remaining units. Callers that derive their requests
/// from the remaining size — like the fabric engine's exact epoch
/// accounting, which clamps its integer drain target to the bytes
/// outstanding — always see `drained` equal to the request, and a
/// `completed` outcome exactly when the target reaches the flow size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Units actually removed from the flow (≤ the requested amount).
    pub drained: u64,
    /// The flow's final state if the drain completed it; the flow has then
    /// already been removed from the table.
    pub completed: Option<FlowState>,
}

/// A read-only summary of one non-empty VOQ, as exposed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoqView {
    /// Which VOQ this summarizes.
    pub voq: Voq,
    /// Total remaining units over all flows in the VOQ (the paper's
    /// `X_ij(t)` backlog).
    pub backlog: u64,
    /// Remaining size of the shortest flow in the VOQ.
    pub shortest_remaining: u64,
    /// Identifier of that shortest flow (ties broken by smaller id).
    pub shortest_flow: FlowId,
    /// Identifier of the earliest-arrived flow in the VOQ (smallest id;
    /// generators assign ids in arrival order).
    pub oldest_flow: FlowId,
    /// Number of flows waiting in the VOQ.
    pub len: usize,
}

/// A consumer-side snapshot of a [`FlowTable`]'s change-log position.
///
/// Wraps the raw `(table identity, log position)` pair of the change-log
/// API so consumers that cache table-derived state — e.g. the
/// fast-forward engine's cached schedule in `dcn-switch` — can ask "has
/// anything mutated since I last looked?" in `O(1)` and re-sync after
/// applying their own predicted mutations.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, TableCursor};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// let mut cursor = TableCursor::new(&table);
/// assert!(!cursor.has_changed(&table));
///
/// table.insert(FlowState::new(
///     FlowId::new(1),
///     Voq::new(HostId::new(0), HostId::new(1)),
///     5,
/// ))?;
/// assert!(cursor.has_changed(&table));
/// cursor.resync(&table);
/// assert!(!cursor.has_changed(&table));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCursor {
    table_id: u64,
    pos: u64,
}

impl TableCursor {
    /// A cursor synced to `table`'s current state.
    pub fn new(table: &FlowTable) -> Self {
        TableCursor {
            table_id: table.table_id(),
            pos: table.change_log_end(),
        }
    }

    /// Whether `table` has mutated since this cursor was last synced.
    /// Conservatively `true` when the cursor belongs to a different table
    /// instance or the log was compacted past it.
    pub fn has_changed(&self, table: &FlowTable) -> bool {
        self.table_id != table.table_id() || !matches!(table.changes_since(self.pos), Some([]))
    }

    /// The VOQs mutated since the last sync, oldest first (repeats
    /// possible), or `None` when the history is unavailable — a different
    /// table instance or a compacted log — and the consumer must rebuild
    /// from scratch.
    pub fn changes<'a>(&self, table: &'a FlowTable) -> Option<&'a [Voq]> {
        if self.table_id != table.table_id() {
            return None;
        }
        table.changes_since(self.pos)
    }

    /// Re-syncs the cursor to `table`'s current state.
    pub fn resync(&mut self, table: &FlowTable) {
        *self = TableCursor::new(table);
    }
}

#[derive(Debug, Default, Clone)]
struct VoqIndex {
    /// Flows ordered by (remaining, id): first element is the SRPT pick.
    by_remaining: BTreeSet<(u64, FlowId)>,
    /// Flows ordered by id (= arrival order): first element is the FIFO pick.
    by_id: BTreeSet<FlowId>,
    backlog: u64,
}

/// The set of active flows, indexed by VOQ, with the aggregate backlogs the
/// backlog-aware schedulers need.
///
/// Invariants maintained by every operation:
///
/// * a VOQ entry exists iff the VOQ holds at least one flow;
/// * `backlog` of a VOQ equals the sum of its flows' remaining units;
/// * per-ingress-port and total backlogs equal the sums over their VOQs.
///
/// Lookup of the per-VOQ shortest (SRPT candidate) and oldest (FIFO
/// candidate) flow is `O(log n)`, so a full scheduling pass costs
/// `O(Q log Q)` in the number of non-empty VOQs rather than `O(F log F)` in
/// the number of flows.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// let voq = Voq::new(HostId::new(0), HostId::new(1));
/// table.insert(FlowState::new(FlowId::new(1), voq, 5))?;
/// table.insert(FlowState::new(FlowId::new(2), voq, 3))?;
/// assert_eq!(table.voq_backlog(voq), 8);
///
/// let out = table.drain(FlowId::new(2), 3)?;
/// assert!(out.completed.is_some());
/// assert_eq!(table.voq_backlog(voq), 5);
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowId, FlowState>,
    voqs: BTreeMap<Voq, VoqIndex>,
    ingress: BTreeMap<HostId, u64>,
    total_backlog: u64,
    /// Process-unique identity; fresh for every constructed or cloned table
    /// so change-log consumers never confuse two tables' logs.
    table_id: u64,
    /// VOQs touched by mutations since position `log_base`, oldest first;
    /// see [`FlowTable::changes_since`].
    change_log: Vec<Voq>,
    /// Absolute change-log position of `change_log[0]`. Advances when the
    /// log is compacted, invalidating older cursors.
    log_base: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable {
            flows: HashMap::new(),
            voqs: BTreeMap::new(),
            ingress: BTreeMap::new(),
            total_backlog: 0,
            table_id: fresh_table_id(),
            change_log: Vec::new(),
            log_base: 0,
        }
    }
}

impl Clone for FlowTable {
    /// Clones the flow contents. The clone gets a **fresh identity** and an
    /// empty change log: incremental consumers synced to the original will
    /// fully rebuild against the clone instead of mis-applying its log.
    fn clone(&self) -> Self {
        FlowTable {
            flows: self.flows.clone(),
            voqs: self.voqs.clone(),
            ingress: self.ingress.clone(),
            total_backlog: self.total_backlog,
            table_id: fresh_table_id(),
            change_log: Vec::new(),
            log_base: 0,
        }
    }
}

impl FlowTable {
    /// Creates an empty flow table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flows are active.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Number of non-empty VOQs.
    pub fn num_nonempty_voqs(&self) -> usize {
        self.voqs.len()
    }

    /// Total remaining units across all flows.
    pub fn total_backlog(&self) -> u64 {
        self.total_backlog
    }

    /// Backlog (`X_ij`) of one VOQ; zero if the VOQ is empty.
    pub fn voq_backlog(&self, voq: Voq) -> u64 {
        self.voqs.get(&voq).map_or(0, |v| v.backlog)
    }

    /// Total backlog queued at one ingress port (the per-server queue length
    /// plotted in the paper's Figs. 2 and 5b).
    pub fn ingress_backlog(&self, host: HostId) -> u64 {
        self.ingress.get(&host).copied().unwrap_or(0)
    }

    /// Iterates over the ingress ports with non-zero backlog and their
    /// backlogs, in port order (the per-server queue lengths of the paper's
    /// Figs. 2 and 5b).
    pub fn ingress_backlogs(&self) -> impl Iterator<Item = (HostId, u64)> + '_ {
        self.ingress.iter().map(|(&h, &b)| (h, b))
    }

    /// The largest per-ingress-port backlog, zero for an empty table.
    pub fn max_ingress_backlog(&self) -> u64 {
        self.ingress.values().copied().max().unwrap_or(0)
    }

    /// Number of ingress ports with non-zero backlog. Every non-empty VOQ's
    /// source is one of them, so a crossbar matching that occupies this many
    /// ingress ports cannot be extended — schedulers use that as an early
    /// exit.
    pub fn num_active_ingress_ports(&self) -> usize {
        self.ingress.len()
    }

    /// Looks up an active flow.
    pub fn get(&self, id: FlowId) -> Option<&FlowState> {
        self.flows.get(&id)
    }

    /// Iterates over all active flows in unspecified order (for statistics;
    /// schedulers should use [`FlowTable::voqs`]).
    pub fn iter(&self) -> impl Iterator<Item = &FlowState> {
        self.flows.values()
    }

    /// Iterates over all non-empty VOQs in deterministic (lexicographic)
    /// order, yielding the per-VOQ summaries schedulers rank.
    pub fn voqs(&self) -> impl Iterator<Item = VoqView> + '_ {
        self.voqs.iter().map(|(&voq, idx)| Self::view_of(voq, idx))
    }

    /// The summary of one VOQ, or `None` if the VOQ is currently empty.
    /// `O(log Q)` — the single-VOQ counterpart of [`FlowTable::voqs`] used
    /// by incremental schedulers to refresh only the queues that changed.
    pub fn voq_view(&self, voq: Voq) -> Option<VoqView> {
        self.voqs.get(&voq).map(|idx| Self::view_of(voq, idx))
    }

    fn view_of(voq: Voq, idx: &VoqIndex) -> VoqView {
        let &(shortest_remaining, shortest_flow) = idx
            .by_remaining
            .first()
            .expect("non-empty VOQ invariant violated");
        let &oldest_flow = idx.by_id.first().expect("non-empty VOQ invariant violated");
        VoqView {
            voq,
            backlog: idx.backlog,
            shortest_remaining,
            shortest_flow,
            oldest_flow,
            len: idx.by_id.len(),
        }
    }

    /// The process-unique identity of this table instance. Every
    /// construction — including [`Clone::clone`] — yields a new identity, so
    /// a consumer holding a `(table_id, change-log position)` cursor can
    /// detect that it is looking at a different table and resynchronize
    /// from scratch.
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// The absolute change-log position one past the most recent change.
    /// Monotonically non-decreasing over the table's lifetime; a consumer
    /// that has applied every change up to this position is fully synced.
    pub fn change_log_end(&self) -> u64 {
        self.log_base + self.change_log.len() as u64
    }

    /// The VOQs mutated at or after absolute log position `pos`, oldest
    /// first, or `None` if the log no longer reaches back that far (it is
    /// periodically compacted) — the consumer must then rebuild from
    /// [`FlowTable::voqs`]. A VOQ may appear more than once; reprocessing
    /// is idempotent for consumers that re-read the VOQ's current state.
    pub fn changes_since(&self, pos: u64) -> Option<&[Voq]> {
        if pos < self.log_base {
            return None;
        }
        let idx = usize::try_from(pos - self.log_base).ok()?;
        self.change_log.get(idx..)
    }

    /// Appends `voq` to the change log, compacting — dropping the whole
    /// log and advancing `log_base` — once it outgrows a small multiple of
    /// the live VOQ count. Repeats are *not* collapsed: a consumer may
    /// already have consumed up to the previous entry, so suppressing a
    /// duplicate would lose the change for it.
    fn record_change(&mut self, voq: Voq) {
        self.change_log.push(voq);
        let cap = usize::max(1024, 8 * self.voqs.len());
        if self.change_log.len() > cap {
            self.log_base += self.change_log.len() as u64;
            self.change_log.clear();
        }
    }

    /// Inserts a newly arrived flow.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::DuplicateFlow`] if the id is already active.
    pub fn insert(&mut self, flow: FlowState) -> Result<(), FlowTableError> {
        if self.flows.contains_key(&flow.id()) {
            return Err(FlowTableError::DuplicateFlow(flow.id()));
        }
        let idx = self.voqs.entry(flow.voq()).or_default();
        idx.by_remaining.insert((flow.remaining(), flow.id()));
        idx.by_id.insert(flow.id());
        idx.backlog += flow.remaining();
        *self.ingress.entry(flow.voq().src()).or_insert(0) += flow.remaining();
        self.total_backlog += flow.remaining();
        self.record_change(flow.voq());
        self.flows.insert(flow.id(), flow);
        Ok(())
    }

    /// Removes a flow (e.g. a cancelled transfer), returning its state.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::UnknownFlow`] if the id is not active.
    pub fn remove(&mut self, id: FlowId) -> Result<FlowState, FlowTableError> {
        let flow = self
            .flows
            .remove(&id)
            .ok_or(FlowTableError::UnknownFlow(id))?;
        self.unindex(&flow);
        Ok(flow)
    }

    /// Drains up to `units` from a flow, removing the flow if it completes.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::UnknownFlow`] if the id is not active.
    pub fn drain(&mut self, id: FlowId, units: u64) -> Result<DrainOutcome, FlowTableError> {
        let flow = self
            .flows
            .get_mut(&id)
            .ok_or(FlowTableError::UnknownFlow(id))?;
        let before = flow.remaining();
        let drained = flow.drain(units);
        let after = flow.remaining();
        let flow = *flow;

        // Re-index under the new remaining size.
        let idx = self
            .voqs
            .get_mut(&flow.voq())
            .expect("flow present but VOQ index missing");
        idx.by_remaining.remove(&(before, id));
        idx.backlog -= drained;
        let ingress = self
            .ingress
            .get_mut(&flow.voq().src())
            .expect("flow present but ingress index missing");
        *ingress -= drained;
        self.total_backlog -= drained;

        if after == 0 {
            idx.by_id.remove(&id);
            if idx.by_id.is_empty() {
                self.voqs.remove(&flow.voq());
            }
            if *ingress == 0 {
                self.ingress.remove(&flow.voq().src());
            }
            self.flows.remove(&id);
            self.record_change(flow.voq());
            Ok(DrainOutcome {
                drained,
                completed: Some(flow),
            })
        } else {
            idx.by_remaining.insert((after, id));
            self.record_change(flow.voq());
            Ok(DrainOutcome {
                drained,
                completed: None,
            })
        }
    }

    fn unindex(&mut self, flow: &FlowState) {
        let idx = self
            .voqs
            .get_mut(&flow.voq())
            .expect("flow present but VOQ index missing");
        idx.by_remaining.remove(&(flow.remaining(), flow.id()));
        idx.by_id.remove(&flow.id());
        idx.backlog -= flow.remaining();
        if idx.by_id.is_empty() {
            self.voqs.remove(&flow.voq());
        }
        let ingress = self
            .ingress
            .get_mut(&flow.voq().src())
            .expect("flow present but ingress index missing");
        *ingress -= flow.remaining();
        if *ingress == 0 {
            self.ingress.remove(&flow.voq().src());
        }
        self.total_backlog -= flow.remaining();
        self.record_change(flow.voq());
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation. Intended for tests and debug assertions; cost is
    /// linear in the number of flows.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut voq_sums: BTreeMap<Voq, u64> = BTreeMap::new();
        let mut ingress_sums: BTreeMap<HostId, u64> = BTreeMap::new();
        let mut total = 0u64;
        for flow in self.flows.values() {
            if flow.is_complete() {
                return Err(format!("completed flow {} still in table", flow.id()));
            }
            *voq_sums.entry(flow.voq()).or_insert(0) += flow.remaining();
            *ingress_sums.entry(flow.voq().src()).or_insert(0) += flow.remaining();
            total += flow.remaining();
        }
        if total != self.total_backlog {
            return Err(format!(
                "total backlog {} != recomputed {}",
                self.total_backlog, total
            ));
        }
        if voq_sums.len() != self.voqs.len() {
            return Err(format!(
                "{} indexed VOQs but {} non-empty",
                self.voqs.len(),
                voq_sums.len()
            ));
        }
        for (voq, idx) in &self.voqs {
            let expect = voq_sums.get(voq).copied().unwrap_or(0);
            if idx.backlog != expect {
                return Err(format!("VOQ {voq} backlog {} != {expect}", idx.backlog));
            }
            if idx.by_remaining.len() != idx.by_id.len() {
                return Err(format!("VOQ {voq} index size mismatch"));
            }
        }
        if ingress_sums != self.ingress {
            return Err("ingress backlog index mismatch".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voq(src: u32, dst: u32) -> Voq {
        Voq::new(HostId::new(src), HostId::new(dst))
    }

    fn flow(id: u64, src: u32, dst: u32, size: u64) -> FlowState {
        FlowState::new(FlowId::new(id), voq(src, dst), size)
    }

    #[test]
    fn insert_updates_all_backlogs() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 2, 3)).unwrap();
        t.insert(flow(3, 1, 2, 7)).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_backlog(), 15);
        assert_eq!(t.voq_backlog(voq(0, 1)), 5);
        assert_eq!(t.voq_backlog(voq(0, 2)), 3);
        assert_eq!(t.ingress_backlog(HostId::new(0)), 8);
        assert_eq!(t.ingress_backlog(HostId::new(1)), 7);
        assert_eq!(t.num_nonempty_voqs(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        assert_eq!(
            t.insert(flow(1, 2, 3, 4)),
            Err(FlowTableError::DuplicateFlow(FlowId::new(1)))
        );
    }

    #[test]
    fn drain_partial_keeps_flow_and_reindexes() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        // Flow 2 is the SRPT candidate.
        let view = t.voqs().next().unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(2));

        // Drain flow 1 below flow 2's remaining; candidate flips.
        let out = t.drain(FlowId::new(1), 3).unwrap();
        assert_eq!(out.drained, 3);
        assert!(out.completed.is_none());
        let view = t.voqs().next().unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(1));
        assert_eq!(view.shortest_remaining, 2);
        assert_eq!(view.backlog, 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn drain_to_completion_removes_flow_and_empty_voq() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        let out = t.drain(FlowId::new(1), 99).unwrap();
        assert_eq!(out.drained, 5);
        let done = out.completed.expect("flow should complete");
        assert_eq!(done.id(), FlowId::new(1));
        assert!(t.is_empty());
        assert_eq!(t.num_nonempty_voqs(), 0);
        assert_eq!(t.total_backlog(), 0);
        assert_eq!(t.ingress_backlog(HostId::new(0)), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_unindexes() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        let removed = t.remove(FlowId::new(1)).unwrap();
        assert_eq!(removed.size(), 5);
        assert_eq!(t.voq_backlog(voq(0, 1)), 3);
        assert_eq!(
            t.remove(FlowId::new(1)),
            Err(FlowTableError::UnknownFlow(FlowId::new(1)))
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn drain_unknown_flow_errors() {
        let mut t = FlowTable::new();
        assert_eq!(
            t.drain(FlowId::new(9), 1),
            Err(FlowTableError::UnknownFlow(FlowId::new(9)))
        );
    }

    #[test]
    fn voq_views_are_deterministically_ordered() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 2, 0, 5)).unwrap();
        t.insert(flow(2, 0, 9, 3)).unwrap();
        t.insert(flow(3, 1, 4, 7)).unwrap();
        let voqs: Vec<Voq> = t.voqs().map(|v| v.voq).collect();
        assert_eq!(voqs, vec![voq(0, 9), voq(1, 4), voq(2, 0)]);
    }

    #[test]
    fn change_log_records_every_mutation() {
        let mut t = FlowTable::new();
        let start = t.change_log_end();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        t.drain(FlowId::new(1), 2).unwrap();
        t.remove(FlowId::new(2)).unwrap();
        let changes = t.changes_since(start).unwrap();
        assert_eq!(changes, [voq(0, 1); 4]);
        assert_eq!(t.change_log_end(), start + 4);
        // A fully caught-up consumer sees an empty suffix.
        assert_eq!(t.changes_since(t.change_log_end()), Some(&[][..]));
        // Positions beyond the end never existed.
        assert_eq!(t.changes_since(t.change_log_end() + 1), None);
    }

    #[test]
    fn change_log_compaction_invalidates_old_cursors() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5_000)).unwrap();
        let start = t.change_log_end();
        for _ in 0..2_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        assert!(
            t.changes_since(start).is_none(),
            "log should have compacted"
        );
        assert!(t.change_log_end() >= start + 2_000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn clone_gets_fresh_identity_and_empty_log() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        let copy = t.clone();
        assert_ne!(t.table_id(), copy.table_id());
        assert_eq!(copy.changes_since(0), Some(&[][..]));
        assert_eq!(copy.total_backlog(), 5);
        copy.check_invariants().unwrap();
    }

    #[test]
    fn voq_view_matches_iterator() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        let from_iter = t.voqs().next().unwrap();
        assert_eq!(t.voq_view(voq(0, 1)), Some(from_iter));
        assert_eq!(t.voq_view(voq(3, 4)), None);
    }

    #[test]
    fn oldest_flow_is_smallest_id() {
        let mut t = FlowTable::new();
        t.insert(flow(5, 0, 1, 2)).unwrap();
        t.insert(flow(3, 0, 1, 9)).unwrap();
        let view = t.voqs().next().unwrap();
        assert_eq!(view.oldest_flow, FlowId::new(3));
        assert_eq!(view.shortest_flow, FlowId::new(5));
        assert_eq!(view.len, 2);
    }
}
