//! The active-flow store: flows organized in virtual output queues.
//!
//! The table is built around two structures sized for the scheduling hot
//! path:
//!
//! * a **slab arena** of flows — `Vec<Option<FlowEntry>>` slots addressed by
//!   dense indices, with a free list for reuse — so drains and champion
//!   updates touch contiguous memory instead of chasing `HashMap` buckets;
//! * a **champion index** per VOQ — the cached shortest `(remaining, id)`
//!   pair and smallest id, plus two lazily-invalidated runner-up heaps in
//!   the style of `dcn-fabric`'s completion calendar — so schedulers read
//!   each VOQ's winning candidate in `O(1)` and the table restores it in
//!   amortized `O(log n)` when a champion leaves.

use crate::FlowState;
use dcn_types::{FlowId, HostId, Voq};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of process-unique table identities (see [`FlowTable::table_id`]).
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_table_id() -> u64 {
    NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Error returned by [`FlowTable`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowTableError {
    /// A flow with this identifier is already active.
    DuplicateFlow(FlowId),
    /// No active flow has this identifier.
    UnknownFlow(FlowId),
}

impl fmt::Display for FlowTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowTableError::DuplicateFlow(id) => write!(f, "flow {id} is already active"),
            FlowTableError::UnknownFlow(id) => write!(f, "flow {id} is not active"),
        }
    }
}

impl Error for FlowTableError {}

/// Result of draining units from a flow via [`FlowTable::drain`].
///
/// `drained` only falls short of the requested amount when the request
/// exceeds the flow's remaining units. Callers that derive their requests
/// from the remaining size — like the fabric engine's exact epoch
/// accounting, which clamps its integer drain target to the bytes
/// outstanding — always see `drained` equal to the request, and a
/// `completed` outcome exactly when the target reaches the flow size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Units actually removed from the flow (≤ the requested amount).
    pub drained: u64,
    /// The flow's final state if the drain completed it; the flow has then
    /// already been removed from the table.
    pub completed: Option<FlowState>,
}

/// A read-only summary of one non-empty VOQ, as exposed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoqView {
    /// Which VOQ this summarizes.
    pub voq: Voq,
    /// Total remaining units over all flows in the VOQ (the paper's
    /// `X_ij(t)` backlog).
    pub backlog: u64,
    /// Remaining size of the shortest flow in the VOQ.
    pub shortest_remaining: u64,
    /// Identifier of that shortest flow (ties broken by smaller id).
    pub shortest_flow: FlowId,
    /// Identifier of the earliest-arrived flow in the VOQ (smallest id;
    /// generators assign ids in arrival order).
    pub oldest_flow: FlowId,
    /// Number of flows waiting in the VOQ.
    pub len: usize,
}

/// A consumer-side snapshot of a [`FlowTable`]'s change-log position.
///
/// Wraps the raw `(table identity, log position)` pair of the change-log
/// API so consumers that cache table-derived state — e.g. the
/// fast-forward engine's cached schedule in `dcn-switch` — can ask "has
/// anything mutated since I last looked?" in `O(1)` and re-sync after
/// applying their own predicted mutations.
///
/// An anonymous cursor tolerates compaction by rebuilding; a consumer that
/// wants its unconsumed suffix preserved across compactions should also
/// register via [`FlowTable::register_cursor`].
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, TableCursor};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// let mut cursor = TableCursor::new(&table);
/// assert!(!cursor.has_changed(&table));
///
/// table.insert(FlowState::new(
///     FlowId::new(1),
///     Voq::new(HostId::new(0), HostId::new(1)),
///     5,
/// ))?;
/// assert!(cursor.has_changed(&table));
/// cursor.resync(&table);
/// assert!(!cursor.has_changed(&table));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCursor {
    table_id: u64,
    pos: u64,
}

impl TableCursor {
    /// A cursor synced to `table`'s current state.
    pub fn new(table: &FlowTable) -> Self {
        TableCursor {
            table_id: table.table_id(),
            pos: table.change_log_end(),
        }
    }

    /// Whether `table` has mutated since this cursor was last synced.
    /// Conservatively `true` when the cursor belongs to a different table
    /// instance or the log was compacted past it.
    pub fn has_changed(&self, table: &FlowTable) -> bool {
        self.table_id != table.table_id() || !matches!(table.changes_since(self.pos), Some([]))
    }

    /// The VOQs mutated since the last sync, oldest first (repeats
    /// possible), or `None` when the history is unavailable — a different
    /// table instance or a compacted log — and the consumer must rebuild
    /// from scratch.
    pub fn changes<'a>(&self, table: &'a FlowTable) -> Option<&'a [Voq]> {
        if self.table_id != table.table_id() {
            return None;
        }
        table.changes_since(self.pos)
    }

    /// Re-syncs the cursor to `table`'s current state.
    pub fn resync(&mut self, table: &FlowTable) {
        *self = TableCursor::new(table);
    }
}

/// The outcome of reading the change log from a position
/// ([`FlowTable::read_changes`]).
///
/// The loss-reporting sibling of [`FlowTable::changes_since`]: where that
/// API collapses every unreachable position into `None`, this one reports
/// **how much** history is gone, so a streaming consumer can distinguish
/// "nothing new" from "I lost `skipped` changes and must rebuild".
///
/// For a *registered* consumer ([`FlowTable::register_cursor`]) reading
/// from its own acknowledged position, `Lagged` has exactly one cause:
/// stalled-cursor eviction — the consumer fell more than
/// `STALLED_CURSOR_FACTOR` soft capacities behind and compaction dropped
/// its pinned suffix (ordinary compaction never passes a registered
/// consumer's acknowledgement). Unregistered consumers can also see
/// `Lagged` after routine compaction; either way `skipped` counts the
/// dropped entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeLogRead<'a> {
    /// The log still reaches back to the requested position: the VOQs
    /// mutated at or after it, oldest first (possibly empty — fully
    /// synced).
    Changes(&'a [Voq]),
    /// The log was compacted past the requested position; `skipped`
    /// changes between the position and the surviving log are lost and the
    /// consumer must rebuild from [`FlowTable::voqs`].
    Lagged {
        /// Number of change-log entries dropped between the requested
        /// position and the oldest retained entry.
        skipped: u64,
    },
}

impl<'a> ChangeLogRead<'a> {
    /// The retained suffix, or `None` if the history was lost
    /// (the [`ChangeLogRead::Lagged`] case).
    pub fn changes(self) -> Option<&'a [Voq]> {
        match self {
            ChangeLogRead::Changes(c) => Some(c),
            ChangeLogRead::Lagged { .. } => None,
        }
    }
}

/// Handle identifying one registered change-log consumer of one table
/// instance (see [`FlowTable::register_cursor`]). Using a handle against a
/// different table instance — including a clone of the issuing table — is a
/// no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorId {
    table_id: u64,
    slot: u32,
    generation: u32,
}

#[derive(Debug, Clone, Copy)]
struct CursorSlot {
    /// Bumped on every reuse of the slot so a released [`CursorId`] can
    /// never act on a later registration that recycled its slot.
    generation: u32,
    /// Lowest log position this consumer still needs, `None` once released.
    ack: Option<u64>,
}

#[derive(Debug, Default)]
struct CursorRegistry {
    slots: Vec<CursorSlot>,
}

impl CursorRegistry {
    fn register(&mut self, pos: u64) -> (u32, u32) {
        if let Some(i) = self.slots.iter().position(|s| s.ack.is_none()) {
            let slot = &mut self.slots[i];
            slot.generation = slot.generation.wrapping_add(1);
            slot.ack = Some(pos);
            (i as u32, slot.generation)
        } else {
            self.slots.push(CursorSlot {
                generation: 0,
                ack: Some(pos),
            });
            ((self.slots.len() - 1) as u32, 0)
        }
    }

    fn slot_mut(&mut self, slot: u32, generation: u32) -> Option<&mut CursorSlot> {
        self.slots
            .get_mut(slot as usize)
            .filter(|s| s.generation == generation && s.ack.is_some())
    }

    fn min_ack(&self) -> Option<u64> {
        self.slots.iter().filter_map(|s| s.ack).min()
    }

    fn force_ack_all(&mut self, pos: u64) {
        for s in &mut self.slots {
            if let Some(ack) = &mut s.ack {
                *ack = (*ack).max(pos);
            }
        }
    }
}

/// One active flow in the slab arena.
#[derive(Debug, Clone, Copy)]
struct FlowEntry {
    state: FlowState,
    /// Index of the flow's VOQ in `FlowTable::voq_slots`.
    voq_slot: u32,
}

/// Per-VOQ champion index: the current winners plus lazily-invalidated
/// runner-up heaps (see the invariants on [`FlowTable`]).
#[derive(Debug, Clone)]
struct VoqSlot {
    voq: Voq,
    len: u32,
    backlog: u64,
    /// Cached champions; meaningful only while `len > 0`.
    shortest_remaining: u64,
    shortest_flow: FlowId,
    oldest_flow: FlowId,
    /// Min-heap of `(remaining, id)` candidate entries. Entries go stale
    /// when their flow drains, completes or becomes the cached champion;
    /// stale tops are discarded when a new champion is needed.
    runners_short: BinaryHeap<Reverse<(u64, FlowId)>>,
    /// Min-heap of candidate ids for the FIFO (oldest = smallest id) pick,
    /// with the same lazy-invalidation contract.
    runners_old: BinaryHeap<Reverse<FlowId>>,
}

impl VoqSlot {
    fn empty(voq: Voq) -> Self {
        VoqSlot {
            voq,
            len: 0,
            backlog: 0,
            shortest_remaining: 0,
            shortest_flow: FlowId::new(0),
            oldest_flow: FlowId::new(0),
            runners_short: BinaryHeap::new(),
            runners_old: BinaryHeap::new(),
        }
    }
}

/// The set of active flows, indexed by VOQ, with the aggregate backlogs the
/// backlog-aware schedulers need.
///
/// Invariants maintained by every operation:
///
/// * a VOQ appears in the non-empty index iff it holds at least one flow;
/// * `backlog` of a VOQ equals the sum of its flows' remaining units;
/// * per-ingress-port and total backlogs equal the sums over their VOQs;
/// * the cached champions of a non-empty VOQ are exact: `(shortest_remaining,
///   shortest_flow)` is the minimum `(remaining, id)` pair over its flows and
///   `oldest_flow` is its smallest id;
/// * **runner coverage**: every live flow of a VOQ that is *not* the cached
///   champion has at least one heap entry matching its current key, so when
///   a champion completes or is removed, popping heap entries until the
///   first one that matches a live flow's current state yields the exact
///   next champion. Stale entries (drained, completed, or reused ids) are
///   discarded on the way; duplicates are harmless because validity is
///   checked against live state, never assumed.
///
/// Reading the per-VOQ champions ([`FlowTable::voqs`],
/// [`FlowTable::voq_view`]) is `O(1)` per VOQ off the cached fields, so a
/// full scheduling pass costs `O(Q log Q)` in the number of non-empty VOQs
/// rather than `O(F log F)` in the number of flows, and champion-preserving
/// drains (the SRPT/BASRPT steady state: the shortest flow only gets
/// shorter) cost `O(1)` with no heap traffic at all.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// let voq = Voq::new(HostId::new(0), HostId::new(1));
/// table.insert(FlowState::new(FlowId::new(1), voq, 5))?;
/// table.insert(FlowState::new(FlowId::new(2), voq, 3))?;
/// assert_eq!(table.voq_backlog(voq), 8);
///
/// let out = table.drain(FlowId::new(2), 3)?;
/// assert!(out.completed.is_some());
/// assert_eq!(table.voq_backlog(voq), 5);
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug)]
pub struct FlowTable {
    /// Slab arena of active flows; freed slots are recycled via `free`.
    flows: Vec<Option<FlowEntry>>,
    free: Vec<u32>,
    /// FlowId → slab slot.
    flow_slots: HashMap<FlowId, u32>,
    /// Per-VOQ champion index; slots persist for the table's lifetime so a
    /// VOQ keeps its dense index across empty/non-empty transitions.
    voq_slots: Vec<VoqSlot>,
    /// Voq → slot in `voq_slots`.
    voq_lookup: HashMap<Voq, u32>,
    /// Non-empty VOQs in lexicographic order, mutated only on emptiness
    /// transitions — this pins the deterministic [`FlowTable::voqs`] order.
    nonempty: BTreeMap<Voq, u32>,
    ingress: BTreeMap<HostId, u64>,
    total_backlog: u64,
    /// Process-unique identity; fresh for every constructed or cloned table
    /// so change-log consumers never confuse two tables' logs.
    table_id: u64,
    /// VOQs touched by mutations since position `log_base`, oldest first;
    /// see [`FlowTable::changes_since`].
    change_log: Vec<Voq>,
    /// Absolute change-log position of `change_log[0]`. Advances when the
    /// log is compacted, invalidating older cursors.
    log_base: u64,
    /// Registered change-log consumers ([`FlowTable::register_cursor`]).
    /// Interior mutability: registration and acknowledgement are consumer
    /// bookkeeping, reachable from the `&FlowTable` that schedulers hold.
    cursors: RefCell<CursorRegistry>,
}

/// A registered cursor that stops acknowledging pins log history; past this
/// multiple of the soft capacity the whole log is dropped anyway and every
/// lagging consumer rebuilds, bounding memory at the price of one rebuild.
const STALLED_CURSOR_FACTOR: usize = 32;

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable {
            flows: Vec::new(),
            free: Vec::new(),
            flow_slots: HashMap::new(),
            voq_slots: Vec::new(),
            voq_lookup: HashMap::new(),
            nonempty: BTreeMap::new(),
            ingress: BTreeMap::new(),
            total_backlog: 0,
            table_id: fresh_table_id(),
            change_log: Vec::new(),
            log_base: 0,
            cursors: RefCell::new(CursorRegistry::default()),
        }
    }
}

impl Clone for FlowTable {
    /// Clones the flow contents. The clone gets a **fresh identity**, an
    /// empty change log and no registered cursors: incremental consumers
    /// synced to the original will fully rebuild against the clone instead
    /// of mis-applying its log, and their [`CursorId`]s do not transfer.
    fn clone(&self) -> Self {
        FlowTable {
            flows: self.flows.clone(),
            free: self.free.clone(),
            flow_slots: self.flow_slots.clone(),
            voq_slots: self.voq_slots.clone(),
            voq_lookup: self.voq_lookup.clone(),
            nonempty: self.nonempty.clone(),
            ingress: self.ingress.clone(),
            total_backlog: self.total_backlog,
            table_id: fresh_table_id(),
            change_log: Vec::new(),
            log_base: 0,
            cursors: RefCell::new(CursorRegistry::default()),
        }
    }
}

impl FlowTable {
    /// Creates an empty flow table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of active flows.
    pub fn len(&self) -> usize {
        self.flow_slots.len()
    }

    /// Whether no flows are active.
    pub fn is_empty(&self) -> bool {
        self.flow_slots.is_empty()
    }

    /// Number of non-empty VOQs.
    pub fn num_nonempty_voqs(&self) -> usize {
        self.nonempty.len()
    }

    /// Total remaining units across all flows.
    pub fn total_backlog(&self) -> u64 {
        self.total_backlog
    }

    /// Backlog (`X_ij`) of one VOQ; zero if the VOQ is empty.
    pub fn voq_backlog(&self, voq: Voq) -> u64 {
        self.voq_lookup
            .get(&voq)
            .map_or(0, |&vs| self.voq_slots[vs as usize].backlog)
    }

    /// Total backlog queued at one ingress port (the per-server queue length
    /// plotted in the paper's Figs. 2 and 5b).
    pub fn ingress_backlog(&self, host: HostId) -> u64 {
        self.ingress.get(&host).copied().unwrap_or(0)
    }

    /// Iterates over the ingress ports with non-zero backlog and their
    /// backlogs, in port order (the per-server queue lengths of the paper's
    /// Figs. 2 and 5b).
    pub fn ingress_backlogs(&self) -> impl Iterator<Item = (HostId, u64)> + '_ {
        self.ingress.iter().map(|(&h, &b)| (h, b))
    }

    /// The largest per-ingress-port backlog, zero for an empty table.
    pub fn max_ingress_backlog(&self) -> u64 {
        self.ingress.values().copied().max().unwrap_or(0)
    }

    /// Number of ingress ports with non-zero backlog. Every non-empty VOQ's
    /// source is one of them, so a crossbar matching that occupies this many
    /// ingress ports cannot be extended — schedulers use that as an early
    /// exit.
    pub fn num_active_ingress_ports(&self) -> usize {
        self.ingress.len()
    }

    /// Looks up an active flow.
    pub fn get(&self, id: FlowId) -> Option<&FlowState> {
        let &slot = self.flow_slots.get(&id)?;
        self.flows[slot as usize].as_ref().map(|e| &e.state)
    }

    /// Iterates over all active flows in unspecified order (for statistics;
    /// schedulers should use [`FlowTable::voqs`]).
    pub fn iter(&self) -> impl Iterator<Item = &FlowState> {
        self.flows.iter().flatten().map(|e| &e.state)
    }

    /// Iterates over all non-empty VOQs in deterministic (lexicographic)
    /// order, yielding the per-VOQ champion summaries schedulers rank. Each
    /// view is read off the cached champion fields in `O(1)`.
    pub fn voqs(&self) -> impl Iterator<Item = VoqView> + '_ {
        self.nonempty
            .iter()
            .map(move |(&voq, &vs)| self.view_of(voq, vs))
    }

    /// The summary of one VOQ, or `None` if the VOQ is currently empty.
    /// `O(1)` — the single-VOQ counterpart of [`FlowTable::voqs`] used by
    /// incremental schedulers to refresh only the queues that changed.
    pub fn voq_view(&self, voq: Voq) -> Option<VoqView> {
        let &vs = self.voq_lookup.get(&voq)?;
        if self.voq_slots[vs as usize].len == 0 {
            return None;
        }
        Some(self.view_of(voq, vs))
    }

    fn view_of(&self, voq: Voq, vs: u32) -> VoqView {
        let slot = &self.voq_slots[vs as usize];
        debug_assert!(slot.len > 0, "view of empty VOQ");
        VoqView {
            voq,
            backlog: slot.backlog,
            shortest_remaining: slot.shortest_remaining,
            shortest_flow: slot.shortest_flow,
            oldest_flow: slot.oldest_flow,
            len: slot.len as usize,
        }
    }

    /// The process-unique identity of this table instance. Every
    /// construction — including [`Clone::clone`] — yields a new identity, so
    /// a consumer holding a `(table_id, change-log position)` cursor can
    /// detect that it is looking at a different table and resynchronize
    /// from scratch.
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// The absolute change-log position one past the most recent change.
    /// Monotonically non-decreasing over the table's lifetime; a consumer
    /// that has applied every change up to this position is fully synced.
    pub fn change_log_end(&self) -> u64 {
        self.log_base + self.change_log.len() as u64
    }

    /// The VOQs mutated at or after absolute log position `pos`, oldest
    /// first, or `None` if the log no longer reaches back that far (it is
    /// periodically compacted) — the consumer must then rebuild from
    /// [`FlowTable::voqs`]. A VOQ may appear more than once; reprocessing
    /// is idempotent for consumers that re-read the VOQ's current state.
    pub fn changes_since(&self, pos: u64) -> Option<&[Voq]> {
        if pos < self.log_base {
            return None;
        }
        let idx = usize::try_from(pos - self.log_base).ok()?;
        self.change_log.get(idx..)
    }

    /// Reads the change log from absolute position `pos`, reporting loss
    /// explicitly: [`ChangeLogRead::Changes`] with the retained suffix when
    /// the log still reaches back that far, [`ChangeLogRead::Lagged`] with
    /// the number of dropped entries when compaction passed the position.
    ///
    /// This is how a *registered* consumer ([`FlowTable::register_cursor`])
    /// detects stalled-cursor eviction: ordinary compaction never drops an
    /// entry a registered consumer has not acknowledged, so reading from
    /// its own acknowledged position can only come back `Lagged` after the
    /// hard-cap eviction force-advanced it — the suffix is gone and the
    /// consumer must rebuild, knowing exactly how many changes it missed.
    /// ([`FlowTable::changes_since`] collapses both cases into `None`.)
    ///
    /// Positions past the current end (which cannot arise from a position
    /// this table handed out) read as an empty suffix.
    pub fn read_changes(&self, pos: u64) -> ChangeLogRead<'_> {
        if pos < self.log_base {
            return ChangeLogRead::Lagged {
                skipped: self.log_base - pos,
            };
        }
        let idx = usize::try_from(pos - self.log_base).unwrap_or(self.change_log.len());
        debug_assert!(
            idx <= self.change_log.len(),
            "read_changes position {pos} is past the log end {}",
            self.change_log_end()
        );
        ChangeLogRead::Changes(self.change_log.get(idx..).unwrap_or(&[]))
    }

    /// Registers a long-lived change-log consumer, pinning history so
    /// compaction only drops log entries every registered consumer has
    /// acknowledged via [`FlowTable::ack_changes`]. Taken by `&self`
    /// (interior mutability) because consumers typically hold only the
    /// shared reference the scheduling APIs pass around.
    ///
    /// A consumer that registers but stops acknowledging does not pin
    /// memory forever: past a hard cap the whole log is dropped and every
    /// lagging consumer rebuilds, exactly as if it had never registered.
    ///
    /// # Example
    ///
    /// ```
    /// use basrpt_core::{FlowState, FlowTable, TableCursor};
    /// use dcn_types::{FlowId, HostId, Voq};
    ///
    /// let mut table = FlowTable::new();
    /// let mut cursor = TableCursor::new(&table);
    /// let reg = table.register_cursor();
    /// for id in 0..2_000 {
    ///     let voq = Voq::new(HostId::new(0), HostId::new(1));
    ///     table.insert(FlowState::new(FlowId::new(id), voq, 1))?;
    /// }
    /// // Far more mutations than the soft log capacity, yet the registered
    /// // consumer's suffix survived compaction:
    /// assert!(cursor.changes(&table).is_some());
    /// cursor.resync(&table);
    /// table.ack_changes(reg, table.change_log_end());
    /// # Ok::<(), basrpt_core::FlowTableError>(())
    /// ```
    pub fn register_cursor(&self) -> CursorId {
        let pos = self.change_log_end();
        let (slot, generation) = self.cursors.borrow_mut().register(pos);
        CursorId {
            table_id: self.table_id,
            slot,
            generation,
        }
    }

    /// Acknowledges that the registered consumer has consumed the log up to
    /// absolute position `pos`, releasing that prefix for compaction.
    /// Acknowledgements are monotone (an older `pos` is ignored) and
    /// clamped to the current log end; a handle from another table instance
    /// or an already-released registration is a no-op.
    pub fn ack_changes(&self, cursor: CursorId, pos: u64) {
        if cursor.table_id != self.table_id {
            return;
        }
        let pos = pos.min(self.change_log_end());
        if let Some(slot) = self
            .cursors
            .borrow_mut()
            .slot_mut(cursor.slot, cursor.generation)
        {
            let ack = slot.ack.as_mut().expect("slot_mut filters released slots");
            *ack = (*ack).max(pos);
        }
    }

    /// Releases a registration so it no longer pins log history. The handle
    /// is dead afterwards; a handle from another table instance is a no-op.
    pub fn release_cursor(&self, cursor: CursorId) {
        if cursor.table_id != self.table_id {
            return;
        }
        if let Some(slot) = self
            .cursors
            .borrow_mut()
            .slot_mut(cursor.slot, cursor.generation)
        {
            slot.ack = None;
        }
    }

    /// Appends `voq` to the change log, compacting once it outgrows a small
    /// multiple of the live VOQ count. With no registered cursors the whole
    /// log is dropped (anonymous [`TableCursor`]s conservatively rebuild);
    /// with registered cursors only the prefix every consumer has
    /// acknowledged is dropped, up to a hard cap that evicts stalled
    /// consumers. Repeats are *not* collapsed: a consumer may already have
    /// consumed up to the previous entry, so suppressing a duplicate would
    /// lose the change for it.
    fn record_change(&mut self, voq: Voq) {
        self.change_log.push(voq);
        let cap = usize::max(1024, 8 * self.nonempty.len());
        if self.change_log.len() <= cap {
            return;
        }
        let end = self.log_base + self.change_log.len() as u64;
        let registry = self.cursors.get_mut();
        match registry.min_ack() {
            None => {
                self.log_base = end;
                self.change_log.clear();
            }
            Some(min_ack) => {
                let keep_from = usize::try_from(min_ack.saturating_sub(self.log_base))
                    .unwrap_or(self.change_log.len())
                    .min(self.change_log.len());
                if keep_from > 0 {
                    self.change_log.drain(..keep_from);
                    self.log_base += keep_from as u64;
                }
                if self.change_log.len() > STALLED_CURSOR_FACTOR * cap {
                    self.log_base = end;
                    self.change_log.clear();
                    // The lagging consumers' history is gone; bump them so a
                    // dead registration cannot re-pin the next cycle.
                    registry.force_ack_all(end);
                }
            }
        }
    }

    /// Soft bound on a runner heap before stale entries are pruned.
    fn runner_cap(len: u32) -> usize {
        usize::max(16, 2 * len as usize)
    }

    /// Whether a `(remaining, id)` runner entry matches live state.
    fn runner_short_valid(&self, vs: u32, remaining: u64, id: FlowId) -> bool {
        self.flow_slots.get(&id).is_some_and(|&slot| {
            let entry = self.flows[slot as usize]
                .as_ref()
                .expect("indexed slab slot is live");
            entry.voq_slot == vs && entry.state.remaining() == remaining
        })
    }

    /// Whether an id runner entry matches a flow live in this VOQ.
    fn runner_old_valid(&self, vs: u32, id: FlowId) -> bool {
        self.flow_slots.get(&id).is_some_and(|&slot| {
            self.flows[slot as usize]
                .as_ref()
                .expect("indexed slab slot is live")
                .voq_slot
                == vs
        })
    }

    /// Restores the shortest champion after the cached one left the VOQ:
    /// pops runner entries until the first that matches a live flow's
    /// current `(remaining, id)`. Runner coverage guarantees one exists.
    fn refresh_shortest(&mut self, vs: u32) {
        loop {
            let Reverse((remaining, id)) = self.voq_slots[vs as usize]
                .runners_short
                .pop()
                .expect("runner coverage: non-empty VOQ lost its shortest candidates");
            if self.runner_short_valid(vs, remaining, id) {
                let slot = &mut self.voq_slots[vs as usize];
                slot.shortest_remaining = remaining;
                slot.shortest_flow = id;
                return;
            }
        }
    }

    /// Restores the oldest champion after the cached one left the VOQ.
    fn refresh_oldest(&mut self, vs: u32) {
        loop {
            let Reverse(id) = self.voq_slots[vs as usize]
                .runners_old
                .pop()
                .expect("runner coverage: non-empty VOQ lost its oldest candidates");
            if self.runner_old_valid(vs, id) {
                self.voq_slots[vs as usize].oldest_flow = id;
                return;
            }
        }
    }

    /// Rebuilds a runner heap from only its valid entries (one per flow)
    /// when stale entries outnumber live ones. Amortized `O(1)` per push:
    /// triggered only after at least half the heap went stale.
    fn prune_runners(&mut self, vs: u32) {
        let slot = &mut self.voq_slots[vs as usize];
        let cap = Self::runner_cap(slot.len);
        if slot.runners_short.len() > cap {
            let heap = std::mem::take(&mut self.voq_slots[vs as usize].runners_short);
            let mut seen = HashSet::new();
            let mut kept = Vec::new();
            for Reverse((remaining, id)) in heap.into_vec() {
                if self.runner_short_valid(vs, remaining, id) && seen.insert(id) {
                    kept.push(Reverse((remaining, id)));
                }
            }
            self.voq_slots[vs as usize].runners_short = BinaryHeap::from(kept);
        }
        let slot = &self.voq_slots[vs as usize];
        if slot.runners_old.len() > cap {
            let heap = std::mem::take(&mut self.voq_slots[vs as usize].runners_old);
            let mut seen = HashSet::new();
            let mut kept = Vec::new();
            for Reverse(id) in heap.into_vec() {
                if self.runner_old_valid(vs, id) && seen.insert(id) {
                    kept.push(Reverse(id));
                }
            }
            self.voq_slots[vs as usize].runners_old = BinaryHeap::from(kept);
        }
    }

    /// Inserts a newly arrived flow.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::DuplicateFlow`] if the id is already active.
    pub fn insert(&mut self, flow: FlowState) -> Result<(), FlowTableError> {
        if self.flow_slots.contains_key(&flow.id()) {
            return Err(FlowTableError::DuplicateFlow(flow.id()));
        }
        let voq = flow.voq();
        let vs = match self.voq_lookup.get(&voq) {
            Some(&vs) => vs,
            None => {
                let vs = u32::try_from(self.voq_slots.len()).expect("VOQ slot count fits u32");
                self.voq_slots.push(VoqSlot::empty(voq));
                self.voq_lookup.insert(voq, vs);
                vs
            }
        };

        // Slab insertion first so runner validity checks (pruning below)
        // can already see the new flow.
        let fidx = match self.free.pop() {
            Some(i) => {
                self.flows[i as usize] = Some(FlowEntry {
                    state: flow,
                    voq_slot: vs,
                });
                i
            }
            None => {
                self.flows.push(Some(FlowEntry {
                    state: flow,
                    voq_slot: vs,
                }));
                u32::try_from(self.flows.len() - 1).expect("flow slot count fits u32")
            }
        };
        self.flow_slots.insert(flow.id(), fidx);

        let slot = &mut self.voq_slots[vs as usize];
        if slot.len == 0 {
            slot.shortest_remaining = flow.remaining();
            slot.shortest_flow = flow.id();
            slot.oldest_flow = flow.id();
        } else {
            // Whoever loses the championship (the newcomer or the displaced
            // incumbent) gets a runner entry at its *current* key, keeping
            // runner coverage exact.
            if (flow.remaining(), flow.id()) < (slot.shortest_remaining, slot.shortest_flow) {
                let displaced = (slot.shortest_remaining, slot.shortest_flow);
                slot.runners_short.push(Reverse(displaced));
                slot.shortest_remaining = flow.remaining();
                slot.shortest_flow = flow.id();
            } else {
                slot.runners_short
                    .push(Reverse((flow.remaining(), flow.id())));
            }
            if flow.id() < slot.oldest_flow {
                let displaced = slot.oldest_flow;
                slot.runners_old.push(Reverse(displaced));
                slot.oldest_flow = flow.id();
            } else {
                slot.runners_old.push(Reverse(flow.id()));
            }
        }
        slot.len += 1;
        slot.backlog += flow.remaining();
        let needs_prune = slot.runners_short.len() > Self::runner_cap(slot.len)
            || slot.runners_old.len() > Self::runner_cap(slot.len);
        if slot.len == 1 {
            self.nonempty.insert(voq, vs);
        }
        if needs_prune {
            self.prune_runners(vs);
        }

        *self.ingress.entry(voq.src()).or_insert(0) += flow.remaining();
        self.total_backlog += flow.remaining();
        self.record_change(voq);
        Ok(())
    }

    /// Removes a flow (e.g. a cancelled transfer), returning its state.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::UnknownFlow`] if the id is not active.
    pub fn remove(&mut self, id: FlowId) -> Result<FlowState, FlowTableError> {
        let &fidx = self
            .flow_slots
            .get(&id)
            .ok_or(FlowTableError::UnknownFlow(id))?;
        let entry = self.flows[fidx as usize]
            .take()
            .expect("indexed slab slot is live");
        self.free.push(fidx);
        self.flow_slots.remove(&id);
        let flow = entry.state;
        self.depart(entry.voq_slot, flow.id(), flow.remaining());
        Ok(flow)
    }

    /// Drains up to `units` from a flow, removing the flow if it completes.
    ///
    /// # Errors
    ///
    /// Returns [`FlowTableError::UnknownFlow`] if the id is not active.
    pub fn drain(&mut self, id: FlowId, units: u64) -> Result<DrainOutcome, FlowTableError> {
        let &fidx = self
            .flow_slots
            .get(&id)
            .ok_or(FlowTableError::UnknownFlow(id))?;
        let entry = self.flows[fidx as usize]
            .as_mut()
            .expect("indexed slab slot is live");
        let drained = entry.state.drain(units);
        let after = entry.state.remaining();
        let flow = entry.state;
        let vs = entry.voq_slot;

        if after == 0 {
            self.flows[fidx as usize] = None;
            self.free.push(fidx);
            self.flow_slots.remove(&id);
            self.depart(vs, id, drained);
            return Ok(DrainOutcome {
                drained,
                completed: Some(flow),
            });
        }

        let voq = flow.voq();
        let slot = &mut self.voq_slots[vs as usize];
        slot.backlog -= drained;
        if slot.shortest_flow == id {
            // The champion only got shorter; its `(remaining, id)` pair is
            // still the minimum, so no heap traffic on the hot path.
            slot.shortest_remaining = after;
        } else if (after, id) < (slot.shortest_remaining, slot.shortest_flow) {
            let displaced = (slot.shortest_remaining, slot.shortest_flow);
            slot.runners_short.push(Reverse(displaced));
            slot.shortest_remaining = after;
            slot.shortest_flow = id;
        } else {
            // Still a runner-up: re-cover it at its new key (the old entry
            // just went stale).
            slot.runners_short.push(Reverse((after, id)));
        }
        if slot.runners_short.len() > Self::runner_cap(slot.len) {
            self.prune_runners(vs);
        }
        *self
            .ingress
            .get_mut(&voq.src())
            .expect("flow present but ingress index missing") -= drained;
        self.total_backlog -= drained;
        self.record_change(voq);
        Ok(DrainOutcome {
            drained,
            completed: None,
        })
    }

    /// Shared bookkeeping for a flow leaving its VOQ (completion or
    /// removal). The flow must already be gone from the slab so runner
    /// validity checks see only survivors. `departing_backlog` is the
    /// backlog released by the departure.
    fn depart(&mut self, vs: u32, id: FlowId, departing_backlog: u64) {
        let slot = &mut self.voq_slots[vs as usize];
        let voq = slot.voq;
        slot.backlog -= departing_backlog;
        slot.len -= 1;
        if slot.len == 0 {
            slot.runners_short.clear();
            slot.runners_old.clear();
            self.nonempty.remove(&voq);
        } else {
            if slot.shortest_flow == id {
                self.refresh_shortest(vs);
            }
            if self.voq_slots[vs as usize].oldest_flow == id {
                self.refresh_oldest(vs);
            }
        }
        let ingress = self
            .ingress
            .get_mut(&voq.src())
            .expect("flow present but ingress index missing");
        *ingress -= departing_backlog;
        if *ingress == 0 {
            self.ingress.remove(&voq.src());
        }
        self.total_backlog -= departing_backlog;
        self.record_change(voq);
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation. Intended for tests and debug assertions; cost is
    /// linear in the number of flows plus retained runner entries.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Slab ↔ lookup consistency.
        let mut live = 0usize;
        for (i, entry) in self.flows.iter().enumerate() {
            let Some(entry) = entry else { continue };
            live += 1;
            let flow = &entry.state;
            if flow.is_complete() {
                return Err(format!("completed flow {} still in table", flow.id()));
            }
            if self.flow_slots.get(&flow.id()).copied() != Some(i as u32) {
                return Err(format!("flow {} slab slot not indexed", flow.id()));
            }
            match self.voq_slots.get(entry.voq_slot as usize) {
                Some(slot) if slot.voq == flow.voq() => {}
                _ => return Err(format!("flow {} points at wrong VOQ slot", flow.id())),
            }
        }
        if live != self.flow_slots.len() {
            return Err(format!(
                "{} live slab entries but {} indexed flows",
                live,
                self.flow_slots.len()
            ));
        }
        let mut seen_free = HashSet::new();
        for &f in &self.free {
            if !seen_free.insert(f) {
                return Err(format!("free slot {f} listed twice"));
            }
            if self.flows.get(f as usize).map(Option::is_some) != Some(false) {
                return Err(format!("free slot {f} is not actually free"));
            }
        }
        if seen_free.len() + live != self.flows.len() {
            return Err("slab slots neither live nor free".to_string());
        }

        // Recompute per-VOQ aggregates and champions from the slab.
        struct Recount {
            backlog: u64,
            len: u32,
            shortest: (u64, FlowId),
            oldest: FlowId,
        }
        let mut recounts: BTreeMap<Voq, Recount> = BTreeMap::new();
        let mut ingress_sums: BTreeMap<HostId, u64> = BTreeMap::new();
        let mut total = 0u64;
        for flow in self.iter() {
            let key = (flow.remaining(), flow.id());
            recounts
                .entry(flow.voq())
                .and_modify(|r| {
                    r.backlog += flow.remaining();
                    r.len += 1;
                    r.shortest = r.shortest.min(key);
                    r.oldest = r.oldest.min(flow.id());
                })
                .or_insert(Recount {
                    backlog: flow.remaining(),
                    len: 1,
                    shortest: key,
                    oldest: flow.id(),
                });
            *ingress_sums.entry(flow.voq().src()).or_insert(0) += flow.remaining();
            total += flow.remaining();
        }
        if total != self.total_backlog {
            return Err(format!(
                "total backlog {} != recomputed {}",
                self.total_backlog, total
            ));
        }
        if ingress_sums != self.ingress {
            return Err("ingress backlog index mismatch".to_string());
        }
        if self.voq_lookup.len() != self.voq_slots.len() {
            return Err("VOQ lookup and slot count diverged".to_string());
        }
        for (voq, &vs) in &self.voq_lookup {
            match self.voq_slots.get(vs as usize) {
                Some(slot) if slot.voq == *voq => {}
                _ => return Err(format!("VOQ {voq} lookup points at wrong slot")),
            }
        }
        let nonempty_recount: Vec<Voq> = recounts.keys().copied().collect();
        let nonempty_index: Vec<Voq> = self.nonempty.keys().copied().collect();
        if nonempty_recount != nonempty_index {
            return Err(format!(
                "non-empty index {nonempty_index:?} != recomputed {nonempty_recount:?}"
            ));
        }
        for (voq, &vs) in &self.nonempty {
            if self.voq_lookup.get(voq) != Some(&vs) {
                return Err(format!("non-empty index for {voq} disagrees with lookup"));
            }
        }
        for slot in &self.voq_slots {
            match recounts.get(&slot.voq) {
                None => {
                    if slot.len != 0 || slot.backlog != 0 {
                        return Err(format!("empty VOQ {} has residual counts", slot.voq));
                    }
                    if !slot.runners_short.is_empty() || !slot.runners_old.is_empty() {
                        return Err(format!("empty VOQ {} kept runner entries", slot.voq));
                    }
                }
                Some(r) => {
                    if slot.len != r.len {
                        return Err(format!("VOQ {} len {} != {}", slot.voq, slot.len, r.len));
                    }
                    if slot.backlog != r.backlog {
                        return Err(format!(
                            "VOQ {} backlog {} != {}",
                            slot.voq, slot.backlog, r.backlog
                        ));
                    }
                    if (slot.shortest_remaining, slot.shortest_flow) != r.shortest {
                        return Err(format!(
                            "VOQ {} shortest champion ({}, {}) != {:?}",
                            slot.voq, slot.shortest_remaining, slot.shortest_flow, r.shortest
                        ));
                    }
                    if slot.oldest_flow != r.oldest {
                        return Err(format!(
                            "VOQ {} oldest champion {} != {}",
                            slot.voq, slot.oldest_flow, r.oldest
                        ));
                    }
                }
            }
        }

        // Runner coverage: every live non-champion flow has a valid entry.
        let mut short_entries: HashMap<u32, HashSet<(u64, FlowId)>> = HashMap::new();
        let mut old_entries: HashMap<u32, HashSet<FlowId>> = HashMap::new();
        for (vs, slot) in self.voq_slots.iter().enumerate() {
            short_entries.insert(
                vs as u32,
                slot.runners_short.iter().map(|Reverse(e)| *e).collect(),
            );
            old_entries.insert(
                vs as u32,
                slot.runners_old.iter().map(|Reverse(id)| *id).collect(),
            );
        }
        for entry in self.flows.iter().flatten() {
            let flow = &entry.state;
            let vs = entry.voq_slot;
            let slot = &self.voq_slots[vs as usize];
            if slot.shortest_flow != flow.id()
                && !short_entries[&vs].contains(&(flow.remaining(), flow.id()))
            {
                return Err(format!(
                    "runner coverage lost: flow {} in VOQ {} has no valid shortest entry",
                    flow.id(),
                    slot.voq
                ));
            }
            if slot.oldest_flow != flow.id() && !old_entries[&vs].contains(&flow.id()) {
                return Err(format!(
                    "runner coverage lost: flow {} in VOQ {} has no valid oldest entry",
                    flow.id(),
                    slot.voq
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voq(src: u32, dst: u32) -> Voq {
        Voq::new(HostId::new(src), HostId::new(dst))
    }

    fn flow(id: u64, src: u32, dst: u32, size: u64) -> FlowState {
        FlowState::new(FlowId::new(id), voq(src, dst), size)
    }

    #[test]
    fn insert_updates_all_backlogs() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 2, 3)).unwrap();
        t.insert(flow(3, 1, 2, 7)).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_backlog(), 15);
        assert_eq!(t.voq_backlog(voq(0, 1)), 5);
        assert_eq!(t.voq_backlog(voq(0, 2)), 3);
        assert_eq!(t.ingress_backlog(HostId::new(0)), 8);
        assert_eq!(t.ingress_backlog(HostId::new(1)), 7);
        assert_eq!(t.num_nonempty_voqs(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        assert_eq!(
            t.insert(flow(1, 2, 3, 4)),
            Err(FlowTableError::DuplicateFlow(FlowId::new(1)))
        );
    }

    #[test]
    fn drain_partial_keeps_flow_and_reindexes() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        // Flow 2 is the SRPT candidate.
        let view = t.voqs().next().unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(2));

        // Drain flow 1 below flow 2's remaining; candidate flips.
        let out = t.drain(FlowId::new(1), 3).unwrap();
        assert_eq!(out.drained, 3);
        assert!(out.completed.is_none());
        let view = t.voqs().next().unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(1));
        assert_eq!(view.shortest_remaining, 2);
        assert_eq!(view.backlog, 5);
        t.check_invariants().unwrap();
    }

    #[test]
    fn drain_to_completion_removes_flow_and_empty_voq() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        let out = t.drain(FlowId::new(1), 99).unwrap();
        assert_eq!(out.drained, 5);
        let done = out.completed.expect("flow should complete");
        assert_eq!(done.id(), FlowId::new(1));
        assert!(t.is_empty());
        assert_eq!(t.num_nonempty_voqs(), 0);
        assert_eq!(t.total_backlog(), 0);
        assert_eq!(t.ingress_backlog(HostId::new(0)), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_unindexes() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        let removed = t.remove(FlowId::new(1)).unwrap();
        assert_eq!(removed.size(), 5);
        assert_eq!(t.voq_backlog(voq(0, 1)), 3);
        assert_eq!(
            t.remove(FlowId::new(1)),
            Err(FlowTableError::UnknownFlow(FlowId::new(1)))
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn drain_unknown_flow_errors() {
        let mut t = FlowTable::new();
        assert_eq!(
            t.drain(FlowId::new(9), 1),
            Err(FlowTableError::UnknownFlow(FlowId::new(9)))
        );
    }

    #[test]
    fn voq_views_are_deterministically_ordered() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 2, 0, 5)).unwrap();
        t.insert(flow(2, 0, 9, 3)).unwrap();
        t.insert(flow(3, 1, 4, 7)).unwrap();
        let voqs: Vec<Voq> = t.voqs().map(|v| v.voq).collect();
        assert_eq!(voqs, vec![voq(0, 9), voq(1, 4), voq(2, 0)]);
    }

    #[test]
    fn change_log_records_every_mutation() {
        let mut t = FlowTable::new();
        let start = t.change_log_end();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        t.drain(FlowId::new(1), 2).unwrap();
        t.remove(FlowId::new(2)).unwrap();
        let changes = t.changes_since(start).unwrap();
        assert_eq!(changes, [voq(0, 1); 4]);
        assert_eq!(t.change_log_end(), start + 4);
        // A fully caught-up consumer sees an empty suffix.
        assert_eq!(t.changes_since(t.change_log_end()), Some(&[][..]));
        // Positions beyond the end never existed.
        assert_eq!(t.changes_since(t.change_log_end() + 1), None);
    }

    #[test]
    fn change_log_compaction_invalidates_old_cursors() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5_000)).unwrap();
        let start = t.change_log_end();
        for _ in 0..2_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        assert!(
            t.changes_since(start).is_none(),
            "log should have compacted"
        );
        assert!(t.change_log_end() >= start + 2_000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn read_changes_reports_lag_with_skip_count() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5_000)).unwrap();
        let start = t.change_log_end();
        // Fresh suffix: same view as changes_since, but typed.
        t.drain(FlowId::new(1), 1).unwrap();
        assert_eq!(
            t.read_changes(start),
            ChangeLogRead::Changes(&[voq(0, 1)][..])
        );
        assert_eq!(t.read_changes(start).changes(), t.changes_since(start));
        // Compact the log past `start`: the read reports exactly how many
        // entries were dropped, where changes_since only says `None`.
        for _ in 0..2_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        assert!(t.changes_since(start).is_none());
        match t.read_changes(start) {
            ChangeLogRead::Lagged { skipped } => {
                assert!(skipped > 0);
                let oldest = oldest_available(&t);
                assert_eq!(skipped, oldest - start, "skip count is exact");
            }
            ChangeLogRead::Changes(_) => panic!("compacted position must read as Lagged"),
        }
        // A caught-up reader sees an empty (non-lagged) suffix.
        assert_eq!(
            t.read_changes(t.change_log_end()),
            ChangeLogRead::Changes(&[][..])
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn evicted_registered_cursor_reads_as_lagged() {
        // Regression for the stalled-cursor eviction path: `record_change`
        // used to `force_ack_all`, silently bumping a live-but-slow
        // registered consumer past its unconsumed suffix — the consumer
        // could not tell forced loss from ordinary staleness. Reading from
        // the consumer's own acknowledged position must now come back
        // `Lagged { skipped }`: for a registered consumer that is only
        // possible after eviction, and `skipped` counts the lost entries.
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 200_000)).unwrap();
        let reg = t.register_cursor();
        let acked = t.change_log_end();
        // While compaction honors the registration, the consumer's position
        // always reads as `Changes` — never `Lagged` — no matter how far
        // the log grows past the soft capacity.
        for _ in 0..1_000 {
            t.drain(FlowId::new(1), 1).unwrap();
            assert!(
                matches!(t.read_changes(acked), ChangeLogRead::Changes(_)),
                "a registered, non-stalled consumer must never lag"
            );
        }
        // Stall far past the hard cap: the pinned suffix is dropped.
        for _ in 0..100_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        match t.read_changes(acked) {
            ChangeLogRead::Lagged { skipped } => {
                assert_eq!(
                    skipped,
                    oldest_available(&t) - acked,
                    "every unconsumed entry is accounted as skipped"
                );
                assert!(skipped >= 100_000 - (STALLED_CURSOR_FACTOR as u64 + 1) * 1024 - 1);
            }
            ChangeLogRead::Changes(_) => {
                panic!("evicted registration must read as Lagged, not a silent empty suffix")
            }
        }
        // The registration handle survives eviction; after rebuilding and
        // re-acknowledging, reads are `Changes` again.
        t.ack_changes(reg, t.change_log_end());
        let pos = t.change_log_end();
        t.drain(FlowId::new(1), 1).unwrap();
        assert_eq!(
            t.read_changes(pos),
            ChangeLogRead::Changes(&[voq(0, 1)][..])
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn registered_cursor_survives_compaction_with_acks() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 100_000)).unwrap();
        let reg = t.register_cursor();
        let mut pos = t.change_log_end();
        for step in 0..10_000u64 {
            t.drain(FlowId::new(1), 1).unwrap();
            if step % 256 == 0 {
                // Consume and acknowledge the suffix: it must still be there.
                let changes = t.changes_since(pos).expect("acked suffix was compacted");
                pos += changes.len() as u64;
                t.ack_changes(reg, pos);
            }
        }
        assert!(t.changes_since(pos).is_some());
        // The retained log is bounded by the unconsumed suffix plus slack,
        // not by the 10k mutations performed.
        let oldest = oldest_available(&t);
        assert!(
            t.change_log_end() - oldest <= t.change_log_end() - pos + 1024 + 1,
            "log retained more than the unconsumed suffix"
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn stalled_registered_cursor_is_evicted() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 200_000)).unwrap();
        let reg = t.register_cursor();
        let start = t.change_log_end();
        for _ in 0..100_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        assert!(
            t.changes_since(start).is_none(),
            "stalled cursor should have been evicted"
        );
        let retained = t.change_log_end() - oldest_available(&t);
        assert!(
            retained <= (STALLED_CURSOR_FACTOR as u64 + 1) * 1024 + 1,
            "log grew unbounded despite stalled cursor ({retained} entries)"
        );
        // The handle still works for future acknowledgements.
        t.ack_changes(reg, t.change_log_end());
        t.drain(FlowId::new(1), 1).unwrap();
        assert!(t.changes_since(t.change_log_end() - 1).is_some());
        t.check_invariants().unwrap();
    }

    #[test]
    fn released_cursor_stops_pinning_and_handle_dies() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 100_000)).unwrap();
        let reg = t.register_cursor();
        let start = t.change_log_end();
        t.release_cursor(reg);
        for _ in 0..2_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        assert!(
            t.changes_since(start).is_none(),
            "released cursor must not pin the log"
        );
        // A dead handle (and one recycled into a new registration) is inert.
        let reg2 = t.register_cursor();
        t.ack_changes(reg, u64::MAX);
        t.release_cursor(reg);
        let pos = t.change_log_end();
        t.drain(FlowId::new(1), 1).unwrap();
        assert!(t.changes_since(pos).is_some());
        t.release_cursor(reg2);
    }

    #[test]
    fn cursor_handles_do_not_transfer_to_clones() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 10_000)).unwrap();
        let reg = t.register_cursor();
        let mut copy = t.clone();
        // Acks and releases against the clone are no-ops…
        copy.ack_changes(reg, u64::MAX);
        copy.release_cursor(reg);
        let start = copy.change_log_end();
        for _ in 0..2_000 {
            copy.drain(FlowId::new(1), 1).unwrap();
        }
        // …and the clone compacts as if unregistered.
        assert!(copy.changes_since(start).is_none());
        // The original registration still pins the original's log.
        let orig_start = t.change_log_end();
        for _ in 0..2_000 {
            t.drain(FlowId::new(1), 1).unwrap();
        }
        assert!(t.changes_since(orig_start).is_some());
        t.release_cursor(reg);
    }

    /// Smallest absolute position the log still reaches back to.
    fn oldest_available(t: &FlowTable) -> u64 {
        let mut lo = 0u64;
        let mut hi = t.change_log_end();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if t.changes_since(mid).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    #[test]
    fn clone_gets_fresh_identity_and_empty_log() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        let copy = t.clone();
        assert_ne!(t.table_id(), copy.table_id());
        assert_eq!(copy.changes_since(0), Some(&[][..]));
        assert_eq!(copy.total_backlog(), 5);
        copy.check_invariants().unwrap();
    }

    #[test]
    fn voq_view_matches_iterator() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.insert(flow(2, 0, 1, 3)).unwrap();
        let from_iter = t.voqs().next().unwrap();
        assert_eq!(t.voq_view(voq(0, 1)), Some(from_iter));
        assert_eq!(t.voq_view(voq(3, 4)), None);
    }

    #[test]
    fn oldest_flow_is_smallest_id() {
        let mut t = FlowTable::new();
        t.insert(flow(5, 0, 1, 2)).unwrap();
        t.insert(flow(3, 0, 1, 9)).unwrap();
        let view = t.voqs().next().unwrap();
        assert_eq!(view.oldest_flow, FlowId::new(3));
        assert_eq!(view.shortest_flow, FlowId::new(5));
        assert_eq!(view.len, 2);
    }

    #[test]
    fn champions_survive_id_reuse_in_same_voq() {
        // The bench's per-event loop completes a flow and reinserts the same
        // id; stale runner entries for the old incarnation must never leak
        // into the champions of the new one.
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 10)).unwrap();
        t.insert(flow(2, 0, 1, 20)).unwrap();
        t.insert(flow(3, 0, 1, 30)).unwrap();
        t.drain(FlowId::new(1), 10).unwrap(); // complete, leaving stale entries
        t.insert(flow(1, 0, 1, 25)).unwrap(); // same id, new size
        let view = t.voq_view(voq(0, 1)).unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(2));
        assert_eq!(view.oldest_flow, FlowId::new(1));
        t.check_invariants().unwrap();
        // Remove the shortest champion: the reused id must be re-ranked at
        // its *new* remaining, not the stale 10-unit entry.
        t.remove(FlowId::new(2)).unwrap();
        let view = t.voq_view(voq(0, 1)).unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(1));
        assert_eq!(view.shortest_remaining, 25);
        t.check_invariants().unwrap();
    }

    #[test]
    fn voq_slot_is_reused_across_empty_transitions() {
        let mut t = FlowTable::new();
        t.insert(flow(1, 0, 1, 5)).unwrap();
        t.drain(FlowId::new(1), 5).unwrap();
        assert_eq!(t.num_nonempty_voqs(), 0);
        t.insert(flow(2, 0, 1, 7)).unwrap();
        let view = t.voq_view(voq(0, 1)).unwrap();
        assert_eq!(view.shortest_flow, FlowId::new(2));
        assert_eq!(view.shortest_remaining, 7);
        assert_eq!(view.len, 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn runner_heaps_stay_bounded_under_churn() {
        // A long-lived elephant keeps draining while mice come and go: the
        // runner heaps must prune stale entries instead of growing with the
        // number of mutations.
        let mut t = FlowTable::new();
        t.insert(flow(0, 0, 1, 1_000_000)).unwrap();
        for round in 0..5_000u64 {
            let id = 1 + (round % 7);
            if t.get(FlowId::new(id)).is_none() {
                t.insert(flow(id, 0, 1, 3 + id)).unwrap();
            }
            t.drain(FlowId::new(id), 1).unwrap();
            t.drain(FlowId::new(0), 1).unwrap();
        }
        let slot = &t.voq_slots[t.voq_lookup[&voq(0, 1)] as usize];
        let cap = FlowTable::runner_cap(slot.len);
        assert!(
            slot.runners_short.len() <= 2 * cap,
            "shortest runner heap kept {} entries",
            slot.runners_short.len()
        );
        t.check_invariants().unwrap();
    }
}
