//! The scheduler interface and the shared greedy maximal-matching engine.

use crate::table::VoqView;
use crate::{FlowTable, Schedule};
use dcn_types::{FlowId, Voq};

/// A read-time correction applied to [`VoqView`]s before a discipline
/// ranks them.
///
/// Lazily settling engines (see `dcn_fabric::DeltaAllocator`) defer the
/// per-flow drain write-back: between observation points the [`FlowTable`]
/// is *stale* by exactly the bytes the currently scheduled flows have
/// transmitted since their last settlement. Because a schedule is a
/// crossbar matching, at most **one** scheduled flow drains per VOQ, so
/// the engine can correct a view in `O(1)` at read time — subtract the
/// owed bytes from `backlog`, lower (or replace) the champion — instead of
/// eagerly writing every flow back on every event.
///
/// The contract: after [`adjust`](ViewAdjust::adjust), the view must be
/// bit-identical to what [`FlowTable::voq_view`] would return had every
/// pending drain been applied. Disciplines that opt in via
/// [`Scheduler::supports_lazy_views`] promise their decision reads *only*
/// the (adjusted) views, never raw per-flow state.
pub trait ViewAdjust {
    /// Corrects `view` to account for drains not yet written back.
    fn adjust(&self, view: &mut VoqView);
}

/// The identity adjustment: views pass through unmodified. Useful for
/// exercising an adjusted code path against its eager twin in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoAdjust;

impl ViewAdjust for NoAdjust {
    fn adjust(&self, _view: &mut VoqView) {}
}

/// A flow scheduling discipline.
///
/// Schedulers are consulted by the embedding simulator on every flow arrival
/// and completion (the paper's update rule) and return a crossbar matching
/// over the currently active flows. They may keep internal state (e.g. the
/// round-robin pointer), hence `&mut self`.
pub trait Scheduler {
    /// Short human-readable name, used in experiment output.
    fn name(&self) -> &str;

    /// Computes the scheduling decision for the current set of active flows.
    ///
    /// The returned schedule must be *maximal*: no remaining flow could be
    /// added without violating the crossbar constraint. All disciplines in
    /// this crate satisfy that by construction.
    fn schedule(&mut self, table: &FlowTable) -> Schedule;

    /// For how many consecutive slots — starting with the slot `schedule`
    /// was computed for — re-invoking [`schedule`](Scheduler::schedule)
    /// every slot would provably return a bit-identical result, assuming
    /// the only table mutations are the schedule's own drains (one unit
    /// per scheduled flow per slot) and no scheduled flow completes inside
    /// the window. Any arrival, completion, or external mutation voids the
    /// bound immediately.
    ///
    /// Fast-forward drivers (see `dcn-switch`) use this to replay a cached
    /// schedule instead of re-deciding every slot; see the
    /// [`validity`](crate::validity) module for the invariance argument
    /// behind the per-discipline overrides. The default of `1` is always
    /// sound — a
    /// schedule is trivially valid for the slot it was computed for — and
    /// is what stateful disciplines (round-robin's rotation, exact
    /// BASRPT) must keep so they are re-consulted every slot.
    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        let _ = (table, schedule);
        1
    }

    /// Whether this discipline's decision reads *only* the per-VOQ
    /// [`VoqView`]s, so an engine may substitute views corrected by a
    /// [`ViewAdjust`] (via
    /// [`schedule_adjusted`](Scheduler::schedule_adjusted)) for the raw
    /// table reads and still obtain the bit-identical schedule.
    ///
    /// The default is `false` — always sound, since the engine then falls
    /// back to eager settlement before every decision. Stateful or
    /// per-flow-reading disciplines (round-robin's rotation, exact
    /// BASRPT's enumeration, the incremental wrapper's change-log replay)
    /// must keep it.
    fn supports_lazy_views(&self) -> bool {
        false
    }

    /// Computes the decision against views corrected by `adjust`.
    ///
    /// Engines call this **only** when
    /// [`supports_lazy_views`](Scheduler::supports_lazy_views) returns
    /// `true`; the default implementation ignores `adjust` and defers to
    /// [`schedule`](Scheduler::schedule), which is correct exactly when
    /// the engine honours that contract (it settles eagerly first).
    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        let _ = adjust;
        self.schedule(table)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        (**self).schedule(table)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        (**self).schedule_validity(table, schedule)
    }

    fn supports_lazy_views(&self) -> bool {
        (**self).supports_lazy_views()
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        (**self).schedule_adjusted(table, adjust)
    }
}

/// A thread-safe factory of identically configured [`Scheduler`]s.
///
/// Parallel drivers — the sharded fabric engine (`dcn-fabric`), multi-seed
/// sweeps — need one scheduler instance *per partition*, built to the same
/// parameters, because disciplines carry internal state (round-robin
/// pointers, incremental indices) that must not be shared across
/// partitions. A `MakeScheduler` is that recipe: `make()` returns a fresh,
/// identically configured instance, and the `Sync` bound lets worker
/// threads call it concurrently.
///
/// Any `Fn() -> S + Sync` closure is a factory via the blanket impl:
///
/// ```
/// use basrpt_core::{MakeScheduler, Scheduler, Srpt};
///
/// let factory = || Srpt::new();
/// let a = factory.make();
/// let b = factory.make();
/// assert_eq!(a.name(), b.name());
/// ```
pub trait MakeScheduler: Sync {
    /// The scheduler type this factory produces.
    type Sched: Scheduler;

    /// Builds a fresh, identically configured scheduler instance.
    fn make(&self) -> Self::Sched;
}

impl<S: Scheduler, F: Fn() -> S + Sync> MakeScheduler for F {
    type Sched = S;

    fn make(&self) -> S {
        self()
    }
}

/// A transparent [`Scheduler`] wrapper counting `schedule()` invocations.
///
/// Used to measure how many decisions a driver actually computes — e.g.
/// the fast-forward engine's invocation-reduction acceptance test and the
/// `sched_overhead` bench group compare the count against the slot count.
///
/// # Example
///
/// ```
/// use basrpt_core::{CountingScheduler, FlowTable, Scheduler, Srpt};
///
/// let mut counted = CountingScheduler::new(Srpt::new());
/// let table = FlowTable::new();
/// counted.schedule(&table);
/// counted.schedule(&table);
/// assert_eq!(counted.calls(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CountingScheduler<S> {
    inner: S,
    calls: u64,
}

impl<S: Scheduler> CountingScheduler<S> {
    /// Wraps `inner`, starting the count at zero.
    pub fn new(inner: S) -> Self {
        CountingScheduler { inner, calls: 0 }
    }

    /// Number of [`Scheduler::schedule`] calls forwarded so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Returns the wrapped scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> Scheduler for CountingScheduler<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        self.calls += 1;
        self.inner.schedule(table)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        self.inner.schedule_validity(table, schedule)
    }

    fn supports_lazy_views(&self) -> bool {
        self.inner.supports_lazy_views()
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        self.calls += 1;
        self.inner.schedule_adjusted(table, adjust)
    }
}

/// One schedulable flow with its discipline-specific priority key
/// (smaller key = higher priority).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Priority key; must be finite so candidates are totally ordered.
    pub key: f64,
    /// The candidate flow.
    pub flow: FlowId,
    /// The VOQ the flow occupies.
    pub voq: Voq,
}

/// Runs the greedy maximal-matching skeleton shared by every one-pass
/// discipline (the paper's Algorithm 1 with a pluggable key).
///
/// Candidates are sorted by `(key, flow id)` — the id tie-break keeps
/// results deterministic — and admitted in order whenever both of their
/// ports are still free. With one candidate per non-empty VOQ this yields a
/// schedule that is maximal over the non-empty VOQs, exactly the "flows are
/// selected until all left flows are blocked" rule of §II-A.
///
/// # Ordering contract
///
/// The admission order — and therefore the produced matching, its
/// [`Schedule`] iteration order, and [`Schedule`]'s `PartialEq` — is a
/// deterministic function of the multiset of `(key, flow id, voq)`
/// triples:
///
/// * keys compare by [`f64::total_cmp`] (so `-0.0 < 0.0` and the order is
///   total even for exotic values; keys are expected finite);
/// * equal keys fall back to the **flow id**, which is unique per table —
///   a flow lives in exactly one VOQ — so no pair of candidates ever ties
///   fully and the initial order of the candidate slice is irrelevant
///   (`sort_unstable` is safe).
///
/// [`IncrementalScheduler`](crate::IncrementalScheduler) reproduces this
/// exact order from its `(key, flow id, voq)` B-tree, and the
/// fast-forward schedule cache (`dcn_switch::fastforward`) relies on the
/// same determinism: replaying an identical candidate ranking must yield
/// a bit-identical schedule. Tests in `crates/basrpt-core/tests/
/// tie_break.rs` pin the contract.
///
/// # Example
///
/// ```
/// use basrpt_core::{greedy_by_key, Candidate};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut cands = vec![
///     Candidate { key: 2.0, flow: FlowId::new(1), voq: Voq::new(HostId::new(0), HostId::new(1)) },
///     Candidate { key: 1.0, flow: FlowId::new(2), voq: Voq::new(HostId::new(2), HostId::new(1)) },
/// ];
/// let s = greedy_by_key(&mut cands);
/// // Flow 2 has the smaller key and grabs egress 1 first.
/// assert!(s.contains(FlowId::new(2)));
/// assert!(!s.contains(FlowId::new(1)));
/// ```
pub fn greedy_by_key(candidates: &mut [Candidate]) -> Schedule {
    debug_assert!(
        candidates.iter().all(|c| c.key.is_finite()),
        "candidate keys must be finite"
    );
    candidates.sort_unstable_by(|a, b| a.key.total_cmp(&b.key).then(a.flow.cmp(&b.flow)));
    let mut schedule = Schedule::new();
    for cand in candidates.iter() {
        if schedule.admits(cand.voq) {
            schedule
                .add(cand.flow, cand.voq)
                .expect("admits() checked both ports");
        }
    }
    schedule
}

/// Ranks one candidate per non-empty VOQ — read in `O(1)` apiece off the
/// table's champion index — and runs [`greedy_by_key`]: the shared skeleton
/// of the key-driven one-pass disciplines (SRPT, fast BASRPT, MaxWeight,
/// FIFO). The whole decision costs `O(Q log Q)` in the number of non-empty
/// VOQs (≤ P² for P ports), independent of the flow count; the `O(F log F)`
/// all-flows formulation survives as
/// [`reference::schedule_scan`](crate::reference::schedule_scan) for
/// differential testing.
pub fn schedule_champions<F>(table: &FlowTable, to_candidate: F) -> Schedule
where
    F: FnMut(&VoqView) -> Candidate,
{
    let mut to_candidate = to_candidate;
    let mut candidates: Vec<Candidate> = table.voqs().map(|v| to_candidate(&v)).collect();
    greedy_by_key(&mut candidates)
}

/// [`schedule_champions`] with a [`ViewAdjust`] correction applied to
/// every view before ranking — the skeleton behind the view-based
/// disciplines' [`Scheduler::schedule_adjusted`] overrides. With
/// [`NoAdjust`] this is exactly `schedule_champions`.
pub fn schedule_champions_adjusted<F>(
    table: &FlowTable,
    adjust: &dyn ViewAdjust,
    to_candidate: F,
) -> Schedule
where
    F: FnMut(&VoqView) -> Candidate,
{
    let mut to_candidate = to_candidate;
    let mut candidates: Vec<Candidate> = table
        .voqs()
        .map(|mut v| {
            adjust.adjust(&mut v);
            to_candidate(&v)
        })
        .collect();
    greedy_by_key(&mut candidates)
}

/// Asserts that `schedule` is a valid *maximal* matching over the non-empty
/// VOQs of `table`: every selected flow is active and in its claimed VOQ,
/// ports are used at most once (guaranteed by `Schedule`), and no non-empty
/// VOQ has both of its ports free. Returns a description of the first
/// violation. Intended for tests.
pub fn check_maximal(table: &FlowTable, schedule: &Schedule) -> Result<(), String> {
    for (id, voq) in schedule.iter() {
        match table.get(id) {
            None => return Err(format!("scheduled flow {id} is not active")),
            Some(f) if f.voq() != voq => {
                return Err(format!(
                    "flow {id} scheduled in {voq} but lives in {}",
                    f.voq()
                ))
            }
            Some(_) => {}
        }
    }
    for view in table.voqs() {
        if schedule.admits(view.voq) {
            return Err(format!(
                "schedule is not maximal: {} (backlog {}) could be added",
                view.voq, view.backlog
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowState;
    use dcn_types::HostId;

    fn cand(key: f64, id: u64, src: u32, dst: u32) -> Candidate {
        Candidate {
            key,
            flow: FlowId::new(id),
            voq: Voq::new(HostId::new(src), HostId::new(dst)),
        }
    }

    #[test]
    fn greedy_prefers_smaller_key() {
        let mut c = vec![cand(5.0, 1, 0, 1), cand(1.0, 2, 0, 2)];
        let s = greedy_by_key(&mut c);
        assert!(s.contains(FlowId::new(2)));
        assert!(!s.contains(FlowId::new(1)));
    }

    #[test]
    fn greedy_fills_independent_ports() {
        let mut c = vec![cand(1.0, 1, 0, 1), cand(2.0, 2, 2, 3), cand(3.0, 3, 4, 5)];
        let s = greedy_by_key(&mut c);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ties_broken_by_flow_id() {
        let mut c = vec![cand(1.0, 9, 0, 1), cand(1.0, 2, 2, 1)];
        let s = greedy_by_key(&mut c);
        assert!(s.contains(FlowId::new(2)));
        assert!(!s.contains(FlowId::new(9)));
    }

    #[test]
    fn no_adjust_matches_the_plain_champions_path() {
        let mut t = FlowTable::new();
        for (id, src, dst, size) in [(1u64, 0, 1, 5u64), (2, 0, 2, 1), (3, 3, 1, 7)] {
            t.insert(FlowState::new(
                FlowId::new(id),
                Voq::new(HostId::new(src), HostId::new(dst)),
                size,
            ))
            .unwrap();
        }
        let key = |v: &VoqView| Candidate {
            key: v.shortest_remaining as f64,
            flow: v.shortest_flow,
            voq: v.voq,
        };
        let plain = schedule_champions(&t, key);
        let adjusted = schedule_champions_adjusted(&t, &NoAdjust, key);
        assert_eq!(plain, adjusted);
    }

    #[test]
    fn an_adjustment_changes_the_ranking() {
        // Flows 1 (5 units) and 2 (1 unit) contend for ingress 0; the
        // adjustment pretends flow 1 has drained down to 0 remaining, so
        // it must win the contention instead of flow 2.
        struct Shrink;
        impl ViewAdjust for Shrink {
            fn adjust(&self, view: &mut VoqView) {
                if view.shortest_flow == FlowId::new(1) {
                    view.shortest_remaining = 0;
                }
            }
        }
        let mut t = FlowTable::new();
        for (id, src, dst, size) in [(1u64, 0, 1, 5u64), (2, 0, 2, 1)] {
            t.insert(FlowState::new(
                FlowId::new(id),
                Voq::new(HostId::new(src), HostId::new(dst)),
                size,
            ))
            .unwrap();
        }
        let key = |v: &VoqView| Candidate {
            key: v.shortest_remaining as f64,
            flow: v.shortest_flow,
            voq: v.voq,
        };
        let s = schedule_champions_adjusted(&t, &Shrink, key);
        assert!(s.contains(FlowId::new(1)));
        assert!(!s.contains(FlowId::new(2)));
    }

    #[test]
    fn check_maximal_detects_missing_voq() {
        let mut t = FlowTable::new();
        t.insert(FlowState::new(
            FlowId::new(1),
            Voq::new(HostId::new(0), HostId::new(1)),
            4,
        ))
        .unwrap();
        let empty = Schedule::new();
        assert!(check_maximal(&t, &empty).is_err());

        let mut s = Schedule::new();
        s.add(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)))
            .unwrap();
        assert!(check_maximal(&t, &s).is_ok());
    }

    #[test]
    fn check_maximal_detects_phantom_flow() {
        let t = FlowTable::new();
        let mut s = Schedule::new();
        s.add(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)))
            .unwrap();
        assert!(check_maximal(&t, &s).is_err());
    }
}
