//! Per-flow scheduling state.

use dcn_types::{FlowId, Voq};
use serde::{Deserialize, Serialize};

/// The scheduler-visible state of one active flow.
///
/// Sizes are in abstract *units*: packets for the slotted switch model,
/// bytes for the flow-level fabric simulator. The schedulers only ever
/// compare and combine unit counts, so the choice of unit is up to the
/// embedding simulator.
///
/// # Example
///
/// ```
/// use basrpt_core::FlowState;
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let voq = Voq::new(HostId::new(0), HostId::new(1));
/// let f = FlowState::new(FlowId::new(7), voq, 5);
/// assert_eq!(f.remaining(), 5);
/// assert_eq!(f.size(), 5);
/// assert!(!f.is_complete());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowState {
    id: FlowId,
    voq: Voq,
    size: u64,
    remaining: u64,
}

impl FlowState {
    /// Creates the state for a newly arrived flow of `size` units.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero — zero-length flows complete instantaneously
    /// and must never enter a flow table.
    pub fn new(id: FlowId, voq: Voq, size: u64) -> Self {
        assert!(size > 0, "flow {id} has zero size");
        FlowState {
            id,
            voq,
            size,
            remaining: size,
        }
    }

    /// Recreates the state of a partially transferred flow — the
    /// snapshot/restore counterpart of [`FlowState::new`]. `remaining` is
    /// the units still owed at the restore instant.
    ///
    /// # Panics
    ///
    /// Panics if `remaining` is zero (a complete flow must never re-enter a
    /// flow table) or exceeds `size`.
    ///
    /// # Example
    ///
    /// ```
    /// use basrpt_core::FlowState;
    /// use dcn_types::{FlowId, HostId, Voq};
    ///
    /// let voq = Voq::new(HostId::new(0), HostId::new(1));
    /// let f = FlowState::resumed(FlowId::new(7), voq, 10, 4);
    /// assert_eq!(f.size(), 10);
    /// assert_eq!(f.remaining(), 4);
    /// ```
    pub fn resumed(id: FlowId, voq: Voq, size: u64, remaining: u64) -> Self {
        assert!(remaining > 0, "flow {id} resumed with nothing remaining");
        assert!(
            remaining <= size,
            "flow {id} resumed with remaining {remaining} > size {size}"
        );
        FlowState {
            id,
            voq,
            size,
            remaining,
        }
    }

    /// The flow's identifier.
    pub const fn id(&self) -> FlowId {
        self.id
    }

    /// The VOQ this flow waits in (its ingress/egress port pair).
    pub const fn voq(&self) -> Voq {
        self.voq
    }

    /// The original size in units.
    pub const fn size(&self) -> u64 {
        self.size
    }

    /// The remaining size in units (the paper's `y_f(t)`).
    pub const fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Whether the flow has finished transferring.
    pub const fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// Drains up to `units` from the flow, returning how many units were
    /// actually drained (less than `units` if the flow finishes first).
    pub fn drain(&mut self, units: u64) -> u64 {
        let drained = units.min(self.remaining);
        self.remaining -= drained;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_types::HostId;

    fn voq() -> Voq {
        Voq::new(HostId::new(0), HostId::new(1))
    }

    #[test]
    fn new_flow_has_full_remaining() {
        let f = FlowState::new(FlowId::new(1), voq(), 10);
        assert_eq!(f.size(), 10);
        assert_eq!(f.remaining(), 10);
        assert_eq!(f.id(), FlowId::new(1));
        assert_eq!(f.voq(), voq());
    }

    #[test]
    fn drain_decrements_and_clamps() {
        let mut f = FlowState::new(FlowId::new(1), voq(), 10);
        assert_eq!(f.drain(4), 4);
        assert_eq!(f.remaining(), 6);
        assert_eq!(f.drain(100), 6);
        assert!(f.is_complete());
        assert_eq!(f.drain(1), 0);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_size_rejected() {
        let _ = FlowState::new(FlowId::new(1), voq(), 0);
    }
}
