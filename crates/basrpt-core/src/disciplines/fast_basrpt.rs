//! Fast BASRPT (the paper's Algorithm 1).

use crate::{
    schedule_champions, schedule_champions_adjusted, Candidate, FlowTable, Schedule, Scheduler,
    ViewAdjust,
};

/// The practical backlog-aware SRPT approximation (§IV-C, Algorithm 1).
///
/// Flows are admitted greedily in non-decreasing order of
/// `(V/N) · remaining_size − X_ij`, where `X_ij` is the backlog of the
/// flow's VOQ and `N` is the number of servers. Summing the key over the at
/// most `N` selected flows approximates the exact BASRPT objective
/// `V·ȳ(t) − Σ X_ij(t) R_ij(t)`, so fast BASRPT inherits both the FCT
/// preference of SRPT (the size term) and the stabilizing pull of long
/// queues (the backlog term).
///
/// Within a VOQ every flow shares the same backlog, so the best flow of a
/// VOQ is always its shortest one — the scheduler therefore ranks one
/// candidate per non-empty VOQ, giving an `O(Q log Q)` decision instead of
/// the `O(N^2 log N^2)` bound of sorting all flows (§IV-C's complexity
/// analysis is the all-flows worst case; both orderings select the same
/// schedule).
///
/// `V` trades mean FCT against the stable queue level: larger `V` behaves
/// more like SRPT (Theorem 1 bounds the FCT penalty by `B'/V`), smaller `V`
/// behaves more like MaxWeight (queue bound grows as `O(V)`).
///
/// # Example
///
/// ```
/// use basrpt_core::{FastBasrpt, FlowState, FlowTable, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// // A short flow in an empty-ish queue vs a long flow in a huge queue.
/// table.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(2)), 1))?;
/// for i in 0..50 {
///     table.insert(FlowState::new(FlowId::new(10 + i), Voq::new(HostId::new(1), HostId::new(2)), 100))?;
/// }
/// // With a small V the backlogged VOQ wins the contended egress port 2.
/// let s = FastBasrpt::new(1.0, 4).schedule(&table);
/// assert!(!s.contains(FlowId::new(1)));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastBasrpt {
    v: f64,
    num_ports: usize,
}

impl FastBasrpt {
    /// Creates the scheduler with importance weight `v` (the paper's `V`)
    /// for a fabric of `num_ports` servers.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite, or if `num_ports` is zero.
    pub fn new(v: f64, num_ports: usize) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "V must be finite and >= 0, got {v}"
        );
        assert!(num_ports > 0, "fabric must have at least one port");
        FastBasrpt { v, num_ports }
    }

    /// The FCT-vs-stability weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// The fabric size `N` used in the `V/N` scaling.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// The per-flow weight `V/N` applied to remaining sizes.
    pub fn weight(&self) -> f64 {
        self.v / self.num_ports as f64
    }
}

impl Scheduler for FastBasrpt {
    fn name(&self) -> &str {
        "fast BASRPT"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        let w = self.weight();
        schedule_champions(table, |view| Candidate {
            key: w * view.shortest_remaining as f64 - view.backlog as f64,
            flow: view.shortest_flow,
            voq: view.voq,
        })
    }

    fn schedule_validity(&self, _table: &FlowTable, _schedule: &Schedule) -> u64 {
        crate::validity::fast_basrpt_validity(self.weight())
    }

    fn supports_lazy_views(&self) -> bool {
        // The key reads only the view's champion and backlog.
        true
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        let w = self.weight();
        schedule_champions_adjusted(table, adjust, |view| Candidate {
            key: w * view.shortest_remaining as f64 - view.backlog as f64,
            flow: view.shortest_flow,
            voq: view.voq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::{FlowState, Srpt};
    use dcn_types::{FlowId, HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn backlogged_voq_beats_short_flow_at_small_v() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1); // short, empty-ish queue
        insert(&mut t, 2, 1, 2, 100); // long, below plus siblings
        insert(&mut t, 3, 1, 2, 100);
        insert(&mut t, 4, 1, 2, 100);
        let s = FastBasrpt::new(1.0, 4).schedule(&t);
        // Keys: flow1 -> 0.25*1 - 1 = -0.75; VOQ(1,2) -> 0.25*100 - 300 = -275.
        assert!(s.contains(FlowId::new(2)));
        assert!(!s.contains(FlowId::new(1)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn large_v_degenerates_to_srpt() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1);
        insert(&mut t, 2, 1, 2, 100);
        insert(&mut t, 3, 1, 2, 100);
        let fast = FastBasrpt::new(1e12, 4).schedule(&t);
        let srpt = Srpt::new().schedule(&t);
        let fast_ids: Vec<_> = fast.flow_ids().collect();
        let srpt_ids: Vec<_> = srpt.flow_ids().collect();
        assert_eq!(fast_ids, srpt_ids);
    }

    #[test]
    fn shortest_flow_represents_its_voq() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 50);
        insert(&mut t, 2, 0, 1, 5);
        let s = FastBasrpt::new(2500.0, 144).schedule(&t);
        assert_eq!(s.len(), 1);
        assert!(s.contains(FlowId::new(2)));
    }

    #[test]
    fn accessors() {
        let f = FastBasrpt::new(2500.0, 144);
        assert_eq!(f.v(), 2500.0);
        assert_eq!(f.num_ports(), 144);
        assert!((f.weight() - 2500.0 / 144.0).abs() < 1e-12);
        assert_eq!(f.name(), "fast BASRPT");
    }

    #[test]
    #[should_panic(expected = "V must be finite")]
    fn negative_v_rejected() {
        let _ = FastBasrpt::new(-1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = FastBasrpt::new(1.0, 0);
    }
}
