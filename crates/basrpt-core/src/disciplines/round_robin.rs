//! Round-robin: fair-share baseline.

use crate::{greedy_by_key, Candidate, FlowTable, Schedule, Scheduler};
use dcn_types::Voq;
use std::collections::HashMap;

/// VOQ-level round-robin: VOQs are admitted in order of how long ago they
/// were last served, approximating a fair (processor-sharing-like) division
/// of the fabric among competing port pairs. Within a VOQ the shortest flow
/// is served first.
///
/// Fairness is the third point of the classical delay/stability/fairness
/// triangle and serves as the "neither size- nor backlog-greedy" baseline
/// in ablations.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, RoundRobin, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// table.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(2)), 10))?;
/// table.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(1), HostId::new(2)), 10))?;
/// let mut rr = RoundRobin::new();
/// let first = rr.schedule(&table);
/// let second = rr.schedule(&table);
/// // The two contending VOQs alternate across decisions.
/// assert_ne!(
///     first.flow_ids().collect::<Vec<_>>(),
///     second.flow_ids().collect::<Vec<_>>()
/// );
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    last_served: HashMap<Voq, u64>,
    round: u64,
}

impl RoundRobin {
    /// Creates the round-robin scheduler with a fresh serving history.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round robin"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        self.round += 1;
        let mut candidates: Vec<Candidate> = table
            .voqs()
            .map(|view| Candidate {
                // Never-served VOQs have key 0 and go first; otherwise the
                // least recently served VOQ wins. Rounds stay below 2^53 in
                // any feasible run, so the f64 key is exact.
                key: self.last_served.get(&view.voq).copied().unwrap_or(0) as f64,
                flow: view.shortest_flow,
                voq: view.voq,
            })
            .collect();
        let schedule = greedy_by_key(&mut candidates);
        for (_, voq) in schedule.iter() {
            self.last_served.insert(voq, self.round);
        }
        // Forget VOQs that no longer exist so the map cannot grow without
        // bound across a long simulation.
        if self.last_served.len() > 4 * table.num_nonempty_voqs() + 64 {
            let live: std::collections::HashSet<Voq> = table.voqs().map(|v| v.voq).collect();
            self.last_served.retain(|voq, _| live.contains(voq));
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::FlowState;
    use dcn_types::{FlowId, HostId};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn alternates_between_contending_voqs() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 10);
        insert(&mut t, 2, 1, 2, 10);
        let mut rr = RoundRobin::new();
        let first: Vec<_> = rr.schedule(&t).flow_ids().collect();
        let second: Vec<_> = rr.schedule(&t).flow_ids().collect();
        let third: Vec<_> = rr.schedule(&t).flow_ids().collect();
        assert_ne!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    fn schedules_are_maximal() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 10);
        insert(&mut t, 2, 1, 0, 10);
        insert(&mut t, 3, 2, 1, 5);
        let mut rr = RoundRobin::new();
        for _ in 0..5 {
            let s = rr.schedule(&t);
            check_maximal(&t, &s).unwrap();
        }
    }

    #[test]
    fn history_is_pruned() {
        let mut rr = RoundRobin::new();
        // Serve many distinct one-flow tables to grow history.
        for i in 0..500u32 {
            let mut t = FlowTable::new();
            insert(&mut t, i as u64, i, 1000 + i, 5);
            let _ = rr.schedule(&t);
        }
        // One final schedule against a small table triggers pruning.
        let mut t = FlowTable::new();
        insert(&mut t, 9999, 0, 1, 5);
        let _ = rr.schedule(&t);
        assert!(rr.last_served.len() <= 4 + 64 + 1);
    }

    #[test]
    fn name() {
        assert_eq!(RoundRobin::new().name(), "round robin");
    }
}
