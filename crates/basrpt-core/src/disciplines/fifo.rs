//! FIFO: arrival-order baseline.

use crate::{
    schedule_champions, schedule_champions_adjusted, Candidate, FlowTable, Schedule, Scheduler,
    ViewAdjust,
};

/// First-in-first-out scheduling: flows are admitted to the matching in
/// arrival order (flow ids are assigned in arrival order by the workload
/// generators, so the id doubles as the arrival rank).
///
/// FIFO is size-oblivious and backlog-oblivious; it anchors the "no
/// scheduling intelligence at all" end of the design space in ablations.
///
/// # Example
///
/// ```
/// use basrpt_core::{Fifo, FlowState, FlowTable, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// let voq = Voq::new(HostId::new(0), HostId::new(1));
/// table.insert(FlowState::new(FlowId::new(1), voq, 100))?;
/// table.insert(FlowState::new(FlowId::new(2), voq, 1))?;
/// // The earlier (bigger) flow is served first, unlike SRPT.
/// let s = Fifo::new().schedule(&table);
/// assert!(s.contains(FlowId::new(1)));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl Fifo {
    /// Creates the FIFO scheduler.
    pub fn new() -> Self {
        Fifo
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        schedule_champions(table, |view| Candidate {
            // Ids stay far below 2^53, so the f64 key is exact.
            key: view.oldest_flow.raw() as f64,
            flow: view.oldest_flow,
            voq: view.voq,
        })
    }

    fn schedule_validity(&self, _table: &FlowTable, _schedule: &Schedule) -> u64 {
        // Oldest-flow keys are constant between arrivals and completions
        // (draining a flow never changes which flow is oldest), so the
        // ranking is frozen and the schedule cannot change.
        u64::MAX
    }

    fn supports_lazy_views(&self) -> bool {
        // The key reads only the view's oldest flow.
        true
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        schedule_champions_adjusted(table, adjust, |view| Candidate {
            key: view.oldest_flow.raw() as f64,
            flow: view.oldest_flow,
            voq: view.voq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::FlowState;
    use dcn_types::{FlowId, HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn earliest_arrival_wins_contention() {
        let mut t = FlowTable::new();
        insert(&mut t, 5, 0, 2, 1); // later arrival, shorter
        insert(&mut t, 3, 1, 2, 99); // earlier arrival, longer
        let s = Fifo::new().schedule(&t);
        assert!(s.contains(FlowId::new(3)));
        assert!(!s.contains(FlowId::new(5)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn head_of_voq_is_oldest() {
        let mut t = FlowTable::new();
        insert(&mut t, 9, 0, 1, 1);
        insert(&mut t, 4, 0, 1, 100);
        let s = Fifo::new().schedule(&t);
        assert!(s.contains(FlowId::new(4)));
    }

    #[test]
    fn name() {
        assert_eq!(Fifo::new().name(), "FIFO");
    }
}
