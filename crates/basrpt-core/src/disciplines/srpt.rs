//! Shortest Remaining Processing Time (greedy maximal SRPT).

use crate::{
    schedule_champions, schedule_champions_adjusted, Candidate, FlowTable, Schedule, Scheduler,
    ViewAdjust,
};

/// The SRPT discipline used by PDQ, pFabric and PASE (§II-A): repeatedly
/// select the globally shortest remaining flow whose ingress and egress
/// ports are both still free, until no flow can be added.
///
/// SRPT minimizes mean FCT on a single link but, as the paper demonstrates,
/// is *unstable* on a fabric: non-overlapping short flows can preempt a long
/// flow forever, so backlog accumulates even when every port's offered load
/// is below capacity.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, Scheduler, Srpt};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// let voq = Voq::new(HostId::new(0), HostId::new(1));
/// table.insert(FlowState::new(FlowId::new(1), voq, 5))?;
/// table.insert(FlowState::new(FlowId::new(2), voq, 1))?;
/// let schedule = Srpt::new().schedule(&table);
/// assert!(schedule.contains(FlowId::new(2))); // the 1-unit flow wins
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Srpt;

impl Srpt {
    /// Creates the SRPT scheduler.
    pub fn new() -> Self {
        Srpt
    }
}

impl Scheduler for Srpt {
    fn name(&self) -> &str {
        "SRPT"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        schedule_champions(table, |v| Candidate {
            key: v.shortest_remaining as f64,
            flow: v.shortest_flow,
            voq: v.voq,
        })
    }

    fn schedule_validity(&self, _table: &FlowTable, _schedule: &Schedule) -> u64 {
        // Integer remaining sizes are exact in f64 and every served head's
        // key drops by exactly 1 per slot — the safe direction of the
        // greedy admission order (see `crate::validity`) — while unserved
        // VOQs are frozen; a drained head also stays its VOQ's shortest
        // flow. The schedule can only change at an arrival or completion.
        u64::MAX
    }

    fn supports_lazy_views(&self) -> bool {
        // The decision reads only the per-VOQ views.
        true
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        schedule_champions_adjusted(table, adjust, |v| Candidate {
            key: v.shortest_remaining as f64,
            flow: v.shortest_flow,
            voq: v.voq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::FlowState;
    use dcn_types::{FlowId, HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn shortest_flow_wins_contention() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 0, 2, 1);
        let s = Srpt::new().schedule(&t);
        // Ingress 0 contended: flow 2 (shorter) wins.
        assert!(s.contains(FlowId::new(2)));
        assert!(!s.contains(FlowId::new(1)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn blocked_long_flow_is_the_paper_fig1_slot1() {
        // Fig. 1 at slot 1: f1 (5 pkts, h0->h1) vs f2 (1 pkt, h0->h2).
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 0, 2, 1);
        let s = Srpt::new().schedule(&t);
        assert_eq!(s.len(), 1);
        assert!(s.contains(FlowId::new(2)));
    }

    #[test]
    fn independent_flows_all_scheduled() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 2, 3, 9);
        insert(&mut t, 3, 4, 5, 1);
        let s = Srpt::new().schedule(&t);
        assert_eq!(s.len(), 3);
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn empty_table_empty_schedule() {
        let t = FlowTable::new();
        assert!(Srpt::new().schedule(&t).is_empty());
    }

    #[test]
    fn name() {
        assert_eq!(Srpt::new().name(), "SRPT");
    }
}
