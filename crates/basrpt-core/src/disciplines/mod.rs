//! The scheduling disciplines evaluated in the paper, plus baselines.

mod exact_basrpt;
mod fast_basrpt;
mod fifo;
mod maxweight;
mod repflow;
mod round_robin;
mod srpt;
mod threshold;

pub use exact_basrpt::{ExactBasrpt, ExactBasrptError, PenaltyKind};
pub use fast_basrpt::FastBasrpt;
pub use fifo::Fifo;
pub use maxweight::MaxWeight;
pub use repflow::{RepFlow, REPFLOW_DEFAULT_THRESHOLD};
pub use round_robin::RoundRobin;
pub use srpt::Srpt;
pub use threshold::ThresholdBacklogSrpt;
