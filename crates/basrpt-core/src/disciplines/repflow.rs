//! RepFlow: SRPT ranking plus short-flow replication metadata.

use crate::{
    schedule_champions, schedule_champions_adjusted, Candidate, FlowTable, Schedule, Scheduler,
    ViewAdjust,
};

/// The RepFlow baseline (Xu & Li, INFOCOM'14): flows shorter than a
/// threshold are replicated across distinct core planes and the first
/// copy to complete wins, exploiting the path diversity that ECMP's
/// per-flow hashing leaves on the table.
///
/// RepFlow is a *routing* discipline, not a scheduling one: within the
/// crossbar it ranks flows exactly like [`Srpt`](crate::Srpt) (same
/// champions, same keys, so the matching is bit-identical). What it adds
/// is the replication predicate — [`replicates`](RepFlow::replicates) —
/// which the fabric layer (`dcn_fabric::simulate_repflow`) consults to
/// race a replica on an alternate core plane whenever a short flow's
/// primary plane is saturated.
///
/// # Example
///
/// ```
/// use basrpt_core::RepFlow;
///
/// let rep = RepFlow::default(); // the paper's 100 KB cutoff
/// assert!(rep.replicates(50_000));
/// assert!(!rep.replicates(100_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepFlow {
    threshold: u64,
}

/// The paper's replication cutoff: flows under 100 KB count as "short".
pub const REPFLOW_DEFAULT_THRESHOLD: u64 = 100_000;

impl RepFlow {
    /// Creates a RepFlow scheduler replicating flows strictly shorter
    /// than `threshold` bytes.
    pub fn new(threshold: u64) -> Self {
        RepFlow { threshold }
    }

    /// The replication threshold in bytes.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether a flow of `size` bytes is replicated (strictly shorter
    /// than the threshold).
    pub fn replicates(&self, size: u64) -> bool {
        size < self.threshold
    }
}

impl Default for RepFlow {
    fn default() -> Self {
        RepFlow::new(REPFLOW_DEFAULT_THRESHOLD)
    }
}

impl Scheduler for RepFlow {
    fn name(&self) -> &str {
        "RepFlow"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        // Identical ranking to SRPT: replication happens on the fabric
        // side, the crossbar matching is untouched.
        schedule_champions(table, |v| Candidate {
            key: v.shortest_remaining as f64,
            flow: v.shortest_flow,
            voq: v.voq,
        })
    }

    fn schedule_validity(&self, _table: &FlowTable, _schedule: &Schedule) -> u64 {
        // Same argument as SRPT: exact integer keys dropping by 1 per
        // served slot keep the matching valid until the next arrival or
        // completion.
        u64::MAX
    }

    fn supports_lazy_views(&self) -> bool {
        // Same view-only decision as SRPT.
        true
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        schedule_champions_adjusted(table, adjust, |v| Candidate {
            key: v.shortest_remaining as f64,
            flow: v.shortest_flow,
            voq: v.voq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowState, Srpt};
    use dcn_types::{FlowId, HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn matches_srpt_schedule_exactly() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 0, 2, 1);
        insert(&mut t, 3, 3, 4, 9);
        let a = Srpt::new().schedule(&t);
        let b = RepFlow::default().schedule(&t);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>(),
            "RepFlow ranks exactly like SRPT"
        );
    }

    #[test]
    fn threshold_is_strict() {
        let rep = RepFlow::new(1000);
        assert!(rep.replicates(999));
        assert!(!rep.replicates(1000));
        assert_eq!(rep.threshold(), 1000);
    }

    #[test]
    fn default_uses_the_paper_cutoff() {
        assert_eq!(RepFlow::default().threshold(), REPFLOW_DEFAULT_THRESHOLD);
    }

    #[test]
    fn name() {
        assert_eq!(RepFlow::default().name(), "RepFlow");
    }
}
