//! The threshold backlog-aware strategy compared against SRPT in Fig. 2.

use crate::{FlowTable, Schedule, Scheduler, ViewAdjust};
use dcn_types::{FlowId, Voq};

/// The simple backlog-aware strategy of the paper's motivation section
/// (Fig. 2): "prioritize flows in the backlog exceeding a certain
/// threshold and schedule other flows according to SRPT".
///
/// Candidates whose VOQ backlog exceeds the threshold form a high-priority
/// tier ordered by remaining size; all other candidates follow, also in
/// SRPT order. This is cruder than (fast) BASRPT — the tier boundary is a
/// hard switch instead of a continuous tradeoff — but it is already enough
/// to stabilize the motivating scenario, which is exactly the observation
/// that motivates the Lyapunov design.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, Scheduler, ThresholdBacklogSrpt};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// table.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(2)), 1))?;
/// table.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(1), HostId::new(2)), 50))?;
/// // Backlog 50 > threshold 10, so the long flow jumps ahead of the short one.
/// let s = ThresholdBacklogSrpt::new(10).schedule(&table);
/// assert!(s.contains(FlowId::new(2)));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdBacklogSrpt {
    threshold: u64,
}

impl ThresholdBacklogSrpt {
    /// Creates the strategy; VOQs with backlog strictly greater than
    /// `threshold` units are prioritized.
    pub fn new(threshold: u64) -> Self {
        ThresholdBacklogSrpt { threshold }
    }

    /// The backlog threshold in units.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The tiered greedy admission shared by the plain and adjusted
    /// decision paths. `candidates` holds `(urgent?, remaining, id, voq)`
    /// tuples; the sort puts the urgent tier first, then SRPT order
    /// within each tier, flow id as the final tie-break.
    fn admit(mut candidates: Vec<(bool, u64, FlowId, Voq)>) -> Schedule {
        candidates.sort_unstable();
        let mut schedule = Schedule::new();
        for (_, _, flow, voq) in candidates {
            if schedule.admits(voq) {
                schedule
                    .add(flow, voq)
                    .expect("admits() checked both ports");
            }
        }
        schedule
    }
}

impl Scheduler for ThresholdBacklogSrpt {
    fn name(&self) -> &str {
        "threshold backlog-aware SRPT"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        let candidates: Vec<(bool, u64, FlowId, Voq)> = table
            .voqs()
            .map(|view| {
                (
                    view.backlog <= self.threshold,
                    view.shortest_remaining,
                    view.shortest_flow,
                    view.voq,
                )
            })
            .collect();
        Self::admit(candidates)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        crate::validity::threshold_validity(table, schedule, self.threshold)
    }

    fn supports_lazy_views(&self) -> bool {
        // Both the tier test and the within-tier key read only the view.
        true
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        let candidates: Vec<(bool, u64, FlowId, Voq)> = table
            .voqs()
            .map(|mut view| {
                adjust.adjust(&mut view);
                (
                    view.backlog <= self.threshold,
                    view.shortest_remaining,
                    view.shortest_flow,
                    view.voq,
                )
            })
            .collect();
        Self::admit(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::{FlowState, Srpt};
    use dcn_types::HostId;

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn over_threshold_voq_jumps_queue() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1);
        insert(&mut t, 2, 1, 2, 50);
        let s = ThresholdBacklogSrpt::new(10).schedule(&t);
        assert!(s.contains(FlowId::new(2)));
        assert!(!s.contains(FlowId::new(1)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn below_threshold_behaves_like_srpt() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1);
        insert(&mut t, 2, 1, 2, 50);
        let thresh = ThresholdBacklogSrpt::new(1_000).schedule(&t);
        let srpt = Srpt::new().schedule(&t);
        assert_eq!(
            thresh.flow_ids().collect::<Vec<_>>(),
            srpt.flow_ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn srpt_order_within_urgent_tier() {
        let mut t = FlowTable::new();
        // Both VOQs over threshold, contending for egress 2.
        insert(&mut t, 1, 0, 2, 30);
        insert(&mut t, 2, 1, 2, 20);
        let s = ThresholdBacklogSrpt::new(5).schedule(&t);
        assert!(s.contains(FlowId::new(2)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn accessors() {
        let s = ThresholdBacklogSrpt::new(42);
        assert_eq!(s.threshold(), 42);
        assert_eq!(s.name(), "threshold backlog-aware SRPT");
    }
}
