//! Exact BASRPT: exhaustive minimization over maximal schedules (§IV-A).

use crate::table::VoqView;
use crate::{FlowTable, Schedule, Scheduler};
use dcn_types::{HostId, PortSet};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// How the penalty `ȳ(t)` aggregates the selected flows' sizes.
///
/// The paper defines the penalty as the **mean** selected size and argues
/// (§IV-B) that a **sum** would "prefer scheduling with less flows which
/// lowers the link utilization". Both are implemented so that design choice
/// can be ablated (`cargo bench --bench mean_vs_sum`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PenaltyKind {
    /// `ȳ = (Σ selected sizes) / |selection|` — the paper's choice.
    #[default]
    MeanSize,
    /// `ȳ = Σ selected sizes` — the rejected alternative.
    SumSize,
}

/// Error returned by [`ExactBasrpt::try_schedule`] when the instance is too
/// large to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExactBasrptError {
    ports: usize,
    limit: usize,
}

impl fmt::Display for ExactBasrptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exact BASRPT enumeration refused: {} busy ingress ports exceed the limit of {}",
            self.ports, self.limit
        )
    }
}

impl Error for ExactBasrptError {}

/// The exact BASRPT scheduler: traverses *all maximal* scheduling schemes of
/// the current non-empty VOQs and returns the one minimizing
///
/// ```text
/// V · ȳ(t) − Σ_ij X_ij(t) R_ij(t)
/// ```
///
/// where `ȳ(t)` is the mean remaining size of the selected flows and the sum
/// is the total backlog of the selected VOQs (§IV-A). For a fixed set of
/// selected VOQs the mean is minimized by picking each VOQ's shortest flow,
/// so the search runs over VOQ subsets that form maximal matchings.
///
/// The enumeration is exponential — this is precisely the computational
/// blow-up that motivates fast BASRPT (§IV-C) — so the scheduler refuses
/// instances whose number of distinct busy ingress ports exceeds a
/// configurable limit (default 8). Use it for small-fabric experiments and
/// as the ground truth for approximation-quality tests.
///
/// # Example
///
/// ```
/// use basrpt_core::{ExactBasrpt, FlowState, FlowTable, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// table.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)), 5))?;
/// table.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(1), HostId::new(0)), 3))?;
/// let s = ExactBasrpt::new(10.0).schedule(&table);
/// assert_eq!(s.len(), 2); // the two flows do not conflict
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactBasrpt {
    v: f64,
    port_limit: usize,
    penalty: PenaltyKind,
}

/// Default maximum number of distinct busy ingress ports the enumeration
/// accepts.
pub const DEFAULT_PORT_LIMIT: usize = 8;

impl ExactBasrpt {
    /// Creates the scheduler with importance weight `v` and the default
    /// port limit.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite.
    pub fn new(v: f64) -> Self {
        Self::with_port_limit(v, DEFAULT_PORT_LIMIT)
    }

    /// Creates the scheduler with an explicit enumeration limit on the
    /// number of distinct busy ingress ports.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite, or `port_limit` is zero.
    pub fn with_port_limit(v: f64, port_limit: usize) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "V must be finite and >= 0, got {v}"
        );
        assert!(port_limit > 0, "port limit must be positive");
        ExactBasrpt {
            v,
            port_limit,
            penalty: PenaltyKind::MeanSize,
        }
    }

    /// Switches the penalty aggregation (builder style); the default is
    /// the paper's [`PenaltyKind::MeanSize`].
    pub fn with_penalty(mut self, penalty: PenaltyKind) -> Self {
        self.penalty = penalty;
        self
    }

    /// The penalty aggregation in use.
    pub fn penalty(&self) -> PenaltyKind {
        self.penalty
    }

    /// The FCT-vs-stability weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Computes the objective `V·ȳ − Σ X_ij R_ij` of a candidate VOQ
    /// selection (each VOQ represented by its shortest flow).
    fn objective(&self, chosen: &[VoqView]) -> f64 {
        if chosen.is_empty() {
            return 0.0;
        }
        let total_size: f64 = chosen.iter().map(|c| c.shortest_remaining as f64).sum();
        let total_backlog: f64 = chosen.iter().map(|c| c.backlog as f64).sum();
        let penalty = match self.penalty {
            PenaltyKind::MeanSize => total_size / chosen.len() as f64,
            PenaltyKind::SumSize => total_size,
        };
        self.v * penalty - total_backlog
    }

    /// Like [`Scheduler::schedule`] but returns an error instead of
    /// panicking when the instance exceeds the port limit.
    ///
    /// # Errors
    ///
    /// Returns [`ExactBasrptError`] when more than `port_limit` distinct
    /// ingress ports have non-empty VOQs.
    pub fn try_schedule(&self, table: &FlowTable) -> Result<Schedule, ExactBasrptError> {
        let views: Vec<VoqView> = table.voqs().collect();
        if views.is_empty() {
            return Ok(Schedule::new());
        }

        // Group candidate VOQs by ingress port (deterministic order).
        let mut by_src: Vec<(HostId, Vec<VoqView>)> = Vec::new();
        for view in views.iter() {
            match by_src.last_mut() {
                Some((src, group)) if *src == view.voq.src() => group.push(*view),
                _ => by_src.push((view.voq.src(), vec![*view])),
            }
        }
        if by_src.len() > self.port_limit {
            return Err(ExactBasrptError {
                ports: by_src.len(),
                limit: self.port_limit,
            });
        }

        let mut best: Option<(f64, Vec<VoqView>)> = None;
        let mut chosen: Vec<VoqView> = Vec::new();
        let mut used_dsts = PortSet::new();
        self.search(&by_src, &views, 0, &mut chosen, &mut used_dsts, &mut best);

        let (_, selection) = best.expect("at least one maximal schedule exists");
        let mut schedule = Schedule::new();
        for view in selection {
            schedule
                .add(view.shortest_flow, view.voq)
                .expect("enumerated selection is a matching");
        }
        Ok(schedule)
    }

    fn search(
        &self,
        by_src: &[(HostId, Vec<VoqView>)],
        all: &[VoqView],
        depth: usize,
        chosen: &mut Vec<VoqView>,
        used_dsts: &mut PortSet,
        best: &mut Option<(f64, Vec<VoqView>)>,
    ) {
        if depth == by_src.len() {
            // Maximality check: no non-empty VOQ may have both ports free.
            let used_srcs: PortSet = chosen.iter().map(|c| c.voq.src()).collect();
            let maximal = all.iter().all(|view| {
                used_srcs.contains(view.voq.src()) || used_dsts.contains(view.voq.dst())
            });
            if !maximal {
                return;
            }
            let obj = self.objective(chosen);
            let better = match best {
                None => true,
                Some((best_obj, _)) => obj < *best_obj,
            };
            if better {
                *best = Some((obj, chosen.clone()));
            }
            return;
        }

        let (_, options) = &by_src[depth];
        // Option A: schedule one of this ingress port's VOQs.
        for view in options {
            if !used_dsts.contains(view.voq.dst()) {
                used_dsts.insert(view.voq.dst());
                chosen.push(*view);
                self.search(by_src, all, depth + 1, chosen, used_dsts, best);
                chosen.pop();
                used_dsts.remove(view.voq.dst());
            }
        }
        // Option B: leave this ingress port idle (may still be maximal if
        // all of its destinations end up taken).
        self.search(by_src, all, depth + 1, chosen, used_dsts, best);
    }
}

impl Scheduler for ExactBasrpt {
    fn name(&self) -> &str {
        "BASRPT (exact)"
    }

    /// # Panics
    ///
    /// Panics when the number of distinct busy ingress ports exceeds the
    /// configured limit; use [`ExactBasrpt::try_schedule`] to handle that
    /// case gracefully.
    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        self.try_schedule(table)
            .expect("exact BASRPT instance too large")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::FlowState;
    use dcn_types::{FlowId, Voq};
    use std::collections::BTreeSet;

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn empty_table_is_empty_schedule() {
        let t = FlowTable::new();
        assert!(ExactBasrpt::new(10.0).schedule(&t).is_empty());
    }

    #[test]
    fn independent_flows_all_selected() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 2, 3, 9);
        let s = ExactBasrpt::new(10.0).schedule(&t);
        assert_eq!(s.len(), 2);
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn result_is_maximal() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 0, 2, 1);
        insert(&mut t, 3, 3, 1, 7);
        insert(&mut t, 4, 3, 2, 2);
        let s = ExactBasrpt::new(100.0).schedule(&t);
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn huge_backlog_attracts_selection_at_small_v() {
        let mut t = FlowTable::new();
        // Contend for egress 2: tiny flow vs deep queue.
        insert(&mut t, 1, 0, 2, 1);
        for i in 0..10 {
            insert(&mut t, 10 + i, 1, 2, 100);
        }
        let s = ExactBasrpt::new(0.5).schedule(&t);
        assert!(!s.contains(FlowId::new(1)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn port_limit_enforced() {
        let mut t = FlowTable::new();
        for i in 0..5 {
            insert(&mut t, i, i as u32, 10 + i as u32, 3);
        }
        let sched = ExactBasrpt::with_port_limit(10.0, 4);
        let err = sched.try_schedule(&t).unwrap_err();
        assert!(err.to_string().contains("5 busy ingress ports"));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn schedule_panics_over_limit() {
        let mut t = FlowTable::new();
        for i in 0..3 {
            insert(&mut t, i, i as u32, 10 + i as u32, 3);
        }
        let mut sched = ExactBasrpt::with_port_limit(10.0, 2);
        let _ = sched.schedule(&t);
    }

    /// The paper's §IV-B argument for the mean: with a sum penalty the
    /// optimizer prefers fewer selected flows. On the Fig.-1 slot-2 state
    /// ({f1 rem 4} vs {f2, f3}) the mean objective picks the two shorts,
    /// the sum objective picks the lone long flow.
    #[test]
    fn sum_penalty_prefers_fewer_flows() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 4); // f1, A->B, backlog 4
        insert(&mut t, 2, 0, 2, 1); // f2, A->C
        insert(&mut t, 3, 3, 1, 1); // f3, D->B
        let v = 0.8;
        let mean = ExactBasrpt::new(v).schedule(&t);
        assert_eq!(mean.len(), 2, "mean objective selects the two shorts");
        assert!(!mean.contains(FlowId::new(1)));

        let sum = ExactBasrpt::new(v)
            .with_penalty(PenaltyKind::SumSize)
            .schedule(&t);
        assert_eq!(sum.len(), 1, "sum objective selects the lone long flow");
        assert!(sum.contains(FlowId::new(1)));
        assert_eq!(
            ExactBasrpt::new(v)
                .with_penalty(PenaltyKind::SumSize)
                .penalty(),
            PenaltyKind::SumSize
        );
    }

    /// Brute-force reference: the exact scheduler must achieve the minimum
    /// objective over every maximal matching, which we recompute here with
    /// an independent (bitmask) enumeration.
    #[test]
    fn matches_bruteforce_objective() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 0, 2, 1);
        insert(&mut t, 3, 1, 1, 7);
        insert(&mut t, 4, 1, 2, 2);
        insert(&mut t, 5, 2, 0, 4);
        let v = 3.0;
        let sched = ExactBasrpt::new(v);
        let s = sched.try_schedule(&t).unwrap();
        let views: Vec<_> = t.voqs().collect();
        let chosen: Vec<_> = views
            .iter()
            .filter(|view| s.contains(view.shortest_flow))
            .copied()
            .collect();
        let got = sched.objective(&chosen);

        // Brute force over all subsets of VOQs.
        let n = views.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let subset: Vec<_> = (0..n)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| views[i])
                .collect();
            // Matching?
            let srcs: BTreeSet<_> = subset.iter().map(|c| c.voq.src()).collect();
            let dsts: BTreeSet<_> = subset.iter().map(|c| c.voq.dst()).collect();
            if srcs.len() != subset.len() || dsts.len() != subset.len() {
                continue;
            }
            // Maximal?
            let maximal = views
                .iter()
                .all(|view| srcs.contains(&view.voq.src()) || dsts.contains(&view.voq.dst()));
            if !maximal {
                continue;
            }
            best = best.min(sched.objective(&subset));
        }
        assert!(
            (got - best).abs() < 1e-9,
            "exact objective {got} != brute force {best}"
        );
    }
}
