//! MaxWeight: the classical throughput-optimal baseline.

use crate::{
    schedule_champions, schedule_champions_adjusted, Candidate, FlowTable, Schedule, Scheduler,
    ViewAdjust,
};

/// Greedy MaxWeight scheduling: VOQs are served in decreasing order of
/// backlog (`key = −X_ij`), the `V → 0` limit of BASRPT.
///
/// MaxWeight is the textbook stable discipline for input-queued switches —
/// it maximizes the selected backlog and therefore keeps queues bounded for
/// any admissible load — but it is oblivious to flow sizes, so its FCT is
/// far from SRPT's. Including it separates "backlog-aware" (BASRPT) from
/// "backlog-only" (MaxWeight) in the ablations. Within a VOQ the shortest
/// flow is served first, which does not change queue dynamics but avoids
/// gratuitously inflating short-flow FCT.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, MaxWeight, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// table.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(2)), 1))?;
/// table.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(1), HostId::new(2)), 99))?;
/// let s = MaxWeight::new().schedule(&table);
/// assert!(s.contains(FlowId::new(2))); // deeper queue wins regardless of size
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxWeight;

impl MaxWeight {
    /// Creates the MaxWeight scheduler.
    pub fn new() -> Self {
        MaxWeight
    }
}

impl Scheduler for MaxWeight {
    fn name(&self) -> &str {
        "MaxWeight"
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        schedule_champions(table, |view| Candidate {
            key: -(view.backlog as f64),
            flow: view.shortest_flow,
            voq: view.voq,
        })
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        crate::validity::maxweight_validity(table, schedule)
    }

    fn supports_lazy_views(&self) -> bool {
        // The key reads only the view's backlog and champion.
        true
    }

    fn schedule_adjusted(&mut self, table: &FlowTable, adjust: &dyn ViewAdjust) -> Schedule {
        schedule_champions_adjusted(table, adjust, |view| Candidate {
            key: -(view.backlog as f64),
            flow: view.shortest_flow,
            voq: view.voq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::check_maximal;
    use crate::{FastBasrpt, FlowState};
    use dcn_types::{FlowId, HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn deepest_queue_wins() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1);
        insert(&mut t, 2, 1, 2, 99);
        let s = MaxWeight::new().schedule(&t);
        assert!(s.contains(FlowId::new(2)));
        check_maximal(&t, &s).unwrap();
    }

    #[test]
    fn agrees_with_fast_basrpt_at_v_zero() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1);
        insert(&mut t, 2, 1, 2, 99);
        insert(&mut t, 3, 3, 4, 10);
        insert(&mut t, 4, 3, 5, 20);
        let mw = MaxWeight::new().schedule(&t);
        let fb = FastBasrpt::new(0.0, 6).schedule(&t);
        assert_eq!(
            mw.flow_ids().collect::<Vec<_>>(),
            fb.flow_ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn name() {
        assert_eq!(MaxWeight::new().name(), "MaxWeight");
    }
}
