//! Schedule-validity bounds: for how many consecutive slots a computed
//! schedule provably survives unchanged under its own drains.
//!
//! The slotted switch drains exactly one unit from every scheduled flow
//! per slot, and between two state-changing events (an arrival or a flow
//! completion) those drains are the *only* table mutations. A fast-forward
//! driver (see `dcn_switch::fastforward`) can therefore reuse a cached
//! schedule for `k` slots at a time — provided the greedy admission order
//! cannot flip within the window. This module derives sound per-discipline
//! bounds from one argument:
//!
//! # The safe-direction invariance argument
//!
//! [`greedy_by_key`](crate::greedy_by_key) admits candidates in ascending
//! `(key, flow id)` order — whether those candidates come from the
//! champion index (one per non-empty VOQ, see
//! [`schedule_champions`](crate::schedule_champions)), from
//! [`IncrementalScheduler`](crate::IncrementalScheduler)'s sorted set, or
//! from the all-flows reference scan: the bounds below depend only on the
//! admission order, not on how the candidate list was produced. Fix a
//! computed matching `M`. Suppose that over one slot (with no arrivals
//! and no completions)
//!
//! * every candidate in `M` shifts its key by the **same exact amount** in
//!   the **safe direction** (towards the front, or not at all), and
//! * every candidate not in `M` keeps its key unchanged,
//!
//! then re-running the greedy admission yields the *identical* schedule,
//! admission order included: each member of `M` is preceded by a subset of
//! the candidates that preceded it before (so it is admitted again — its
//! ports are taken only by earlier members of `M`, which form the same
//! port-disjoint set), the relative order within `M` is preserved by the
//! equal shifts, and every rejected candidate still has its blocking
//! member in front of it. Iterating the argument extends it to any number
//! of slots over which the premises hold.
//!
//! * **SRPT / FIFO**: served keys drop by exactly 1 per slot (SRPT) or are
//!   constant (FIFO) — safe forever, bound `u64::MAX`.
//! * **Fast BASRPT**, key `w·remaining − backlog`: a served candidate
//!   shifts by `1 − w` per slot. For an *integer* weight `w ≥ 1` the shift
//!   is `≤ 0` and every key stays an exactly-representable f64 (like the
//!   FIFO key, assuming magnitudes below 2⁵³), so the bound is `u64::MAX`;
//!   otherwise the shift is either towards the back (`w < 1`) or inexact
//!   in f64, and the bound degrades to 1.
//! * **MaxWeight**, key `−backlog`: served keys *grow* by 1 per slot — the
//!   unsafe direction — so a served VOQ can fall behind an unserved one.
//!   [`maxweight_validity`] bounds the first possible flip.
//! * **Threshold backlog-aware SRPT**, key `(backlog ≤ θ, remaining)`:
//!   within a tier served candidates move frontwards (remaining drops),
//!   but a served VOQ draining through the threshold flips its tier bit
//!   the unsafe way. [`threshold_validity`] bounds the first crossing.
//!
//! All bounds assume backlogs and remaining sizes stay below 2⁵³ so the
//! disciplines' f64 keys are exact — the same representability assumption
//! the keys themselves already make.

use crate::{FlowTable, Schedule};
use dcn_types::Voq;
use std::collections::HashSet;

/// Validity bound for a [`MaxWeight`](crate::MaxWeight) schedule computed
/// from `table`.
///
/// A served VOQ with backlog `x_s` gains key `+1` per slot while unserved
/// backlogs are frozen, so the pair order `(served before unserved)` with
/// the largest unserved backlog `x_u ≤ x_s` is the first that can flip —
/// no earlier than slot `x_s − x_u` after the decision (exactly then if
/// the id tie-break favoured the served VOQ). The bound is the minimum
/// over served VOQs, clamped to `≥ 1` (the decision slot itself is always
/// valid), and `u64::MAX` when no unserved candidate exists to overtake.
pub fn maxweight_validity(table: &FlowTable, schedule: &Schedule) -> u64 {
    let served: HashSet<Voq> = schedule.iter().map(|(_, voq)| voq).collect();
    let mut unserved: Vec<u64> = table
        .voqs()
        .filter(|view| !served.contains(&view.voq))
        .map(|view| view.backlog)
        .collect();
    if unserved.is_empty() {
        return u64::MAX;
    }
    unserved.sort_unstable();
    let mut bound = u64::MAX;
    for (_, voq) in schedule.iter() {
        let x = table.voq_backlog(voq);
        // Largest unserved backlog <= x: the first element the served VOQ
        // can fall behind. Unserved VOQs with larger backlog already sit
        // in front of it, and a backwards-drifting key never re-passes
        // them.
        let idx = unserved.partition_point(|&u| u <= x);
        if idx > 0 {
            bound = bound.min((x - unserved[idx - 1]).max(1));
        }
    }
    bound
}

/// Validity bound for a
/// [`ThresholdBacklogSrpt`](crate::ThresholdBacklogSrpt) schedule computed
/// from `table` with threshold `threshold`.
///
/// Within each tier the served keys only move frontwards (remaining sizes
/// shrink by exactly 1 per slot), which is the safe direction; the only
/// unsafe move is a served over-threshold VOQ draining down to the
/// threshold, which flips its tier bit from urgent to normal after
/// exactly `backlog − threshold` slots. Unserved VOQs are frozen and
/// cannot cross tiers on their own.
pub fn threshold_validity(table: &FlowTable, schedule: &Schedule, threshold: u64) -> u64 {
    let mut bound = u64::MAX;
    for (_, voq) in schedule.iter() {
        let backlog = table.voq_backlog(voq);
        if backlog > threshold {
            bound = bound.min(backlog - threshold);
        }
    }
    bound
}

/// Validity bound for a [`FastBasrpt`](crate::FastBasrpt) schedule, from
/// the per-flow weight `w = V/N` alone.
///
/// Served keys `w·remaining − backlog` shift by `1 − w` per slot. The
/// shift is safe (`≤ 0`) and exactly representable for every reachable
/// magnitude when `w` is an integer `≥ 1`, giving an unbounded window;
/// any other weight shifts backwards or rounds, so the schedule is only
/// pinned for the slot it was computed for.
pub fn fast_basrpt_validity(weight: f64) -> u64 {
    if weight >= 1.0 && weight.fract() == 0.0 {
        u64::MAX
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowState, MaxWeight, Scheduler, ThresholdBacklogSrpt};
    use dcn_types::{FlowId, HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    /// Brute-force check: drain the schedule slot by slot and count how
    /// long the freshly recomputed schedule stays identical.
    fn measured_validity<S: Scheduler>(mut sched: S, table: &FlowTable, max: u64) -> u64 {
        let mut t = table.clone();
        let pinned = sched.schedule(&t);
        let mut slots = 0u64;
        while slots < max {
            if sched.schedule(&t) != pinned {
                return slots;
            }
            slots += 1;
            let mut completed = false;
            for (id, _) in pinned.iter() {
                let out = t.drain(id, 1).unwrap();
                completed |= out.completed.is_some();
            }
            if completed {
                return slots; // window must end at a completion anyway
            }
        }
        slots
    }

    #[test]
    fn maxweight_bound_is_sound_on_contended_table() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 9); // backlog 9, contends egress 2
        insert(&mut t, 2, 1, 2, 4); // backlog 4, loses egress 2
        insert(&mut t, 3, 3, 4, 7); // independent
        let mut mw = MaxWeight::new();
        let s = mw.schedule(&t);
        let bound = maxweight_validity(&t, &s);
        // The tightest served/unserved pair is (3,4) at 7 vs (1,2) at 4:
        // flip no earlier than slot 3 (conservative — they do not even
        // contend a port, but the bound is port-oblivious).
        assert_eq!(bound, 3);
        assert!(measured_validity(MaxWeight::new(), &t, 64) >= bound);
    }

    #[test]
    fn maxweight_without_unserved_voqs_is_unbounded() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 2, 3, 8);
        let mut mw = MaxWeight::new();
        let s = mw.schedule(&t);
        assert_eq!(s.len(), 2);
        assert_eq!(maxweight_validity(&t, &s), u64::MAX);
    }

    #[test]
    fn maxweight_equal_backlogs_pin_a_single_slot() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 6);
        insert(&mut t, 2, 1, 2, 6);
        let mut mw = MaxWeight::new();
        let s = mw.schedule(&t);
        assert_eq!(maxweight_validity(&t, &s), 1);
    }

    #[test]
    fn threshold_bound_counts_slots_to_tier_crossing() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 14); // urgent at threshold 10
        insert(&mut t, 2, 1, 2, 3); // normal tier, loses egress 2
        let mut sched = ThresholdBacklogSrpt::new(10);
        let s = sched.schedule(&t);
        let bound = threshold_validity(&t, &s, 10);
        assert_eq!(bound, 4);
        assert!(measured_validity(ThresholdBacklogSrpt::new(10), &t, 64) >= bound);
    }

    #[test]
    fn threshold_all_below_threshold_is_unbounded() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 3);
        insert(&mut t, 2, 1, 2, 5);
        let mut sched = ThresholdBacklogSrpt::new(100);
        let s = sched.schedule(&t);
        assert_eq!(threshold_validity(&t, &s, 100), u64::MAX);
    }

    #[test]
    fn fast_basrpt_weight_classes() {
        assert_eq!(fast_basrpt_validity(1.0), u64::MAX);
        assert_eq!(fast_basrpt_validity(2.0), u64::MAX);
        assert_eq!(fast_basrpt_validity(0.5), 1);
        assert_eq!(fast_basrpt_validity(1.5), 1);
        assert_eq!(fast_basrpt_validity(0.0), 1);
    }
}
