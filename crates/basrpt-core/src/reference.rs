//! Literal reference implementations for differential testing.
//!
//! The production schedulers rank one candidate per non-empty VOQ (the
//! VOQ's shortest flow) — an `O(Q log Q)` decision. The paper's
//! Algorithm 1 as written instead sorts *every* active flow. The two are
//! equivalent because all flows of a VOQ share the same backlog term, so
//! the VOQ's shortest flow always precedes its siblings in the global
//! order; this module provides the literal all-flows variant so tests can
//! verify that equivalence (and benches can measure the saved work).

use crate::{FlowTable, Schedule};
use dcn_types::FlowId;

/// The paper's Algorithm 1 verbatim: sort all active flows by
/// `(V/N)·remaining − voq_backlog` (ties: smaller remaining, then smaller
/// id) and admit greedily under the crossbar constraint.
///
/// # Panics
///
/// Panics if `v` is negative or not finite, or `num_ports` is zero.
///
/// # Example
///
/// ```
/// use basrpt_core::reference::fast_basrpt_all_flows;
/// use basrpt_core::{FastBasrpt, FlowState, FlowTable, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut t = FlowTable::new();
/// t.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)), 7))?;
/// t.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(2), HostId::new(1)), 3))?;
/// let literal = fast_basrpt_all_flows(&t, 2500.0, 4);
/// let optimized = FastBasrpt::new(2500.0, 4).schedule(&t);
/// assert_eq!(
///     literal.flow_ids().collect::<Vec<_>>(),
///     optimized.flow_ids().collect::<Vec<_>>()
/// );
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
pub fn fast_basrpt_all_flows(table: &FlowTable, v: f64, num_ports: usize) -> Schedule {
    assert!(v.is_finite() && v >= 0.0, "V must be finite and >= 0");
    assert!(num_ports > 0, "fabric must have at least one port");
    let w = v / num_ports as f64;
    ranked_all_flows(table, |remaining, backlog| w * remaining - backlog)
}

/// Greedy maximal SRPT over all flows (the reference for [`crate::Srpt`]).
pub fn srpt_all_flows(table: &FlowTable) -> Schedule {
    ranked_all_flows(table, |remaining, _| remaining)
}

fn ranked_all_flows(table: &FlowTable, key: impl Fn(f64, f64) -> f64) -> Schedule {
    let mut flows: Vec<(f64, u64, FlowId)> = table
        .iter()
        .map(|f| {
            let backlog = table.voq_backlog(f.voq()) as f64;
            (key(f.remaining() as f64, backlog), f.remaining(), f.id())
        })
        .collect();
    flows.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut schedule = Schedule::new();
    for (_, _, id) in flows {
        let voq = table.get(id).expect("iterated flow").voq();
        if schedule.admits(voq) {
            schedule.add(id, voq).expect("admits() checked both ports");
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FastBasrpt, FlowState, Scheduler, Srpt};
    use dcn_types::{HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    fn demo_table() -> FlowTable {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 50);
        insert(&mut t, 2, 0, 1, 5);
        insert(&mut t, 3, 0, 2, 7);
        insert(&mut t, 4, 1, 2, 7);
        insert(&mut t, 5, 1, 2, 7);
        insert(&mut t, 6, 2, 0, 1);
        t
    }

    #[test]
    fn literal_srpt_matches_optimized() {
        let t = demo_table();
        let literal: Vec<_> = srpt_all_flows(&t).flow_ids().collect();
        let optimized: Vec<_> = Srpt::new().schedule(&t).flow_ids().collect();
        assert_eq!(literal, optimized);
    }

    #[test]
    fn literal_fast_basrpt_matches_optimized() {
        let t = demo_table();
        for v in [0.0, 1.0, 100.0, 2500.0] {
            let literal: Vec<_> = fast_basrpt_all_flows(&t, v, 4).flow_ids().collect();
            let optimized: Vec<_> = FastBasrpt::new(v, 4).schedule(&t).flow_ids().collect();
            assert_eq!(literal, optimized, "V = {v}");
        }
    }

    #[test]
    fn empty_table() {
        let t = FlowTable::new();
        assert!(srpt_all_flows(&t).is_empty());
        assert!(fast_basrpt_all_flows(&t, 10.0, 4).is_empty());
    }
}
