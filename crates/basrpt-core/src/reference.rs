//! Literal reference implementations for differential testing.
//!
//! The production schedulers rank one candidate per non-empty VOQ (the
//! VOQ's shortest flow) — an `O(Q log Q)` decision served by the
//! champion index inside [`FlowTable`]. The paper's Algorithm 1 as
//! written instead sorts *every* active flow. The two are equivalent
//! because all flows of a VOQ share the same backlog term, so the VOQ's
//! shortest flow always precedes its siblings in the global order; this
//! module provides the literal all-flows variants so tests can verify
//! that equivalence (and benches can measure the saved work).
//!
//! [`schedule_scan`] is the generic member of the family: a full `O(F)`
//! scan that recomputes every per-VOQ champion from scratch and then
//! ranks them through the same [`VoqDiscipline`] keys the incremental
//! paths use. It never touches the champion index or the change log, so
//! the differential suites pin the indexed schedulers bit-identical to
//! it — same winners, same [`crate::greedy_by_key`]-style tie-breaks.

use crate::incremental::VoqDiscipline;
use crate::table::VoqView;
use crate::{FlowTable, Schedule, Scheduler};
use dcn_types::{FlowId, Voq};
use std::collections::BTreeMap;

/// The paper's Algorithm 1 verbatim: sort all active flows by
/// `(V/N)·remaining − voq_backlog` (ties: smaller remaining, then smaller
/// id) and admit greedily under the crossbar constraint.
///
/// # Panics
///
/// Panics if `v` is negative or not finite, or `num_ports` is zero.
///
/// # Example
///
/// ```
/// use basrpt_core::reference::fast_basrpt_all_flows;
/// use basrpt_core::{FastBasrpt, FlowState, FlowTable, Scheduler};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut t = FlowTable::new();
/// t.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)), 7))?;
/// t.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(2), HostId::new(1)), 3))?;
/// let literal = fast_basrpt_all_flows(&t, 2500.0, 4);
/// let optimized = FastBasrpt::new(2500.0, 4).schedule(&t);
/// assert_eq!(
///     literal.flow_ids().collect::<Vec<_>>(),
///     optimized.flow_ids().collect::<Vec<_>>()
/// );
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
pub fn fast_basrpt_all_flows(table: &FlowTable, v: f64, num_ports: usize) -> Schedule {
    assert!(v.is_finite() && v >= 0.0, "V must be finite and >= 0");
    assert!(num_ports > 0, "fabric must have at least one port");
    let w = v / num_ports as f64;
    ranked_all_flows(table, |remaining, backlog| w * remaining - backlog)
}

/// Greedy maximal SRPT over all flows (the reference for [`crate::Srpt`]).
pub fn srpt_all_flows(table: &FlowTable) -> Schedule {
    ranked_all_flows(table, |remaining, _| remaining)
}

fn ranked_all_flows(table: &FlowTable, key: impl Fn(f64, f64) -> f64) -> Schedule {
    let mut flows: Vec<(f64, u64, FlowId)> = table
        .iter()
        .map(|f| {
            let backlog = table.voq_backlog(f.voq()) as f64;
            (key(f.remaining() as f64, backlog), f.remaining(), f.id())
        })
        .collect();
    flows.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut schedule = Schedule::new();
    for (_, _, id) in flows {
        let voq = table.get(id).expect("iterated flow").voq();
        if schedule.admits(voq) {
            schedule.add(id, voq).expect("admits() checked both ports");
        }
    }
    schedule
}

/// Full-scan twin of the champion-indexed schedulers.
///
/// Rebuilds every per-VOQ summary ([`VoqView`]) by scanning all `F`
/// active flows, ranks the summaries with `discipline`, and admits
/// greedily in `(key, head flow)` order — exactly the ordering contract
/// of [`crate::greedy_by_key`] and of [`crate::IncrementalScheduler`]'s
/// sorted candidate set, including the `FlowId` tie-break. Costs
/// `O(F + Q log Q)` per call and reads nothing but the flow iterator, so
/// it is immune to champion-index or change-log bugs by construction.
pub fn schedule_scan<D: VoqDiscipline>(discipline: &D, table: &FlowTable) -> Schedule {
    struct Scratch {
        backlog: u64,
        len: usize,
        shortest: (u64, FlowId),
        oldest: FlowId,
    }
    let mut per_voq: BTreeMap<Voq, Scratch> = BTreeMap::new();
    for f in table.iter() {
        let s = per_voq.entry(f.voq()).or_insert(Scratch {
            backlog: 0,
            len: 0,
            shortest: (f.remaining(), f.id()),
            oldest: f.id(),
        });
        s.backlog += f.remaining();
        s.len += 1;
        s.shortest = s.shortest.min((f.remaining(), f.id()));
        s.oldest = s.oldest.min(f.id());
    }
    let mut ranked: Vec<(D::Key, FlowId, Voq)> = per_voq
        .iter()
        .map(|(voq, s)| {
            let view = VoqView {
                voq: *voq,
                backlog: s.backlog,
                shortest_remaining: s.shortest.0,
                shortest_flow: s.shortest.1,
                oldest_flow: s.oldest,
                len: s.len,
            };
            let (key, head) = discipline.rank(&view);
            (key, head, *voq)
        })
        .collect();
    // Head flows are unique across VOQs, so `(key, head)` is already a
    // total order; the trailing `Voq` never decides.
    ranked.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut schedule = Schedule::new();
    for (_, flow, voq) in ranked {
        if schedule.admits(voq) {
            schedule
                .add(flow, voq)
                .expect("admits() checked both ports");
        }
    }
    schedule
}

/// [`Scheduler`] adapter around [`schedule_scan`], so differential suites
/// can drive a full-scan twin through the same simulator plumbing as the
/// indexed scheduler under test. Validity bounds are forwarded to the
/// discipline, matching [`crate::IncrementalScheduler`].
///
/// # Example
///
/// ```
/// use basrpt_core::reference::ScanScheduler;
/// use basrpt_core::{FlowState, FlowTable, Scheduler, Srpt};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut t = FlowTable::new();
/// t.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)), 7))?;
/// let scan = ScanScheduler::new(Srpt::new()).schedule(&t);
/// let indexed = Srpt::new().schedule(&t);
/// assert_eq!(scan, indexed);
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScanScheduler<D: VoqDiscipline> {
    discipline: D,
}

impl<D: VoqDiscipline> ScanScheduler<D> {
    /// Wraps `discipline` in a full-scan scheduler.
    pub fn new(discipline: D) -> Self {
        ScanScheduler { discipline }
    }

    /// The wrapped discipline.
    pub fn discipline(&self) -> &D {
        &self.discipline
    }
}

impl<D: VoqDiscipline> Scheduler for ScanScheduler<D> {
    fn name(&self) -> &str {
        self.discipline.name()
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        schedule_scan(&self.discipline, table)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        self.discipline.schedule_validity(table, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FastBasrpt, Fifo, FlowState, MaxWeight, Scheduler, Srpt, ThresholdBacklogSrpt};
    use dcn_types::{HostId, Voq};

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    fn demo_table() -> FlowTable {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 50);
        insert(&mut t, 2, 0, 1, 5);
        insert(&mut t, 3, 0, 2, 7);
        insert(&mut t, 4, 1, 2, 7);
        insert(&mut t, 5, 1, 2, 7);
        insert(&mut t, 6, 2, 0, 1);
        t
    }

    #[test]
    fn literal_srpt_matches_optimized() {
        let t = demo_table();
        let literal: Vec<_> = srpt_all_flows(&t).flow_ids().collect();
        let optimized: Vec<_> = Srpt::new().schedule(&t).flow_ids().collect();
        assert_eq!(literal, optimized);
    }

    #[test]
    fn literal_fast_basrpt_matches_optimized() {
        let t = demo_table();
        for v in [0.0, 1.0, 100.0, 2500.0] {
            let literal: Vec<_> = fast_basrpt_all_flows(&t, v, 4).flow_ids().collect();
            let optimized: Vec<_> = FastBasrpt::new(v, 4).schedule(&t).flow_ids().collect();
            assert_eq!(literal, optimized, "V = {v}");
        }
    }

    #[test]
    fn empty_table() {
        let t = FlowTable::new();
        assert!(srpt_all_flows(&t).is_empty());
        assert!(fast_basrpt_all_flows(&t, 10.0, 4).is_empty());
        assert!(schedule_scan(&Srpt::new(), &t).is_empty());
    }

    fn assert_scan_matches_indexed(t: &FlowTable) {
        assert_eq!(schedule_scan(&Srpt::new(), t), Srpt::new().schedule(t));
        assert_eq!(schedule_scan(&Fifo::new(), t), Fifo::new().schedule(t));
        assert_eq!(
            schedule_scan(&MaxWeight::new(), t),
            MaxWeight::new().schedule(t)
        );
        for v in [0.0, 1.0, 2500.0] {
            assert_eq!(
                schedule_scan(&FastBasrpt::new(v, 4), t),
                FastBasrpt::new(v, 4).schedule(t),
                "V = {v}"
            );
        }
        for thr in [0, 10, u64::MAX] {
            assert_eq!(
                schedule_scan(&ThresholdBacklogSrpt::new(thr), t),
                ThresholdBacklogSrpt::new(thr).schedule(t),
                "threshold = {thr}"
            );
        }
    }

    #[test]
    fn scan_matches_indexed_across_disciplines() {
        let mut t = demo_table();
        assert_scan_matches_indexed(&t);
        // Mutate through drains, a completion, and an id-reusing insert so
        // the indexed path leans on its lazily repaired champions.
        t.drain(FlowId::new(2), 4).unwrap();
        t.drain(FlowId::new(6), 1).unwrap(); // completes
        insert(&mut t, 6, 2, 0, 3); // id reuse
        t.remove(FlowId::new(4)).unwrap();
        assert_scan_matches_indexed(&t);
    }

    #[test]
    fn scan_scheduler_forwards_name_and_validity() {
        let t = demo_table();
        let mut scan = ScanScheduler::new(FastBasrpt::new(2500.0, 144));
        assert_eq!(scan.name(), "fast BASRPT");
        assert_eq!(scan.discipline().v(), 2500.0);
        let s = scan.schedule(&t);
        let mut direct = FastBasrpt::new(2500.0, 144);
        let direct_schedule = direct.schedule(&t);
        assert_eq!(
            Scheduler::schedule_validity(&scan, &t, &s),
            Scheduler::schedule_validity(&direct, &t, &direct_schedule)
        );
    }
}
