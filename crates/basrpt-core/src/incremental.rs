//! Incremental scheduling: keep per-VOQ ranking keys hot across events.
//!
//! The one-pass schedulers ([`Srpt`](crate::Srpt), [`FastBasrpt`],
//! [`MaxWeight`](crate::MaxWeight), …) rebuild and sort the full candidate
//! list on every decision — `O(Q log Q)` in the number of non-empty VOQs,
//! even though a single flow arrival or completion perturbs exactly one
//! VOQ's key. [`IncrementalScheduler`] removes that redundancy:
//!
//! * [`FlowTable`] records every mutated VOQ in a change log
//!   ([`FlowTable::changes_since`]);
//! * the scheduler keeps one `(key, head flow)` entry per non-empty VOQ in
//!   a [`BTreeSet`] ordered exactly like the one-pass sort;
//! * on each decision it re-keys only the VOQs in the log (`O(Δ log Q)`)
//!   and then walks the already-ordered set running the same greedy
//!   maximal-matching admission as [`greedy_by_key`](crate::greedy_by_key).
//!
//! Disciplines plug in through [`VoqDiscipline`], which maps a
//! [`VoqView`] to an ordered key. The produced [`Schedule`]s are
//! **bit-identical** to the corresponding one-pass scheduler's (same key
//! values, same `(key, flow id)` tie-breaks, same admission order) — a
//! property enforced by [`check_equivalence`], the differential tests in
//! `tests/incremental_equiv.rs`, and the property tests in
//! `tests/props.rs`.
//!
//! # Example
//!
//! ```
//! use basrpt_core::{FastBasrpt, FlowState, FlowTable, IncrementalScheduler, Scheduler};
//! use dcn_types::{FlowId, HostId, Voq};
//!
//! let mut table = FlowTable::new();
//! let voq = Voq::new(HostId::new(0), HostId::new(1));
//! table.insert(FlowState::new(FlowId::new(1), voq, 5))?;
//!
//! let mut fast = IncrementalScheduler::new(FastBasrpt::new(2500.0, 144));
//! let s = fast.schedule(&table); // full build on first contact
//! assert!(s.contains(FlowId::new(1)));
//!
//! table.drain(FlowId::new(1), 2)?;
//! let s = fast.schedule(&table); // re-keys only the drained VOQ
//! assert!(s.contains(FlowId::new(1)));
//! # Ok::<(), basrpt_core::FlowTableError>(())
//! ```

use crate::table::{CursorId, VoqView};
use crate::{FastBasrpt, FlowTable, Schedule, Scheduler};
use dcn_types::{FlowId, Voq};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A total-ordered wrapper for `f64` scheduling keys.
///
/// Orders by [`f64::total_cmp`], matching the comparator
/// [`greedy_by_key`](crate::greedy_by_key) uses on raw candidate keys, so
/// incremental and one-pass paths rank identically — including for values
/// that compare equal only under IEEE semantics. Keys are expected to be
/// finite (the one-pass path debug-asserts this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Key(f64);

impl F64Key {
    /// Wraps a key value.
    pub fn new(key: f64) -> Self {
        F64Key(key)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A scheduling discipline expressed as a pure ranking of VOQ summaries.
///
/// `rank` maps the current state of one non-empty VOQ to `(key, head
/// flow)`: the key orders VOQs (smaller = higher priority, ties broken by
/// the head flow's id) and the head flow is the one transmitted if the VOQ
/// wins its ports. The ranking must depend only on the given view — that
/// locality is what lets [`IncrementalScheduler`] re-rank just the VOQs a
/// table event touched.
///
/// Implemented by the stateless one-pass disciplines; stateful ones
/// (e.g. [`RoundRobin`](crate::RoundRobin), whose priority depends on
/// service history, or [`ExactBasrpt`](crate::ExactBasrpt), whose
/// objective couples VOQs) cannot be expressed this way.
pub trait VoqDiscipline {
    /// The ordered ranking key. For disciplines whose one-pass twin ranks
    /// `f64` candidate keys this should be [`F64Key`] (built from the
    /// *same* arithmetic) so both paths order identically.
    type Key: Ord + Clone + fmt::Debug;

    /// Short human-readable name, used in experiment output.
    fn name(&self) -> &str;

    /// Ranks one non-empty VOQ: the admission key and the flow that
    /// transmits if this VOQ is selected.
    fn rank(&self, view: &VoqView) -> (Self::Key, FlowId);

    /// Slot-validity bound for a schedule just computed from `table` —
    /// the contract of [`Scheduler::schedule_validity`], forwarded
    /// verbatim by [`IncrementalScheduler`] so wrapping a discipline does
    /// not change how long its schedules may be replayed. The default of
    /// `1` is always sound; overrides mirror the one-pass twins (see
    /// [`crate::validity`]).
    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        let _ = (table, schedule);
        1
    }
}

impl VoqDiscipline for crate::Srpt {
    type Key = F64Key;

    fn name(&self) -> &str {
        "SRPT"
    }

    fn rank(&self, view: &VoqView) -> (F64Key, FlowId) {
        (
            F64Key::new(view.shortest_remaining as f64),
            view.shortest_flow,
        )
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        Scheduler::schedule_validity(self, table, schedule)
    }
}

impl VoqDiscipline for FastBasrpt {
    type Key = F64Key;

    fn name(&self) -> &str {
        "fast BASRPT"
    }

    fn rank(&self, view: &VoqView) -> (F64Key, FlowId) {
        let key = self.weight() * view.shortest_remaining as f64 - view.backlog as f64;
        (F64Key::new(key), view.shortest_flow)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        Scheduler::schedule_validity(self, table, schedule)
    }
}

impl VoqDiscipline for crate::MaxWeight {
    type Key = F64Key;

    fn name(&self) -> &str {
        "MaxWeight"
    }

    fn rank(&self, view: &VoqView) -> (F64Key, FlowId) {
        (F64Key::new(-(view.backlog as f64)), view.shortest_flow)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        Scheduler::schedule_validity(self, table, schedule)
    }
}

impl VoqDiscipline for crate::Fifo {
    type Key = F64Key;

    fn name(&self) -> &str {
        "FIFO"
    }

    fn rank(&self, view: &VoqView) -> (F64Key, FlowId) {
        (F64Key::new(view.oldest_flow.raw() as f64), view.oldest_flow)
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        Scheduler::schedule_validity(self, table, schedule)
    }
}

impl VoqDiscipline for crate::ThresholdBacklogSrpt {
    /// `(backlog ≤ threshold, shortest remaining)` — the exact prefix of
    /// the tuple the one-pass implementation sorts, kept as integers so no
    /// precision is lost for large backlogs.
    type Key = (bool, u64);

    fn name(&self) -> &str {
        "threshold backlog-aware SRPT"
    }

    fn rank(&self, view: &VoqView) -> ((bool, u64), FlowId) {
        (
            (view.backlog <= self.threshold(), view.shortest_remaining),
            view.shortest_flow,
        )
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        Scheduler::schedule_validity(self, table, schedule)
    }
}

/// A scheduler that maintains its candidate ordering across decisions.
///
/// Holds one entry per non-empty VOQ in a [`BTreeSet`] ordered by
/// `(key, head flow, voq)`. Each [`Scheduler::schedule`] call first syncs
/// with the table — a full rebuild on first contact, after a
/// [`FlowTable::clone`], or when the change log was compacted past this
/// scheduler's cursor; otherwise an `O(Δ log Q)` patch replaying only the
/// changed VOQs — and then greedily admits heads in key order, exactly
/// like the one-pass path.
///
/// Produces bit-identical schedules to the one-pass discipline `D` wraps:
/// `(key, flow id)` pairs are unique across candidates (a flow lives in
/// exactly one VOQ), so the extra `voq` component of the set ordering
/// never influences relative order.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable, IncrementalScheduler, Scheduler, Srpt};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut table = FlowTable::new();
/// for (id, src, dst, size) in [(1, 0, 1, 500), (2, 0, 2, 100), (3, 2, 3, 900)] {
///     let voq = Voq::new(HostId::new(src), HostId::new(dst));
///     table.insert(FlowState::new(FlowId::new(id), voq, size))?;
/// }
///
/// let mut incremental = IncrementalScheduler::new(Srpt::new());
/// let mut one_pass = Srpt::new();
/// // Identical matchings, decision after decision: flow 2 preempts flow 1
/// // at source 0 (shorter remaining), flow 3 is unconstrained.
/// let schedule = incremental.schedule(&table);
/// assert_eq!(schedule, one_pass.schedule(&table));
/// assert_eq!(schedule.len(), 2);
/// assert!(schedule.contains(FlowId::new(2)));
///
/// // After an event, the next call patches only the changed VOQ
/// // (O(log Q)) instead of re-sorting every candidate.
/// table.drain(FlowId::new(2), 100)?; // flow 2 completes
/// assert_eq!(incremental.schedule(&table), one_pass.schedule(&table));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalScheduler<D: VoqDiscipline> {
    discipline: D,
    /// Identity of the table `order`/`entries` mirror, if any.
    synced_table: Option<u64>,
    /// Absolute change-log position up to which changes are applied.
    log_pos: u64,
    /// Current `(key, head)` per non-empty VOQ — the reverse index needed
    /// to delete a VOQ's old `order` entry without knowing its old key.
    entries: HashMap<Voq, (D::Key, FlowId)>,
    /// All candidates, pre-sorted by `(key, head flow, voq)`.
    order: BTreeSet<(D::Key, FlowId, Voq)>,
    /// Change-log registration per table identity, so compaction keeps the
    /// suffix this scheduler has not consumed yet (instead of forcing a
    /// full rebuild whenever many drains pile up between decisions, as long
    /// fast-forward windows do). Purely an optimization: a lost
    /// registration — e.g. in a clone of this scheduler, which shares the
    /// originals' slots — only means compaction may trigger a rebuild.
    registrations: HashMap<u64, CursorId>,
}

impl<D: VoqDiscipline> IncrementalScheduler<D> {
    /// Wraps a discipline in the incremental engine.
    pub fn new(discipline: D) -> Self {
        IncrementalScheduler {
            discipline,
            synced_table: None,
            log_pos: 0,
            entries: HashMap::new(),
            order: BTreeSet::new(),
            registrations: HashMap::new(),
        }
    }

    /// The wrapped discipline.
    pub fn discipline(&self) -> &D {
        &self.discipline
    }

    /// Number of VOQ candidates currently tracked.
    pub fn tracked_voqs(&self) -> usize {
        self.entries.len()
    }

    fn rebuild(&mut self, table: &FlowTable) {
        self.entries.clear();
        self.order.clear();
        for view in table.voqs() {
            let (key, flow) = self.discipline.rank(&view);
            self.entries.insert(view.voq, (key.clone(), flow));
            self.order.insert((key, flow, view.voq));
        }
    }

    fn apply(&mut self, table: &FlowTable, changed: Voq) {
        if let Some((key, flow)) = self.entries.remove(&changed) {
            self.order.remove(&(key, flow, changed));
        }
        if let Some(view) = table.voq_view(changed) {
            let (key, flow) = self.discipline.rank(&view);
            self.entries.insert(changed, (key.clone(), flow));
            self.order.insert((key, flow, changed));
        }
    }

    /// Brings the candidate set up to date with `table`.
    fn sync(&mut self, table: &FlowTable) {
        let same_table = self.synced_table == Some(table.table_id());
        if same_table {
            if let Some(changes) = table.changes_since(self.log_pos) {
                // The slice borrows the table while `apply` needs it too;
                // the changed VOQ list is tiny, so copy it out.
                let changed: Vec<Voq> = changes.to_vec();
                for voq in changed {
                    self.apply(table, voq);
                }
                self.log_pos = table.change_log_end();
                self.ack(table);
                return;
            }
        }
        // First contact, a different/cloned table, or a compacted log.
        self.rebuild(table);
        self.synced_table = Some(table.table_id());
        self.log_pos = table.change_log_end();
        self.ack(table);
    }

    /// Registers with `table`'s change log on first contact and
    /// acknowledges everything consumed so far, releasing that prefix for
    /// compaction.
    fn ack(&mut self, table: &FlowTable) {
        let reg = *self
            .registrations
            .entry(table.table_id())
            .or_insert_with(|| table.register_cursor());
        table.ack_changes(reg, self.log_pos);
    }

    /// Consistency check: every tracked entry matches a fresh ranking of
    /// the table's VOQs and vice versa. Linear in the number of VOQs;
    /// intended for tests.
    pub fn check_synced(&self, table: &FlowTable) -> Result<(), String> {
        if self.synced_table != Some(table.table_id()) {
            return Err(format!(
                "scheduler synced to table {:?}, asked about table {}",
                self.synced_table,
                table.table_id()
            ));
        }
        let mut fresh = 0usize;
        for view in table.voqs() {
            fresh += 1;
            let (key, flow) = self.discipline.rank(&view);
            match self.entries.get(&view.voq) {
                None => return Err(format!("VOQ {} missing from candidate set", view.voq)),
                Some((k, f)) if *k != key || *f != flow => {
                    return Err(format!(
                        "VOQ {} stale: tracked ({k:?}, {f}), expected ({key:?}, {flow})",
                        view.voq
                    ));
                }
                Some(_) => {}
            }
        }
        if fresh != self.entries.len() {
            return Err(format!(
                "{} tracked candidates but {fresh} non-empty VOQs",
                self.entries.len()
            ));
        }
        if self.entries.len() != self.order.len() {
            return Err("entries/order size mismatch".to_string());
        }
        Ok(())
    }
}

impl<D: VoqDiscipline> Scheduler for IncrementalScheduler<D> {
    fn name(&self) -> &str {
        self.discipline.name()
    }

    fn schedule(&mut self, table: &FlowTable) -> Schedule {
        self.sync(table);
        // Every candidate VOQ has backlog, so its ingress port is active;
        // once the matching occupies every active ingress port no further
        // candidate can be admitted and the walk can stop early without
        // changing the result.
        let max_selections = table.num_active_ingress_ports();
        // The schedule's own busy-port bitsets make the per-candidate
        // admission test two word reads; no separate scratch state needed.
        let mut schedule = Schedule::new();
        for (_, flow, voq) in self.order.iter() {
            if !schedule.admits(*voq) {
                continue;
            }
            schedule
                .add(*flow, *voq)
                .expect("admits() checked both ports");
            if schedule.len() == max_selections {
                break;
            }
        }
        schedule
    }

    fn schedule_validity(&self, table: &FlowTable, schedule: &Schedule) -> u64 {
        self.discipline.schedule_validity(table, schedule)
    }
}

/// Differential harness: runs `incremental` and `one_pass` on the same
/// table and fails unless the two [`Schedule`]s are **bit-identical**
/// (same flows, same VOQs, same admission order) and maximal
/// ([`check_maximal`](crate::check_maximal)). Intended for tests; see
/// `tests/incremental_equiv.rs` for trace-driven use.
pub fn check_equivalence<D, S>(
    incremental: &mut IncrementalScheduler<D>,
    one_pass: &mut S,
    table: &FlowTable,
) -> Result<(), String>
where
    D: VoqDiscipline,
    S: Scheduler + ?Sized,
{
    let fast = incremental.schedule(table);
    let slow = one_pass.schedule(table);
    if fast != slow {
        return Err(format!(
            "{}: incremental schedule {:?} != one-pass schedule {:?}",
            one_pass.name(),
            fast.iter().collect::<Vec<_>>(),
            slow.iter().collect::<Vec<_>>(),
        ));
    }
    crate::check_maximal(table, &fast)
        .map_err(|e| format!("{}: incremental schedule not maximal: {e}", one_pass.name()))?;
    incremental
        .check_synced(table)
        .map_err(|e| format!("{}: candidate set out of sync: {e}", one_pass.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fifo, FlowState, MaxWeight, Srpt, ThresholdBacklogSrpt};
    use dcn_types::HostId;

    fn insert(t: &mut FlowTable, id: u64, src: u32, dst: u32, size: u64) {
        t.insert(FlowState::new(
            FlowId::new(id),
            Voq::new(HostId::new(src), HostId::new(dst)),
            size,
        ))
        .unwrap();
    }

    #[test]
    fn f64_key_orders_by_total_cmp() {
        assert!(F64Key::new(-1.0) < F64Key::new(0.0));
        assert!(F64Key::new(-0.0) < F64Key::new(0.0)); // total_cmp semantics
        assert_eq!(F64Key::new(2.5).get(), 2.5);
    }

    #[test]
    fn first_schedule_matches_one_pass() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, 1);
        insert(&mut t, 2, 1, 2, 100);
        insert(&mut t, 3, 1, 2, 100);
        let mut inc = IncrementalScheduler::new(Srpt::new());
        check_equivalence(&mut inc, &mut Srpt::new(), &t).unwrap();
    }

    #[test]
    fn incremental_tracks_drains_and_completions() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        insert(&mut t, 2, 0, 1, 3);
        insert(&mut t, 3, 2, 1, 4);
        let mut inc = IncrementalScheduler::new(FastBasrpt::new(10.0, 4));
        let mut one = FastBasrpt::new(10.0, 4);
        check_equivalence(&mut inc, &mut one, &t).unwrap();

        t.drain(FlowId::new(2), 3).unwrap(); // completes flow 2
        check_equivalence(&mut inc, &mut one, &t).unwrap();

        t.drain(FlowId::new(1), 2).unwrap();
        insert(&mut t, 4, 3, 1, 1);
        check_equivalence(&mut inc, &mut one, &t).unwrap();
        assert_eq!(inc.tracked_voqs(), 3);
    }

    #[test]
    fn cloned_table_forces_rebuild() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 5);
        let mut inc = IncrementalScheduler::new(MaxWeight::new());
        inc.schedule(&t);

        let mut copy = t.clone();
        insert(&mut copy, 2, 1, 0, 7);
        check_equivalence(&mut inc, &mut MaxWeight::new(), &copy).unwrap();
        // And switching back to the original still works.
        check_equivalence(&mut inc, &mut MaxWeight::new(), &t).unwrap();
    }

    #[test]
    fn survives_log_compaction() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 1_000_000);
        let mut inc = IncrementalScheduler::new(Srpt::new());
        inc.schedule(&t);
        // The scheduler's registration pins the log, so compaction only
        // happens via stalled-cursor eviction: push far past the 32× soft
        // cap so the table force-acks and drops everything.
        insert(&mut t, 2, 1, 0, 100_000);
        for _ in 0..40_000 {
            t.drain(FlowId::new(1), 1).unwrap();
            t.drain(FlowId::new(2), 1).unwrap();
        }
        assert!(
            t.changes_since(0).is_none(),
            "drains should have outrun the stalled-cursor threshold"
        );
        check_equivalence(&mut inc, &mut Srpt::new(), &t).unwrap();
    }

    #[test]
    fn registration_pins_log_across_long_windows() {
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 1, 1_000_000);
        let mut inc = IncrementalScheduler::new(Srpt::new());
        inc.schedule(&t);
        let base = t.change_log_end();
        // Well past the soft cap of max(1024, 8·Q) — without a registered
        // cursor the log would have been cleared — but short of the 32×
        // stalled-cursor threshold.
        insert(&mut t, 2, 1, 0, 10_000);
        for _ in 0..2000 {
            t.drain(FlowId::new(1), 1).unwrap();
            t.drain(FlowId::new(2), 1).unwrap();
        }
        assert!(
            t.changes_since(base).is_some(),
            "the scheduler's registration should pin its unconsumed suffix"
        );
        check_equivalence(&mut inc, &mut Srpt::new(), &t).unwrap();
        // Having consumed and acked, the scheduler releases the prefix:
        // the next burst of changes may compact it away again.
        assert!(t.changes_since(base).is_some() || t.change_log_end() > base);
    }

    #[test]
    fn threshold_key_is_exact_for_huge_backlogs() {
        // Backlogs around 2^53 where f64 rounding would merge distinct
        // values; the (bool, u64) key keeps them distinct, as does the
        // one-pass tuple sort.
        let big = 1u64 << 53;
        let mut t = FlowTable::new();
        insert(&mut t, 1, 0, 2, big);
        insert(&mut t, 2, 1, 2, big + 1);
        let mut inc = IncrementalScheduler::new(ThresholdBacklogSrpt::new(10));
        check_equivalence(&mut inc, &mut ThresholdBacklogSrpt::new(10), &t).unwrap();
    }

    #[test]
    fn all_f64_disciplines_expose_their_names() {
        assert_eq!(IncrementalScheduler::new(Srpt::new()).name(), "SRPT");
        assert_eq!(IncrementalScheduler::new(Fifo::new()).name(), "FIFO");
        assert_eq!(
            IncrementalScheduler::new(FastBasrpt::new(1.0, 4)).name(),
            "fast BASRPT"
        );
        assert_eq!(
            IncrementalScheduler::new(MaxWeight::new()).name(),
            "MaxWeight"
        );
    }

    #[test]
    fn empty_table_yields_empty_schedule() {
        let t = FlowTable::new();
        let mut inc = IncrementalScheduler::new(Fifo::new());
        assert!(inc.schedule(&t).is_empty());
        assert_eq!(inc.tracked_voqs(), 0);
    }
}
