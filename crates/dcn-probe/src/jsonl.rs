//! JSONL trace export: one JSON object per event, one event per line.
//!
//! The emitted schema (field order is fixed; `t` is the substrate's native
//! time axis — seconds in the fabric, slot index in the slotted switch):
//!
//! ```text
//! {"event":"arrival","t":0.0,"flow":3,"src":0,"dst":1,"size":1000}
//! {"event":"drain","t":0.1,"flow":3,"src":0,"dst":1,"amount":250}
//! {"event":"completion","t":0.4,"flow":3,"src":0,"dst":1,"size":1000,"fct":0.4}
//! {"event":"decision","t":0.4,"selected":2,"latency_ns":710}
//! {"event":"sample","t":0.5,"backlog":1200,"flows":4,"delivered":1000.0}
//! ```
//!
//! `latency_ns` is omitted when the engine did not time the decision. The
//! vendored `serde` build is a marker-trait stub without a serialization
//! backend, so the writer emits JSON by hand and this module carries its
//! own minimal flat-object reader ([`parse_line`]) — enough for the
//! `results/` tooling and the `make trace-smoke` round-trip check to
//! validate traces without any external dependency.

use crate::{ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Probe, SampleEvent};
use std::error::Error;
use std::fmt::Write as _;
use std::io::{self, Write};

/// A value of one field in a parsed trace line.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JsonValue {
    /// A JSON number (always parsed as `f64`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by [`parse_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceParseError {
    /// The line is not a single flat JSON object.
    Malformed(String),
    /// A value kind this reader does not support (nested object/array).
    Unsupported(String),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::Malformed(msg) => write!(f, "malformed trace line: {msg}"),
            TraceParseError::Unsupported(msg) => {
                write!(f, "unsupported JSON in trace line: {msg}")
            }
        }
    }
}

impl Error for TraceParseError {}

/// Parses one trace line as a flat JSON object, returning its fields in
/// source order.
///
/// Supports exactly the subset [`JsonlProbe`] emits — string keys mapping
/// to numbers, strings, booleans or `null` — and rejects everything else,
/// which makes it a schema validator as much as a reader.
///
/// # Errors
///
/// Returns [`TraceParseError`] on any syntax error, trailing garbage,
/// duplicate-free-form violations or nested values.
///
/// # Example
///
/// ```
/// use dcn_probe::jsonl::parse_line;
/// let fields = parse_line(r#"{"event":"arrival","t":0.5,"size":100}"#)?;
/// assert_eq!(fields[0].1.as_str(), Some("arrival"));
/// assert_eq!(fields[1].1.as_f64(), Some(0.5));
/// # Ok::<(), dcn_probe::jsonl::TraceParseError>(())
/// ```
pub fn parse_line(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let mut p = Parser {
        chars: line.trim().char_indices().peekable(),
        src: line,
    };
    p.expect('{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.end()?;
        return Ok(fields);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        fields.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        p.end()?;
        return Ok(fields);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> TraceParseError {
        TraceParseError::Malformed(format!("{msg} in {:?}", self.src))
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some(&(_, c)) if c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), TraceParseError> {
        if self.eat(want) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {want:?}")))
        }
    }

    fn end(&mut self) -> Result<(), TraceParseError> {
        self.skip_ws();
        if self.chars.next().is_some() {
            return Err(self.err("trailing characters after object"));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, TraceParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err(self.err("unterminated string")),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    other => {
                        return Err(self.err(&format!("unsupported escape {other:?}")));
                    }
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, TraceParseError> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(JsonValue::String(self.string()?)),
            Some((_, '{')) | Some((_, '[')) => Err(TraceParseError::Unsupported(format!(
                "nested value in {:?}",
                self.src
            ))),
            Some((_, c)) if *c == 't' || *c == 'f' || *c == 'n' => {
                let word: String = std::iter::from_fn(|| match self.chars.peek() {
                    Some((_, c)) if c.is_ascii_alphabetic() => self.chars.next().map(|(_, c)| c),
                    _ => None,
                })
                .collect();
                match word.as_str() {
                    "true" => Ok(JsonValue::Bool(true)),
                    "false" => Ok(JsonValue::Bool(false)),
                    "null" => Ok(JsonValue::Null),
                    other => Err(self.err(&format!("unknown literal {other:?}"))),
                }
            }
            Some(_) => {
                let text: String = std::iter::from_fn(|| match self.chars.peek() {
                    Some((_, c))
                        if c.is_ascii_digit()
                            || matches!(c, '-' | '+' | '.' | 'e' | 'E' | 'i' | 'n' | 'a') =>
                    {
                        self.chars.next().map(|(_, c)| c)
                    }
                    _ => None,
                })
                .collect();
                // Reject the non-JSON specials `f64::from_str` would accept.
                if text.contains('i') || text.contains('n') || text.contains('a') {
                    return Err(self.err(&format!("non-finite number {text:?}")));
                }
                text.parse::<f64>()
                    .map(JsonValue::Number)
                    .map_err(|_| self.err(&format!("bad number {text:?}")))
            }
            None => Err(self.err("missing value")),
        }
    }
}

/// Streams every observed event as one JSON line into a [`Write`] sink.
///
/// I/O errors do not panic the simulation: the first error is latched, all
/// further output is dropped, and [`JsonlProbe::finish`] surfaces it.
///
/// Call `finish` to surface errors; a probe that is merely dropped still
/// best-effort flushes its sink, and if an error was latched but never
/// surfaced it prints a one-line note to stderr (the error itself cannot
/// be returned from `Drop`).
///
/// # Example
///
/// ```
/// use dcn_probe::{JsonlProbe, Probe, ArrivalEvent};
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut probe = JsonlProbe::new(Vec::new());
/// probe.on_arrival(&ArrivalEvent {
///     time: 0.25,
///     flow: FlowId::new(7),
///     voq: Voq::new(HostId::new(0), HostId::new(1)),
///     size: 100,
/// });
/// let bytes = probe.finish()?;
/// assert_eq!(
///     String::from_utf8(bytes).unwrap(),
///     "{\"event\":\"arrival\",\"t\":0.25,\"flow\":7,\"src\":0,\"dst\":1,\"size\":100}\n"
/// );
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct JsonlProbe<W: Write> {
    /// `None` only after [`JsonlProbe::finish`] took the sink (so the
    /// `Drop` that still runs on the emptied probe is a no-op).
    sink: Option<W>,
    lines: u64,
    error: Option<io::Error>,
    buf: String,
}

impl<W: Write> JsonlProbe<W> {
    /// Creates a probe writing to `sink`. Wrap files in a
    /// [`std::io::BufWriter`]: the probe issues one `write_all` per event.
    pub fn new(sink: W) -> Self {
        JsonlProbe {
            sink: Some(sink),
            lines: 0,
            error: None,
            buf: String::with_capacity(128),
        }
    }

    /// Number of lines successfully written.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Whether an I/O error has been latched.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    /// Flushes and returns the sink, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while writing or flushing.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut sink = self.sink.take().expect("sink is present until finish");
        sink.flush()?;
        Ok(sink)
    }

    fn emit(&mut self) {
        if self.error.is_some() {
            return;
        }
        self.buf.push('\n');
        let sink = self.sink.as_mut().expect("sink is present until finish");
        match sink.write_all(self.buf.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> Drop for JsonlProbe<W> {
    /// Best-effort cleanup for probes dropped without
    /// [`JsonlProbe::finish`]: flushes the sink so buffered lines are not
    /// silently lost, and notes a latched-but-unreported error on stderr
    /// (`Drop` cannot return it). `finish` remains the error-surfacing
    /// path — it empties the probe, making this a no-op.
    fn drop(&mut self) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        if let Some(e) = &self.error {
            eprintln!(
                "JsonlProbe dropped without finish() after an unreported I/O error \
                 ({} lines written): {e}",
                self.lines
            );
        }
        let _ = sink.flush();
    }
}

/// Appends a JSON number for `v`, using `null` for non-finite values
/// (which JSON cannot represent).
fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(buf, "{v:?}");
    } else {
        buf.push_str("null");
    }
}

impl<W: Write> Probe for JsonlProbe<W> {
    fn on_arrival(&mut self, event: &ArrivalEvent) {
        self.buf.clear();
        self.buf.push_str("{\"event\":\"arrival\",\"t\":");
        push_f64(&mut self.buf, event.time);
        let _ = write!(
            self.buf,
            ",\"flow\":{},\"src\":{},\"dst\":{},\"size\":{}}}",
            event.flow.raw(),
            event.voq.src().index(),
            event.voq.dst().index(),
            event.size
        );
        self.emit();
    }

    fn on_drain(&mut self, event: &DrainEvent) {
        self.buf.clear();
        self.buf.push_str("{\"event\":\"drain\",\"t\":");
        push_f64(&mut self.buf, event.time);
        let _ = write!(
            self.buf,
            ",\"flow\":{},\"src\":{},\"dst\":{},\"amount\":{}}}",
            event.flow.raw(),
            event.voq.src().index(),
            event.voq.dst().index(),
            event.amount
        );
        self.emit();
    }

    fn on_completion(&mut self, event: &CompletionEvent) {
        self.buf.clear();
        self.buf.push_str("{\"event\":\"completion\",\"t\":");
        push_f64(&mut self.buf, event.time);
        let _ = write!(
            self.buf,
            ",\"flow\":{},\"src\":{},\"dst\":{},\"size\":{},\"fct\":",
            event.flow.raw(),
            event.voq.src().index(),
            event.voq.dst().index(),
            event.size
        );
        push_f64(&mut self.buf, event.fct);
        self.buf.push('}');
        self.emit();
    }

    fn on_decision(&mut self, event: &DecisionEvent<'_>) {
        self.buf.clear();
        self.buf.push_str("{\"event\":\"decision\",\"t\":");
        push_f64(&mut self.buf, event.time);
        let _ = write!(self.buf, ",\"selected\":{}", event.schedule.len());
        if let Some(latency) = event.latency {
            let _ = write!(self.buf, ",\"latency_ns\":{}", latency.as_nanos());
        }
        self.buf.push('}');
        self.emit();
    }

    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        self.buf.clear();
        self.buf.push_str("{\"event\":\"sample\",\"t\":");
        push_f64(&mut self.buf, event.time);
        let _ = write!(
            self.buf,
            ",\"backlog\":{},\"flows\":{},\"delivered\":",
            event.table.total_backlog(),
            event.table.len()
        );
        push_f64(&mut self.buf, event.delivered);
        self.buf.push('}');
        self.emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basrpt_core::{FlowState, FlowTable, Schedule};
    use dcn_types::{FlowId, HostId, Voq};
    use std::time::Duration;

    fn voq() -> Voq {
        Voq::new(HostId::new(2), HostId::new(5))
    }

    #[test]
    fn every_event_kind_round_trips() {
        let mut table = FlowTable::new();
        table
            .insert(FlowState::new(FlowId::new(9), voq(), 42))
            .unwrap();
        let mut schedule = Schedule::new();
        schedule.add(FlowId::new(9), voq()).unwrap();

        let mut probe = JsonlProbe::new(Vec::new());
        probe.on_arrival(&ArrivalEvent {
            time: 0.0,
            flow: FlowId::new(9),
            voq: voq(),
            size: 42,
        });
        probe.on_decision(&DecisionEvent {
            time: 0.0,
            schedule: &schedule,
            latency: Some(Duration::from_nanos(314)),
        });
        probe.on_drain(&DrainEvent {
            time: 0.5,
            flow: FlowId::new(9),
            voq: voq(),
            amount: 42,
        });
        probe.on_completion(&CompletionEvent {
            time: 0.5,
            flow: FlowId::new(9),
            voq: voq(),
            size: 42,
            fct: 0.5,
        });
        probe.on_sample(&SampleEvent {
            time: 1.0,
            table: &table,
            delivered: 42.0,
        });
        assert_eq!(probe.lines_written(), 5);
        let bytes = probe.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let kinds: Vec<String> = text
            .lines()
            .map(|line| {
                let fields = parse_line(line).expect("every line parses");
                assert_eq!(fields[0].0, "event");
                assert_eq!(fields[1].0, "t");
                fields[0].1.as_str().unwrap().to_string()
            })
            .collect();
        assert_eq!(
            kinds,
            ["arrival", "decision", "drain", "completion", "sample"]
        );
        assert!(text.contains("\"latency_ns\":314"));
    }

    #[test]
    fn decision_without_latency_omits_field() {
        let mut probe = JsonlProbe::new(Vec::new());
        probe.on_decision(&DecisionEvent {
            time: 2.0,
            schedule: &Schedule::new(),
            latency: None,
        });
        let text = String::from_utf8(probe.finish().unwrap()).unwrap();
        assert_eq!(text, "{\"event\":\"decision\",\"t\":2.0,\"selected\":0}\n");
    }

    #[test]
    fn io_error_is_latched_not_panicked() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut probe = JsonlProbe::new(Failing);
        probe.on_drain(&DrainEvent {
            time: 0.0,
            flow: FlowId::new(1),
            voq: voq(),
            amount: 1,
        });
        probe.on_drain(&DrainEvent {
            time: 1.0,
            flow: FlowId::new(1),
            voq: voq(),
            amount: 1,
        });
        assert!(probe.has_error());
        assert_eq!(probe.lines_written(), 0);
        assert!(probe.finish().is_err());
    }

    #[test]
    fn drop_without_finish_flushes_the_sink() {
        // Regression: a probe dropped without `finish()` used to leave the
        // sink unflushed (buffered lines lost on BufWriter-style sinks).
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Tracking {
            flushes: Rc<RefCell<u32>>,
            written: Rc<RefCell<Vec<u8>>>,
        }
        impl Write for Tracking {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.written.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                *self.flushes.borrow_mut() += 1;
                Ok(())
            }
        }

        let flushes = Rc::new(RefCell::new(0));
        let written = Rc::new(RefCell::new(Vec::new()));
        {
            let mut probe = JsonlProbe::new(Tracking {
                flushes: flushes.clone(),
                written: written.clone(),
            });
            probe.on_drain(&DrainEvent {
                time: 0.0,
                flow: FlowId::new(1),
                voq: voq(),
                amount: 1,
            });
            assert_eq!(*flushes.borrow(), 0, "no eager flush per event");
        }
        assert_eq!(*flushes.borrow(), 1, "drop must flush the sink");
        assert!(!written.borrow().is_empty());
    }

    #[test]
    fn drop_after_latched_error_still_attempts_flush_without_panicking() {
        // Regression: dropping an errored probe must neither panic nor skip
        // the best-effort flush (partial output may still be salvageable).
        use std::cell::RefCell;
        use std::rc::Rc;

        struct FailWrites {
            flushes: Rc<RefCell<u32>>,
        }
        impl Write for FailWrites {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                *self.flushes.borrow_mut() += 1;
                Ok(())
            }
        }

        let flushes = Rc::new(RefCell::new(0));
        {
            let mut probe = JsonlProbe::new(FailWrites {
                flushes: flushes.clone(),
            });
            probe.on_drain(&DrainEvent {
                time: 0.0,
                flow: FlowId::new(1),
                voq: voq(),
                amount: 1,
            });
            assert!(probe.has_error());
            // Dropped without finish(): the latched error is reported on
            // stderr (not testable here) instead of vanishing.
        }
        assert_eq!(*flushes.borrow(), 1);
    }

    #[test]
    fn finish_leaves_nothing_for_drop() {
        // `finish` consumes the sink; the Drop that still runs on the
        // emptied probe must not double-flush.
        let bytes = JsonlProbe::new(Vec::new()).finish().unwrap();
        assert!(bytes.is_empty());
    }

    #[test]
    fn parser_accepts_the_schema_subset() {
        let fields =
            parse_line(r#" {"event":"sample","t":1.5e-3,"ok":true,"none":null,"n":-2} "#).unwrap();
        assert_eq!(fields.len(), 5);
        assert_eq!(fields[1].1.as_f64(), Some(0.0015));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert_eq!(fields[3].1, JsonValue::Null);
        assert_eq!(fields[4].1.as_f64(), Some(-2.0));
        assert_eq!(parse_line("{}").unwrap(), vec![]);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{\"a\":1} extra").is_err());
        assert!(parse_line("{\"a\":}").is_err());
        assert!(parse_line("{\"a\":inf}").is_err());
        assert!(parse_line("{\"a\":nan}").is_err());
        assert!(parse_line("{\"a\"=1}").is_err());
        assert!(parse_line("{\"a\":\"unterminated}").is_err());
        assert!(matches!(
            parse_line("{\"a\":{\"b\":1}}"),
            Err(TraceParseError::Unsupported(_))
        ));
        let err = parse_line("{\"a\":bogus}").unwrap_err();
        assert!(err.to_string().contains("trace line"));
    }
}
