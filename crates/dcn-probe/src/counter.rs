//! Event counting and decision-latency histogram probe.

use crate::{ArrivalEvent, CompletionEvent, DecisionEvent, DrainEvent, Probe, SampleEvent};
use std::fmt;
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` nanoseconds, covering ~1 ns up to ~4.3 s.
const NUM_BUCKETS: usize = 32;

/// A log₂-spaced histogram of wall-clock latencies.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` nanoseconds (bucket 0
/// also absorbs sub-nanosecond readings); observations beyond the last
/// bucket land in it. Mergeable, so per-seed histograms from a parallel
/// sweep can be combined into one report.
///
/// # Example
///
/// ```
/// use dcn_probe::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// h.record(Duration::from_nanos(700));
/// h.record(Duration::from_nanos(900));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.max_ns(), 900);
/// assert!((h.mean_ns() - 800.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            min_ns: u64::MAX,
            ..LatencyHistogram::default()
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(NUM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds; zero when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Smallest observed latency in nanoseconds; zero when empty.
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest observed latency in nanoseconds; zero when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The smallest latency (ns, lower bucket edge) below which at least
    /// `fraction` of the observations fall; `None` when empty.
    ///
    /// Resolution is one power of two — adequate for the "is a decision
    /// microseconds or milliseconds" questions this probe answers.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn quantile_ns(&self, fraction: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (fraction * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (NUM_BUCKETS - 1))
    }

    /// The non-empty buckets as `(lower_edge_ns, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, n))
            .collect()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counts every event class and histograms scheduler decision latencies.
///
/// The cheapest "what happened in this run" probe: attach it to a
/// simulation and read per-event totals plus wall-clock decision cost
/// afterwards. Mergeable across runs/seeds via
/// [`EventCounterProbe::merge`], which is how the multi-seed bench runner
/// aggregates one probe per seed into a fleet-wide report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventCounterProbe {
    arrivals: u64,
    arrived_units: u64,
    drains: u64,
    drained_units: u64,
    completions: u64,
    decisions: u64,
    empty_decisions: u64,
    scheduled_flows: u64,
    samples: u64,
    latency: LatencyHistogram,
}

impl EventCounterProbe {
    /// Creates a probe with all counters at zero.
    pub fn new() -> Self {
        EventCounterProbe {
            latency: LatencyHistogram::new(),
            ..EventCounterProbe::default()
        }
    }

    /// Number of arrival events.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total units (bytes/packets) offered by the observed arrivals.
    pub fn arrived_units(&self) -> u64 {
        self.arrived_units
    }

    /// Number of drain events.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Total units drained.
    pub fn drained_units(&self) -> u64 {
        self.drained_units
    }

    /// Number of flow completions.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Number of scheduling decisions.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions that selected no flow (idle system).
    pub fn empty_decisions(&self) -> u64 {
        self.empty_decisions
    }

    /// Total flows selected across all decisions (= matched port pairs).
    pub fn scheduled_flows(&self) -> u64 {
        self.scheduled_flows
    }

    /// Number of sampling instants observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean flows matched per decision; zero before the first decision.
    pub fn mean_matching_size(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.scheduled_flows as f64 / self.decisions as f64
        }
    }

    /// The decision wall-latency histogram (empty if the embedding engine
    /// never timed a decision).
    pub fn decision_latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Folds the counts of another probe into this one (e.g. merging the
    /// per-seed probes of a parallel sweep).
    pub fn merge(&mut self, other: &EventCounterProbe) {
        self.arrivals += other.arrivals;
        self.arrived_units += other.arrived_units;
        self.drains += other.drains;
        self.drained_units += other.drained_units;
        self.completions += other.completions;
        self.decisions += other.decisions;
        self.empty_decisions += other.empty_decisions;
        self.scheduled_flows += other.scheduled_flows;
        self.samples += other.samples;
        self.latency.merge(&other.latency);
    }
}

impl fmt::Display for EventCounterProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} arrivals, {} drains, {} completions, {} decisions \
             ({} empty, {:.2} flows/decision), {} samples",
            self.arrivals,
            self.drains,
            self.completions,
            self.decisions,
            self.empty_decisions,
            self.mean_matching_size(),
            self.samples,
        )?;
        if self.latency.count() > 0 {
            write!(
                f,
                ", decision latency mean {:.0} ns (p99 < {} ns)",
                self.latency.mean_ns(),
                self.latency.quantile_ns(0.99).unwrap_or(0) << 1,
            )?;
        }
        Ok(())
    }
}

impl Probe for EventCounterProbe {
    fn on_arrival(&mut self, event: &ArrivalEvent) {
        self.arrivals += 1;
        self.arrived_units += event.size;
    }

    fn on_drain(&mut self, event: &DrainEvent) {
        self.drains += 1;
        self.drained_units += event.amount;
    }

    fn on_completion(&mut self, _event: &CompletionEvent) {
        self.completions += 1;
    }

    fn on_decision(&mut self, event: &DecisionEvent<'_>) {
        self.decisions += 1;
        if event.schedule.is_empty() {
            self.empty_decisions += 1;
        }
        self.scheduled_flows += event.schedule.len() as u64;
        if let Some(latency) = event.latency {
            self.latency.record(latency);
        }
    }

    fn on_sample(&mut self, _event: &SampleEvent<'_>) {
        self.samples += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basrpt_core::Schedule;
    use dcn_types::{FlowId, HostId, Voq};

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(1024));
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (2, 1), (1024, 1)]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), 1024);
        assert_eq!(h.quantile_ns(0.5), Some(2));
        assert_eq!(h.quantile_ns(1.0), Some(1024));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn histogram_merge_combines_extremes() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_nanos(5000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), 10);
        assert_eq!(a.max_ns(), 5000);
    }

    #[test]
    fn counter_tracks_decisions_and_merges() {
        let mut probe = EventCounterProbe::new();
        let mut schedule = Schedule::new();
        schedule
            .add(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)))
            .unwrap();
        probe.on_decision(&DecisionEvent {
            time: 0.0,
            schedule: &schedule,
            latency: Some(Duration::from_nanos(100)),
        });
        probe.on_decision(&DecisionEvent {
            time: 1.0,
            schedule: &Schedule::new(),
            latency: None,
        });
        assert_eq!(probe.decisions(), 2);
        assert_eq!(probe.empty_decisions(), 1);
        assert_eq!(probe.scheduled_flows(), 1);
        assert_eq!(probe.decision_latency().count(), 1);
        assert!((probe.mean_matching_size() - 0.5).abs() < 1e-12);

        let mut other = EventCounterProbe::new();
        other.on_completion(&CompletionEvent {
            time: 2.0,
            flow: FlowId::new(1),
            voq: Voq::new(HostId::new(0), HostId::new(1)),
            size: 4,
            fct: 2.0,
        });
        probe.merge(&other);
        assert_eq!(probe.completions(), 1);
        assert_eq!(probe.decisions(), 2);
        let text = probe.to_string();
        assert!(text.contains("2 decisions"), "display: {text}");
    }
}
