//! The built-in backlog/throughput sampler, as a probe.

use crate::{Probe, SampleEvent};
use dcn_metrics::TimeSeries;
use dcn_types::HostId;

/// The four sampled series the flow-level engine has always recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampledSeries {
    /// Total backlog over time.
    pub total_backlog: TimeSeries,
    /// Backlog of the monitored ingress port over time.
    pub monitored_port_backlog: TimeSeries,
    /// Backlog of the most loaded ingress port at each sample instant.
    pub max_port_backlog: TimeSeries,
    /// Cumulative delivered units over time.
    pub cumulative_delivered: TimeSeries,
}

/// Re-implementation of the historical hardwired sampling on the [`Probe`]
/// API: at every [`SampleEvent`] it records total backlog, the monitored
/// port's backlog, the most loaded port's backlog, and cumulative delivered
/// units.
///
/// This is the probe `dcn-fabric` attaches internally to fill
/// `FabricRun`'s time-series fields; attaching another instance externally
/// reproduces those series bit for bit (locked by
/// `tests/probe_differential.rs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BacklogSampler {
    monitored_port: HostId,
    series: SampledSeries,
}

impl BacklogSampler {
    /// Creates a sampler tracing `monitored_port`'s backlog.
    pub fn new(monitored_port: HostId) -> Self {
        BacklogSampler {
            monitored_port,
            series: SampledSeries::default(),
        }
    }

    /// The port whose backlog is traced.
    pub fn monitored_port(&self) -> HostId {
        self.monitored_port
    }

    /// The series recorded so far.
    pub fn series(&self) -> &SampledSeries {
        &self.series
    }

    /// Consumes the sampler, returning the recorded series.
    pub fn into_series(self) -> SampledSeries {
        self.series
    }
}

impl Probe for BacklogSampler {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn wants_flow_fidelity(&self) -> bool {
        // Reads only sample-instant aggregates, which the lazy engine
        // fully settles before emitting — per-event drains are not needed.
        false
    }

    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        let t = event.time;
        self.series
            .total_backlog
            .push(t, event.table.total_backlog() as f64);
        self.series
            .monitored_port_backlog
            .push(t, event.table.ingress_backlog(self.monitored_port) as f64);
        self.series
            .max_port_backlog
            .push(t, event.table.max_ingress_backlog() as f64);
        self.series.cumulative_delivered.push(t, event.delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basrpt_core::{FlowState, FlowTable};
    use dcn_types::{FlowId, Voq};

    #[test]
    fn sampler_records_all_four_series() {
        let mut table = FlowTable::new();
        table
            .insert(FlowState::new(
                FlowId::new(1),
                Voq::new(HostId::new(0), HostId::new(1)),
                5,
            ))
            .unwrap();
        table
            .insert(FlowState::new(
                FlowId::new(2),
                Voq::new(HostId::new(2), HostId::new(1)),
                9,
            ))
            .unwrap();
        let mut sampler = BacklogSampler::new(HostId::new(0));
        assert!(!sampler.wants_decision_timing());
        sampler.on_sample(&SampleEvent {
            time: 1.5,
            table: &table,
            delivered: 3.0,
        });
        let series = sampler.into_series();
        assert_eq!(series.total_backlog.values(), &[14.0]);
        assert_eq!(series.monitored_port_backlog.values(), &[5.0]);
        assert_eq!(series.max_port_backlog.values(), &[9.0]);
        assert_eq!(series.cumulative_delivered.values(), &[3.0]);
        assert_eq!(series.total_backlog.times(), &[1.5]);
    }

    #[test]
    fn empty_table_samples_zeroes() {
        let table = FlowTable::new();
        let mut sampler = BacklogSampler::new(HostId::new(3));
        sampler.on_sample(&SampleEvent {
            time: 0.0,
            table: &table,
            delivered: 0.0,
        });
        assert_eq!(sampler.series().total_backlog.values(), &[0.0]);
        assert_eq!(sampler.series().max_port_backlog.values(), &[0.0]);
        assert_eq!(sampler.monitored_port(), HostId::new(3));
    }
}
