//! Lyapunov drift observation on the probe API.

use crate::{Probe, SampleEvent};
use basrpt_core::FlowTable;
use dcn_metrics::TimeSeries;

/// The quadratic Lyapunov function `L(X) = ½ Σ_ij X_ij²` (the paper's
/// Eq. 3) over the VOQ backlogs of `table`.
///
/// # Example
///
/// ```
/// use basrpt_core::{FlowState, FlowTable};
/// use dcn_probe::quadratic_lyapunov;
/// use dcn_types::{FlowId, HostId, Voq};
///
/// let mut t = FlowTable::new();
/// t.insert(FlowState::new(FlowId::new(1), Voq::new(HostId::new(0), HostId::new(1)), 3))?;
/// t.insert(FlowState::new(FlowId::new(2), Voq::new(HostId::new(1), HostId::new(0)), 4))?;
/// assert_eq!(quadratic_lyapunov(&t), 0.5 * (9.0 + 16.0));
/// # Ok::<(), basrpt_core::FlowTableError>(())
/// ```
pub fn quadratic_lyapunov(table: &FlowTable) -> f64 {
    table
        .voqs()
        .map(|v| {
            let x = v.backlog as f64;
            x * x
        })
        .sum::<f64>()
        / 2.0
}

/// Samples the quadratic Lyapunov function and estimates its drift.
///
/// Generalizes the `dcn-switch::lyapunov` instrumentation to any substrate
/// carrying a [`FlowTable`]: at each [`SampleEvent`] the probe records
/// `L(X)` into a [`TimeSeries`] and accumulates the one-sample differences
/// `L(X(t_{k+1})) − L(X(t_k))` — an empirical view of the expected drift
/// `Δ(X(t))` (Eq. 4) along the simulated trajectory. A positive mean drift
/// sustained over the run is the signature of the instability the paper's
/// Fig. 2 shows for SRPT; Theorem 1's drift bound caps it for BASRPT.
#[derive(Debug, Clone, Default)]
pub struct DriftProbe {
    series: TimeSeries,
    last_value: Option<f64>,
    drift_sum: f64,
    drift_count: u64,
    max_drift: f64,
}

impl DriftProbe {
    /// Creates a probe with no observations.
    pub fn new() -> Self {
        DriftProbe::default()
    }

    /// The sampled `L(X)` trajectory.
    pub fn lyapunov_series(&self) -> &TimeSeries {
        &self.series
    }

    /// Number of drift samples (one fewer than Lyapunov samples).
    pub fn drift_count(&self) -> u64 {
        self.drift_count
    }

    /// Mean one-sample drift; `None` before two samples.
    pub fn mean_drift(&self) -> Option<f64> {
        if self.drift_count == 0 {
            None
        } else {
            Some(self.drift_sum / self.drift_count as f64)
        }
    }

    /// Largest observed one-sample drift (most destabilizing step); zero
    /// before two samples.
    pub fn max_drift(&self) -> f64 {
        self.max_drift
    }

    /// The final Lyapunov value, if any sample was taken.
    pub fn last_value(&self) -> Option<f64> {
        self.last_value
    }
}

impl Probe for DriftProbe {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        let value = quadratic_lyapunov(event.table);
        self.series.push(event.time, value);
        if let Some(prev) = self.last_value {
            let drift = value - prev;
            self.drift_sum += drift;
            self.drift_count += 1;
            self.max_drift = self.max_drift.max(drift);
        }
        self.last_value = Some(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basrpt_core::FlowState;
    use dcn_types::{FlowId, HostId, Voq};

    fn table_with_backlog(units: u64) -> FlowTable {
        let mut t = FlowTable::new();
        if units > 0 {
            t.insert(FlowState::new(
                FlowId::new(1),
                Voq::new(HostId::new(0), HostId::new(1)),
                units,
            ))
            .unwrap();
        }
        t
    }

    #[test]
    fn lyapunov_of_empty_table_is_zero() {
        assert_eq!(quadratic_lyapunov(&FlowTable::new()), 0.0);
    }

    #[test]
    fn drift_probe_tracks_differences() {
        let mut probe = DriftProbe::new();
        assert!(probe.mean_drift().is_none());
        for (t, units) in [(0.0, 2u64), (1.0, 4), (2.0, 3)] {
            let table = table_with_backlog(units);
            probe.on_sample(&SampleEvent {
                time: t,
                table: &table,
                delivered: 0.0,
            });
        }
        // L values: 2, 8, 4.5 -> drifts +6, -3.5 -> mean +1.25, max +6.
        assert_eq!(probe.lyapunov_series().values(), &[2.0, 8.0, 4.5]);
        assert_eq!(probe.drift_count(), 2);
        assert_eq!(probe.mean_drift(), Some(1.25));
        assert_eq!(probe.max_drift(), 6.0);
        assert_eq!(probe.last_value(), Some(4.5));
    }
}
