//! Event-level observability for both BASRPT simulation substrates.
//!
//! The paper's central claims are *trajectory* claims — SRPT's queues
//! diverge while BASRPT's stabilize — so answering a new question about a
//! run (per-VOQ occupancy, drift decomposition, decision latency) used to
//! mean editing the event loops. This crate turns the loops inside out: the
//! simulators emit a stream of sim-time-stamped events to an attached
//! [`Probe`], and every measurement — including the built-in backlog
//! sampling — is an observer of that stream.
//!
//! # Event taxonomy
//!
//! | Event | Emitted when | Payload |
//! |-------|--------------|---------|
//! | [`ArrivalEvent`] | a flow enters the system | flow id, VOQ, size |
//! | [`DrainEvent`] | units leave a flow's queue | flow id, VOQ, amount |
//! | [`CompletionEvent`] | a flow's last unit leaves | flow id, VOQ, size, FCT |
//! | [`DecisionEvent`] | the scheduler is consulted | the [`Schedule`], wall latency |
//! | [`SampleEvent`] | a sampling instant passes | the whole [`FlowTable`], delivered units |
//!
//! Timestamps are the substrate's native axis: seconds in the flow-level
//! fabric (`dcn-fabric`, units = bytes), slot indices in the slotted switch
//! (`dcn-switch`, units = packets) — matching the convention of the
//! [`TimeSeries`](dcn_metrics::TimeSeries) both already record.
//!
//! # Built-in probes
//!
//! * [`NoProbe`] — the default; every callback is a no-op and the whole
//!   observer layer monomorphizes away (verified in the `sched_overhead`
//!   bench's `probe_overhead` group).
//! * [`BacklogSampler`] — the historical backlog/throughput sampler,
//!   re-implemented as a probe; reproduces the pre-probe engine output
//!   bit for bit (locked by `tests/probe_differential.rs`).
//! * [`EventCounterProbe`] — event counts plus a log-spaced histogram of
//!   scheduler decision wall latencies; mergeable across seeds.
//! * [`DriftProbe`] — samples the quadratic Lyapunov function
//!   `L(X) = ½ Σ X_ij²` and estimates its one-sample drift, generalizing
//!   the `dcn-switch::lyapunov` instrumentation to any substrate.
//! * [`JsonlProbe`] — streams every event as one JSON object per line,
//!   consumable by the `results/` tooling (see [`jsonl`]).
//!
//! Compose several observers with [`Fanout`].
//!
//! # Example
//!
//! ```
//! use basrpt_core::{FlowState, FlowTable};
//! use dcn_probe::{EventCounterProbe, Probe, SampleEvent};
//! use dcn_types::{FlowId, HostId, Voq};
//!
//! let mut table = FlowTable::new();
//! table.insert(FlowState::new(
//!     FlowId::new(1),
//!     Voq::new(HostId::new(0), HostId::new(1)),
//!     3,
//! ))?;
//! let mut counter = EventCounterProbe::new();
//! counter.on_sample(&SampleEvent { time: 0.0, table: &table, delivered: 0.0 });
//! assert_eq!(counter.samples(), 1);
//! # Ok::<(), basrpt_core::FlowTableError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use basrpt_core::{FlowTable, Schedule};
use dcn_types::{FlowId, Voq};
use std::time::Duration;

mod counter;
mod drift;
pub mod jsonl;
mod sampler;

pub use counter::{EventCounterProbe, LatencyHistogram};
pub use drift::{quadratic_lyapunov, DriftProbe};
pub use jsonl::JsonlProbe;
pub use sampler::{BacklogSampler, SampledSeries};

/// A flow entered the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalEvent {
    /// Sim time of the arrival (seconds in the fabric, slot index in the
    /// slotted switch).
    pub time: f64,
    /// The arriving flow.
    pub flow: FlowId,
    /// The VOQ it joins.
    pub voq: Voq,
    /// Its size in substrate units (bytes / packets).
    pub size: u64,
}

/// Units left a flow's queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrainEvent {
    /// Sim time at which the drained interval ends.
    pub time: f64,
    /// The drained flow.
    pub flow: FlowId,
    /// The VOQ it occupies.
    pub voq: Voq,
    /// Units removed (always ≥ 1).
    pub amount: u64,
}

/// A flow's last unit left the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionEvent {
    /// Sim time of the completion.
    pub time: f64,
    /// The completed flow.
    pub flow: FlowId,
    /// The VOQ it occupied.
    pub voq: Voq,
    /// Its original size in substrate units.
    pub size: u64,
    /// Flow completion time in the substrate's time unit (includes any
    /// configured latency floor in the fabric).
    pub fct: f64,
}

/// The scheduler was consulted and produced a decision.
#[derive(Debug, Clone, Copy)]
pub struct DecisionEvent<'a> {
    /// Sim time of the decision.
    pub time: f64,
    /// The crossbar matching the discipline returned (before any core-layer
    /// capacity filtering the fabric may apply afterwards).
    pub schedule: &'a Schedule,
    /// Wall-clock latency of the `schedule()` call. `None` when no attached
    /// probe requested timing (see [`Probe::wants_decision_timing`]) — the
    /// engines then skip the clock reads entirely.
    pub latency: Option<Duration>,
}

/// A sampling instant passed.
#[derive(Debug, Clone, Copy)]
pub struct SampleEvent<'a> {
    /// Sim time of the sample.
    pub time: f64,
    /// The live flow table: probes may read any aggregate (total backlog,
    /// per-port backlogs, per-VOQ views) without the engine precomputing
    /// them.
    pub table: &'a FlowTable,
    /// Cumulative units delivered by the substrate so far.
    pub delivered: f64,
}

/// An observer of simulation events.
///
/// Every callback has a no-op default, so a probe implements only the
/// events it cares about. Probes are attached to
/// `dcn_fabric::FabricSim::probe` or `dcn_switch::run_probed`; the engines
/// invoke the callbacks synchronously from the event loop, so
/// implementations should be cheap (buffer, don't block).
pub trait Probe {
    /// Whether this probe wants [`DecisionEvent::latency`] populated.
    ///
    /// Timing a decision costs two wall-clock reads per scheduling event;
    /// engines consult this flag once per decision and skip the clock when
    /// it returns `false`. The default is `true` so custom probes get
    /// latencies without extra wiring; probes that ignore them (and
    /// [`NoProbe`]) override it to `false`.
    fn wants_decision_timing(&self) -> bool {
        true
    }

    /// Whether this probe needs the slotted substrate's **per-slot** event
    /// stream even where the engine could batch.
    ///
    /// The fast-forward engine in `dcn-switch` advances many slots in one
    /// step when the cached schedule provably cannot change. If every
    /// attached probe returns `false` here, such a window is reported as
    /// one [`DecisionEvent`] per actual `schedule()` call plus one
    /// [`DrainEvent`] per scheduled flow with `amount` equal to the units
    /// drained over the whole window, stamped at the window's first slot.
    /// If any probe returns `true`, the engine expands every window into
    /// the exact per-slot stream of the slot-by-slot reference: one
    /// decision per slot (`latency: None` for replayed cached schedules)
    /// and one unit drain per scheduled flow per slot, in reference order.
    /// Arrival, completion and sample events are identical either way.
    ///
    /// The default is `true` so custom probes observe the reference
    /// stream without extra wiring; aggregate-only probes (and
    /// [`NoProbe`]) override it to `false` to keep fast-forward runs fast.
    fn wants_slot_fidelity(&self) -> bool {
        true
    }

    /// Whether this probe needs the fabric's **per-flow** drain stream at
    /// full fidelity even where the engine could settle lazily.
    ///
    /// The lazily settling fabric engine (`dcn-fabric`'s delta path)
    /// defers each scheduled flow's drain write-back until the flow is
    /// *observed* — its own rate change, completion, eviction, or a
    /// sample instant — instead of settling every scheduled flow on every
    /// event. Byte accounting is bit-exact at every observation point
    /// either way, but between observation points the deferred engine
    /// emits *fewer, coarser* [`DrainEvent`]s: one per settlement instead
    /// of one per event per flow. If any attached probe returns `true`
    /// here, the engine settles eagerly on every event, reproducing the
    /// reference engines' exact drain stream.
    ///
    /// The default is `true` so custom probes observe the reference
    /// stream without extra wiring; aggregate-only probes (and
    /// [`NoProbe`]) override it to `false` to keep lazy runs fast.
    fn wants_flow_fidelity(&self) -> bool {
        true
    }

    /// A flow arrived.
    fn on_arrival(&mut self, event: &ArrivalEvent) {
        let _ = event;
    }

    /// Units drained from a flow.
    fn on_drain(&mut self, event: &DrainEvent) {
        let _ = event;
    }

    /// A flow completed.
    fn on_completion(&mut self, event: &CompletionEvent) {
        let _ = event;
    }

    /// A scheduling decision was computed.
    fn on_decision(&mut self, event: &DecisionEvent<'_>) {
        let _ = event;
    }

    /// A sampling instant passed.
    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        let _ = event;
    }
}

/// The default observer: ignores every event.
///
/// `NoProbe` is a zero-sized type and all its callbacks are empty, so an
/// engine instantiated with it compiles down to exactly the unobserved
/// event loop — attaching `NoProbe` costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    fn wants_decision_timing(&self) -> bool {
        false
    }

    fn wants_slot_fidelity(&self) -> bool {
        false
    }

    fn wants_flow_fidelity(&self) -> bool {
        false
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    fn wants_decision_timing(&self) -> bool {
        (**self).wants_decision_timing()
    }

    fn wants_slot_fidelity(&self) -> bool {
        (**self).wants_slot_fidelity()
    }

    fn wants_flow_fidelity(&self) -> bool {
        (**self).wants_flow_fidelity()
    }
    fn on_arrival(&mut self, event: &ArrivalEvent) {
        (**self).on_arrival(event);
    }
    fn on_drain(&mut self, event: &DrainEvent) {
        (**self).on_drain(event);
    }
    fn on_completion(&mut self, event: &CompletionEvent) {
        (**self).on_completion(event);
    }
    fn on_decision(&mut self, event: &DecisionEvent<'_>) {
        (**self).on_decision(event);
    }
    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        (**self).on_sample(event);
    }
}

/// Broadcasts every event to two probes (nest for more).
///
/// # Example
///
/// ```
/// use dcn_probe::{DriftProbe, EventCounterProbe, Fanout};
/// let mut counter = EventCounterProbe::new();
/// let mut drift = DriftProbe::new();
/// let fan = Fanout::new(&mut counter, &mut drift);
/// # let _ = fan;
/// ```
#[derive(Debug)]
pub struct Fanout<A, B>(A, B);

impl<A: Probe, B: Probe> Fanout<A, B> {
    /// Creates a fan-out over `first` and `second` (invoked in that order).
    pub fn new(first: A, second: B) -> Self {
        Fanout(first, second)
    }

    /// Returns the two inner probes.
    pub fn into_inner(self) -> (A, B) {
        (self.0, self.1)
    }
}

impl<A: Probe, B: Probe> Probe for Fanout<A, B> {
    fn wants_decision_timing(&self) -> bool {
        self.0.wants_decision_timing() || self.1.wants_decision_timing()
    }

    fn wants_slot_fidelity(&self) -> bool {
        self.0.wants_slot_fidelity() || self.1.wants_slot_fidelity()
    }

    fn wants_flow_fidelity(&self) -> bool {
        self.0.wants_flow_fidelity() || self.1.wants_flow_fidelity()
    }
    fn on_arrival(&mut self, event: &ArrivalEvent) {
        self.0.on_arrival(event);
        self.1.on_arrival(event);
    }
    fn on_drain(&mut self, event: &DrainEvent) {
        self.0.on_drain(event);
        self.1.on_drain(event);
    }
    fn on_completion(&mut self, event: &CompletionEvent) {
        self.0.on_completion(event);
        self.1.on_completion(event);
    }
    fn on_decision(&mut self, event: &DecisionEvent<'_>) {
        self.0.on_decision(event);
        self.1.on_decision(event);
    }
    fn on_sample(&mut self, event: &SampleEvent<'_>) {
        self.0.on_sample(event);
        self.1.on_sample(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_types::HostId;

    fn voq() -> Voq {
        Voq::new(HostId::new(0), HostId::new(1))
    }

    #[test]
    fn no_probe_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
        let mut p = NoProbe;
        assert!(!p.wants_decision_timing());
        assert!(!p.wants_slot_fidelity());
        assert!(!p.wants_flow_fidelity());
        p.on_arrival(&ArrivalEvent {
            time: 0.0,
            flow: FlowId::new(1),
            voq: voq(),
            size: 1,
        });
    }

    #[test]
    fn fanout_broadcasts_and_merges_timing_wishes() {
        let mut a = EventCounterProbe::new();
        let mut b = EventCounterProbe::new();
        {
            let mut fan = Fanout::new(&mut a, &mut b);
            assert!(fan.wants_decision_timing());
            assert!(fan.wants_slot_fidelity());
            assert!(fan.wants_flow_fidelity());
            fan.on_arrival(&ArrivalEvent {
                time: 1.0,
                flow: FlowId::new(7),
                voq: voq(),
                size: 3,
            });
        }
        assert_eq!(a.arrivals(), 1);
        assert_eq!(b.arrivals(), 1);
        let fan = Fanout::new(NoProbe, NoProbe);
        assert!(!fan.wants_decision_timing());
        assert!(!fan.wants_slot_fidelity());
        assert!(!fan.wants_flow_fidelity());
    }

    #[test]
    fn mut_ref_probe_delegates() {
        // Route through a generic bound so the `impl Probe for &mut P`
        // delegation (not auto-deref) is what the calls resolve to.
        fn drive<P: Probe>(mut probe: P) {
            assert!(probe.wants_decision_timing());
            probe.on_drain(&DrainEvent {
                time: 2.0,
                flow: FlowId::new(1),
                voq: Voq::new(HostId::new(0), HostId::new(1)),
                amount: 5,
            });
        }
        let mut counter = EventCounterProbe::new();
        drive(&mut counter);
        assert_eq!(counter.drains(), 1);
        assert_eq!(counter.drained_units(), 5);
    }
}
