//! Identifiers for fabric endpoints and virtual output queues.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a server (equivalently, a port of the paper's "one big
/// switch" abstraction — each port of the non-blocking input-queued switch
/// represents one server).
///
/// # Example
///
/// ```
/// use dcn_types::HostId;
/// let h = HostId::new(42);
/// assert_eq!(h.index(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(u32);

impl HostId {
    /// Creates a host identifier from its zero-based index.
    pub const fn new(index: u32) -> Self {
        HostId(index)
    }

    /// Returns the zero-based index of this host.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(index: u32) -> Self {
        HostId(index)
    }
}

/// Identifier of a rack (a top-of-rack switch and the hosts below it).
///
/// The paper's topology has 12 racks of 12 hosts each.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack identifier from its zero-based index.
    pub const fn new(index: u32) -> Self {
        RackId(index)
    }

    /// Returns the zero-based index of this rack.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

impl From<u32> for RackId {
    fn from(index: u32) -> Self {
        RackId(index)
    }
}

/// A virtual output queue: the queue at ingress port `src` holding flows
/// destined for egress port `dst` (the paper's `q_ij`).
///
/// In a fabric of `N` servers there are `N^2` VOQs. The backlog of a VOQ is
/// the quantity the backlog-aware schedulers subtract from the (scaled)
/// remaining flow size when ranking flows.
///
/// # Example
///
/// ```
/// use dcn_types::{HostId, Voq};
/// let q = Voq::new(HostId::new(1), HostId::new(2));
/// assert_ne!(q, q.reversed());
/// assert_eq!(q.reversed().reversed(), q);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Voq {
    src: HostId,
    dst: HostId,
}

impl Voq {
    /// Creates the VOQ for flows entering at `src` and destined for `dst`.
    pub const fn new(src: HostId, dst: HostId) -> Self {
        Voq { src, dst }
    }

    /// The ingress port (source server) of this VOQ.
    pub const fn src(self) -> HostId {
        self.src
    }

    /// The egress port (destination server) of this VOQ.
    pub const fn dst(self) -> HostId {
        self.dst
    }

    /// The VOQ of the reverse direction (`q_ji` for this `q_ij`).
    pub const fn reversed(self) -> Self {
        Voq {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this VOQ loops a host back to itself. Self-loops never occur
    /// in generated workloads but may appear in hand-built scenarios.
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

impl fmt::Display for Voq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q[{},{}]", self.src.index(), self.dst.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_roundtrip() {
        let h = HostId::new(17);
        assert_eq!(h.index(), 17);
        assert_eq!(h.as_usize(), 17);
        assert_eq!(HostId::from(17), h);
        assert_eq!(h.to_string(), "h17");
    }

    #[test]
    fn rack_id_roundtrip() {
        let r = RackId::new(3);
        assert_eq!(r.index(), 3);
        assert_eq!(r.to_string(), "rack3");
        assert_eq!(RackId::from(3), r);
    }

    #[test]
    fn voq_accessors_and_reverse() {
        let q = Voq::new(HostId::new(1), HostId::new(2));
        assert_eq!(q.src(), HostId::new(1));
        assert_eq!(q.dst(), HostId::new(2));
        assert_eq!(q.reversed(), Voq::new(HostId::new(2), HostId::new(1)));
        assert!(!q.is_self_loop());
        assert!(Voq::new(HostId::new(5), HostId::new(5)).is_self_loop());
    }

    #[test]
    fn voq_ordering_is_lexicographic() {
        let a = Voq::new(HostId::new(0), HostId::new(9));
        let b = Voq::new(HostId::new(1), HostId::new(0));
        assert!(a < b);
    }

    #[test]
    fn display_voq() {
        let q = Voq::new(HostId::new(4), HostId::new(7));
        assert_eq!(q.to_string(), "q[4,7]");
    }
}
